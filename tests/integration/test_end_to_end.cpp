// Cross-strategy integration: every parallelization of the same problem —
// sequential, batch, model, 1.5D, domain, hybrid — produces the same
// training trajectory, which is the paper's synchronous-SGD premise ("we
// focus only on [synchronous SGD] which obeys the sequential consistency of
// the original algorithm").
#include <gtest/gtest.h>

#include "mbd/costmodel/optimizer.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "parallel/parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

TEST(EndToEnd, AllMlpStrategiesAgree) {
  const auto specs = nn::mlp_spec({12, 24, 12, 12});
  const auto data = nn::make_synthetic_dataset(12, 12, 96, /*seed=*/41);
  nn::TrainConfig cfg;
  cfg.batch = 12;
  cfg.lr = 0.04f;
  cfg.iterations = 10;

  const auto ref = run_reference(specs, data, cfg);

  const auto batch = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, specs, data, cfg);
  });
  const auto model = run_distributed(4, [&](comm::Comm& c) {
    return train_model_parallel(c, specs, data, cfg);
  });
  const auto grid = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {2, 2}, specs, data, cfg);
  });

  expect_losses_close(ref.losses, batch.losses);
  expect_losses_close(ref.losses, model.losses);
  expect_losses_close(ref.losses, grid.losses);
  expect_params_close(ref.params, batch.params);
  expect_params_close(ref.params, model.params);
  expect_params_close(ref.params, grid.params);
}

TEST(EndToEnd, AllCnnStrategiesAgree) {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 48, /*seed=*/43);
  nn::TrainConfig cfg;
  cfg.batch = 8;
  cfg.lr = 0.02f;
  cfg.iterations = 6;

  const auto ref = run_reference(specs, data, cfg);

  const auto batch = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, specs, data, cfg);
  });
  const auto domain = run_distributed(4, [&](comm::Comm& c) {
    return train_domain_parallel(c, specs, data, cfg);
  });
  const auto hybrid = run_distributed(4, [&](comm::Comm& c) {
    return train_hybrid(c, {2, 2}, specs, data, cfg);
  });

  expect_losses_close(ref.losses, batch.losses);
  expect_losses_close(ref.losses, domain.losses);
  expect_losses_close(ref.losses, hybrid.losses);
  expect_params_close(ref.params, batch.params);
  expect_params_close(ref.params, domain.params);
  expect_params_close(ref.params, hybrid.params);
}

TEST(EndToEnd, AllStrategiesAgreeWithMomentum) {
  // Momentum velocity is local state per weight shard, so heavy-ball SGD
  // must preserve the parallel-equals-sequential invariant everywhere.
  const auto mlp = nn::mlp_spec({12, 24, 12, 12});
  const auto mlp_data = nn::make_synthetic_dataset(12, 12, 96, /*seed=*/71);
  nn::TrainConfig cfg;
  cfg.batch = 12;
  cfg.lr = 0.02f;
  cfg.momentum = 0.9f;
  cfg.iterations = 8;

  const auto ref = run_reference(mlp, mlp_data, cfg);
  const auto batch = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, mlp, mlp_data, cfg);
  });
  const auto model = run_distributed(4, [&](comm::Comm& c) {
    return train_model_parallel(c, mlp, mlp_data, cfg);
  });
  const auto grid = run_distributed(6, [&](comm::Comm& c) {
    return train_integrated_15d(c, {3, 2}, mlp, mlp_data, cfg);
  });
  expect_losses_close(ref.losses, batch.losses);
  expect_losses_close(ref.losses, model.losses);
  expect_losses_close(ref.losses, grid.losses);
  expect_params_close(ref.params, batch.params, 1e-3f);
  expect_params_close(ref.params, model.params, 1e-3f);
  expect_params_close(ref.params, grid.params, 1e-3f);

  // CNN strategies with momentum too.
  std::vector<nn::LayerSpec> cnn;
  cnn.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  cnn.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 8, false));
  const auto cnn_data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 32, 73);
  nn::TrainConfig ccfg = cfg;
  ccfg.batch = 8;
  nn::Network net = nn::build_network(cnn, {.seed = 42});
  const auto cnn_ref = nn::train_sgd(net, cnn_data, ccfg);
  const auto domain = run_distributed(4, [&](comm::Comm& c) {
    return train_domain_parallel(c, cnn, cnn_data, ccfg);
  });
  const auto hybrid = run_distributed(4, [&](comm::Comm& c) {
    return train_hybrid(c, {2, 2}, cnn, cnn_data, ccfg);
  });
  expect_losses_close(cnn_ref, domain.losses);
  expect_losses_close(cnn_ref, hybrid.losses);
}

TEST(EndToEnd, LrScheduleAgreesAcrossStrategies) {
  const auto specs = nn::mlp_spec({12, 24, 12, 12});
  const auto data = nn::make_synthetic_dataset(12, 12, 96, /*seed=*/89);
  nn::TrainConfig cfg;
  cfg.batch = 12;
  cfg.lr = 0.08f;
  cfg.lr_decay = 0.5f;
  cfg.decay_every = 3;
  cfg.momentum = 0.9f;
  cfg.iterations = 10;
  const auto ref = run_reference(specs, data, cfg);
  const auto batch = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, specs, data, cfg);
  });
  const auto grid = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {2, 2}, specs, data, cfg);
  });
  expect_losses_close(ref.losses, batch.losses);
  expect_losses_close(ref.losses, grid.losses);
  expect_params_close(ref.params, batch.params, 1e-3f);
  expect_params_close(ref.params, grid.params, 1e-3f);
}

TEST(EndToEnd, LrAtStepDecaySchedule) {
  nn::TrainConfig cfg;
  cfg.lr = 1.0f;
  cfg.lr_decay = 0.1f;
  cfg.decay_every = 4;
  EXPECT_FLOAT_EQ(nn::lr_at(cfg, 0), 1.0f);
  EXPECT_FLOAT_EQ(nn::lr_at(cfg, 3), 1.0f);
  EXPECT_FLOAT_EQ(nn::lr_at(cfg, 4), 0.1f);
  EXPECT_FLOAT_EQ(nn::lr_at(cfg, 11), 0.01f);
  cfg.decay_every = 0;  // disabled
  EXPECT_FLOAT_EQ(nn::lr_at(cfg, 100), 1.0f);
}

TEST(EndToEnd, MomentumAcceleratesConvergence) {
  const auto specs = nn::mlp_spec({16, 32, 8, 8});
  const auto data = nn::make_synthetic_dataset(16, 8, 128, /*seed=*/79);
  nn::TrainConfig plain;
  plain.batch = 16;
  plain.lr = 0.01f;
  plain.iterations = 40;
  nn::TrainConfig heavy = plain;
  heavy.momentum = 0.9f;
  nn::Network a = nn::build_network(specs, {.seed = 5});
  nn::Network b = nn::build_network(specs, {.seed = 5});
  const auto l_plain = nn::train_sgd(a, data, plain);
  const auto l_heavy = nn::train_sgd(b, data, heavy);
  EXPECT_LT(l_heavy.back(), l_plain.back());
}

TEST(EndToEnd, PlannerChoicesAreExecutable) {
  // Ask the cost-model planner for the best grid on a small MLP problem and
  // execute exactly that configuration.
  const auto specs = nn::mlp_spec({12, 24, 12, 12});
  const auto data = nn::make_synthetic_dataset(12, 12, 96, /*seed=*/47);
  nn::TrainConfig cfg;
  cfg.batch = 12;
  cfg.lr = 0.04f;
  cfg.iterations = 5;

  const int p = 4;
  const auto best = costmodel::best_integrated_grid(
      specs, cfg.batch, static_cast<std::size_t>(p),
      costmodel::MachineModel::cori_knl());
  // Any factorization our divisibility constraints allow is runnable; fall
  // back to 2×2 if the planner picked an incompatible shape.
  GridShape grid{static_cast<int>(best.pr), static_cast<int>(best.pc)};
  for (const auto& s : specs)
    if (s.fc_out % best.pr != 0) grid = {2, 2};
  if (cfg.batch % static_cast<std::size_t>(grid.pc) != 0) grid = {2, 2};

  const auto ref = run_reference(specs, data, cfg);
  const auto dist = run_distributed(p, [&](comm::Comm& c) {
    return train_integrated_15d(c, grid, specs, data, cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
}

TEST(EndToEnd, LongerTrainingConverges) {
  const auto specs = nn::mlp_spec({16, 32, 8, 8});
  const auto data = nn::make_synthetic_dataset(16, 8, 128, /*seed=*/53);
  nn::TrainConfig cfg;
  cfg.batch = 16;
  cfg.lr = 0.05f;
  cfg.iterations = 80;
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {2, 2}, specs, data, cfg);
  });
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < 5; ++i) head += dist.losses[i];
  for (std::size_t i = 75; i < 80; ++i) tail += dist.losses[i];
  EXPECT_LT(tail, 0.5 * head);
}

}  // namespace
}  // namespace mbd::parallel
