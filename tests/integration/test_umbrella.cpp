// The umbrella header must compile cleanly and expose the whole public API.
#include "mbd/mbd.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesEverySubsystem) {
  // One symbol per subsystem, referenced through the umbrella include only.
  mbd::Rng rng(1);
  EXPECT_GT(rng.uniform(), -1.0);

  mbd::comm::World world(2);
  world.run([](mbd::comm::Comm& c) { c.barrier(); });

  const auto m = mbd::tensor::Matrix::filled(2, 2, 1.0f);
  EXPECT_FLOAT_EQ(mbd::tensor::frobenius_norm(m), 2.0f);

  const auto specs = mbd::nn::mlp_spec({4, 8, 2});
  EXPECT_EQ(mbd::nn::total_weights(specs), 4u * 8 + 8 * 2);

  const auto machine = mbd::costmodel::MachineModel::cori_knl();
  EXPECT_GT(machine.word_time(), 0.0);

  const auto pred = mbd::parallel::predict_batch_parallel(specs, 4);
  EXPECT_GT(pred.allreduce_bytes, 0u);
}

}  // namespace
