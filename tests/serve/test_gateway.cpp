// Gateway behavior: admission control (queue_full / deadline / shutdown
// rejections, each deterministic given a preset operating point), correct
// end-to-end logits through the batching dispatcher, startup calibration,
// and the day-one metrics (queue gauge, batch/latency histograms, accept
// and reject counters).
#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/serve/gateway.hpp"

namespace mbd::serve {
namespace {

// The metrics registry is process-wide; every test starts clean.
class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Metrics::instance().reset(); }
  void TearDown() override { obs::Metrics::instance().reset(); }
};

/// Hands rank 0's gateway pointer from the world threads to the client.
struct GatewayHandle {
  std::mutex mu;
  std::condition_variable cv;
  Gateway* gateway = nullptr;

  void publish(Gateway* g) {
    {
      const std::lock_guard lock(mu);
      gateway = g;
    }
    cv.notify_all();
  }
  Gateway* wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return gateway != nullptr; });
    return gateway;
  }
};

std::vector<float> column(const tensor::Matrix& m, std::size_t c) {
  const tensor::Matrix col = m.col_block(c, c + 1);
  return {col.span().begin(), col.span().end()};
}

/// Build the batch-parallel layout for `c` over the flat MLP workload.
parallel::EngineLayout mlp_layout(comm::Comm& c,
                                  const std::vector<nn::LayerSpec>& specs) {
  const parallel::TrainerEntry* entry = parallel::find_trainer("batch");
  EXPECT_NE(entry, nullptr);
  return entry->layout(c, parallel::TrainerOptions{}, specs,
                       /*batch=*/8);
}

// --- admission control (single rank: deterministic, no fabric timing) -------

TEST_F(GatewayTest, QueueFullShedsExplicitly) {
  const auto specs = nn::mlp_spec({24, 32, 10});
  comm::World world(1);
  world.run([&](comm::Comm& c) {
    InferenceSession session(c, mlp_layout(c, specs));
    GatewayOptions opts;
    opts.queue_capacity = 2;
    opts.batch_size = 1;
    Gateway gw(session, c, opts);

    const std::vector<float> x(session.d_in(), 0.5f);
    auto f1 = gw.submit(x);
    auto f2 = gw.submit(x);
    auto f3 = gw.submit(x);  // over capacity: rejected immediately
    const Reply r3 = f3.get();
    EXPECT_FALSE(r3.accepted);
    EXPECT_EQ(r3.reject_reason, "queue_full");
    EXPECT_TRUE(r3.logits.empty());

    // Drain the two admitted requests, then stop.
    gw.shutdown();
    gw.serve();
    EXPECT_TRUE(f1.get().accepted);
    EXPECT_TRUE(f2.get().accepted);
  });
  const auto snap = obs::Metrics::instance().snapshot();
  bool saw_reject = false;
  for (const auto& m : snap)
    if (m.name == "serve.rejected.queue_full") {
      saw_reject = true;
      EXPECT_DOUBLE_EQ(m.value, 1.0);
    }
  EXPECT_TRUE(saw_reject);
}

TEST_F(GatewayTest, DeadlineShedsWhenEstimateExceedsBudget) {
  const auto specs = nn::mlp_spec({24, 32, 10});
  comm::World world(1);
  world.run([&](comm::Comm& c) {
    InferenceSession session(c, mlp_layout(c, specs));
    GatewayOptions opts;
    opts.batch_size = 1;
    // Preset operating point: every batch "takes" 1 s against a 1 ms
    // budget — even an empty queue cannot make the deadline.
    opts.assumed_batch_latency_s = 1.0;
    opts.latency_budget_s = 0.001;
    Gateway gw(session, c, opts);

    const Reply r = gw.submit(std::vector<float>(session.d_in(), 0.0f)).get();
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.reject_reason, "deadline");
  });
}

TEST_F(GatewayTest, ShutdownRejectsNewWork) {
  const auto specs = nn::mlp_spec({24, 32, 10});
  comm::World world(1);
  world.run([&](comm::Comm& c) {
    InferenceSession session(c, mlp_layout(c, specs));
    GatewayOptions opts;
    opts.batch_size = 1;
    Gateway gw(session, c, opts);
    gw.shutdown();
    const Reply r = gw.submit(std::vector<float>(session.d_in(), 0.0f)).get();
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.reject_reason, "shutdown");
    gw.serve();  // returns immediately: shut down with an empty queue
  });
}

// --- end-to-end over the 4-rank fabric --------------------------------------

TEST_F(GatewayTest, ServesCorrectLogitsThroughTheBatcher) {
  const auto specs = nn::mlp_spec({24, 32, 10});
  const auto data = nn::make_synthetic_dataset(24, 10, 32, 13);
  constexpr std::size_t kRequests = 8;

  // Sequential reference on the same He-init weights.
  nn::Network ref = nn::build_network(specs, {.seed = 42});
  const tensor::Matrix expect =
      ref.forward(data.inputs.col_block(0, kRequests));

  GatewayHandle handle;
  std::vector<Reply> replies(kRequests);
  std::thread client([&] {
    Gateway* gw = handle.wait();
    std::vector<std::future<Reply>> futs;
    for (std::size_t i = 0; i < kRequests; ++i)
      futs.push_back(gw->submit(column(data.inputs, i)));
    for (std::size_t i = 0; i < kRequests; ++i)
      replies[i] = futs[static_cast<std::size_t>(i)].get();
    gw->shutdown();
  });

  comm::World world(4);
  world.enable_validation();
  world.run([&](comm::Comm& c) {
    const parallel::TrainerEntry* entry = parallel::find_trainer("batch");
    ASSERT_NE(entry, nullptr);
    InferenceSession session(
        c, entry->layout(c, parallel::TrainerOptions{}, specs, 8));
    GatewayOptions opts;
    opts.batch_size = 4;
    opts.max_batch = 8;
    Gateway gw(session, c, opts);
    if (c.rank() == 0) handle.publish(&gw);
    gw.serve();
  });
  client.join();

  for (std::size_t i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    ASSERT_TRUE(replies[i].accepted) << replies[i].reject_reason;
    EXPECT_GE(replies[i].latency_s, 0.0);
    const std::vector<float> want = column(expect, i);
    ASSERT_EQ(replies[i].logits.size(), want.size());
    float worst = 0.0f;
    for (std::size_t k = 0; k < want.size(); ++k)
      worst = std::max(worst, std::abs(replies[i].logits[k] - want[k]));
    EXPECT_LE(worst, 5e-4f);
  }

  // Day-one observability: the serving metrics exist and add up.
  const auto snap = obs::Metrics::instance().snapshot();
  double accepted = 0, batches = 0;
  std::uint64_t latency_count = 0;
  for (const auto& m : snap) {
    if (m.name == "serve.accepted") accepted = m.value;
    if (m.name == "serve.batches") batches = m.value;
    if (m.name == "serve.latency_us") {
      latency_count = m.hist.count;
      EXPECT_GE(m.hist.p99(), m.hist.p50());
    }
  }
  EXPECT_DOUBLE_EQ(accepted, static_cast<double>(kRequests));
  EXPECT_GE(batches, 1.0);
  EXPECT_EQ(latency_count, kRequests);
}

TEST_F(GatewayTest, CalibratesABatchSizeAtStartup) {
  const auto specs = nn::mlp_spec({24, 32, 10});
  const auto data = nn::make_synthetic_dataset(24, 10, 32, 13);

  GatewayHandle handle;
  std::size_t chosen = 0;
  std::thread client([&] {
    Gateway* gw = handle.wait();
    // One request proves the loop runs post-calibration; the burst is not
    // the point here.
    const Reply r = gw->submit(column(data.inputs, 0)).get();
    EXPECT_TRUE(r.accepted);
    chosen = gw->chosen_batch();
    gw->shutdown();
  });

  comm::World world(4);
  world.run([&](comm::Comm& c) {
    const parallel::TrainerEntry* entry = parallel::find_trainer("batch");
    ASSERT_NE(entry, nullptr);
    InferenceSession session(
        c, entry->layout(c, parallel::TrainerOptions{}, specs, 8));
    GatewayOptions opts;
    opts.batch_size = 0;  // calibrate
    opts.max_batch = 8;
    opts.calibration_reps = 1;
    Gateway gw(session, c, opts);
    if (c.rank() == 0) handle.publish(&gw);
    gw.serve();
  });
  client.join();

  EXPECT_GE(chosen, 1u);
  EXPECT_LE(chosen, 8u);
  bool saw_gauge = false;
  for (const auto& m : obs::Metrics::instance().snapshot())
    if (m.name == "serve.chosen_batch") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(m.value, static_cast<double>(chosen));
    }
  EXPECT_TRUE(saw_gauge);
}

}  // namespace
}  // namespace mbd::serve
