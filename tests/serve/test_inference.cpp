// Forward-only determinism: InferenceSession over every registered
// trainer layout must (a) replicate logits bitwise across ranks, (b) be
// bitwise-identical across repeated runs and across batch compositions
// (a batch of 8 equals eight batches of 1), (c) match the sequential
// reference network's forward pass within float reduction noise, (d) serve
// trained weights published through CheckpointPolicy::final_commit, and
// (e) produce bitwise-identical logits over the TCP transport and the
// in-process fabric.
#include <gtest/gtest.h>

#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "mbd/comm/transport_tcp.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/recovery.hpp"
#include "mbd/serve/inference.hpp"

namespace mbd::serve {
namespace {

constexpr int kRanks = 4;
constexpr std::size_t kBuildBatch = 8;  // batch the layouts are built at

struct Workload {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
};

std::vector<nn::LayerSpec> small_conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  return specs;
}

Workload workload_for(parallel::TrainerWorkload w) {
  using parallel::TrainerWorkload;
  Workload wl;
  switch (w) {
    case TrainerWorkload::Mlp:
      wl.specs = nn::mlp_spec({24, 32, 10});
      wl.data = nn::make_synthetic_dataset(24, 10, 32, 13);
      break;
    case TrainerWorkload::DeepMlp:
      wl.specs = nn::mlp_spec({24, 22, 20, 12, 10});
      wl.data = nn::make_synthetic_dataset(24, 10, 32, 13);
      break;
    case TrainerWorkload::ConvHalo:
    case TrainerWorkload::ConvPool:
      wl.specs = small_conv_net();
      wl.data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 16, 9);
      break;
  }
  return wl;
}

parallel::TrainerOptions default_opts() {
  return parallel::TrainerOptions{.grid = parallel::GridShape{2, 2}};
}

/// Forward `input` through entry's layout on an in-process world; checks
/// every rank returned the identical replicated logits and returns them.
std::vector<float> forward_in_process(
    const parallel::TrainerEntry& entry, const Workload& wl,
    const tensor::Matrix& input,
    const parallel::CheckpointStore* store = nullptr) {
  comm::World world(kRanks);
  world.enable_validation();
  std::vector<std::vector<float>> outs(kRanks);
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    InferenceSession session(
        c, entry.layout(c, default_opts(), wl.specs, kBuildBatch));
    if (store != nullptr) session.load(*store);
    const tensor::Matrix logits = session.forward(input);
    const std::lock_guard lock(mu);
    outs[static_cast<std::size_t>(c.rank())]
        .assign(logits.span().begin(), logits.span().end());
  });
  for (int r = 1; r < kRanks; ++r)
    EXPECT_EQ(outs[0], outs[static_cast<std::size_t>(r)])
        << entry.name << ": rank " << r << " logits diverged";
  return outs[0];
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float tol = 5e-4f) {
  ASSERT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  EXPECT_LE(worst, tol);
}

TEST(InferenceSession, RepeatedRunsAreBitwiseIdentical) {
  for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
    SCOPED_TRACE(std::string(e.name));
    const Workload wl = workload_for(e.workload);
    const tensor::Matrix input = wl.data.inputs.col_block(0, kBuildBatch);
    const auto first = forward_in_process(e, wl, input);
    const auto second = forward_in_process(e, wl, input);
    EXPECT_EQ(first, second);
  }
}

TEST(InferenceSession, BatchCompositionIsTransparent) {
  // A batch of 8 must equal eight single-sample batches column for column:
  // single-sample requests go through the zero-padding path (b=1 is below
  // most layouts' min_batch), so this is also the padding-purity check the
  // gateway's dynamic batcher relies on.
  for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
    SCOPED_TRACE(std::string(e.name));
    const Workload wl = workload_for(e.workload);
    const tensor::Matrix input = wl.data.inputs.col_block(0, kBuildBatch);
    const auto batched = forward_in_process(e, wl, input);
    const std::size_t d_out = batched.size() / kBuildBatch;
    for (const std::size_t s : {std::size_t{0}, std::size_t{3},
                                std::size_t{7}}) {
      const auto solo =
          forward_in_process(e, wl, input.col_block(s, s + 1));
      ASSERT_EQ(solo.size(), d_out);
      // The flat span is row-major: sample s is the strided column s.
      std::vector<float> batched_col(d_out);
      for (std::size_t k = 0; k < d_out; ++k)
        batched_col[k] = batched[k * kBuildBatch + s];
      EXPECT_EQ(solo, batched_col) << "sample " << s;
    }
  }
}

TEST(InferenceSession, MatchesSequentialForwardAtInitWeights) {
  // Without load() the layout holds the He-initialized weights of the
  // sequential reference (same seed, same stream) — its forward pass is
  // the ground truth for every partitioned layout.
  for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
    SCOPED_TRACE(std::string(e.name));
    const Workload wl = workload_for(e.workload);
    const tensor::Matrix input = wl.data.inputs.col_block(0, kBuildBatch);
    nn::Network ref = nn::build_network(wl.specs, {.seed = 42});
    const tensor::Matrix expect = ref.forward(input);
    const auto got = forward_in_process(e, wl, input);
    expect_close(got, {expect.span().begin(), expect.span().end()});
  }
}

TEST(InferenceSession, ServesWeightsTrainedThroughFinalCommit) {
  // Train briefly with CheckpointPolicy::final_commit, load the published
  // checkpoint into a fresh session, and check the served logits against a
  // sequential network carrying the trained parameters.
  for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
    SCOPED_TRACE(std::string(e.name));
    const Workload wl = workload_for(e.workload);
    nn::TrainConfig cfg;
    cfg.batch = kBuildBatch;
    cfg.iterations = 2;

    parallel::CheckpointStore store(kRanks);
    parallel::RecoveryContext rc{&store, {.every = 0, .final_commit = true}};
    parallel::TrainerOptions opts = default_opts();
    opts.recovery = &rc;

    parallel::DistResult result;
    std::mutex mu;
    comm::World world(kRanks);
    world.run([&](comm::Comm& c) {
      parallel::DistResult r = e.run(c, opts, wl.specs, wl.data, cfg);
      if (c.rank() == 0) {
        const std::lock_guard lock(mu);
        result = std::move(r);
      }
    });
    ASSERT_TRUE(store.valid()) << "final_commit did not publish";
    EXPECT_EQ(store.step(), cfg.iterations);

    const tensor::Matrix input = wl.data.inputs.col_block(0, kBuildBatch);
    const auto got = forward_in_process(e, wl, input, &store);

    nn::Network ref = nn::build_network(wl.specs, {.seed = 42});
    ref.load_params(result.params);
    const tensor::Matrix expect = ref.forward(input);
    expect_close(got, {expect.span().begin(), expect.span().end()});
  }
}

// --- TCP transport parity ---------------------------------------------------

/// N loopback TcpTransports + one distributed World per rank, run
/// concurrently — the same harness tests/comm/test_transport_tcp.cpp uses.
struct TcpWorld {
  std::vector<std::shared_ptr<comm::TcpTransport>> transports;
  std::vector<std::unique_ptr<comm::World>> worlds;

  explicit TcpWorld(int n) {
    std::vector<comm::TcpEndpoint> eps;
    for (int r = 0; r < n; ++r) {
      transports.push_back(
          std::make_shared<comm::TcpTransport>(n, r, "127.0.0.1", 0));
      eps.push_back({"127.0.0.1", transports.back()->port()});
    }
    std::vector<std::thread> dialers;
    for (int r = 0; r < n; ++r) {
      dialers.emplace_back([&, r] {
        transports[static_cast<std::size_t>(r)]->connect_mesh(eps);
      });
    }
    for (auto& t : dialers) t.join();
    for (int r = 0; r < n; ++r) {
      worlds.push_back(std::make_unique<comm::World>(
          n, r, transports[static_cast<std::size_t>(r)]));
    }
  }

  ~TcpWorld() {
    std::vector<std::thread> closers;
    for (auto& t : transports) {
      closers.emplace_back([&t] { t->shutdown(); });
    }
    for (auto& t : closers) t.join();
  }

  void run_all(const std::function<void(comm::Comm&)>& fn) {
    std::vector<std::exception_ptr> errors(worlds.size());
    std::vector<std::thread> runners;
    for (std::size_t r = 0; r < worlds.size(); ++r) {
      runners.emplace_back([&, r] {
        try {
          worlds[r]->run(fn);
        } catch (...) {
          errors[r] = std::current_exception();
        }
      });
    }
    for (auto& t : runners) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
};

TEST(InferenceSession, TcpTransportMatchesInProcessBitwise) {
  for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
    SCOPED_TRACE(std::string(e.name));
    const Workload wl = workload_for(e.workload);
    const tensor::Matrix input = wl.data.inputs.col_block(0, kBuildBatch);
    const auto in_process = forward_in_process(e, wl, input);

    TcpWorld tw(kRanks);
    std::vector<std::vector<float>> outs(kRanks);
    std::mutex mu;
    tw.run_all([&](comm::Comm& c) {
      InferenceSession session(
          c, e.layout(c, default_opts(), wl.specs, kBuildBatch));
      const tensor::Matrix logits = session.forward(input);
      const std::lock_guard lock(mu);
      outs[static_cast<std::size_t>(c.rank())]
          .assign(logits.span().begin(), logits.span().end());
    });
    for (int r = 0; r < kRanks; ++r)
      EXPECT_EQ(in_process, outs[static_cast<std::size_t>(r)])
          << "rank " << r << " diverged from the in-process fabric";
  }
}

}  // namespace
}  // namespace mbd::serve
