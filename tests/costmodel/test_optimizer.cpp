#include "mbd/costmodel/optimizer.hpp"

#include <gtest/gtest.h>

#include "mbd/nn/models.hpp"
#include "mbd/support/check.hpp"

namespace mbd::costmodel {
namespace {

std::vector<nn::LayerSpec> alexnet_weighted() {
  return nn::weighted_layers(nn::alexnet_spec());
}

TEST(Factorizations, EnumeratesDivisorPairs) {
  const auto f = grid_factorizations(12);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_EQ(f.front(), (std::pair<std::size_t, std::size_t>{1, 12}));
  EXPECT_EQ(f.back(), (std::pair<std::size_t, std::size_t>{12, 1}));
  for (const auto& [pr, pc] : f) EXPECT_EQ(pr * pc, 12u);
}

TEST(Factorizations, PowerOfTwo) {
  EXPECT_EQ(grid_factorizations(512).size(), 10u);
  EXPECT_EQ(grid_factorizations(1).size(), 1u);
}

TEST(Enumerate, SkipsGridsWithMoreColumnsThanSamples) {
  const auto net = alexnet_weighted();
  const auto opts = enumerate_integrated_grids(net, /*batch=*/16, /*p=*/64,
                                               MachineModel::cori_knl());
  for (const auto& o : opts) EXPECT_LE(o.pc, 16u);
}

TEST(Enumerate, SortedByTotal) {
  const auto net = alexnet_weighted();
  const auto opts =
      enumerate_integrated_grids(net, 2048, 512, MachineModel::cori_knl());
  for (std::size_t i = 1; i < opts.size(); ++i)
    EXPECT_LE(opts[i - 1].cost.total(), opts[i].cost.total());
}

TEST(BestGrid, PaperHeadlineP512B2048PicksHybridGrid) {
  // Fig. 7: at P=512, B=2048 with model parallelism in FC layers only, a
  // hybrid Pr×Pc grid beats pure batch parallelism (paper reports 2.5×
  // total / 9.7× comm speedups with the best grid).
  const auto net = alexnet_weighted();
  const auto m = MachineModel::cori_knl();
  const auto best = best_integrated_grid(net, 2048, 512, m,
                                         GridMode::BatchParallelConv);
  EXPECT_GT(best.pr, 1u);  // not pure batch
  EXPECT_GT(best.pc, 1u);  // not pure model
  const auto pure = integrated_cost(net, 2048, 1, 512, m,
                                    GridMode::BatchParallelConv);
  EXPECT_LT(best.cost.total(), pure.total());
  // Communication speedup is the dominant effect (many-fold).
  EXPECT_GT(pure.comm() / best.cost.comm(), 3.0);
}

TEST(BestGrid, SmallPFavorsPureBatch) {
  // Fig. 6(a): "the benefit of the integrated approach is not realized on a
  // relatively small number of processors" — at P=8 compute dominates and
  // pure batch is (near-)optimal.
  const auto net = alexnet_weighted();
  const auto m = MachineModel::cori_knl();
  const auto best = best_integrated_grid(net, 2048, 8, m, GridMode::Uniform);
  const auto pure = integrated_cost(net, 2048, 1, 8, m);
  EXPECT_NEAR(best.cost.total(), pure.total(),
              0.05 * pure.total());
}

TEST(BestGrid, OverlapRankingCanDiffer) {
  const auto net = alexnet_weighted();
  const auto m = MachineModel::cori_knl();
  const auto plain = best_integrated_grid(net, 2048, 512, m,
                                          GridMode::BatchParallelConv, {},
                                          /*overlap=*/false);
  const auto overlapped = best_integrated_grid(net, 2048, 512, m,
                                               GridMode::BatchParallelConv, {},
                                               /*overlap=*/true);
  // Overlapped total is never worse than the plain total for the same grid.
  EXPECT_LE(overlapped.cost.total_overlapped(), plain.cost.total());
}

TEST(BestGrid, ThrowsWhenNoFeasibleGrid) {
  std::vector<nn::LayerSpec> net{nn::fc_spec("f", 13, 13, false)};
  // p = 7 (prime) > batch = 3: the only grids are 1×7 and 7×1; 1×7 is
  // infeasible (pc > batch), 7×1 is fine — so this must NOT throw...
  EXPECT_NO_THROW(
      best_integrated_grid(net, 3, 7, MachineModel::cori_knl()));
  // ...but batch = 0 leaves nothing.
  EXPECT_THROW(best_integrated_grid(net, 0, 7, MachineModel::cori_knl()),
               Error);
}

TEST(FullPlan, ExtendsScalingBeyondBatchSize) {
  // Fig. 10: with B=512 and P=4096 pure batch parallelism is impossible
  // (P > B); the full plan uses Pr=8 worth of domain/model parallelism.
  const auto net = alexnet_weighted();
  const auto m = MachineModel::cori_knl();
  const auto plan = best_full_plan(net, 512, 4096, m);
  EXPECT_EQ(plan.pr * plan.pc, 4096u);
  EXPECT_LE(plan.pc, 512u);
  EXPECT_GE(plan.pr, 8u);
  ASSERT_EQ(plan.roles.size(), 8u);
  // FC layers are model-parallel.
  EXPECT_EQ(plan.roles[5], LayerRole::Model);
  // At least one early conv layer is domain-parallel.
  EXPECT_EQ(plan.roles[0], LayerRole::Domain);
}

TEST(FullPlan, MoreProcessesNeverSlowerAtFixedBatch) {
  // The planner's best time is non-increasing in P (it can always emulate a
  // smaller machine... up to integer-grid granularity — compare doublings).
  const auto net = alexnet_weighted();
  const auto m = MachineModel::cori_knl();
  double prev = 1e30;
  for (std::size_t p : {512u, 1024u, 2048u, 4096u}) {
    const auto plan = best_full_plan(net, 512, p, m);
    EXPECT_LT(plan.cost.total(), prev * 1.001) << "P=" << p;
    prev = plan.cost.total();
  }
}

}  // namespace
}  // namespace mbd::costmodel
