#include "mbd/costmodel/machine.hpp"

#include <gtest/gtest.h>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {
namespace {

TEST(MachineModel, CoriKnlTable1Parameters) {
  const auto m = MachineModel::cori_knl();
  EXPECT_DOUBLE_EQ(m.alpha, 2e-6);            // latency 2 µs
  EXPECT_DOUBLE_EQ(1.0 / m.beta, 6e9);        // 6 GB/s
  EXPECT_DOUBLE_EQ(m.word_bytes, 4.0);        // float32
  EXPECT_DOUBLE_EQ(m.word_time(), 4.0 / 6e9);
}

TEST(ComputeCurve, Fig4ShapeMinimumAt256) {
  const auto c = ComputeCurve::alexnet_knl();
  // Per-iteration time at the table's own batch points: epoch·B/N.
  auto iter_time = [&](double b) {
    return c.seconds_per_image(b) * b;
  };
  // Per-image time falls monotonically up to the 256 minimum.
  EXPECT_GT(c.seconds_per_image(1), c.seconds_per_image(16));
  EXPECT_GT(c.seconds_per_image(16), c.seconds_per_image(256));
  // ... and rises past it (Fig. 4: 512, 1024, 2048 are slower per epoch).
  EXPECT_LT(c.seconds_per_image(256), c.seconds_per_image(2048));
  // Iteration time always grows with batch.
  EXPECT_LT(iter_time(32), iter_time(256));
}

TEST(ComputeCurve, InterpolationBracketsTablePoints) {
  const auto c = ComputeCurve::alexnet_knl();
  const double at_64 = c.seconds_per_image(64);
  const double at_128 = c.seconds_per_image(128);
  const double mid = c.seconds_per_image(90);
  EXPECT_LT(mid, at_64);
  EXPECT_GT(mid, at_128);
}

TEST(ComputeCurve, ClampsOutsideTable) {
  const auto c = ComputeCurve::alexnet_knl();
  EXPECT_DOUBLE_EQ(c.seconds_per_image(0.5), c.seconds_per_image(1));
  EXPECT_DOUBLE_EQ(c.seconds_per_image(10000), c.seconds_per_image(2048));
}

TEST(ComputeCurve, IterationSecondsScalesLinearly) {
  const auto c = ComputeCurve::alexnet_knl();
  // Model fraction 1/4 quarters the work at the same efficiency point.
  EXPECT_DOUBLE_EQ(c.iteration_seconds(64, 0.25),
                   c.iteration_seconds(64, 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(c.iteration_seconds(0, 1.0), 0.0);
}

TEST(ComputeCurve, FractionalBatchUsesUnitEfficiency) {
  const auto c = ComputeCurve::alexnet_knl();
  // Half an image costs half of one image (perfect within-image scaling).
  EXPECT_DOUBLE_EQ(c.iteration_seconds(0.5, 1.0),
                   0.5 * c.iteration_seconds(1.0, 1.0));
}

TEST(ComputeCurve, RejectsBadTables) {
  EXPECT_THROW(ComputeCurve({}, 100), Error);
  EXPECT_THROW(ComputeCurve({{4, 10}, {2, 10}}, 100), Error);
  EXPECT_THROW(ComputeCurve({{1, -5}}, 100), Error);
}

TEST(ComputeCurve, CustomCurveInterpolation) {
  // Log-log interpolation between (1, 100) and (100, 1): at b=10 the epoch
  // time is the geometric mean, 10.
  ComputeCurve c({{1, 100}, {100, 1}}, 1000);
  EXPECT_NEAR(c.seconds_per_image(10) * 1000, 10.0, 1e-9);
}

}  // namespace
}  // namespace mbd::costmodel
