// Per-rank volume closed forms must refine the all-rank totals exactly:
// summing costmodel::trainer_rank_volume over every rank of the grid has to
// reproduce mbd/parallel/validation.hpp's predictions byte-for-byte, per
// traffic class, for all six trainers. The per-rank forms are what the
// static schedule analyzer checks recorded schedules against, so this test
// pins them to the already-certified totals.
#include "mbd/costmodel/volumes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mbd/nn/models.hpp"
#include "mbd/parallel/validation.hpp"

namespace mbd::costmodel {
namespace {

RankVolume sum_over_ranks(TrainerKind kind,
                          const std::vector<nn::LayerSpec>& specs,
                          std::size_t batch, int pr, int pc) {
  RankVolume total;
  for (int r = 0; r < pr * pc; ++r) {
    total += trainer_rank_volume(kind, specs, batch, pr, pc, r);
  }
  return total;
}

std::vector<nn::LayerSpec> conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 8, false));
  return specs;
}

TEST(Volumes, BruckSendWordsSumToAllGatherTotal) {
  // Every rank of the Bruck all-gather sends Σ min(2^i, p−2^i)·m words, and
  // p ranks together move the collective's total (p−1)·p·m words.
  for (int p : {2, 3, 4, 5, 8}) {
    const std::uint64_t m = 17;
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r) total += allgather_bruck_send_words(p, m);
    EXPECT_EQ(total, static_cast<std::uint64_t>(p) * (p - 1) * m) << "p=" << p;
  }
}

TEST(Volumes, RingvSendWordsSumToAllGatherTotal) {
  // The ring all-gatherv forwards every origin block through p−1 hops.
  const std::vector<std::uint64_t> blocks = {5, 0, 7, 3};
  const int p = static_cast<int>(blocks.size());
  std::uint64_t sum_blocks = 0;
  for (const auto b : blocks) sum_blocks += b;
  std::uint64_t total = 0;
  for (int r = 0; r < p; ++r) total += allgather_ringv_send_words(blocks, r);
  EXPECT_EQ(total, static_cast<std::uint64_t>(p - 1) * sum_blocks);
}

TEST(Volumes, RingAllReduceSendWordsSumToTotal) {
  // Reduce-scatter + all-gather over uneven ⌊n·b/p⌋ blocks: all ranks
  // together send 2(p−1)·n words regardless of how the blocks divide.
  for (int p : {2, 3, 4, 7}) {
    for (std::size_t n : {16u, 23u, 1024u}) {
      std::uint64_t total = 0;
      for (int r = 0; r < p; ++r) total += allreduce_ring_send_words(p, n, r);
      EXPECT_EQ(total, 2u * static_cast<std::uint64_t>(p - 1) * n)
          << "p=" << p << " n=" << n;
    }
  }
}

TEST(Volumes, BatchParallelRanksSumToPrediction) {
  const auto specs = nn::mlp_spec({12, 16, 4});
  for (int p : {2, 3, 4, 8}) {
    const auto per_rank = sum_over_ranks(TrainerKind::BatchParallel, specs,
                                         /*batch=*/16, /*pr=*/1, p);
    const auto total = parallel::predict_batch_parallel(specs, p);
    EXPECT_EQ(per_rank.allreduce_bytes, total.allreduce_bytes) << "p=" << p;
    EXPECT_EQ(per_rank.allgather_bytes, 0u) << "p=" << p;
    EXPECT_EQ(per_rank.p2p_bytes, 0u) << "p=" << p;
  }
}

TEST(Volumes, ModelParallelRanksSumToPrediction) {
  const auto specs = nn::mlp_spec({10, 24, 12, 6});
  const std::size_t batch = 12;
  for (int p : {2, 3, 6}) {  // p=3: 24/3 even but 10 and 12 stress ringv
    const auto per_rank =
        sum_over_ranks(TrainerKind::ModelParallel, specs, batch, p, 1);
    const auto total = parallel::predict_model_parallel(specs, batch, p);
    EXPECT_EQ(per_rank.allgather_bytes, total.allgather_bytes) << "p=" << p;
    EXPECT_EQ(per_rank.allreduce_bytes, total.allreduce_bytes) << "p=" << p;
    EXPECT_EQ(per_rank.p2p_bytes, 0u) << "p=" << p;
  }
}

TEST(Volumes, Integrated15DRanksSumToPrediction) {
  const auto specs = nn::mlp_spec({10, 24, 12, 12});
  const std::size_t batch = 16;
  for (const auto [pr, pc] : {std::pair{2, 2}, std::pair{3, 2},
                              std::pair{2, 4}, std::pair{4, 2},
                              std::pair{5, 3}}) {  // uneven rows AND columns
    const auto per_rank =
        sum_over_ranks(TrainerKind::Integrated15D, specs, batch, pr, pc);
    const auto total =
        parallel::predict_integrated_15d(specs, batch, {pr, pc});
    EXPECT_EQ(per_rank.allgather_bytes, total.allgather_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(per_rank.allreduce_bytes, total.allreduce_bytes)
        << "grid " << pr << "x" << pc;
  }
}

TEST(Volumes, DomainParallelRanksSumToPrediction) {
  const auto specs = conv_net();
  const std::size_t batch = 8;
  for (int p : {2, 3, 4, 8}) {  // p=3: uneven slabs, all-gatherv transition
    const auto per_rank =
        sum_over_ranks(TrainerKind::DomainParallel, specs, batch, p, 1);
    const auto total = parallel::predict_domain_parallel(specs, batch, p);
    EXPECT_EQ(per_rank.p2p_bytes, total.p2p_bytes) << "p=" << p;
    EXPECT_EQ(per_rank.allgather_bytes, total.allgather_bytes) << "p=" << p;
    EXPECT_EQ(per_rank.allreduce_bytes, total.allreduce_bytes) << "p=" << p;
  }
}

TEST(Volumes, HybridRanksSumToPrediction) {
  const auto specs = conv_net();
  const std::size_t batch = 8;
  for (const auto [pr, pc] :
       {std::pair{2, 2}, std::pair{4, 2}, std::pair{2, 4}}) {
    const auto per_rank =
        sum_over_ranks(TrainerKind::Hybrid, specs, batch, pr, pc);
    const auto total = parallel::predict_hybrid(specs, batch, {pr, pc});
    EXPECT_EQ(per_rank.p2p_bytes, total.p2p_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(per_rank.allgather_bytes, total.allgather_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(per_rank.allreduce_bytes, total.allreduce_bytes)
        << "grid " << pr << "x" << pc;
  }
}

TEST(Volumes, MixedGridRanksSumToPrediction) {
  const auto specs = nn::small_cnn_spec(2, 8, 8);
  const std::size_t batch = 16;
  for (const auto [pr, pc] : {std::pair{2, 2}, std::pair{3, 2},
                              std::pair{2, 4}, std::pair{4, 2}}) {
    const auto per_rank =
        sum_over_ranks(TrainerKind::MixedGrid, specs, batch, pr, pc);
    const auto total = parallel::predict_mixed_grid(specs, batch, {pr, pc});
    EXPECT_EQ(per_rank.p2p_bytes, total.p2p_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(per_rank.allgather_bytes, total.allgather_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(per_rank.allreduce_bytes, total.allreduce_bytes)
        << "grid " << pr << "x" << pc;
  }
}

TEST(Volumes, TrainerKindNamesAreStable) {
  EXPECT_EQ(trainer_kind_name(TrainerKind::BatchParallel), "batch");
  EXPECT_EQ(trainer_kind_name(TrainerKind::ModelParallel), "model");
  EXPECT_EQ(trainer_kind_name(TrainerKind::Integrated15D), "integrated");
  EXPECT_EQ(trainer_kind_name(TrainerKind::DomainParallel), "domain");
  EXPECT_EQ(trainer_kind_name(TrainerKind::Hybrid), "hybrid");
  EXPECT_EQ(trainer_kind_name(TrainerKind::MixedGrid), "mixed");
}

}  // namespace
}  // namespace mbd::costmodel
