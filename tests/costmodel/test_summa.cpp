// §4 claims about 2D SUMMA variants vs the 1.5D algorithm.
#include "mbd/costmodel/summa.hpp"

#include <gtest/gtest.h>

namespace mbd::costmodel {
namespace {

TEST(Summa, StationaryAFormula) {
  // §4: 2·B·d/pr + B·d/pc.
  EXPECT_DOUBLE_EQ(
      summa_words_per_process(SummaVariant::StationaryA, 100, 50, 4, 8),
      2.0 * 50 * 100 / 4 + 50.0 * 100 / 8);
}

TEST(Summa, OneDotFiveDForwardWords) {
  EXPECT_DOUBLE_EQ(words_15d_forward(100, 50, 8), 50.0 * 100 / 8);
}

TEST(Summa, StationaryANeverBeats15D) {
  // "its communication costs approach 1.5D when pr ≫ pc but never surpass
  // it" — sweep grids and sizes.
  for (double d : {256.0, 4096.0}) {
    for (double b : {32.0, 512.0, 8192.0}) {
      for (std::size_t pr : {1u, 2u, 8u, 64u, 512u}) {
        for (std::size_t pc : {1u, 2u, 8u, 64u}) {
          const double summa =
              summa_words_per_process(SummaVariant::StationaryA, d, b, pr, pc);
          const double ours = words_15d_forward(d, b, pc);
          EXPECT_GE(summa, ours)
              << "d=" << d << " b=" << b << " pr=" << pr << " pc=" << pc;
        }
      }
    }
  }
}

TEST(Summa, StationaryAApproaches15DForLargePr) {
  const double d = 4096, b = 512;
  const std::size_t pc = 8;
  const double ours = words_15d_forward(d, b, pc);
  const double far = summa_words_per_process(SummaVariant::StationaryA, d, b,
                                             4096, pc);
  EXPECT_NEAR(far / ours, 1.0, 0.05);
}

TEST(Summa, TwoDMovesTwoMatricesWhenWeightsSmall) {
  // |W| < B·d regime: every 2D variant moves ≥ the smaller operand from two
  // matrices, while 1.5D moves only the smaller one.
  const double d = 128;       // |W| = d² = 16384
  const double b = 4096;      // |X| = d·b = 524288 ≫ |W|
  const std::size_t pr = 8, pc = 8;
  const double ours_total = smaller_operand_words(d, b);  // d² per process set
  EXPECT_DOUBLE_EQ(ours_total, d * d);
  for (auto v : {SummaVariant::StationaryA, SummaVariant::StationaryB,
                 SummaVariant::StationaryC}) {
    const double per_proc = summa_words_per_process(v, d, b, pr, pc);
    // Aggregate over the pr·pc processes and compare against |W| alone.
    EXPECT_GT(per_proc * static_cast<double>(pr * pc), ours_total)
        << summa_variant_name(v);
  }
}

TEST(Summa, VariantNames) {
  EXPECT_EQ(summa_variant_name(SummaVariant::StationaryA), "stationary-A");
  EXPECT_EQ(summa_variant_name(SummaVariant::StationaryC), "stationary-C");
}

}  // namespace
}  // namespace mbd::costmodel
