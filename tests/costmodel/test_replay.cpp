// Trace-driven replay: hand-built schedules with analytic expectations, and
// recorded collective traces replaying to the exact-latency closed forms.
#include "mbd/costmodel/replay.hpp"

#include <gtest/gtest.h>

#include "mbd/comm/world.hpp"
#include "mbd/support/check.hpp"

namespace mbd::costmodel {
namespace {

using comm::Trace;
using comm::TraceEvent;

MachineModel machine() { return MachineModel::cori_knl(); }

TraceEvent send(int peer, std::uint64_t bytes, std::uint64_t id) {
  return {TraceEvent::Kind::Send, peer, bytes, id, 0.0};
}
TraceEvent recv(int peer, std::uint64_t bytes, std::uint64_t id) {
  return {TraceEvent::Kind::Recv, peer, bytes, id, 0.0};
}
TraceEvent compute(double s) {
  return {TraceEvent::Kind::Compute, -1, 0, 0, s};
}

TEST(Replay, EmptyTrace) {
  Trace t;
  const auto r = replay_trace(t, machine());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  t.ranks.resize(3);
  const auto r3 = replay_trace(t, machine());
  EXPECT_DOUBLE_EQ(r3.makespan, 0.0);
  EXPECT_EQ(r3.rank_finish.size(), 3u);
}

TEST(Replay, PingPongAnalytic) {
  const auto m = machine();
  const std::uint64_t n = 4096;
  Trace t;
  t.ranks.resize(2);
  t.ranks[0] = {send(1, n, 1), recv(1, n, 2)};
  t.ranks[1] = {recv(0, n, 1), send(0, n, 2)};
  const auto r = replay_trace(t, m);
  // r0 send: α+βn. r1 recv: that +α; send: +α+βn. r0 recv: +α.
  const double expect = 4.0 * m.alpha + 2.0 * m.beta * static_cast<double>(n);
  EXPECT_NEAR(r.makespan, expect, 1e-15);
  EXPECT_NEAR(r.total_send_busy, 2.0 * (m.alpha + m.beta * n), 1e-15);
}

TEST(Replay, ComputeImbalanceDominatesMakespan) {
  const auto m = machine();
  Trace t;
  t.ranks.resize(2);
  // Rank 0 computes 1s, then sends; rank 1 waits on the message.
  t.ranks[0] = {compute(1.0), send(1, 100, 1)};
  t.ranks[1] = {recv(0, 100, 1)};
  const auto r = replay_trace(t, m);
  EXPECT_NEAR(r.rank_finish[0], 1.0 + m.alpha + m.beta * 100, 1e-12);
  EXPECT_NEAR(r.rank_finish[1], r.rank_finish[0] + m.alpha, 1e-12);
  EXPECT_NEAR(r.total_recv_wait, r.rank_finish[0], 1e-12);
  EXPECT_DOUBLE_EQ(r.total_compute, 1.0);
}

TEST(Replay, OverlappedComputeHidesWait) {
  const auto m = machine();
  Trace t;
  t.ranks.resize(2);
  t.ranks[0] = {send(1, 1000, 1)};
  // Rank 1 computes past the arrival time — zero recv wait.
  t.ranks[1] = {compute(1.0), recv(0, 1000, 1)};
  const auto r = replay_trace(t, m);
  EXPECT_DOUBLE_EQ(r.total_recv_wait, 0.0);
  EXPECT_NEAR(r.rank_finish[1], 1.0 + m.alpha, 1e-12);
}

TEST(Replay, InflightPingPongMatchesStoreAndForward) {
  // With no compute to hide behind, moving β·bytes from sender busy-time to
  // wire time changes who pays, not the round-trip: still 4α + 2βn.
  const auto m = machine();
  const std::uint64_t n = 4096;
  Trace t;
  t.ranks.resize(2);
  t.ranks[0] = {send(1, n, 1), recv(1, n, 2)};
  t.ranks[1] = {recv(0, n, 1), send(0, n, 2)};
  const auto r = replay_trace(t, m, {.inflight_transfer = true});
  const double expect = 4.0 * m.alpha + 2.0 * m.beta * static_cast<double>(n);
  EXPECT_NEAR(r.makespan, expect, 1e-15);
  // The sender is only busy the injection overhead; the wire time shows up
  // as the idle receiver's wait instead (first hop: α+βn; return hop: the
  // original sender idled since its own α, so it waits 2α+2βn).
  EXPECT_NEAR(r.total_send_busy, 2.0 * m.alpha, 1e-15);
  EXPECT_NEAR(r.total_recv_wait,
              3.0 * m.alpha + 3.0 * m.beta * static_cast<double>(n), 1e-15);
}

TEST(Replay, InflightTransferHiddenBehindCompute) {
  // A receiver that computes past the arrival pays nothing for the wire
  // time — the overlap the store-and-forward model cannot express.
  const auto m = machine();
  const std::uint64_t n = 60000;  // βn = 10 µs on cori_knl
  const double wire = m.beta * static_cast<double>(n);
  Trace t;
  t.ranks.resize(2);
  t.ranks[0] = {send(1, n, 1)};
  t.ranks[1] = {compute(10.0 * wire), recv(0, n, 1)};
  const auto r = replay_trace(t, m, {.inflight_transfer = true});
  EXPECT_DOUBLE_EQ(r.total_recv_wait, 0.0);
  EXPECT_NEAR(r.rank_finish[1], 10.0 * wire + m.alpha, 1e-12);

  // The same schedule without the compute exposes the full transfer (plus
  // the sender's injection overhead, since the receiver starts at t = 0).
  t.ranks[1] = {recv(0, n, 1)};
  const auto exposed = replay_trace(t, m, {.inflight_transfer = true});
  EXPECT_NEAR(exposed.total_recv_wait, m.alpha + wire, 1e-12);
}

TEST(Replay, InconsistentTraceThrows) {
  Trace t;
  t.ranks.resize(1);
  t.ranks[0] = {recv(0, 8, /*id=*/77)};  // no matching send anywhere
  EXPECT_THROW(replay_trace(t, machine()), Error);
}

TEST(Replay, OutOfOrderRanksStillResolve) {
  // Rank 1's events appear "before" rank 0's in rank order; the sweep must
  // still find the dependency order.
  const auto m = machine();
  Trace t;
  t.ranks.resize(3);
  t.ranks[2] = {send(1, 64, 1)};
  t.ranks[1] = {recv(2, 64, 1), send(0, 64, 2)};
  t.ranks[0] = {recv(1, 64, 2)};
  const auto r = replay_trace(t, m);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NEAR(r.rank_finish[0],
              2.0 * (m.alpha + m.beta * 64) + 2.0 * m.alpha, 1e-15);
}

TEST(Replay, RecordedRingAllReduceMatchesExactClosedForm) {
  // Replaying a recorded ring all-reduce must give exactly the serialized
  // per-step cost 2(P−1)·(2α + β·block_bytes) — the AlgorithmExact-style
  // latency (with both endpoints paying α) from an independent path.
  const auto m = machine();
  for (int p : {2, 4, 8}) {
    const std::size_t n = 1024;  // floats, divisible by p
    comm::World world(p);
    world.enable_tracing();
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, 1.0f);
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::Ring);
    });
    const auto r = replay_trace(world.trace(), m);
    const double block_bytes = static_cast<double>(n) / p * sizeof(float);
    const double expect =
        2.0 * (p - 1) * (2.0 * m.alpha + m.beta * block_bytes);
    EXPECT_NEAR(r.makespan, expect, 1e-12) << "p=" << p;
  }
}

TEST(Replay, BruckBeatsRingOnLatencyForSmallMessages) {
  // The schedule-aware makespans reproduce the classic algorithm trade:
  // for small payloads Bruck's log steps beat the ring's P−1 steps.
  const auto m = machine();
  const std::size_t n = 4;  // tiny payload
  auto makespan = [&](comm::AllGatherAlgo algo) {
    comm::World world(8);
    world.enable_tracing();
    world.run([&](comm::Comm& c) {
      std::vector<float> v(n, 1.0f);
      (void)c.allgather(std::span<const float>(v), algo);
    });
    return replay_trace(world.trace(), m).makespan;
  };
  EXPECT_LT(makespan(comm::AllGatherAlgo::Bruck),
            makespan(comm::AllGatherAlgo::Ring));
}

TEST(Replay, TracingOffByDefault) {
  comm::World world(2);
  world.run([](comm::Comm& c) { c.barrier(); });
  EXPECT_EQ(world.trace().total_events(), 0u);
}

TEST(Replay, ResetTraceClearsEvents) {
  comm::World world(2);
  world.enable_tracing();
  world.run([](comm::Comm& c) { c.barrier(); });
  EXPECT_GT(world.trace().total_events(), 0u);
  world.reset_trace();
  EXPECT_EQ(world.trace().total_events(), 0u);
}

TEST(Replay, AnnotatedComputeRecorded) {
  comm::World world(2);
  world.enable_tracing();
  world.run([](comm::Comm& c) {
    c.annotate_compute(0.25);
    c.barrier();
  });
  const auto r = replay_trace(world.trace(), machine());
  EXPECT_DOUBLE_EQ(r.total_compute, 0.5);  // 0.25 on each of 2 ranks
}

}  // namespace
}  // namespace mbd::costmodel
