// pick_serving_batch: the Fig. 4 knee machinery applied to serving — choose
// the batch that maximizes samples/second over the measured latency curve,
// subject to a latency budget.
#include "mbd/costmodel/serving.hpp"

#include <gtest/gtest.h>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {
namespace {

// latency(b) = (1 + 0.1·b) ms: sublinear per-sample cost, so throughput
// rises monotonically with the batch.
std::vector<LatencyPoint> sublinear_curve() {
  std::vector<LatencyPoint> pts;
  for (const double b : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
    pts.push_back({b, (1.0 + 0.1 * b) * 1e-3});
  return pts;
}

TEST(PickServingBatch, SublinearLatencyPicksTheLargestBatch) {
  const BatchChoice c = pick_serving_batch(sublinear_curve(), 32);
  EXPECT_EQ(c.batch, 32u);
  EXPECT_NEAR(c.latency_s, 4.2e-3, 1e-4);
  EXPECT_GT(c.throughput, 7000.0);
}

TEST(PickServingBatch, LatencyBudgetCapsTheBatch) {
  // Budget of 1.85 ms admits batches up to 8 (latency(8) = 1.8 ms); larger
  // batches would serve faster overall but miss the deadline.
  const BatchChoice c = pick_serving_batch(sublinear_curve(), 32, 1.85e-3);
  EXPECT_EQ(c.batch, 8u);
  EXPECT_LE(c.latency_s, 1.85e-3);
}

TEST(PickServingBatch, InfeasibleBudgetDegradesToBatchOne) {
  const BatchChoice c = pick_serving_batch(sublinear_curve(), 32, 1e-6);
  EXPECT_EQ(c.batch, 1u);
  EXPECT_NEAR(c.latency_s, 1.1e-3, 1e-4);
}

TEST(PickServingBatch, LinearLatencyKeepsBatchOne) {
  // latency(b) = b ms exactly: throughput is flat, and ties prefer the
  // smaller batch (same samples/second, less queueing delay).
  std::vector<LatencyPoint> pts;
  for (const double b : {1.0, 2.0, 4.0, 8.0}) pts.push_back({b, b * 1e-3});
  const BatchChoice c = pick_serving_batch(pts, 8);
  EXPECT_EQ(c.batch, 1u);
}

TEST(PickServingBatch, ExtrapolatesFlatBeyondTheLastSample) {
  // Samples stop at 8 but max_batch is 32: the curve clamps flat past its
  // last point, so throughput keeps growing and the cap wins.
  std::vector<LatencyPoint> pts{{1, 1e-3}, {8, 1e-3}};
  const BatchChoice c = pick_serving_batch(pts, 32);
  EXPECT_EQ(c.batch, 32u);
}

TEST(PickServingBatch, ToleratesUnsortedAndDuplicateSamples) {
  std::vector<LatencyPoint> pts{
      {8.0, 1.8e-3}, {1.0, 1.1e-3}, {8.0, 2.0e-3},  // dup keeps the faster
      {4.0, 1.4e-3}, {2.0, 1.2e-3},
  };
  const BatchChoice c = pick_serving_batch(pts, 8);
  EXPECT_EQ(c.batch, 8u);
  EXPECT_NEAR(c.latency_s, 1.8e-3, 1e-4);
}

TEST(PickServingBatch, RejectsEmptyMeasurements) {
  EXPECT_THROW((void)pick_serving_batch({}, 8), ::mbd::Error);
}

}  // namespace
}  // namespace mbd::costmodel
