#include "mbd/costmodel/collective_costs.hpp"

#include <gtest/gtest.h>

namespace mbd::costmodel {
namespace {

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(512), 9);
  EXPECT_EQ(ceil_log2(513), 10);
}

TEST(AllGatherCost, PaperFormula) {
  // α⌈log₂P⌉ + β·(P−1)/P·n with Table 1 parameters.
  const auto m = MachineModel::cori_knl();
  const auto c = allgather_cost(m, 8, 1000.0);
  EXPECT_DOUBLE_EQ(c.latency, 3.0 * 2e-6);
  EXPECT_DOUBLE_EQ(c.bandwidth, m.word_time() * 1000.0 * 7.0 / 8.0);
}

TEST(AllGatherCost, SingleProcessIsFree) {
  const auto m = MachineModel::cori_knl();
  EXPECT_DOUBLE_EQ(allgather_cost(m, 1, 1e9).total(), 0.0);
}

TEST(AllReduceCost, PaperFactorOfTwo) {
  const auto m = MachineModel::cori_knl();
  const auto c = allreduce_cost(m, 16, 500.0);
  EXPECT_DOUBLE_EQ(c.latency, 2.0 * 4.0 * 2e-6);
  EXPECT_DOUBLE_EQ(c.bandwidth, 2.0 * m.word_time() * 500.0 * 15.0 / 16.0);
}

TEST(AllReduceCost, BandwidthNearlyPIndependentForLargeP) {
  // Paper §2.2: "for P ≫ 1 the bandwidth costs are independent of P".
  const auto m = MachineModel::cori_knl();
  const double b64 = allreduce_cost(m, 64, 1e6).bandwidth;
  const double b4096 = allreduce_cost(m, 4096, 1e6).bandwidth;
  EXPECT_NEAR(b4096 / b64, 1.0, 0.02);
}

TEST(AllReduceCost, ExactRingLatencyMode) {
  const auto m = MachineModel::cori_knl();
  const auto paper = allreduce_cost(m, 32, 100.0, LatencyMode::PaperLog);
  const auto exact = allreduce_cost(m, 32, 100.0, LatencyMode::AlgorithmExact);
  EXPECT_DOUBLE_EQ(paper.latency, 2.0 * 5.0 * m.alpha);
  EXPECT_DOUBLE_EQ(exact.latency, 2.0 * 31.0 * m.alpha);
  EXPECT_DOUBLE_EQ(paper.bandwidth, exact.bandwidth);
}

TEST(HaloCost, SingleMessage) {
  const auto m = MachineModel::cori_knl();
  const auto c = halo_cost(m, 250.0);
  EXPECT_DOUBLE_EQ(c.latency, m.alpha);
  EXPECT_DOUBLE_EQ(c.bandwidth, m.word_time() * 250.0);
}

TEST(CostBreakdown, Arithmetic) {
  CostBreakdown a{1.0, 2.0}, b{0.5, 0.25};
  const auto c = a + b;
  EXPECT_DOUBLE_EQ(c.latency, 1.5);
  EXPECT_DOUBLE_EQ(c.bandwidth, 2.25);
  EXPECT_DOUBLE_EQ(c.total(), 3.75);
  EXPECT_DOUBLE_EQ(a.scaled(2.0).bandwidth, 4.0);
}

TEST(ExactCounts, BruckWordsEqualPMinus1Blocks) {
  for (std::size_t p : {2u, 3u, 5u, 8u, 16u}) {
    EXPECT_DOUBLE_EQ(allgather_bruck_words_per_rank(p, 10),
                     static_cast<double>((p - 1) * 10));
  }
}

TEST(ExactCounts, RingAllReduceDivisibleCase) {
  // n divisible by p: every rank sends exactly 2n(p−1)/p words.
  for (std::size_t r = 0; r < 4; ++r)
    EXPECT_DOUBLE_EQ(allreduce_ring_words_per_rank(4, 400, r), 600.0);
  EXPECT_DOUBLE_EQ(allreduce_ring_words_total(4, 400), 2400.0);
}

TEST(ExactCounts, RingAllReduceUnevenTotalConserved) {
  // n not divisible: per-rank counts vary but the total equals
  // 2·(sum of all blocks sent) = 2·(p−1)·n.
  const std::size_t p = 4, n = 403;
  EXPECT_DOUBLE_EQ(allreduce_ring_words_total(p, n),
                   2.0 * static_cast<double>((p - 1) * n));
}

TEST(ExactCounts, MessagesPerRank) {
  EXPECT_EQ(allreduce_ring_messages_per_rank(8), 14u);
  EXPECT_EQ(allreduce_ring_messages_per_rank(1), 0u);
  EXPECT_EQ(allgather_bruck_messages_per_rank(8), 3u);
  EXPECT_EQ(allgather_bruck_messages_per_rank(5), 3u);
}

}  // namespace
}  // namespace mbd::costmodel
