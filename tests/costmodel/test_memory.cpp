// §4 memory model: "the 1.5D algorithms cut down the model replication cost
// by a factor of pr, at the cost of an increase in data replication by a
// factor of pc"; 2D is memory-optimal.
#include "mbd/costmodel/memory.hpp"

#include <gtest/gtest.h>

#include "mbd/nn/models.hpp"

namespace mbd::costmodel {
namespace {

std::vector<nn::LayerSpec> alexnet_weighted() {
  return nn::weighted_layers(nn::alexnet_spec());
}

TEST(Memory, PureBatchReplicatesWholeModel) {
  const auto net = alexnet_weighted();
  const auto f = memory_15d(net, 2048, /*pr=*/1, /*pc=*/64);
  EXPECT_DOUBLE_EQ(f.weights,
                   static_cast<double>(nn::total_weights(net)));
  EXPECT_DOUBLE_EQ(f.gradients, f.weights);
}

TEST(Memory, WeightsScaleInverselyWithPr) {
  const auto net = alexnet_weighted();
  const auto a = memory_15d(net, 2048, 1, 64);
  const auto b = memory_15d(net, 2048, 8, 8);
  EXPECT_DOUBLE_EQ(a.weights / b.weights, 8.0);
}

TEST(Memory, ActivationsScaleInverselyWithPc) {
  const auto net = alexnet_weighted();
  const auto a = memory_15d(net, 2048, 8, 8);
  const auto b = memory_15d(net, 2048, 8, 64);
  EXPECT_DOUBLE_EQ(a.activations / b.activations, 8.0);
}

TEST(Memory, TwoDIsNeverWorsePerProcess) {
  // 2D holds exactly 1/P of everything — the memory optimum §4 concedes.
  const auto net = alexnet_weighted();
  for (std::size_t pr : {1u, 4u, 16u, 64u}) {
    const std::size_t pc = 64 / pr * 8;  // vary total P too
    const std::size_t p = pr * pc;
    const auto ours = memory_15d(net, 2048, pr, pc);
    const auto twod = memory_2d_optimal(net, 2048, p);
    EXPECT_LE(twod.total(), ours.total() * (1.0 + 1e-12))
        << "pr=" << pr << " pc=" << pc;
  }
}

TEST(Memory, MachineWideReplicationFactors) {
  const auto r = replication_15d(16, 32);
  EXPECT_DOUBLE_EQ(r.weights, 32.0);      // W stored Pc times
  EXPECT_DOUBLE_EQ(r.activations, 16.0);  // X/Y stored Pr times
}

TEST(Memory, MachineWideTotalsMatchReplication) {
  // P processes × per-process footprint == one copy × replication factor.
  const auto net = alexnet_weighted();
  const std::size_t pr = 8, pc = 16, batch = 512;
  const auto f = memory_15d(net, batch, pr, pc);
  const double one_model = static_cast<double>(nn::total_weights(net));
  EXPECT_DOUBLE_EQ(f.weights * static_cast<double>(pr * pc),
                   one_model * static_cast<double>(pc));
}

TEST(Memory, LinearCombinationOfExtremes) {
  // §4: "our memory costs are simply a linear combination of the memory
  // costs of these two extremes" — weights follow the model extreme scaled
  // by P/pr·..., activations the batch extreme. Concretely: the (pr, pc)
  // footprint equals pure-model weights × (P/pr)/P ... verified via the two
  // axes independently.
  const auto net = alexnet_weighted();
  const std::size_t batch = 1024, p = 64;
  const auto pure_model = memory_15d(net, batch, p, 1);
  const auto pure_batch = memory_15d(net, batch, 1, p);
  const auto mixed = memory_15d(net, batch, 8, 8);
  EXPECT_DOUBLE_EQ(mixed.weights, pure_model.weights * 8.0);
  EXPECT_DOUBLE_EQ(mixed.activations, pure_batch.activations * 8.0);
}

TEST(Memory, CountsInputActivationOnce) {
  std::vector<nn::LayerSpec> net{nn::fc_spec("f1", 10, 20),
                                 nn::fc_spec("f2", 20, 5)};
  const auto f = memory_15d(net, 4, 1, 1);
  // input 10 + y1 20 + y2 5 per sample, 4 samples.
  EXPECT_DOUBLE_EQ(f.activations, 4.0 * (10 + 20 + 5));
}

}  // namespace
}  // namespace mbd::costmodel
