// Two-level network extension (paper Limitations: topology deferred to
// "adjusting the latency and bandwidth terms").
#include "mbd/costmodel/hierarchy.hpp"

#include <gtest/gtest.h>

#include "mbd/nn/models.hpp"

namespace mbd::costmodel {
namespace {

std::vector<nn::LayerSpec> alexnet_weighted() {
  return nn::weighted_layers(nn::alexnet_spec());
}

TEST(Hierarchy, SingleRankFree) {
  const auto hm = HierarchicalMachine::cori_like();
  EXPECT_DOUBLE_EQ(hierarchical_allreduce_cost(hm, 1, 1e6).total(), 0.0);
  EXPECT_DOUBLE_EQ(hierarchical_allgather_cost(hm, 1, 1e6).total(), 0.0);
}

TEST(Hierarchy, WithinOneNodeUsesIntraLinks) {
  const auto hm = HierarchicalMachine::cori_like(8);
  const auto c = hierarchical_allreduce_cost(hm, 4, 1000.0);
  const auto intra = allreduce_cost(hm.intra, 4, 1000.0);
  EXPECT_DOUBLE_EQ(c.total(), intra.total());
}

TEST(Hierarchy, BeatsFlatInterForBigReductions) {
  // With a 10× faster intra level, reducing most of the volume locally must
  // beat running the whole ring over the slow links.
  const auto hm = HierarchicalMachine::cori_like(8);
  const std::size_t p = 64;
  const double words = 16e6;  // AlexNet-gradient scale
  const auto hier = hierarchical_allreduce_cost(hm, p, words);
  const auto flat = allreduce_cost(hm.inter, p, words);
  EXPECT_LT(hier.bandwidth, flat.bandwidth);
}

TEST(Hierarchy, InterVolumeShrinksByNodeSize) {
  // The inter-node stage carries 1/S of the words — the defining saving.
  const auto base = MachineModel::cori_knl();
  HierarchicalMachine hm{8, base, base};
  // Make intra free to isolate the inter stage.
  hm.intra.beta = 1e-30;
  hm.intra.alpha = 0.0;
  const std::size_t p = 64;
  const double words = 8e6;
  const auto hier = hierarchical_allreduce_cost(hm, p, words);
  const auto inter_only = allreduce_cost(base, p / 8, words / 8.0);
  EXPECT_NEAR(hier.bandwidth, inter_only.bandwidth, 1e-12);
}

TEST(Hierarchy, FlatDegenerationWithinSmallFactor) {
  // With identical levels the hierarchical algorithm does extra local work
  // but must stay within a small constant of the flat ring.
  const auto m = MachineModel::cori_knl();
  const auto hm = HierarchicalMachine::flat(m);
  const auto hier = hierarchical_allreduce_cost(hm, 32, 1e6);
  const auto flat = allreduce_cost(m, 32, 1e6);
  EXPECT_DOUBLE_EQ(hier.total(), flat.total());  // node_size 1 → same path
}

TEST(Hierarchy, NonDivisibleFallsBackToFlat) {
  const auto hm = HierarchicalMachine::cori_like(8);
  const auto c = hierarchical_allreduce_cost(hm, 12, 1000.0);  // 12 % 8 != 0
  EXPECT_DOUBLE_EQ(c.total(), allreduce_cost(hm.inter, 12, 1000.0).total());
}

TEST(Hierarchy, IntegratedCostPrefersBatchGroupsInsideNodes) {
  // With Pc = node size the ∆W reduction rides the fast links; the same
  // grid on a flat slow network must cost more.
  const auto net = alexnet_weighted();
  const auto hm = HierarchicalMachine::cori_like(8);
  const auto hier = integrated_cost_hierarchical(net, 2048, 64, 8, hm,
                                                 GridMode::BatchParallelConv);
  const auto flat = integrated_cost(net, 2048, 64, 8, hm.inter,
                                    GridMode::BatchParallelConv);
  EXPECT_LT(hier.comm(), flat.comm());
}

TEST(Hierarchy, AllGatherStagesAddUp) {
  const auto hm = HierarchicalMachine::cori_like(4);
  const std::size_t p = 16;
  const double words = 4096;
  const auto c = hierarchical_allgather_cost(hm, p, words);
  const double expect_bw =
      hm.intra.word_time() * (words * 4.0 / 16.0) * (3.0 / 4.0) +  // local
      hm.inter.word_time() * words * (3.0 / 4.0) +                 // leaders
      hm.intra.word_time() * words;                                // fan-out
  EXPECT_NEAR(c.bandwidth, expect_bw, 1e-15);
}

}  // namespace
}  // namespace mbd::costmodel
