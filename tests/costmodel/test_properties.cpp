// Property tests: the paper's formula identities checked across randomly
// generated network shapes, batch sizes, and grids (parameterized sweep).
#include <gtest/gtest.h>

#include "mbd/costmodel/memory.hpp"
#include "mbd/costmodel/optimizer.hpp"
#include "mbd/costmodel/strategy.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::costmodel {
namespace {

/// A random weighted-layer list (shapes need not chain — the cost formulas
/// are per-layer sums over d_in/d_out/|W|).
std::vector<nn::LayerSpec> random_layers(Rng& rng) {
  const std::size_t n = 2 + rng.uniform_index(6);
  std::vector<nn::LayerSpec> net;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.5) {
      const std::size_t c_in = 1 + rng.uniform_index(64);
      const std::size_t hw = 4 + rng.uniform_index(28);
      const std::size_t c_out = 1 + rng.uniform_index(128);
      const std::size_t k = 1 + 2 * rng.uniform_index(3);  // 1, 3, 5
      net.push_back(nn::conv_spec("c" + std::to_string(i), c_in, hw, hw,
                                  c_out, k, 1, k / 2));
    } else {
      net.push_back(nn::fc_spec("f" + std::to_string(i),
                                1 + rng.uniform_index(4096),
                                1 + rng.uniform_index(4096)));
    }
  }
  return net;
}

class RandomNetSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetSweep, Eq8ReductionIdentities) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const std::size_t batch = 1 + rng.uniform_index(4096);
  const std::size_t p = 1 + rng.uniform_index(512);
  const auto grid_as_batch = integrated_cost(net, batch, 1, p, m);
  const auto pure_batch = batch_parallel_cost(net, batch, p, m);
  EXPECT_DOUBLE_EQ(grid_as_batch.comm(), pure_batch.comm());
  const auto grid_as_model = integrated_cost(net, batch, p, 1, m);
  const auto pure_model = model_parallel_cost(net, batch, p, m);
  EXPECT_DOUBLE_EQ(grid_as_model.comm(), pure_model.comm());
}

TEST_P(RandomNetSweep, Eq9AllModelEqualsEq8) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const std::size_t batch = 64 + rng.uniform_index(2048);
  const std::size_t pr = 1 + rng.uniform_index(16);
  const std::size_t pc = 1 + rng.uniform_index(64);
  std::vector<LayerRole> roles(net.size(), LayerRole::Model);
  const auto eq9 = full_integrated_cost(net, roles, batch, pr, pc, m);
  const auto eq8 = integrated_cost(net, batch, pr, pc, m);
  EXPECT_DOUBLE_EQ(eq9.comm(), eq8.comm());
}

TEST_P(RandomNetSweep, DwBandwidthScalesInverselyWithPr) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const std::size_t batch = 256, pc = 8;
  const std::size_t pr = 1 + rng.uniform_index(32);
  const auto a = integrated_cost(net, batch, pr, pc, m);
  const auto b = integrated_cost(net, batch, 2 * pr, pc, m);
  EXPECT_NEAR(a.ar_dw().bandwidth / b.ar_dw().bandwidth, 2.0, 1e-9);
}

TEST_P(RandomNetSweep, BestGridNeverWorseThanPureStrategies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const std::size_t p = 1u << (1 + rng.uniform_index(8));
  const std::size_t batch = p * (1 + rng.uniform_index(16));
  const auto best = best_integrated_grid(net, batch, p, m);
  const auto pure_batch = integrated_cost(net, batch, 1, p, m);
  EXPECT_LE(best.cost.total(), pure_batch.total() * (1 + 1e-12));
  // Pure model (pc = 1) is always a feasible grid, so best ≤ it too.
  const auto pure_model = integrated_cost(net, batch, p, 1, m);
  EXPECT_LE(best.cost.total(), pure_model.total() * (1 + 1e-12));
}

TEST_P(RandomNetSweep, ChooseRolesKeepsFcModelParallel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const auto roles = choose_roles(net, 256, 4, 64, m);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net[i].kind == nn::LayerKind::FullyConnected)
      EXPECT_EQ(roles[i], LayerRole::Model) << net[i].name;
  }
}

TEST_P(RandomNetSweep, CrossoverRatioInverseInBatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const auto net = random_layers(rng);
  for (const auto& l : net) {
    if (l.kind != nn::LayerKind::Conv) continue;
    const double r1 = batch_over_model_volume_ratio(l, 16);
    const double r2 = batch_over_model_volume_ratio(l, 32);
    EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
  }
}

TEST_P(RandomNetSweep, MemoryAxesMonotone) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 600);
  const auto net = random_layers(rng);
  const std::size_t batch = 64 + rng.uniform_index(1024);
  const auto a = memory_15d(net, batch, 2, 4);
  const auto b = memory_15d(net, batch, 4, 4);
  EXPECT_GT(a.weights, b.weights);
  EXPECT_DOUBLE_EQ(a.activations, b.activations);
  const auto c = memory_15d(net, batch, 2, 8);
  EXPECT_DOUBLE_EQ(a.weights, c.weights);
  EXPECT_GT(a.activations, c.activations);
}

TEST_P(RandomNetSweep, OverlapNeverIncreasesTotal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 700);
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const std::size_t batch = 64 + rng.uniform_index(2048);
  const std::size_t pr = 1 + rng.uniform_index(8);
  const std::size_t pc = 1 + rng.uniform_index(32);
  const auto c = integrated_cost(net, batch, pr, pc, m);
  EXPECT_LE(c.total_overlapped(), c.total() * (1 + 1e-12));
  EXPECT_GE(c.total_overlapped(), c.compute);
}

TEST_P(RandomNetSweep, EnumerationSortedAndExhaustive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 800);
  const auto net = random_layers(rng);
  const auto m = MachineModel::cori_knl();
  const std::size_t p = 1u << (1 + rng.uniform_index(6));
  const std::size_t batch = p * 4;
  const auto opts = enumerate_integrated_grids(net, batch, p, m);
  EXPECT_EQ(opts.size(), grid_factorizations(p).size());
  for (std::size_t i = 1; i < opts.size(); ++i)
    EXPECT_LE(opts[i - 1].cost.total(), opts[i].cost.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetSweep, ::testing::Range(0, 12),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace mbd::costmodel
