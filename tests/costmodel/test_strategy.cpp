// The paper's formulas as properties: hand-computed single-layer values,
// reduction identities between Eqs. 3/4/8/9, the Eq. 5 crossover claim, and
// the Eq. 6 redistribution claim.
#include "mbd/costmodel/strategy.hpp"

#include <gtest/gtest.h>

#include "mbd/nn/models.hpp"
#include "mbd/support/check.hpp"

namespace mbd::costmodel {
namespace {

std::vector<nn::LayerSpec> alexnet_weighted() {
  return nn::weighted_layers(nn::alexnet_spec());
}

MachineModel machine() { return MachineModel::cori_knl(); }

TEST(BatchParallel, Eq4HandComputedSingleLayer) {
  // One FC layer 100×50: T = 2(α⌈logP⌉ + β(P−1)/P·|W|).
  std::vector<nn::LayerSpec> net{nn::fc_spec("f", 50, 100)};
  const auto m = machine();
  const auto c = batch_parallel_cost(net, /*batch=*/64, /*p=*/8, m);
  const auto comm = c.ar_dw();
  EXPECT_DOUBLE_EQ(comm.latency, 2.0 * 3.0 * m.alpha);
  EXPECT_DOUBLE_EQ(comm.bandwidth, 2.0 * m.word_time() * 5000.0 * 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(c.ag_forward().total(), 0.0);
  EXPECT_DOUBLE_EQ(c.ar_dx().total(), 0.0);
  EXPECT_DOUBLE_EQ(c.halo().total(), 0.0);
}

TEST(ModelParallel, Eq3HandComputedTwoLayers) {
  // Two FC layers: all-gather B·d_i per layer; ∆X all-reduce B·d_{i-1} for
  // the second layer only.
  std::vector<nn::LayerSpec> net{nn::fc_spec("f1", 10, 20),
                                 nn::fc_spec("f2", 20, 30)};
  const auto m = machine();
  const std::size_t B = 16, P = 4;
  const auto c = model_parallel_cost(net, B, P, m);
  const double f = 3.0 / 4.0;
  EXPECT_DOUBLE_EQ(c.ag_forward().bandwidth,
                   m.word_time() * (16.0 * 20 + 16.0 * 30) * f);
  EXPECT_DOUBLE_EQ(c.ag_forward().latency, 2.0 * 2.0 * m.alpha);
  EXPECT_DOUBLE_EQ(c.ar_dx().bandwidth,
                   2.0 * m.word_time() * (16.0 * 20) * f);
  EXPECT_DOUBLE_EQ(c.ar_dw().total(), 0.0);
}

TEST(Integrated, Eq8ReducesToEq4WhenPrIsOne) {
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto batch = batch_parallel_cost(net, 2048, 64, m);
  const auto grid = integrated_cost(net, 2048, /*pr=*/1, /*pc=*/64, m);
  EXPECT_DOUBLE_EQ(batch.comm(), grid.comm());
  EXPECT_DOUBLE_EQ(batch.compute, grid.compute);
}

TEST(Integrated, Eq8ReducesToEq3WhenPcIsOne) {
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto model = model_parallel_cost(net, 2048, 64, m);
  const auto grid = integrated_cost(net, 2048, /*pr=*/64, /*pc=*/1, m);
  EXPECT_DOUBLE_EQ(model.comm(), grid.comm());
}

TEST(Integrated, DwVolumeReducedByPrFactor) {
  // Eq. 8's key effect: the ∆W all-reduce volume shrinks by Pr vs Eq. 4.
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto pure = integrated_cost(net, 2048, 1, 64, m);
  const auto grid = integrated_cost(net, 2048, 8, 8, m);
  // (Pc−1)/Pc differs slightly between the two; compare the dominant scale.
  const double ratio = pure.ar_dw().bandwidth / grid.ar_dw().bandwidth;
  const double adjust = (63.0 / 64.0) / (7.0 / 8.0);
  EXPECT_NEAR(ratio, 8.0 * adjust, 1e-9);
}

TEST(Integrated, Eq8AllThreeTermsHandComputed) {
  // Two FC layers (10->20->30) on a 2×3 grid with B = 12: every term of
  // Eq. 8 written out by hand.
  std::vector<nn::LayerSpec> net{nn::fc_spec("f1", 10, 20),
                                 nn::fc_spec("f2", 20, 30)};
  const auto m = machine();
  const std::size_t B = 12, pr = 2, pc = 3;
  const auto c = integrated_cost(net, B, pr, pc, m);
  const double b_loc = 4.0;          // B/Pc
  const double w = m.word_time();
  const double fr = 0.5;             // (Pr-1)/Pr
  const double fc = 2.0 / 3.0;       // (Pc-1)/Pc
  // Term 1: all-gather of Y_i over Pr for both layers.
  EXPECT_DOUBLE_EQ(c.ag_forward().bandwidth,
                   w * b_loc * (20.0 + 30.0) * fr);
  EXPECT_DOUBLE_EQ(c.ag_forward().latency, 2.0 * m.alpha * 1.0);  // ⌈log2⌉=1
  // Term 2: ∆X all-reduce over Pr, second layer only (d_{i-1} = 20).
  EXPECT_DOUBLE_EQ(c.ar_dx().bandwidth, 2.0 * w * b_loc * 20.0 * fr);
  EXPECT_DOUBLE_EQ(c.ar_dx().latency, 2.0 * m.alpha * 1.0);
  // Term 3: ∆W all-reduce over Pc on |W_i|/Pr for both layers.
  EXPECT_DOUBLE_EQ(c.ar_dw().bandwidth,
                   2.0 * w * (200.0 / 2 + 600.0 / 2) * fc);
  EXPECT_DOUBLE_EQ(c.ar_dw().latency, 2.0 * (2.0 * m.alpha * 2.0));  // ⌈log3⌉=2
}

TEST(Integrated, BatchParallelConvModeZerosConvActivationComm) {
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto c =
      integrated_cost(net, 2048, 16, 32, m, GridMode::BatchParallelConv);
  for (const auto& lc : c.layers) {
    if (lc.name.rfind("conv", 0) == 0) {
      EXPECT_DOUBLE_EQ(lc.ag_forward.total(), 0.0) << lc.name;
      EXPECT_DOUBLE_EQ(lc.ar_dx.total(), 0.0) << lc.name;
      EXPECT_GT(lc.ar_dw.total(), 0.0) << lc.name;
    } else {
      EXPECT_GT(lc.ag_forward.total(), 0.0) << lc.name;
    }
  }
}

TEST(Integrated, Fig7ModeBeatsFig6ModeAtScale) {
  // Making conv layers pure batch-parallel "can reduce the communication
  // significantly" (paper, comparing Figs. 6 and 7).
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto uniform = integrated_cost(net, 2048, 16, 32, m, GridMode::Uniform);
  const auto fc_only =
      integrated_cost(net, 2048, 16, 32, m, GridMode::BatchParallelConv);
  EXPECT_LT(fc_only.comm(), uniform.comm());
}

TEST(FullIntegration, Eq9ReducesToEq8WhenAllModel) {
  const auto net = alexnet_weighted();
  const auto m = machine();
  std::vector<LayerRole> all_model(net.size(), LayerRole::Model);
  const auto eq9 = full_integrated_cost(net, all_model, 2048, 8, 64, m);
  const auto eq8 = integrated_cost(net, 2048, 8, 64, m, GridMode::Uniform);
  EXPECT_DOUBLE_EQ(eq9.comm(), eq8.comm());
  EXPECT_DOUBLE_EQ(eq9.compute, eq8.compute);
}

TEST(FullIntegration, DomainRoleRequiresConvLayer) {
  std::vector<nn::LayerSpec> net{nn::fc_spec("f", 8, 8)};
  EXPECT_THROW(full_integrated_cost(net, {LayerRole::Domain}, 8, 2, 4,
                                    machine()),
               Error);
}

TEST(FullIntegration, OneByOneConvHasZeroHaloBandwidth) {
  // Paper: "the domain parallel approach does not require any communication
  // for 1×1 convolutions".
  std::vector<nn::LayerSpec> net{nn::conv_spec("c1x1", 64, 14, 14, 128, 1, 1, 0)};
  const auto c = full_integrated_cost(net, {LayerRole::Domain}, 256, 4, 64,
                                      machine());
  EXPECT_DOUBLE_EQ(c.halo().total(), 0.0);
}

TEST(FullIntegration, DomainHaloMatchesEq9Terms) {
  // Forward halo: α + β·(B/Pc)·X_W·X_C·⌊kh/2⌋; backward: with Y_W·Y_C·⌊kw/2⌋.
  std::vector<nn::LayerSpec> net{nn::conv_spec("c", 16, 32, 32, 32, 3, 1, 1)};
  const auto m = machine();
  const std::size_t B = 128, pr = 4, pc = 32;
  const auto c = full_integrated_cost(net, {LayerRole::Domain}, B, pr, pc, m);
  const double b_loc = static_cast<double>(B) / pc;
  const double fwd_words = b_loc * 32 * 16 * 1;
  const double bwd_words = b_loc * 32 * 32 * 1;
  EXPECT_DOUBLE_EQ(c.halo().bandwidth, m.word_time() * (fwd_words + bwd_words));
  EXPECT_DOUBLE_EQ(c.halo().latency, 2.0 * m.alpha);
  // ∆W all-reduce over ALL P = pr·pc.
  const double w = static_cast<double>(net[0].weight_count());
  EXPECT_DOUBLE_EQ(c.ar_dw().bandwidth,
                   2.0 * m.word_time() * w * 127.0 / 128.0);
}

TEST(Eq5Crossover, AlexNetConv4ModelFavorableForSmallBatch) {
  // Paper: "3x3 filters on 13x13x384 activations, model parallelism has
  // lower communication volume than batch parallelism for B ≤ 12" (our
  // exact floor of 2·kh·kw·X_C/(3·Y_H·Y_W) gives 13 — same regime).
  const auto ws = alexnet_weighted();
  const auto& conv4 = ws[3];  // 384 -> 384, 3x3 on 13x13
  const std::size_t limit = model_favorable_batch_limit(conv4);
  EXPECT_GE(limit, 12u);
  EXPECT_LE(limit, 14u);
  // Ratio = T_batch/T_model volume: > 1 at small B means batch parallelism
  // moves MORE data, i.e. model parallelism is favorable there.
  EXPECT_GT(batch_over_model_volume_ratio(conv4, 4), 1.0);
  EXPECT_LT(batch_over_model_volume_ratio(conv4, 64), 1.0);
}

TEST(Eq5Crossover, RatioFormula) {
  // ratio = 2|W|/(3·B·d_i).
  const auto conv = nn::conv_spec("c", 8, 10, 10, 16, 3, 1, 1);
  const double expect =
      2.0 * static_cast<double>(conv.weight_count()) /
      (3.0 * 32.0 * static_cast<double>(conv.d_out()));
  EXPECT_DOUBLE_EQ(batch_over_model_volume_ratio(conv, 32), expect);
}

TEST(Eq6Redistribution, AsymptoticallyFreeVsModelStep) {
  // "the redistribution cost is asymptotically free because the subsequent
  // model parallel step has communication cost that is three times the
  // redistribution" — the model step for one layer costs ~3× (one
  // all-gather of B·d plus a 2× all-reduce of B·d).
  const auto m = machine();
  const std::size_t p = 64, B = 1024, d = 4096;
  const auto redist = redistribution_cost(m, p, B, d);
  std::vector<nn::LayerSpec> net{nn::fc_spec("f1", d, d), nn::fc_spec("f2", d, d)};
  const auto model = model_parallel_cost(net, B, p, m);
  // Layer 2's model-parallel comm (all-gather + 2·all-reduce) ≈ 3× redist.
  const auto& l2 = model.layers[1];
  EXPECT_NEAR((l2.ag_forward.bandwidth + l2.ar_dx.bandwidth) /
                  redist.bandwidth,
              3.0, 1e-9);
}

TEST(Overlap, Fig8Formula) {
  StrategyCost c;
  LayerCost lc;
  lc.ar_dw = CostBreakdown{0.0, 0.3};
  c.layers.push_back(lc);
  c.compute = 0.9;
  // comm = 0.3; overlappable = 0.2; window = 0.6 -> hidden = 0.2.
  EXPECT_NEAR(c.total_overlapped(), 0.9 + 0.3 - 0.2, 1e-12);
  // Comm-dominated case: hiding is capped by the window.
  c.compute = 0.15;
  // overlappable = 0.2, window = 0.1 -> hidden = 0.1.
  EXPECT_NEAR(c.total_overlapped(), 0.15 + 0.3 - 0.1, 1e-12);
}

TEST(Epoch, IterationsCeiling) {
  EXPECT_EQ(iterations_per_epoch(100, 32), 4u);
  EXPECT_EQ(iterations_per_epoch(96, 32), 3u);
  EXPECT_EQ(iterations_per_epoch(nn::kImageNetTrainImages, 2048), 626u);
}

TEST(Epoch, ScalesIterationCost) {
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto c = batch_parallel_cost(net, 2048, 64, m);
  EXPECT_DOUBLE_EQ(epoch_seconds(c, 2048 * 10, 2048), 10.0 * c.total());
}

TEST(Strategy, RejectsPoolLayers) {
  const auto net = nn::alexnet_spec();  // includes pools
  EXPECT_THROW(batch_parallel_cost(net, 256, 8, machine()), Error);
}

TEST(DomainParallel, Eq7FcFallsBackToFullGather) {
  std::vector<nn::LayerSpec> net{nn::conv_spec("c", 4, 16, 16, 4, 3, 1, 1),
                                 nn::fc_spec("f", 4 * 16 * 16, 10)};
  const auto m = machine();
  const auto c = domain_parallel_cost(net, 32, 4, m);
  // FC layer charged a full-input all-gather.
  const auto& fc = c.layers[1];
  EXPECT_DOUBLE_EQ(fc.halo.bandwidth,
                   m.word_time() * 32.0 * (4 * 16 * 16) * 3.0 / 4.0);
  // Conv layer pays halo + full-weight all-reduce.
  EXPECT_GT(c.layers[0].halo.total(), 0.0);
  EXPECT_GT(c.layers[0].ar_dw.total(), 0.0);
}

TEST(ChooseRoles, EarlyConvLayersGoDomainAtScale) {
  // Paper §2.4: "it is better to use domain parallelism for the initial
  // layers of the network, since the activation size is large", while FC
  // layers must stay model-parallel.
  const auto net = alexnet_weighted();
  const auto m = machine();
  const auto roles = choose_roles(net, /*batch=*/512, /*pr=*/8, /*pc=*/512, m);
  ASSERT_EQ(roles.size(), 8u);
  EXPECT_EQ(roles[0], LayerRole::Domain);  // conv1: huge activations
  for (std::size_t i = 5; i < 8; ++i) EXPECT_EQ(roles[i], LayerRole::Model);
}

TEST(ChooseRoles, TrivialPrLeavesAllModel) {
  const auto net = alexnet_weighted();
  const auto roles = choose_roles(net, 512, /*pr=*/1, /*pc=*/64, machine());
  for (const auto r : roles) EXPECT_EQ(r, LayerRole::Model);
}

}  // namespace
}  // namespace mbd::costmodel
