// Negative tests for the static schedule checks: hand-built recordings with
// planted defects must be flagged with the exact (rank, op index) of the
// offending event, and minimal clean schedules must pass every check.
#include "mbd/analysis/schedule_checks.hpp"

#include <gtest/gtest.h>

#include "mbd/comm/schedule_recorder.hpp"

namespace mbd::analysis {
namespace {

using comm::CollectiveDesc;
using comm::OpKind;
using comm::ScheduleEvent;
using comm::ScheduleEventKind;
using comm::ScheduleRecording;

ScheduleEvent send_ev(std::uint64_t ctx, int dst, int tag, std::uint64_t bytes,
                      comm::Coll coll = comm::Coll::PointToPoint) {
  ScheduleEvent ev;
  ev.kind = ScheduleEventKind::Send;
  ev.context = ctx;
  ev.peer = dst;
  ev.tag = tag;
  ev.bytes = bytes;
  ev.coll = coll;
  return ev;
}

ScheduleEvent recv_ev(std::uint64_t ctx, int src, int tag,
                      std::uint64_t bytes) {
  ScheduleEvent ev;
  ev.kind = ScheduleEventKind::Recv;
  ev.context = ctx;
  ev.peer = src;
  ev.tag = tag;
  ev.bytes = bytes;
  return ev;
}

ScheduleEvent coll_ev(std::uint64_t ctx, int comm_rank, int comm_size,
                      std::size_t count) {
  ScheduleEvent ev;
  ev.kind = ScheduleEventKind::CollEnter;
  ev.context = ctx;
  ev.comm_rank = comm_rank;
  ev.comm_size = comm_size;
  ev.desc.kind = OpKind::AllReduce;
  ev.desc.count = count;
  ev.desc.elem_size = 4;
  ev.desc.elem_type = "float";
  ev.desc.reduce_op = "plus";
  return ev;
}

ScheduleEvent nb_post(std::uint64_t token, const char* what) {
  ScheduleEvent ev;
  ev.kind = ScheduleEventKind::NbPost;
  ev.token = token;
  ev.what = what;
  return ev;
}

ScheduleEvent nb_done(std::uint64_t token) {
  ScheduleEvent ev;
  ev.kind = ScheduleEventKind::NbDone;
  ev.token = token;
  return ev;
}

ScheduleEvent step_end(std::uint64_t iteration) {
  ScheduleEvent ev;
  ev.kind = ScheduleEventKind::StepEnd;
  ev.token = iteration;
  return ev;
}

TEST(ScheduleChecks, CleanScheduleHasNoViolations) {
  ScheduleRecording rec(2);
  // Matched collective entries, a consumed message each way, a closed
  // nonblocking handle, and an agreed engine-step boundary.
  rec.ranks[0].events = {coll_ev(7, 0, 2, 8), send_ev(7, 1, 0, 32),
                         recv_ev(7, 1, 0, 32), nb_post(1, "iallreduce"),
                         nb_done(1),           step_end(0)};
  rec.ranks[1].events = {coll_ev(7, 1, 2, 8), send_ev(7, 0, 0, 32),
                         recv_ev(7, 0, 0, 32), nb_post(1, "iallreduce"),
                         nb_done(1),           step_end(0)};
  EXPECT_TRUE(run_all_checks(rec, nullptr).empty());
}

TEST(ScheduleChecks, SendAfterRecvInProgramOrderIsNotADeadlock) {
  // Rank 1's recv precedes nothing it depends on: the matching send exists
  // on rank 0, so the greedy replay completes.
  ScheduleRecording rec(2);
  rec.ranks[0].events = {send_ev(3, 1, 1, 16)};
  rec.ranks[1].events = {recv_ev(3, 0, 1, 16)};
  EXPECT_TRUE(check_deadlock_free(rec).empty());
}

TEST(ScheduleChecks, CollectiveCountMismatchIsFlaggedAtExactOp) {
  ScheduleRecording rec(2);
  rec.ranks[0].events = {coll_ev(7, 0, 2, 8)};
  rec.ranks[1].events = {coll_ev(7, 1, 2, 16)};  // disagrees on count
  const auto v = check_collective_matching(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::CollectiveMismatch);
  EXPECT_EQ(v[0].rank, 1);
  EXPECT_EQ(v[0].op_index, 0u);
  EXPECT_NE(v[0].detail.find("count=16"), std::string::npos) << v[0].detail;
}

TEST(ScheduleChecks, CollectiveSequenceLengthMismatchIsFlagged) {
  ScheduleRecording rec(2);
  rec.ranks[0].events = {coll_ev(7, 0, 2, 8), coll_ev(7, 0, 2, 8)};
  rec.ranks[1].events = {coll_ev(7, 1, 2, 8)};  // one collective short
  const auto v = check_collective_matching(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::CollectiveMismatch);
  EXPECT_EQ(v[0].rank, 1);  // attributed to the rank that fell short
  EXPECT_EQ(v[0].op_index, 0u);
}

TEST(ScheduleChecks, MissingParticipantIsFlagged) {
  ScheduleRecording rec(2);
  // Rank 0 claims a 2-rank communicator; rank 1 never shows up on it.
  rec.ranks[0].events = {coll_ev(9, 0, 2, 8)};
  const auto v = check_collective_matching(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::CollectiveMismatch);
  EXPECT_EQ(v[0].rank, 0);
  EXPECT_EQ(v[0].op_index, 0u);
}

TEST(ScheduleChecks, HeadToHeadBlockingRecvsDeadlock) {
  // The classic exchange deadlock: both ranks post the blocking receive
  // before the send. Under buffered-send replay neither receive can ever be
  // satisfied, so both ranks stall at op 0.
  ScheduleRecording rec(2);
  rec.ranks[0].events = {recv_ev(3, 1, 5, 64), send_ev(3, 1, 5, 64)};
  rec.ranks[1].events = {recv_ev(3, 0, 5, 64), send_ev(3, 0, 5, 64)};
  const auto v = check_deadlock_free(rec);
  ASSERT_EQ(v.size(), 2u);
  for (const auto& viol : v) {
    EXPECT_EQ(viol.kind, ViolationKind::Deadlock);
    EXPECT_EQ(viol.op_index, 0u);
  }
  EXPECT_EQ(v[0].rank, 0);
  EXPECT_EQ(v[1].rank, 1);
}

TEST(ScheduleChecks, PipelineBubbleDeadlockIsFlaggedAtExactOp) {
  // A mis-scheduled two-stage pipeline: the head stage stalls the steady
  // state by demanding microbatch 1's gradient (tag 3) before sending
  // microbatch 1's activation (tag 2), while the tail blocks receiving that
  // very activation before it could ever produce the gradient. Rank 0's op 0
  // and rank 1's op 0 complete (microbatch 0's activation flows); both ranks
  // then stall at op 1 — the checker must name exactly that op on each.
  ScheduleRecording rec(2);
  rec.ranks[0].events = {send_ev(9, 1, /*fwd mb0*/ 0, 48),
                         recv_ev(9, 1, /*bwd mb1*/ 3, 48),
                         send_ev(9, 1, /*fwd mb1*/ 2, 48)};
  rec.ranks[1].events = {recv_ev(9, 0, /*fwd mb0*/ 0, 48),
                         recv_ev(9, 0, /*fwd mb1*/ 2, 48),
                         send_ev(9, 0, /*bwd mb1*/ 3, 48)};
  const auto v = check_deadlock_free(rec);
  ASSERT_EQ(v.size(), 2u);
  for (const auto& viol : v) EXPECT_EQ(viol.kind, ViolationKind::Deadlock);
  EXPECT_EQ(v[0].rank, 0);
  EXPECT_EQ(v[0].op_index, 1u);
  EXPECT_EQ(v[1].rank, 1);
  EXPECT_EQ(v[1].op_index, 1u);
}

TEST(ScheduleChecks, UnconsumedMessageIsFlaggedAtSendIndex) {
  ScheduleRecording rec(2);
  rec.ranks[0].events = {send_ev(3, 1, 1, 16), send_ev(3, 1, 2, 24)};
  rec.ranks[1].events = {recv_ev(3, 0, 1, 16)};  // tag 2 never received
  const auto v = check_deadlock_free(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::UnconsumedMessage);
  EXPECT_EQ(v[0].rank, 0);
  EXPECT_EQ(v[0].op_index, 1u);
}

TEST(ScheduleChecks, UnwaitedHandleIsALeakAtStepEnd) {
  ScheduleRecording rec(1);
  rec.ranks[0].events = {nb_post(1, "iallreduce(dW)"), step_end(0)};
  const auto v = check_handle_lifetimes(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::HandleLeak);
  EXPECT_EQ(v[0].rank, 0);
  EXPECT_EQ(v[0].op_index, 0u);  // points at the NbPost, not the StepEnd
  EXPECT_NE(v[0].detail.find("iallreduce(dW)"), std::string::npos);
}

TEST(ScheduleChecks, UnwaitedHandleIsALeakAtEndOfSchedule) {
  ScheduleRecording rec(1);
  rec.ranks[0].events = {nb_post(4, "ireduce")};
  const auto v = check_handle_lifetimes(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::HandleLeak);
  EXPECT_NE(v[0].detail.find("end of schedule"), std::string::npos);
}

TEST(ScheduleChecks, CloseOfUnknownTokenIsFlagged) {
  ScheduleRecording rec(1);
  rec.ranks[0].events = {nb_done(9)};
  const auto v = check_handle_lifetimes(rec);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::HandleLeak);
  EXPECT_EQ(v[0].op_index, 0u);
}

TEST(ScheduleChecks, HandleClosedBeforeStepEndIsClean) {
  ScheduleRecording rec(1);
  rec.ranks[0].events = {nb_post(1, "iallreduce"), nb_done(1), step_end(0),
                         nb_post(2, "iallreduce"), nb_done(2), step_end(1)};
  EXPECT_TRUE(check_handle_lifetimes(rec).empty());
}

}  // namespace
}  // namespace mbd::analysis
