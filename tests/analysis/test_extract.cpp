// End-to-end analyzer tests: extract real trainer schedules (compute
// elided) and prove them clean, byte-exact against the closed forms — and
// show that a tampered schedule is caught.
#include "mbd/analysis/extract.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mbd/analysis/schedule_checks.hpp"
#include "mbd/comm/schedule_recorder.hpp"
#include "mbd/nn/models.hpp"

namespace mbd::analysis {
namespace {

using costmodel::TrainerKind;
using parallel::GridShape;
using parallel::ReduceMode;

std::vector<nn::LayerSpec> conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 8, false));
  return specs;
}

AnalyzerConfig make_config(TrainerKind kind, GridShape grid, ReduceMode mode) {
  AnalyzerConfig cfg;
  cfg.kind = kind;
  cfg.grid = grid;
  cfg.mode = mode;
  switch (kind) {
    case TrainerKind::DomainParallel:
    case TrainerKind::Hybrid:
      cfg.specs = conv_net();
      cfg.batch = 8;
      break;
    case TrainerKind::MixedGrid:
      cfg.specs = nn::small_cnn_spec(2, 8, 8);
      cfg.batch = 16;
      break;
    default:
      cfg.specs = nn::mlp_spec({10, 24, 12, 12});
      cfg.batch = 16;
      break;
  }
  return cfg;
}

std::string describe_all(const std::vector<Violation>& vs) {
  std::string out;
  for (const auto& v : vs) out += v.describe() + '\n';
  return out;
}

TEST(Extract, AllTrainersProvenCleanOnBothModes) {
  const std::vector<TrainerKind> kinds = {
      TrainerKind::BatchParallel, TrainerKind::ModelParallel,
      TrainerKind::Integrated15D, TrainerKind::DomainParallel,
      TrainerKind::Hybrid,        TrainerKind::MixedGrid};
  for (const TrainerKind kind : kinds) {
    for (const GridShape grid : {GridShape{2, 2}, GridShape{3, 2}}) {
      for (const ReduceMode mode :
           {ReduceMode::Blocking, ReduceMode::Overlapped}) {
        const auto cfg = make_config(kind, grid, mode);
        const CaseResult result = analyze_case(cfg);
        EXPECT_TRUE(result.clean())
            << result.trainer << " " << grid.pr << "x" << grid.pc << " "
            << result.mode << ":\n"
            << describe_all(result.violations);
        EXPECT_GT(result.events, 0u);
        EXPECT_GT(result.allreduce_bytes + result.allgather_bytes +
                      result.p2p_bytes,
                  0u);
      }
    }
  }
}

TEST(Extract, UnevenPartitionsAreByteExactToo) {
  // 23 and 11 divide by neither grid extent and batch 18 splits unevenly:
  // the ring all-gatherv and uneven ring all-reduce forms carry the check.
  for (const TrainerKind kind :
       {TrainerKind::ModelParallel, TrainerKind::Integrated15D}) {
    AnalyzerConfig cfg = make_config(kind, {2, 4}, ReduceMode::Blocking);
    cfg.specs = nn::mlp_spec({10, 23, 11, 12});
    cfg.batch = 18;
    const CaseResult result = analyze_case(cfg);
    EXPECT_TRUE(result.clean())
        << result.trainer << ":\n" << describe_all(result.violations);
  }
}

TEST(Extract, RecordsOneStepEndPerIterationPerRank) {
  AnalyzerConfig cfg =
      make_config(TrainerKind::BatchParallel, {2, 2}, ReduceMode::Blocking);
  cfg.iterations = 4;
  const comm::ScheduleRecording rec = extract_schedule(cfg);
  ASSERT_EQ(rec.size(), 4);
  for (const auto& rank : rec.ranks) {
    std::size_t steps = 0;
    for (const auto& ev : rank.events)
      if (ev.kind == comm::ScheduleEventKind::StepEnd) ++steps;
    EXPECT_EQ(steps, cfg.iterations);
  }
}

TEST(Extract, TamperedScheduleFailsTheTrafficCheck) {
  const AnalyzerConfig cfg =
      make_config(TrainerKind::BatchParallel, {2, 2}, ReduceMode::Blocking);
  comm::ScheduleRecording rec = extract_schedule(cfg);
  const TrafficExpectation expect = expectation_for(cfg);
  ASSERT_TRUE(check_traffic(rec, expect).empty());

  // Inflate one steady-state all-reduce send by 4 bytes on rank 0.
  std::size_t step = 0;
  bool tampered = false;
  for (auto& ev : rec.ranks[0].events) {
    if (ev.kind == comm::ScheduleEventKind::StepEnd) {
      ++step;
    } else if (step == 1 && ev.kind == comm::ScheduleEventKind::Send &&
               ev.coll == comm::Coll::AllReduce) {
      ev.bytes += 4;
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  const auto v = check_traffic(rec, expect);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].kind, ViolationKind::TrafficMismatch);
  EXPECT_EQ(v[0].rank, 0);
}

TEST(Extract, ExpectationMatchesConfig) {
  const AnalyzerConfig cfg =
      make_config(TrainerKind::Hybrid, {4, 2}, ReduceMode::Blocking);
  const TrafficExpectation e = expectation_for(cfg);
  EXPECT_EQ(e.kind, TrainerKind::Hybrid);
  EXPECT_EQ(e.pr, 4);
  EXPECT_EQ(e.pc, 2);
  EXPECT_EQ(e.batch, cfg.batch);
  EXPECT_EQ(e.specs.size(), cfg.specs.size());
}

}  // namespace
}  // namespace mbd::analysis
