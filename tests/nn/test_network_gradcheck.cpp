// End-to-end finite-difference gradient check of a whole network through
// the softmax cross-entropy loss — validates the composition of every
// layer's backward pass (conv + relu + pool + dropout + fc) at once.
#include <gtest/gtest.h>

#include "mbd/nn/loss.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::nn {
namespace {

using tensor::Matrix;

double loss_of(Network& net, const Matrix& x, std::span<const int> labels) {
  const Matrix logits = net.forward(x);
  return softmax_cross_entropy(logits, labels, x.cols()).loss_sum /
         static_cast<double>(x.cols());
}

/// FD-check dJ/dw for a sample of weights of every layer in `net`.
void check_network(Network& net, const Matrix& x,
                   std::span<const int> labels, double tolerance) {
  // Analytic gradient.
  const Matrix logits = net.forward(x);
  const auto lr = softmax_cross_entropy(logits, labels, x.cols());
  net.backward(lr.dlogits);
  const float eps = 3e-3f;
  Rng rng(3);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    auto w = net.layer(li).weights();
    auto g = net.layer(li).grads();
    if (w.empty()) continue;
    // Snapshot the analytic gradients before FD perturbs forward state.
    std::vector<float> g_snapshot(g.begin(), g.end());
    const std::size_t checks = std::min<std::size_t>(w.size(), 10);
    for (std::size_t t = 0; t < checks; ++t) {
      const std::size_t i = rng.uniform_index(w.size());
      const float orig = w[i];
      w[i] = orig + eps;
      const double jp = loss_of(net, x, labels);
      w[i] = orig - eps;
      const double jm = loss_of(net, x, labels);
      w[i] = orig;
      const double fd = (jp - jm) / (2.0 * eps);
      // Absolute band plus a relative band for the float32 forward noise and
      // the softmax curvature that the FD quotient picks up.
      EXPECT_NEAR(g_snapshot[i], fd, tolerance + 0.03 * std::abs(fd))
          << "layer " << li << " (" << net.layer(li).name() << ") weight "
          << i;
    }
  }
}

TEST(NetworkGradCheck, MlpThroughLoss) {
  Network net = build_network(mlp_spec({6, 10, 4}), {.seed = 1});
  Rng rng(2);
  const Matrix x = Matrix::random_normal(6, 5, rng, 1.0f);
  std::vector<int> labels{0, 1, 2, 3, 0};
  check_network(net, x, labels, 5e-3);
}

TEST(NetworkGradCheck, ConvStackThroughLoss) {
  // ReLU-free conv stack so the loss is smooth in the weights (max-pool and
  // ReLU kinks make finite differences unreliable under perturbation; their
  // backward passes are covered by the per-layer checks and by the
  // parallel-equals-sequential trainer tests, which include pooling).
  std::vector<LayerSpec> specs;
  specs.push_back(conv_spec("conv1", 2, 6, 6, 4, 3, 1, 1, /*relu=*/false));
  specs.push_back(conv_spec("conv2", 4, 6, 6, 2, 3, 1, 1, /*relu=*/false));
  specs.push_back(fc_spec("fc", 2 * 6 * 6, 3, /*relu=*/false));
  Network net = build_network(specs, {.seed = 4});
  Rng rng(5);
  Matrix x = Matrix::random_normal(2 * 6 * 6, 3, rng, 1.0f);
  std::vector<int> labels{0, 1, 2};
  check_network(net, x, labels, 8e-3);
}

TEST(NetworkGradCheck, MlpWithDropoutThroughLoss) {
  // Linear hidden layers (no ReLU) so the finite differences never straddle
  // an activation kink; the dropout mask is frozen by the batch context, so
  // FD sees the same deterministic subnetwork as the analytic gradient.
  BuildOptions opts;
  opts.seed = 6;
  opts.dropout_prob = 0.25;
  std::vector<LayerSpec> specs{fc_spec("a", 6, 12, /*relu=*/false),
                               fc_spec("b", 12, 12, /*relu=*/false),
                               fc_spec("c", 12, 3, /*relu=*/false)};
  Network net = build_network(specs, opts);
  net.set_batch_context(/*iteration=*/2, /*sample_offset=*/10);
  Rng rng(7);
  const Matrix x = Matrix::random_normal(6, 4, rng, 1.0f);
  std::vector<int> labels{2, 1, 0, 1};
  check_network(net, x, labels, 5e-3);
}

}  // namespace
}  // namespace mbd::nn
