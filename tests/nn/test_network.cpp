#include "mbd/nn/network.hpp"

#include <gtest/gtest.h>

#include "mbd/nn/models.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/check.hpp"

namespace mbd::nn {
namespace {

TEST(Network, BuildMlpLayerCount) {
  Network net = build_network(mlp_spec({8, 16, 4}));
  // fc1, relu, fc2 — no relu after the output layer.
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.num_params(), 8u * 16 + 16 * 4);
}

TEST(Network, BuildCnnIncludesPool) {
  Network net = build_network(small_cnn_spec(3, 8, 10));
  // conv1+relu, conv2+relu, pool, fc1+relu, fc2 = 8 layers.
  EXPECT_EQ(net.num_layers(), 8u);
}

TEST(Network, BuildWithDropoutAfterHiddenFc) {
  BuildOptions opts;
  opts.dropout_prob = 0.5;
  Network net = build_network(mlp_spec({8, 16, 16, 4}), opts);
  // fc1, relu, drop, fc2, relu, drop, fc3.
  EXPECT_EQ(net.num_layers(), 7u);
}

TEST(Network, ForwardShapes) {
  Network net = build_network(mlp_spec({8, 16, 4}));
  Rng rng(1);
  const auto x = tensor::Matrix::random_normal(8, 5, rng, 1.0f);
  const auto y = net.forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 5u);
}

TEST(Network, SaveLoadRoundTrip) {
  Network a = build_network(mlp_spec({8, 16, 4}), {.seed = 1});
  Network b = build_network(mlp_spec({8, 16, 4}), {.seed = 2});
  const auto pa = a.save_params();
  b.load_params(pa);
  EXPECT_EQ(b.save_params(), pa);
}

TEST(Network, LoadRejectsWrongSize) {
  Network a = build_network(mlp_spec({8, 16, 4}));
  std::vector<float> flat(3, 0.0f);
  EXPECT_THROW(a.load_params(flat), Error);
}

TEST(Network, SameSeedSameWeights) {
  Network a = build_network(mlp_spec({8, 16, 4}), {.seed = 7});
  Network b = build_network(mlp_spec({8, 16, 4}), {.seed = 7});
  EXPECT_EQ(a.save_params(), b.save_params());
}

TEST(Network, SgdStepMovesAgainstGradient) {
  Network net = build_network(mlp_spec({4, 4, 2}));
  Rng rng(3);
  const auto x = tensor::Matrix::random_normal(4, 3, rng, 1.0f);
  const auto y = net.forward(x);
  tensor::Matrix dy = tensor::Matrix::filled(y.rows(), y.cols(), 1.0f);
  net.backward(dy);
  const auto before = net.save_params();
  net.sgd_step(0.1f);
  const auto after = net.save_params();
  // Parameters with nonzero gradient must move by exactly -lr·g.
  auto g0 = net.layer(0).grads();
  bool moved = false;
  for (std::size_t i = 0; i < g0.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] - 0.1f * g0[i], 1e-6f);
    if (g0[i] != 0.0f) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Trainer, LossDecreasesOnSyntheticData) {
  const auto data = make_synthetic_dataset(16, 4, 256, /*seed=*/5);
  Network net = build_network(mlp_spec({16, 32, 4}), {.seed = 11});
  TrainConfig cfg;
  cfg.batch = 32;
  cfg.lr = 0.05f;
  cfg.iterations = 60;
  const auto losses = train_sgd(net, data, cfg);
  ASSERT_EQ(losses.size(), 60u);
  // Average of the last 10 iterations well below the first.
  double head = losses[0];
  double tail = 0.0;
  for (std::size_t i = 50; i < 60; ++i) tail += losses[i];
  tail /= 10.0;
  EXPECT_LT(tail, 0.7 * head);
}

TEST(Trainer, CnnTrainsOnSyntheticImages) {
  const std::size_t hw = 8;
  const auto specs = small_cnn_spec(3, hw, 4);
  const auto data = make_synthetic_dataset(3 * hw * hw, 4, 64, /*seed=*/6);
  Network net = build_network(specs, {.seed = 13});
  TrainConfig cfg;
  cfg.batch = 16;
  cfg.lr = 0.02f;
  cfg.iterations = 25;
  const auto losses = train_sgd(net, data, cfg);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Trainer, DeterministicAcrossRuns) {
  const auto data = make_synthetic_dataset(8, 2, 64, 7);
  TrainConfig cfg;
  cfg.batch = 8;
  cfg.lr = 0.1f;
  cfg.iterations = 5;
  Network a = build_network(mlp_spec({8, 8, 2}), {.seed = 3});
  Network b = build_network(mlp_spec({8, 8, 2}), {.seed = 3});
  const auto la = train_sgd(a, data, cfg);
  const auto lb = train_sgd(b, data, cfg);
  EXPECT_EQ(la, lb);
  EXPECT_EQ(a.save_params(), b.save_params());
}

TEST(Evaluate, UntrainedNetNearChance) {
  const auto data = make_synthetic_dataset(16, 4, 200, /*seed=*/15);
  Network net = build_network(mlp_spec({16, 32, 4}), {.seed = 21});
  const double acc = evaluate_accuracy(net, data);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Evaluate, TrainingImprovesAccuracy) {
  const auto data = make_synthetic_dataset(16, 4, 200, /*seed=*/15);
  Network net = build_network(mlp_spec({16, 32, 4}), {.seed = 21});
  const double before = evaluate_accuracy(net, data);
  TrainConfig cfg;
  cfg.batch = 25;
  cfg.lr = 0.05f;
  cfg.iterations = 80;
  (void)train_sgd(net, data, cfg);
  const double after = evaluate_accuracy(net, data);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.85);  // well-separated Gaussian clusters
}

TEST(Evaluate, BatchSizeDoesNotChangeResult) {
  const auto data = make_synthetic_dataset(8, 3, 50, /*seed=*/17);
  Network net = build_network(mlp_spec({8, 16, 3}), {.seed = 23});
  EXPECT_DOUBLE_EQ(evaluate_accuracy(net, data, 7),
                   evaluate_accuracy(net, data, 50));
}

TEST(Network, MomentumStepMatchesHandComputedRecurrence) {
  Network net = build_network(mlp_spec({4, 4, 2}), {.seed = 31});
  Rng rng(9);
  const auto x = tensor::Matrix::random_normal(4, 3, rng, 1.0f);
  auto step = [&] {
    const auto y = net.forward(x);
    net.backward(tensor::Matrix::filled(y.rows(), y.cols(), 1.0f));
    net.sgd_step(0.1f, 0.9f);
  };
  const auto w0 = net.save_params();
  // First step: v = g, w1 = w0 − lr·g.
  step();
  const auto w1 = net.save_params();
  auto g1 = std::vector<float>(net.layer(0).grads().begin(),
                               net.layer(0).grads().end());
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_NEAR(w1[i], w0[i] - 0.1f * g1[i], 1e-6f);
  // Second step: v = 0.9·g1 + g2, w2 = w1 − lr·v.
  step();
  const auto w2 = net.save_params();
  auto g2 = std::vector<float>(net.layer(0).grads().begin(),
                               net.layer(0).grads().end());
  for (std::size_t i = 0; i < g2.size(); ++i)
    EXPECT_NEAR(w2[i], w1[i] - 0.1f * (0.9f * g1[i] + g2[i]), 1e-5f);
}

TEST(Dataset, SyntheticBalancedLabels) {
  const auto data = make_synthetic_dataset(4, 3, 30, 9);
  std::vector<int> counts(3, 0);
  for (int l : data.labels) counts[static_cast<std::size_t>(l)]++;
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[2], 10);
}

}  // namespace
}  // namespace mbd::nn
