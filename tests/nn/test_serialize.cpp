#include "mbd/nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mbd/nn/models.hpp"
#include "mbd/support/check.hpp"

namespace mbd::nn {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Checkpoint, RoundTripRestoresExactParams) {
  Network a = build_network(mlp_spec({8, 16, 4}), {.seed = 3});
  const std::string path = temp_path("ckpt_roundtrip.bin");
  save_checkpoint(a, path);
  Network b = build_network(mlp_spec({8, 16, 4}), {.seed = 99});
  EXPECT_NE(a.save_params(), b.save_params());
  load_checkpoint(b, path);
  EXPECT_EQ(a.save_params(), b.save_params());
  std::remove(path.c_str());
}

TEST(Checkpoint, WorksForCnn) {
  Network a = build_network(small_cnn_spec(2, 8, 4), {.seed = 5});
  const std::string path = temp_path("ckpt_cnn.bin");
  save_checkpoint(a, path);
  Network b = build_network(small_cnn_spec(2, 8, 4), {.seed = 6});
  load_checkpoint(b, path);
  EXPECT_EQ(a.save_params(), b.save_params());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  Network a = build_network(mlp_spec({8, 16, 4}), {.seed = 3});
  const std::string path = temp_path("ckpt_wrong.bin");
  save_checkpoint(a, path);
  Network b = build_network(mlp_spec({8, 32, 4}), {.seed = 3});
  EXPECT_THROW(load_checkpoint(b, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = temp_path("ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  Network b = build_network(mlp_spec({8, 16, 4}));
  EXPECT_THROW(load_checkpoint(b, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedFile) {
  Network a = build_network(mlp_spec({8, 16, 4}), {.seed = 3});
  const std::string path = temp_path("ckpt_trunc.bin");
  save_checkpoint(a, path);
  // Truncate to half size.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  Network b = build_network(mlp_spec({8, 16, 4}));
  EXPECT_THROW(load_checkpoint(b, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Network b = build_network(mlp_spec({8, 16, 4}));
  EXPECT_THROW(load_checkpoint(b, temp_path("does_not_exist.bin")), Error);
}

}  // namespace
}  // namespace mbd::nn
