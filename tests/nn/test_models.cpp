// Model-zoo specs beyond AlexNet (covered in test_layer_spec): the RNN proxy
// and the machine-model variants its bench uses.
#include <gtest/gtest.h>

#include "mbd/costmodel/machine.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/check.hpp"

namespace mbd::nn {
namespace {

TEST(RnnProxy, StructureAndCounts) {
  const auto net = rnn_proxy_spec(128, 256, 4, 10);
  ASSERT_EQ(net.size(), 6u);  // embed + 4 steps + readout
  EXPECT_EQ(net.front().fc_in, 128u);
  EXPECT_EQ(net.back().fc_out, 10u);
  EXPECT_FALSE(net.back().relu_after);
  for (std::size_t i = 1; i + 1 < net.size(); ++i) {
    EXPECT_EQ(net[i].fc_in, 256u);
    EXPECT_EQ(net[i].fc_out, 256u);
    EXPECT_TRUE(net[i].relu_after);
  }
  EXPECT_EQ(total_weights(net),
            128u * 256 + 4u * 256 * 256 + 256u * 10);
}

TEST(RnnProxy, ChainsAndTrains) {
  const auto specs = rnn_proxy_spec(12, 16, 3, 4);
  check_chain(specs);
  const auto data = make_synthetic_dataset(12, 4, 64, 83);
  Network net = build_network(specs, {.seed = 2});
  TrainConfig cfg;
  cfg.batch = 16;
  cfg.lr = 0.02f;
  cfg.iterations = 25;
  const auto losses = train_sgd(net, data, cfg);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(RnnProxy, RejectsZeroSteps) {
  EXPECT_THROW(rnn_proxy_spec(8, 8, 0, 2), Error);
}

TEST(MachineVariants, FastClusterParameters) {
  const auto m = costmodel::MachineModel::fast_cluster();
  EXPECT_DOUBLE_EQ(m.alpha, 1e-6);
  EXPECT_DOUBLE_EQ(1.0 / m.beta, 25e9);
  // 12x faster compute than the KNL curve at every batch point.
  const auto knl = costmodel::MachineModel::cori_knl();
  for (double b : {1.0, 64.0, 256.0, 2048.0}) {
    EXPECT_NEAR(knl.compute.seconds_per_image(b) /
                    m.compute.seconds_per_image(b),
                12.0, 1e-6);
  }
}

TEST(MachineVariants, WithNetworkScales) {
  const auto base = costmodel::MachineModel::cori_knl();
  const auto scaled = base.with_network(3.0, 0.5);
  EXPECT_DOUBLE_EQ(scaled.alpha, 3.0 * base.alpha);
  EXPECT_DOUBLE_EQ(scaled.beta, 0.5 * base.beta);
  EXPECT_THROW(base.with_network(0.0, 1.0), Error);
}

}  // namespace
}  // namespace mbd::nn
