#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/check.hpp"

namespace mbd::nn {
namespace {

TEST(Shuffle, PermutesWithoutLoss) {
  const auto data = make_synthetic_dataset(4, 3, 30, 7);
  const auto shuffled = shuffle_dataset(data, 99);
  ASSERT_EQ(shuffled.size(), data.size());
  // Same multiset of (first-feature, label) pairs.
  auto key = [](const Dataset& d, std::size_t j) {
    return std::pair{d.inputs(0, j), d.labels[j]};
  };
  std::multiset<std::pair<float, int>> a, b;
  for (std::size_t j = 0; j < data.size(); ++j) {
    a.insert(key(data, j));
    b.insert(key(shuffled, j));
  }
  EXPECT_EQ(a, b);
  // And actually permuted.
  bool moved = false;
  for (std::size_t j = 0; j < data.size(); ++j)
    if (key(data, j) != key(shuffled, j)) moved = true;
  EXPECT_TRUE(moved);
}

TEST(Shuffle, DeterministicPerSeed) {
  const auto data = make_synthetic_dataset(4, 3, 30, 7);
  const auto a = shuffle_dataset(data, 5);
  const auto b = shuffle_dataset(data, 5);
  const auto c = shuffle_dataset(data, 6);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_NE(a.labels, c.labels);
}

TEST(Shuffle, ColumnsStayCoherent) {
  // Each shuffled column must be an intact original column (inputs and
  // label move together).
  const auto data = make_synthetic_dataset(3, 2, 20, 9);
  const auto shuffled = shuffle_dataset(data, 1);
  for (std::size_t j = 0; j < shuffled.size(); ++j) {
    bool found = false;
    for (std::size_t k = 0; k < data.size() && !found; ++k) {
      bool same = data.labels[k] == shuffled.labels[j];
      for (std::size_t i = 0; i < 3 && same; ++i)
        same = data.inputs(i, k) == shuffled.inputs(i, j);
      found = same;
    }
    EXPECT_TRUE(found) << "column " << j;
  }
}

TEST(Split, FractionsAndOrder) {
  const auto data = make_synthetic_dataset(4, 2, 40, 11);
  const auto s = split_dataset(data, 0.75);
  EXPECT_EQ(s.first.size(), 30u);
  EXPECT_EQ(s.second.size(), 10u);
  EXPECT_FLOAT_EQ(s.second.inputs(2, 0), data.inputs(2, 30));
  EXPECT_EQ(s.second.labels[0], data.labels[30]);
}

TEST(Split, RejectsDegenerateFractions) {
  const auto data = make_synthetic_dataset(4, 2, 10, 13);
  EXPECT_THROW(split_dataset(data, 0.0), Error);
  EXPECT_THROW(split_dataset(data, 1.0), Error);
  EXPECT_THROW(split_dataset(data, 0.01), Error);  // ⌊0.1⌋ = 0 columns
}

TEST(Normalize, ZeroMeanUnitVariance) {
  auto data = make_synthetic_dataset(5, 3, 200, 17);
  (void)normalize_features(data);
  for (std::size_t i = 0; i < 5; ++i) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t j = 0; j < data.size(); ++j) {
      sum += data.inputs(i, j);
      sum2 += static_cast<double>(data.inputs(i, j)) * data.inputs(i, j);
    }
    EXPECT_NEAR(sum / 200.0, 0.0, 1e-4) << "row " << i;
    EXPECT_NEAR(sum2 / 200.0, 1.0, 1e-3) << "row " << i;
  }
}

TEST(Normalize, SameTransformOnHeldOutData) {
  auto data = make_synthetic_dataset(3, 2, 100, 19);
  const auto split = split_dataset(data, 0.8);
  auto train = split.first;
  auto test = split.second;
  const auto norm = normalize_features(train);
  const float before = test.inputs(1, 0);
  apply_normalization(test, norm);
  EXPECT_FLOAT_EQ(test.inputs(1, 0),
                  (before - norm.mean[1]) / norm.stddev[1]);
}

TEST(Normalize, ConstantFeatureOnlyCentered) {
  Dataset d;
  d.inputs = tensor::Matrix::filled(2, 5, 3.0f);
  d.labels.assign(5, 0);
  (void)normalize_features(d);
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_FLOAT_EQ(d.inputs(0, j), 0.0f);  // centered, not divided by 0
}

TEST(Shuffle, TrainingOnShuffledDataStillConverges) {
  const auto data =
      shuffle_dataset(make_synthetic_dataset(8, 4, 96, 23), 31);
  Network net = build_network(mlp_spec({8, 16, 4}), {.seed = 37});
  TrainConfig cfg;
  cfg.batch = 16;
  cfg.lr = 0.05f;
  cfg.iterations = 40;
  const auto losses = train_sgd(net, data, cfg);
  EXPECT_LT(losses.back(), 0.7 * losses.front());
}

}  // namespace
}  // namespace mbd::nn
