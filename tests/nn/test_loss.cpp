#include "mbd/nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mbd/support/check.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::nn {
namespace {

using tensor::Matrix;

TEST(Loss, UniformLogitsGiveLogC) {
  const std::size_t classes = 4, batch = 2;
  Matrix logits(classes, batch);  // all zero -> uniform softmax
  std::vector<int> labels{0, 3};
  const auto r = softmax_cross_entropy(logits, labels, batch);
  EXPECT_NEAR(r.loss_sum / batch, std::log(4.0), 1e-6);
}

TEST(Loss, ConfidentCorrectPredictionNearZeroLoss) {
  Matrix logits(3, 1);
  logits(1, 0) = 30.0f;
  std::vector<int> labels{1};
  const auto r = softmax_cross_entropy(logits, labels, 1);
  EXPECT_LT(r.loss_sum, 1e-6);
}

TEST(Loss, GradientIsProbsMinusOneHotOverB) {
  Matrix logits(3, 2);
  logits(0, 0) = 1.0f;
  logits(2, 1) = -0.5f;
  std::vector<int> labels{0, 2};
  const std::size_t global_b = 4;  // larger than local batch: partial shard
  const auto r = softmax_cross_entropy(logits, labels, global_b);
  Matrix probs(3, 2);
  tensor::softmax_columns(logits, probs);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      float expect = probs(i, j);
      if ((j == 0 && i == 0) || (j == 1 && i == 2)) expect -= 1.0f;
      expect /= static_cast<float>(global_b);
      EXPECT_NEAR(r.dlogits(i, j), expect, 1e-6f);
    }
}

TEST(Loss, GradientColumnsSumToZero) {
  Rng rng(1);
  Matrix logits = Matrix::random_normal(6, 5, rng, 2.0f);
  std::vector<int> labels{0, 1, 2, 3, 4};
  const auto r = softmax_cross_entropy(logits, labels, 5);
  for (std::size_t j = 0; j < 5; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 6; ++i) s += r.dlogits(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, ShardedGradientsEqualFullBatch) {
  // Batch-parallel invariant: splitting columns across two shards with the
  // same global_batch reproduces the full-batch gradient exactly.
  Rng rng(2);
  Matrix logits = Matrix::random_normal(4, 6, rng, 1.5f);
  std::vector<int> labels{0, 1, 2, 3, 0, 1};
  const auto full = softmax_cross_entropy(logits, labels, 6);
  const Matrix left = logits.col_block(0, 3);
  const Matrix right = logits.col_block(3, 6);
  const auto rl = softmax_cross_entropy(
      left, std::span<const int>(labels.data(), 3), 6);
  const auto rr = softmax_cross_entropy(
      right, std::span<const int>(labels.data() + 3, 3), 6);
  EXPECT_NEAR(rl.loss_sum + rr.loss_sum, full.loss_sum, 1e-9);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(rl.dlogits(i, j), full.dlogits(i, j));
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(rr.dlogits(i, j), full.dlogits(i, j + 3));
  }
}

TEST(Loss, SoftmaxNumericallyStableForHugeLogits) {
  Matrix logits(2, 1);
  logits(0, 0) = 1000.0f;
  logits(1, 0) = 999.0f;
  std::vector<int> labels{0};
  const auto r = softmax_cross_entropy(logits, labels, 1);
  EXPECT_TRUE(std::isfinite(r.loss_sum));
  EXPECT_NEAR(r.loss_sum, std::log(1.0 + std::exp(-1.0)), 1e-4);
}

TEST(Loss, InvalidLabelThrows) {
  Matrix logits(3, 1);
  std::vector<int> labels{5};
  EXPECT_THROW(softmax_cross_entropy(logits, labels, 1), Error);
}

TEST(Loss, LabelCountMismatchThrows) {
  Matrix logits(3, 2);
  std::vector<int> labels{0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels, 2), Error);
}

}  // namespace
}  // namespace mbd::nn
