// Eq. 2 shape algebra and the AlexNet specification (Table 1: "parameters:
// 61M", 5 conv + 3 FC layers).
#include "mbd/nn/layer_spec.hpp"

#include <gtest/gtest.h>

#include "mbd/nn/models.hpp"
#include "mbd/support/check.hpp"

namespace mbd::nn {
namespace {

TEST(LayerSpec, ConvWeightCountEq2) {
  // |W_i| = (kh·kw·X_C)·Y_C
  const LayerSpec s = conv_spec("c", 96, 27, 27, 256, 5, 1, 2);
  EXPECT_EQ(s.weight_count(), 5u * 5 * 96 * 256);
}

TEST(LayerSpec, ConvDimsEq2) {
  // d_{i-1} = X_H·X_W·X_C and d_i = ⌈X_W/s⌉⌈X_H/s⌉·Y_C (with padding).
  const LayerSpec s = conv_spec("c", 96, 27, 27, 256, 5, 1, 2);
  EXPECT_EQ(s.d_in(), 27u * 27 * 96);
  EXPECT_EQ(s.d_out(), 27u * 27 * 256);
}

TEST(LayerSpec, FcCounts) {
  const LayerSpec s = fc_spec("f", 9216, 4096);
  EXPECT_EQ(s.weight_count(), 9216u * 4096);
  EXPECT_EQ(s.d_in(), 9216u);
  EXPECT_EQ(s.d_out(), 4096u);
}

TEST(LayerSpec, PoolHasNoWeights) {
  const LayerSpec s = pool_spec("p", 96, 55, 55, 3, 2);
  EXPECT_EQ(s.weight_count(), 0u);
  EXPECT_FALSE(s.has_weights());
  EXPECT_EQ(s.d_out(), 96u * 27 * 27);
}

TEST(LayerSpec, MacsPerSample) {
  const LayerSpec fc = fc_spec("f", 10, 20);
  EXPECT_DOUBLE_EQ(fc.macs_per_sample(), 200.0);
  const LayerSpec c = conv_spec("c", 2, 4, 4, 3, 3, 1, 1);
  EXPECT_DOUBLE_EQ(c.macs_per_sample(), 2.0 * 3 * 3 * 4 * 4 * 3);
}

TEST(LayerSpec, ChainValidation) {
  auto good = mlp_spec({10, 20, 5});
  check_chain(good);  // must not throw
  std::vector<LayerSpec> bad{fc_spec("a", 10, 20), fc_spec("b", 21, 5)};
  EXPECT_THROW(check_chain(bad), Error);
}

TEST(AlexNet, HasFiveConvAndThreeFc) {
  const auto net = alexnet_spec();
  int convs = 0, fcs = 0;
  for (const auto& l : net) {
    if (l.kind == LayerKind::Conv) ++convs;
    if (l.kind == LayerKind::FullyConnected) ++fcs;
  }
  EXPECT_EQ(convs, 5);
  EXPECT_EQ(fcs, 3);
}

TEST(AlexNet, TotalParamsAbout61M) {
  const auto net = alexnet_spec();
  const std::size_t total = total_weights(net);
  // Krizhevsky's counts (weights only, no biases): ≈62.4M; Table 1 rounds
  // to 61M.
  EXPECT_GT(total, 58'000'000u);
  EXPECT_LT(total, 64'000'000u);
}

TEST(AlexNet, PerLayerWeightCounts) {
  const auto ws = weighted_layers(alexnet_spec());
  ASSERT_EQ(ws.size(), 8u);
  EXPECT_EQ(ws[0].weight_count(), 11u * 11 * 3 * 96);       // conv1
  EXPECT_EQ(ws[1].weight_count(), 5u * 5 * 96 * 256);       // conv2
  EXPECT_EQ(ws[2].weight_count(), 3u * 3 * 256 * 384);      // conv3
  EXPECT_EQ(ws[3].weight_count(), 3u * 3 * 384 * 384);      // conv4
  EXPECT_EQ(ws[4].weight_count(), 3u * 3 * 384 * 256);      // conv5
  EXPECT_EQ(ws[5].weight_count(), 9216u * 4096);            // fc6
  EXPECT_EQ(ws[6].weight_count(), 4096u * 4096);            // fc7
  EXPECT_EQ(ws[7].weight_count(), 4096u * 1000);            // fc8
}

TEST(AlexNet, ActivationShapesChain) {
  const auto net = alexnet_spec();
  check_chain(net);
  EXPECT_EQ(net.front().d_in(), 3u * 227 * 227);
  EXPECT_EQ(net.back().d_out(), 1000u);
}

TEST(AlexNet, Conv5OutputIs13x13x256) {
  const auto ws = weighted_layers(alexnet_spec());
  EXPECT_EQ(ws[4].d_out(), 13u * 13 * 256);
}

TEST(Models, MlpSpecStructure) {
  const auto net = mlp_spec({8, 16, 4});
  ASSERT_EQ(net.size(), 2u);
  EXPECT_TRUE(net[0].relu_after);
  EXPECT_FALSE(net[1].relu_after);
  EXPECT_EQ(total_weights(net), 8u * 16 + 16 * 4);
}

TEST(Models, SmallCnnChains) {
  const auto net = small_cnn_spec(3, 8, 10);
  check_chain(net);
  EXPECT_EQ(net.back().d_out(), 10u);
}

TEST(Models, WeightedLayersFiltersPools) {
  const auto net = alexnet_spec();
  const auto ws = weighted_layers(net);
  EXPECT_LT(ws.size(), net.size());
  for (const auto& l : ws) EXPECT_TRUE(l.has_weights());
}

}  // namespace
}  // namespace mbd::nn
