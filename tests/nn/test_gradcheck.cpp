// Central finite-difference gradient checks for every layer's backward pass
// and for the loss — the correctness bedrock under all the parallel trainers.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "mbd/nn/layers.hpp"
#include "mbd/nn/loss.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::nn {
namespace {

using tensor::Matrix;

/// Scalar objective: J = Σ_ij y_ij · coef_ij with fixed pseudo-random coefs,
/// so dJ/dy = coef.
Matrix make_coefs(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_normal(r, c, rng, 1.0f);
}

double objective(const Matrix& y, const Matrix& coef) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    s += static_cast<double>(y.data()[i]) * coef.data()[i];
  return s;
}

/// Check dJ/dx from backward() against central differences on a sample of
/// input coordinates.
void check_input_gradient(Layer& layer, Matrix x, double tolerance) {
  const Matrix y0 = layer.forward(x);
  const Matrix coef = make_coefs(y0.rows(), y0.cols(), 99);
  const Matrix dx = layer.backward(coef);
  ASSERT_EQ(dx.rows(), x.rows());
  ASSERT_EQ(dx.cols(), x.cols());
  const float eps = 1e-3f;
  // Sample a deterministic subset of coordinates.
  Rng rng(7);
  const std::size_t checks = std::min<std::size_t>(x.size(), 24);
  for (std::size_t t = 0; t < checks; ++t) {
    const std::size_t i = rng.uniform_index(x.size());
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double jp = objective(layer.forward(x), coef);
    x.data()[i] = orig - eps;
    const double jm = objective(layer.forward(x), coef);
    x.data()[i] = orig;
    const double fd = (jp - jm) / (2.0 * eps);
    EXPECT_NEAR(dx.data()[i], fd, tolerance)
        << "input coordinate " << i;
  }
  // Restore forward state for callers that continue using the layer.
  (void)layer.forward(x);
}

/// Check dJ/dw against central differences.
void check_weight_gradient(Layer& layer, const Matrix& x, double tolerance) {
  const Matrix y0 = layer.forward(x);
  const Matrix coef = make_coefs(y0.rows(), y0.cols(), 101);
  (void)layer.backward(coef);
  auto w = layer.weights();
  auto g = layer.grads();
  ASSERT_FALSE(w.empty());
  const float eps = 1e-3f;
  Rng rng(9);
  const std::size_t checks = std::min<std::size_t>(w.size(), 24);
  for (std::size_t t = 0; t < checks; ++t) {
    const std::size_t i = rng.uniform_index(w.size());
    const float orig = w[i];
    w[i] = orig + eps;
    const double jp = objective(layer.forward(x), coef);
    w[i] = orig - eps;
    const double jm = objective(layer.forward(x), coef);
    w[i] = orig;
    const double fd = (jp - jm) / (2.0 * eps);
    EXPECT_NEAR(g[i], fd, tolerance) << "weight coordinate " << i;
  }
}

Matrix random_input(std::size_t d, std::size_t b, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_normal(d, b, rng, 1.0f);
}

TEST(GradCheck, FullyConnectedInput) {
  Rng rng(1);
  FullyConnected fc("fc", 7, 5, rng);
  check_input_gradient(fc, random_input(7, 3, 2), 2e-2);
}

TEST(GradCheck, FullyConnectedWeights) {
  Rng rng(1);
  FullyConnected fc("fc", 7, 5, rng);
  check_weight_gradient(fc, random_input(7, 3, 2), 2e-2);
}

TEST(GradCheck, Conv2DInput) {
  Rng rng(3);
  const tensor::ConvGeom g{2, 5, 5, 3, 3, 3, 1, 1};
  Conv2D conv("conv", g, rng);
  check_input_gradient(conv, random_input(2 * 5 * 5, 2, 4), 2e-2);
}

TEST(GradCheck, Conv2DWeights) {
  Rng rng(3);
  const tensor::ConvGeom g{2, 5, 5, 3, 3, 3, 1, 1};
  Conv2D conv("conv", g, rng);
  check_weight_gradient(conv, random_input(2 * 5 * 5, 2, 4), 2e-2);
}

TEST(GradCheck, Conv2DStridedNoPad) {
  Rng rng(5);
  const tensor::ConvGeom g{3, 7, 7, 2, 3, 3, 2, 0};
  Conv2D conv("conv", g, rng);
  check_input_gradient(conv, random_input(3 * 7 * 7, 2, 6), 2e-2);
  check_weight_gradient(conv, random_input(3 * 7 * 7, 2, 6), 2e-2);
}

TEST(GradCheck, ReLUInput) {
  ReLU relu("r");
  // Keep inputs away from the kink at 0 where FD is invalid.
  Matrix x = random_input(6, 4, 7);
  for (std::size_t i = 0; i < x.size(); ++i)
    if (std::abs(x.data()[i]) < 0.05f) x.data()[i] = 0.2f;
  check_input_gradient(relu, x, 1e-2);
}

TEST(GradCheck, MaxPoolInput) {
  const tensor::ConvGeom g{2, 6, 6, 2, 2, 2, 2, 0};
  MaxPool2D pool("p", g);
  // Perturbations must not flip the argmax: spread the values out.
  Matrix x = random_input(2 * 6 * 6, 2, 8);
  x *= 10.0f;
  check_input_gradient(pool, x, 1e-2);
}

TEST(GradCheck, DropoutInput) {
  Dropout drop("d", 0.4, /*seed=*/11);
  drop.set_batch_context(3, 17);
  check_input_gradient(drop, random_input(10, 4, 9), 1e-2);
}

TEST(Dropout, MaskIsPureFunctionOfGlobalSampleIndex) {
  Dropout a("d", 0.5, 21), b("d", 0.5, 21);
  // a sees samples [0, 8); b sees the second half [4, 8) of the same batch.
  a.set_batch_context(5, 0);
  b.set_batch_context(5, 4);
  Matrix xa = random_input(6, 8, 13);
  Matrix xb = xa.col_block(4, 8);
  const Matrix ya = a.forward(xa);
  const Matrix yb = b.forward(xb);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_FLOAT_EQ(yb(i, j), ya(i, j + 4));
}

TEST(Dropout, MaskChangesAcrossIterations) {
  Dropout d("d", 0.5, 22);
  Matrix x = Matrix::filled(32, 4, 1.0f);
  d.set_batch_context(0, 0);
  const Matrix y0 = d.forward(x);
  d.set_batch_context(1, 0);
  const Matrix y1 = d.forward(x);
  EXPECT_GT(tensor::max_abs_diff(y0, y1), 0.0f);
}

TEST(Dropout, KeepRateApproximatesProbability) {
  Dropout d("d", 0.3, 23);
  int kept = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (d.kept(0, static_cast<std::uint64_t>(i), 5)) ++kept;
  EXPECT_NEAR(static_cast<double>(kept) / n, 0.7, 0.02);
}

TEST(GradCheck, SoftmaxCrossEntropyGradient) {
  const std::size_t classes = 5, batch = 3;
  Matrix logits = random_input(classes, batch, 31);
  std::vector<int> labels{1, 4, 0};
  const LossResult base = softmax_cross_entropy(logits, labels, batch);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const double jp =
        softmax_cross_entropy(logits, labels, batch).loss_sum / batch;
    logits.data()[i] = orig - eps;
    const double jm =
        softmax_cross_entropy(logits, labels, batch).loss_sum / batch;
    logits.data()[i] = orig;
    EXPECT_NEAR(base.dlogits.data()[i], (jp - jm) / (2.0 * eps), 1e-3);
  }
}

}  // namespace
}  // namespace mbd::nn
