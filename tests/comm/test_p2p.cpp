#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mbd/comm/world.hpp"
#include "mbd/support/check.hpp"

namespace mbd::comm {
namespace {

TEST(P2P, SendRecvDeliversPayload) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> msg{1, 2, 3, 4};
      c.send(1, std::span<const int>(msg));
    } else {
      auto got = c.recv<int>(0);
      ASSERT_EQ(got.size(), 4u);
      EXPECT_EQ(got[3], 4);
    }
  });
}

TEST(P2P, TagsAreMatchedNotOrdered) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      const int a = 10, b = 20;
      c.send(1, std::span<const int>(&a, 1), /*tag=*/7);
      c.send(1, std::span<const int>(&b, 1), /*tag=*/8);
    } else {
      // Receive in the opposite order of sending.
      auto b = c.recv<int>(0, /*tag=*/8);
      auto a = c.recv<int>(0, /*tag=*/7);
      EXPECT_EQ(a[0], 10);
      EXPECT_EQ(b[0], 20);
    }
  });
}

TEST(P2P, SameTagIsFifo) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, std::span<const int>(&i, 1));
    } else {
      for (int i = 0; i < 10; ++i) {
        auto v = c.recv<int>(0);
        EXPECT_EQ(v[0], i);
      }
    }
  });
}

TEST(P2P, SendRecvExchange) {
  World world(2);
  world.run([](Comm& c) {
    const int mine = c.rank();
    const int peer = 1 - c.rank();
    auto got = c.sendrecv(peer, std::span<const int>(&mine, 1), peer);
    EXPECT_EQ(got[0], peer);
  });
}

TEST(P2P, RingExchangeManyRanks) {
  World world(5);
  world.run([](Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    const int mine = c.rank() * 100;
    auto got = c.sendrecv(right, std::span<const int>(&mine, 1), left);
    EXPECT_EQ(got[0], left * 100);
  });
}

TEST(P2P, ExceptionInOneRankPoisonsBlockedRanks) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    if (c.rank() == 0) throw Error("rank 0 fails");
    // Rank 1 blocks forever on a message that will never arrive; the poison
    // mechanism must wake it.
    (void)c.recv<int>(0, /*tag=*/99);
  }),
               Error);
}

TEST(P2P, WorldUnusableAfterPoison) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    if (c.rank() == 0) throw Error("boom");
    (void)c.recv<int>(0);
  }),
               Error);
  EXPECT_THROW(world.run([](Comm&) {}), Error);
}

TEST(P2P, SelfSendRejected) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    const int x = 1;
    c.send(c.rank(), std::span<const int>(&x, 1));
  }),
               Error);
}

TEST(P2P, SingleRankWorldRuns) {
  World world(1);
  std::atomic<int> ran{0};
  world.run([&](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    EXPECT_EQ(c.rank(), 0);
    c.barrier();
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace mbd::comm
