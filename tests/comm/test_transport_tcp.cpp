// TCP transport: wire framing (partial writes, short reads, interleaved
// streams), mesh handshake, cross-process semantics hosted in one test
// process (N TcpTransports on loopback, one distributed World per rank),
// fault-path parity (drop + wire retransmission, peer death → RankFailure),
// and bitwise trainer equivalence against the in-process fabric.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "mbd/comm/transport_tcp.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/pipeline.hpp"
#include "mbd/parallel/recovery.hpp"

namespace mbd::comm {
namespace {

using wire::Frame;
using wire::FrameDecoder;
using wire::FrameType;

Message make_msg(std::uint64_t context, int source, int tag,
                 std::size_t payload_bytes) {
  Message m;
  m.context = context;
  m.source = source;
  m.tag = tag;
  m.trace_id = 77;
  m.seq = 5;
  m.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i)
    m.payload[i] = static_cast<std::byte>((i * 7 + static_cast<std::size_t>(tag)) & 0xFF);
  return m;
}

// Feed `bytes` to the decoder in chunks of `chunk` and collect every frame.
std::vector<Frame> decode_chunked(std::span<const std::byte> bytes,
                                  std::size_t chunk) {
  FrameDecoder dec;
  std::vector<Frame> out;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    dec.feed(bytes.subspan(off, n));
    while (auto f = dec.next()) out.push_back(std::move(*f));
  }
  EXPECT_EQ(dec.buffered(), 0u);
  return out;
}

// --- framing ----------------------------------------------------------------

TEST(TcpFraming, AllFrameTypesRoundTripUnderAnyChunking) {
  std::vector<std::byte> stream;
  const auto append = [&](std::vector<std::byte> f) {
    stream.insert(stream.end(), f.begin(), f.end());
  };
  append(wire::encode_hello(2, 4));
  append(wire::encode_message(3, make_msg(0xfeed, 1, 42, 10)));
  append(wire::encode_retry_request(3, 2));
  append(wire::encode_peer_failure(3, 1, "it broke"));
  append(wire::encode_goodbye());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, stream.size()}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const auto frames = decode_chunked(stream, chunk);
    ASSERT_EQ(frames.size(), 5u);

    EXPECT_EQ(frames[0].type, FrameType::Hello);
    EXPECT_EQ(frames[0].rank, 2);
    EXPECT_EQ(frames[0].world_size, 4);

    EXPECT_EQ(frames[1].type, FrameType::Msg);
    EXPECT_EQ(frames[1].epoch, 3);
    EXPECT_EQ(frames[1].msg.context, 0xfeedu);
    EXPECT_EQ(frames[1].msg.source, 1);
    EXPECT_EQ(frames[1].msg.tag, 42);
    EXPECT_EQ(frames[1].msg.trace_id, 77u);
    EXPECT_EQ(frames[1].msg.seq, 5u);
    EXPECT_EQ(frames[1].msg.payload, make_msg(0xfeed, 1, 42, 10).payload);

    EXPECT_EQ(frames[2].type, FrameType::RetryRequest);
    EXPECT_EQ(frames[2].epoch, 3);
    EXPECT_EQ(frames[2].rank, 2);

    EXPECT_EQ(frames[3].type, FrameType::PeerFailure);
    EXPECT_EQ(frames[3].rank, 1);
    EXPECT_EQ(frames[3].what, "it broke");

    EXPECT_EQ(frames[4].type, FrameType::Goodbye);
  }
}

TEST(TcpFraming, EmptyAndLargePayloads) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{1 << 20}}) {
    const Message m = make_msg(9, 0, 7, n);
    const auto enc = wire::encode_message(1, m);
    FrameDecoder dec;
    dec.feed(enc);
    const auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->msg.payload, m.payload);
  }
}

TEST(TcpFraming, RejectsUnknownFrameType) {
  auto enc = wire::encode_goodbye();
  enc[4] = static_cast<std::byte>(0xEE);  // corrupt the type byte
  FrameDecoder dec;
  dec.feed(enc);
  EXPECT_THROW((void)dec.next(), ::mbd::Error);
}

TEST(TcpFraming, RejectsOversizedLengthPrefixWithoutAllocating) {
  // Length prefix far past kMaxFrameBytes: decoding must throw on the prefix
  // alone, not wait for (or try to buffer) 4GB of body.
  const std::uint32_t huge = 0xFFFF0000;
  std::vector<std::byte> bytes(4);
  std::memcpy(bytes.data(), &huge, 4);
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW((void)dec.next(), ::mbd::Error);
}

TEST(TcpFraming, RejectsTruncatedFixedFields) {
  // A Msg frame whose length says "5 bytes" but whose body can't hold the
  // fixed fields: Cursor bounds-checking must throw, not read past the end.
  auto enc = wire::encode_message(1, make_msg(1, 0, 0, 0));
  const std::uint32_t lie = 5;
  std::memcpy(enc.data(), &lie, 4);
  enc.resize(4 + lie);
  FrameDecoder dec;
  dec.feed(enc);
  EXPECT_THROW((void)dec.next(), ::mbd::Error);
}

TEST(TcpFraming, WriteAllSurvivesPartialWritesAndShortReads) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the send buffer so a 1MB frame cannot fit: write_all must loop
  // over many partial writes while the reader drains in small bites.
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));

  const Message m = make_msg(0xabc, 0, 3, 1 << 20);
  const auto enc = wire::encode_message(2, m);

  std::vector<Frame> got;
  std::thread reader([&] {
    FrameDecoder dec;
    std::byte buf[777];  // deliberately odd read size
    while (true) {
      const ssize_t n = ::recv(fds[1], buf, sizeof(buf), 0);
      ASSERT_GE(n, 0);
      if (n == 0) break;
      dec.feed(std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      while (auto f = dec.next()) got.push_back(std::move(*f));
    }
  });
  wire::write_all(fds[0], enc);
  ::shutdown(fds[0], SHUT_WR);
  reader.join();
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].epoch, 2);
  EXPECT_EQ(got[0].msg.payload, m.payload);
}

TEST(TcpFraming, InterleavedStreamsFromMultiplePeersStayIndependent) {
  // Two peers' byte streams arrive interleaved at arbitrary boundaries; each
  // connection has its own decoder, so frames reassemble independently.
  std::vector<std::byte> a, b;
  for (int i = 0; i < 20; ++i) {
    const auto fa = wire::encode_message(1, make_msg(7, 1, i, 100 + static_cast<std::size_t>(i)));
    const auto fb = wire::encode_message(1, make_msg(7, 2, i, 200 + static_cast<std::size_t>(i)));
    a.insert(a.end(), fa.begin(), fa.end());
    b.insert(b.end(), fb.begin(), fb.end());
  }
  FrameDecoder da, db;
  std::vector<Frame> ga, gb;
  std::size_t pa = 0, pb = 0;
  std::size_t step = 1;
  while (pa < a.size() || pb < b.size()) {
    const std::size_t na = std::min(step, a.size() - pa);
    const std::size_t nb = std::min(step * 2, b.size() - pb);
    if (na > 0) da.feed(std::span<const std::byte>(a).subspan(pa, na));
    if (nb > 0) db.feed(std::span<const std::byte>(b).subspan(pb, nb));
    pa += na;
    pb += nb;
    while (auto f = da.next()) ga.push_back(std::move(*f));
    while (auto f = db.next()) gb.push_back(std::move(*f));
    step = step % 97 + 1;
  }
  ASSERT_EQ(ga.size(), 20u);
  ASSERT_EQ(gb.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ga[static_cast<std::size_t>(i)].msg.tag, i);  // per-channel FIFO
    EXPECT_EQ(gb[static_cast<std::size_t>(i)].msg.tag, i);
    EXPECT_EQ(ga[static_cast<std::size_t>(i)].msg.payload.size(),
              100u + static_cast<std::size_t>(i));
    EXPECT_EQ(gb[static_cast<std::size_t>(i)].msg.payload.size(),
              200u + static_cast<std::size_t>(i));
  }
}

// --- a multi-rank TCP world in one test process -----------------------------

// N ranks, each with its own TcpTransport and distributed World, hosted on
// loopback in this process. Mirrors exactly what N separate processes do;
// connect_mesh must run concurrently (every rank dials while being dialed).
struct TcpWorld {
  std::vector<std::shared_ptr<TcpTransport>> transports;
  std::vector<std::unique_ptr<World>> worlds;

  explicit TcpWorld(int n) {
    std::vector<TcpEndpoint> eps;
    for (int r = 0; r < n; ++r) {
      transports.push_back(
          std::make_shared<TcpTransport>(n, r, "127.0.0.1", 0));
      eps.push_back({"127.0.0.1", transports.back()->port()});
    }
    std::vector<std::thread> dialers;
    for (int r = 0; r < n; ++r) {
      dialers.emplace_back([&, r] { transports[static_cast<std::size_t>(r)]->connect_mesh(eps); });
    }
    for (auto& t : dialers) t.join();
    for (int r = 0; r < n; ++r) {
      worlds.push_back(std::make_unique<World>(n, r, transports[static_cast<std::size_t>(r)]));
    }
  }

  ~TcpWorld() {
    // Concurrently, as real processes do: shutdown() drains until every
    // peer's Goodbye, so sequential calls would serialize on the grace
    // period (rank 0 would wait for Goodbyes nobody has sent yet).
    std::vector<std::thread> closers;
    for (auto& t : transports) {
      closers.emplace_back([&t] { t->shutdown(); });
    }
    for (auto& t : closers) t.join();
  }

  // Run `fn` on every rank concurrently (each World spawns its one local
  // rank); rethrows the first rank's exception after all return.
  void run_all(const std::function<void(Comm&)>& fn) {
    std::vector<std::exception_ptr> errors(worlds.size());
    std::vector<std::thread> runners;
    for (std::size_t r = 0; r < worlds.size(); ++r) {
      runners.emplace_back([&, r] {
        try {
          worlds[r]->run(fn);
        } catch (...) {
          errors[r] = std::current_exception();
        }
      });
    }
    for (auto& t : runners) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
};

TEST(TcpTransportWorld, PointToPointAcrossTheWire) {
  TcpWorld tw(2);
  tw.run_all([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<float> v(64);
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(i);
      c.send(1, std::span<const float>(v), /*tag=*/9);
    } else {
      const auto v = c.recv<float>(0, /*tag=*/9);
      ASSERT_EQ(v.size(), 64u);
      for (std::size_t i = 0; i < v.size(); ++i)
        ASSERT_EQ(v[i], static_cast<float>(i));
    }
  });
}

TEST(TcpTransportWorld, CollectivesMatchLocalReference) {
  const int n = 3;
  TcpWorld tw(n);
  tw.run_all([n](Comm& c) {
    c.barrier();
    std::vector<float> v(32);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<float>(c.rank() * 100 + static_cast<int>(i));
    c.allreduce(std::span<float>(v));
    for (std::size_t i = 0; i < v.size(); ++i) {
      float want = 0.0f;
      for (int r = 0; r < n; ++r)
        want += static_cast<float>(r * 100 + static_cast<int>(i));
      ASSERT_EQ(v[i], want);
    }
    std::vector<float> b(16, c.rank() == 1 ? 3.5f : 0.0f);
    c.broadcast(std::span<float>(b), /*root=*/1);
    for (const float x : b) ASSERT_EQ(x, 3.5f);
  });
}

TEST(TcpTransportWorld, ManyTagsInterleaveIntoOneMailbox) {
  // Ranks 1 and 2 blast tagged messages at rank 0 concurrently; matching by
  // (source, tag) must pick each one out regardless of arrival interleaving.
  const int kMsgs = 50;
  TcpWorld tw(3);
  tw.run_all([kMsgs](Comm& c) {
    if (c.rank() == 0) {
      // Receive in an order unrelated to send order.
      for (int tag = kMsgs - 1; tag >= 0; --tag) {
        for (const int src : {2, 1}) {
          const auto v = c.recv<float>(src, tag);
          ASSERT_EQ(v.size(), 4u);
          ASSERT_EQ(v[0], static_cast<float>(src * 1000 + tag));
        }
      }
    } else {
      for (int tag = 0; tag < kMsgs; ++tag) {
        std::vector<float> v(4, static_cast<float>(c.rank() * 1000 + tag));
        c.send(0, std::span<const float>(v), tag);
      }
    }
  });
}

TEST(TcpTransportWorld, WatchdogScalesByLatencyClass) {
  TcpWorld tw(2);
  tw.worlds[0]->enable_validation();
  EXPECT_EQ(tw.worlds[0]->validation_timeout(),
            Validator::kDefaultTimeout * watchdog_scale(TransportLatency::LoopbackSocket));

  World local(2);
  local.enable_validation();
  EXPECT_EQ(local.validation_timeout(), Validator::kDefaultTimeout);

  // An explicit timeout is a contract, not a default: never scaled.
  tw.worlds[1]->set_validation_timeout(std::chrono::milliseconds(1234));
  EXPECT_EQ(tw.worlds[1]->validation_timeout(), std::chrono::milliseconds(1234));
}

TEST(TcpTransportWorld, PeerDeathSurfacesAsRankFailure) {
  TcpWorld tw(2);
  std::thread killer([&] {
    // Let rank 0 get into its recv, then die without a Goodbye.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    tw.transports[1]->kill_for_test();
  });
  try {
    tw.worlds[0]->run([](Comm& c) {
      if (c.rank() == 0) {
        (void)c.recv<float>(1, /*tag=*/0);  // never arrives
      }
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
  }
  killer.join();
}

TEST(TcpTransportWorld, DroppedMessageRetransmitsAcrossTheWire) {
  // Drop rank 1's first send to rank 0 on the wire side; rank 0's watchdog
  // sends a RetryRequest frame, rank 1's injector flushes the swallowed
  // message back through the transport, and the recv completes. Both ranks
  // install the same plan, but only rank 1's send matches the trigger.
  TcpWorld tw(2);
  FaultPlan plan;
  FaultAction drop;
  drop.kind = FaultKind::DropMessage;
  drop.rank = 1;
  drop.op_index = 1;  // rank 1's first transport op is the send below
  plan.actions.push_back(drop);
  for (auto& w : tw.worlds) {
    w->install_faults(plan, {});
    w->set_validation_timeout(std::chrono::milliseconds(20'000));
  }
  tw.run_all([](Comm& c) {
    if (c.rank() == 1) {
      const std::vector<float> v(8, 2.0f);
      c.send(0, std::span<const float>(v), /*tag=*/5);
    } else {
      const auto got = c.recv<float>(1, /*tag=*/5);
      ASSERT_EQ(got.size(), 8u);
      for (const float x : got) ASSERT_EQ(x, 2.0f);
    }
  });
  EXPECT_GE(tw.worlds[1]->fault_injector()->events().size(), 1u);
}

// --- crash-restart and spare-promotion recovery over TCP --------------------

FaultPlan tcp_crash_plan(int rank, std::uint64_t op) {
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::CrashRank, .rank = rank, .op_index = op});
  return plan;
}

// The pipeline problem from the in-process recovery matrix: one FC stage per
// rank, two microbatches, momentum, 7 iterations at checkpoint cadence 3.
struct PipelineProblem {
  std::vector<nn::LayerSpec> specs = nn::mlp_spec({12, 14, 12, 10, 8});
  nn::Dataset data = nn::make_synthetic_dataset(12, 8, 40, /*seed=*/23);
  nn::TrainConfig cfg;
  PipelineProblem() {
    cfg.batch = 8;
    cfg.lr = 0.02f;
    cfg.momentum = 0.9f;
    cfg.iterations = 7;
  }
  parallel::DistResult run(Comm& c, parallel::ReduceMode mode,
                           const parallel::RecoveryContext* rc) const {
    return parallel::train_pipeline(c, specs, data, cfg, /*microbatches=*/2,
                                    /*seed=*/42, mode, rc);
  }
};

/// In-process fault-free reference with an op-counting injector: the rank-1
/// op count places the crash mid-run, and op streams are transport-invariant.
parallel::DistResult pipeline_reference(const PipelineProblem& p,
                                        parallel::ReduceMode mode,
                                        std::uint64_t* rank1_ops) {
  World w(4);
  w.enable_validation();
  w.install_faults({});
  parallel::DistResult ref;
  std::mutex mu;
  w.run([&](Comm& c) {
    auto r = p.run(c, mode, nullptr);
    std::lock_guard lock(mu);
    if (c.rank() == 0) ref = std::move(r);
  });
  if (rank1_ops != nullptr) *rank1_ops = w.fault_injector()->op_count(1);
  return ref;
}

TEST(TcpRecovery, PipelineCrashRestartMatchesInProcessBitwise) {
  const PipelineProblem p;
  for (const auto mode :
       {parallel::ReduceMode::Blocking, parallel::ReduceMode::Overlapped}) {
    std::uint64_t rank1_ops = 0;
    const parallel::DistResult ref = pipeline_reference(p, mode, &rank1_ops);
    ASSERT_GT(rank1_ops, 4U);
    const FaultPlan plan = tcp_crash_plan(1, rank1_ops / 2);

    TcpWorld tw(4);
    parallel::CheckpointStore store(4);
    std::vector<parallel::DistResult> results(4);
    std::vector<int> restarts(4, 0);
    std::vector<std::exception_ptr> errors(4);
    std::vector<std::thread> runners;
    for (int r = 0; r < 4; ++r) {
      tw.worlds[static_cast<std::size_t>(r)]->install_faults(plan, {});
      tw.worlds[static_cast<std::size_t>(r)]->set_validation_timeout(
          std::chrono::milliseconds(120'000));
      runners.emplace_back([&, r] {
        try {
          parallel::RecoveryContext rc{&store, {.every = 3}};
          const auto rep = tw.worlds[static_cast<std::size_t>(r)]
                               ->run_restartable([&](Comm& c) {
                                 results[static_cast<std::size_t>(r)] =
                                     p.run(c, mode, &rc);
                               });
          restarts[static_cast<std::size_t>(r)] = rep.restarts;
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
    for (auto& t : runners) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(restarts[static_cast<std::size_t>(r)], 1) << "rank " << r;
      EXPECT_EQ(results[static_cast<std::size_t>(r)].losses, ref.losses)
          << "rank " << r;
      EXPECT_EQ(results[static_cast<std::size_t>(r)].params, ref.params)
          << "rank " << r;
    }
  }
}

TEST(TcpRecovery, SparePromotionFourRanksOneSpare) {
  // Five participants: four active ranks plus one hot spare. Rank 1 takes an
  // injected crash; survivors run_promotable — detect the failure, promote
  // participant 4 into slot 1, repair their fabrics in place (no mesh
  // teardown) — while the spare's await_failure fires and it builds a World
  // over the adopted slot. Bitwise equality against the uninterrupted
  // in-process run, for the pipeline trainer.
  const PipelineProblem p;
  const auto mode = parallel::ReduceMode::Blocking;
  std::uint64_t rank1_ops = 0;
  const parallel::DistResult ref = pipeline_reference(p, mode, &rank1_ops);
  ASSERT_GT(rank1_ops, 4U);
  const FaultPlan plan = tcp_crash_plan(1, rank1_ops / 2);

  const int n = 4;
  const TcpOptions opts{.spares = 1};
  std::vector<std::shared_ptr<TcpTransport>> transports;
  std::vector<TcpEndpoint> eps;
  for (int r = 0; r < n + 1; ++r) {
    transports.push_back(
        std::make_shared<TcpTransport>(n, r, "127.0.0.1", 0, opts));
    eps.push_back({"127.0.0.1", transports.back()->port()});
  }
  EXPECT_EQ(transports[4]->local_slot(), -1);
  {
    std::vector<std::thread> dialers;
    for (auto& t : transports) {
      dialers.emplace_back([&t, &eps] { t->connect_mesh(eps); });
    }
    for (auto& t : dialers) t.join();
  }

  parallel::CheckpointStore store(n);
  std::vector<parallel::DistResult> results(n);
  std::vector<RecoveryReport> reports(n);
  std::atomic<bool> victim_failed{false};
  std::vector<std::exception_ptr> errors(n + 1);
  std::vector<std::thread> runners;
  for (int r = 0; r < n; ++r) {
    runners.emplace_back([&, r] {
      try {
        World w(n, r, transports[static_cast<std::size_t>(r)]);
        w.enable_validation();
        w.set_spares(1);
        w.set_validation_timeout(std::chrono::milliseconds(120'000));
        w.install_faults(plan, {});
        parallel::RecoveryContext rc{&store, {.every = 3}};
        reports[static_cast<std::size_t>(r)] = w.run_promotable([&](Comm& c) {
          results[static_cast<std::size_t>(r)] = p.run(c, mode, &rc);
        });
      } catch (const RankFailure&) {
        // The victim cannot be saved by promotion — its slot is given away.
        if (r == 1) victim_failed.store(true);
        else errors[static_cast<std::size_t>(r)] = std::current_exception();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  // The spare: wait for the failure, adopt the slot, run the same case.
  runners.emplace_back([&] {
    try {
      const auto slot =
          transports[4]->await_failure(std::chrono::milliseconds(120'000));
      ASSERT_TRUE(slot.has_value());
      ASSERT_EQ(*slot, 1);
      transports[4]->promote(*slot, transports[4]->rank());
      transports[4]->begin_epoch(1);
      World w(n, *slot, transports[4]);
      w.enable_validation();
      w.set_validation_timeout(std::chrono::milliseconds(120'000));
      // Same plan as everyone — and the same epoch advance the survivors'
      // repair applies, so rank 1's epoch-0 crash does not re-fire here.
      w.install_faults(plan, {});
      w.fault_injector()->begin_epoch(1);
      parallel::RecoveryContext rc{&store, {.every = 3}};
      w.run([&](Comm& c) {
        results[1] = p.run(c, mode, &rc);
      });
    } catch (...) {
      errors[4] = std::current_exception();
    }
  });
  for (auto& t : runners) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  EXPECT_TRUE(victim_failed.load());
  for (int r = 0; r < n; ++r) {
    if (r == 1) continue;  // the victim's report never materialized
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].restarts, 0)
        << "rank " << r;
    ASSERT_EQ(reports[static_cast<std::size_t>(r)].promotions.size(), 1U)
        << "rank " << r;
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].promotions[0].failed_rank,
              1);
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].promotions[0].spare, 4);
  }
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].losses, ref.losses)
        << "rank " << r;
    EXPECT_EQ(results[static_cast<std::size_t>(r)].params, ref.params)
        << "rank " << r;
  }
  // Concurrent shutdown, victim's transport included (it stayed connected —
  // fail-stop was simulated by the injected crash, not a socket teardown).
  std::vector<std::thread> closers;
  for (auto& t : transports) {
    closers.emplace_back([&t] { t->shutdown(); });
  }
  for (auto& t : closers) t.join();
}

TEST(TcpTransportWorld, ModelParallelTrainingMatchesInProcessBitwise) {
  const auto spec = nn::mlp_spec({24, 32, 10});
  const auto data = nn::make_synthetic_dataset(24, 10, 32, 13);
  nn::TrainConfig cfg;
  cfg.batch = 8;
  cfg.iterations = 2;

  parallel::DistResult local;
  World ref(2);
  ref.run([&](Comm& c) {
    auto r = parallel::train_model_parallel(c, spec, data, cfg, 42,
                                            parallel::ReduceMode::Blocking);
    if (c.rank() == 0) local = std::move(r);
  });

  std::vector<parallel::DistResult> tcp(2);
  TcpWorld tw(2);
  tw.run_all([&](Comm& c) {
    tcp[static_cast<std::size_t>(c.rank())] = parallel::train_model_parallel(
        c, spec, data, cfg, 42, parallel::ReduceMode::Blocking);
  });

  for (const auto& r : tcp) {
    ASSERT_EQ(r.losses.size(), local.losses.size());
    for (std::size_t i = 0; i < local.losses.size(); ++i)
      EXPECT_EQ(r.losses[i], local.losses[i]) << "loss " << i;
    ASSERT_EQ(r.params.size(), local.params.size());
    for (std::size_t i = 0; i < local.params.size(); ++i)
      ASSERT_EQ(r.params[i], local.params[i]) << "param " << i;
  }
}

}  // namespace
}  // namespace mbd::comm
