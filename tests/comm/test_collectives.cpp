// Collective correctness, parameterized over world size, payload size, and
// algorithm choice. The reference for every collective is computed locally.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mbd/comm/world.hpp"

namespace mbd::comm {
namespace {

std::vector<float> rank_payload(int rank, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(rank * 1000 + static_cast<int>(i));
  return v;
}

// --- parameterized over (world size, vector length) ------------------------

class CollectiveSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CollectiveSweep, Barrier) {
  const auto [p, n] = GetParam();
  (void)n;
  World world(p);
  world.run([](Comm& c) { c.barrier(); });
}

TEST_P(CollectiveSweep, BroadcastFromEveryRoot) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    for (int root = 0; root < pp; ++root) {
      std::vector<float> data = c.rank() == root
                                    ? rank_payload(root, nn)
                                    : std::vector<float>(nn, -1.0f);
      c.broadcast(std::span<float>(data), root);
      EXPECT_EQ(data, rank_payload(root, nn));
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumsOnRoot) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    std::vector<float> data(nn);
    for (std::size_t i = 0; i < nn; ++i)
      data[i] = static_cast<float>(c.rank() + 1);
    c.reduce(std::span<float>(data), /*root=*/0);
    if (c.rank() == 0) {
      const float expect = static_cast<float>(pp * (pp + 1) / 2);
      for (std::size_t i = 0; i < nn; ++i) EXPECT_FLOAT_EQ(data[i], expect);
    }
  });
}

TEST_P(CollectiveSweep, AllGatherBruckOrdersByRank) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    auto local = rank_payload(c.rank(), nn);
    auto all = c.allgather(std::span<const float>(local), AllGatherAlgo::Bruck);
    ASSERT_EQ(all.size(), nn * static_cast<std::size_t>(pp));
    for (int r = 0; r < pp; ++r) {
      const auto expect = rank_payload(r, nn);
      for (std::size_t i = 0; i < nn; ++i)
        EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(r) * nn + i], expect[i]);
    }
  });
}

TEST_P(CollectiveSweep, AllGatherRingMatchesBruck) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, nn = n](Comm& c) {
    auto local = rank_payload(c.rank(), nn);
    auto a = c.allgather(std::span<const float>(local), AllGatherAlgo::Bruck);
    auto b = c.allgather(std::span<const float>(local), AllGatherAlgo::Ring);
    EXPECT_EQ(a, b);
  });
}

TEST_P(CollectiveSweep, AllReduceRingSums) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    std::vector<float> data(nn);
    for (std::size_t i = 0; i < nn; ++i)
      data[i] = static_cast<float>(c.rank()) + static_cast<float>(i) * 0.5f;
    c.allreduce(std::span<float>(data), std::plus<float>{},
                AllReduceAlgo::Ring);
    for (std::size_t i = 0; i < nn; ++i) {
      const float expect = static_cast<float>(pp * (pp - 1) / 2) +
                           static_cast<float>(pp) * static_cast<float>(i) * 0.5f;
      EXPECT_FLOAT_EQ(data[i], expect);
    }
  });
}

TEST_P(CollectiveSweep, AllReduceRecursiveDoublingSums) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    std::vector<float> data(nn, static_cast<float>(c.rank() + 1));
    c.allreduce(std::span<float>(data), std::plus<float>{},
                AllReduceAlgo::RecursiveDoubling);
    const float expect = static_cast<float>(pp * (pp + 1) / 2);
    for (std::size_t i = 0; i < nn; ++i) EXPECT_FLOAT_EQ(data[i], expect);
  });
}

TEST_P(CollectiveSweep, AllReduceRabenseifnerSums) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    std::vector<float> data(nn);
    for (std::size_t i = 0; i < nn; ++i)
      data[i] = static_cast<float>(c.rank()) + static_cast<float>(i);
    c.allreduce(std::span<float>(data), std::plus<float>{},
                AllReduceAlgo::Rabenseifner);
    for (std::size_t i = 0; i < nn; ++i) {
      const float expect = static_cast<float>(pp * (pp - 1) / 2) +
                           static_cast<float>(pp) * static_cast<float>(i);
      EXPECT_FLOAT_EQ(data[i], expect);
    }
  });
}

TEST_P(CollectiveSweep, ReduceScatterDeliversOwnBlock) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    std::vector<float> data(nn);
    for (std::size_t i = 0; i < nn; ++i) data[i] = static_cast<float>(i);
    auto block = c.reduce_scatter(std::span<const float>(data));
    const std::size_t lo = Comm::block_lo(nn, pp, c.rank());
    const std::size_t hi = Comm::block_lo(nn, pp, c.rank() + 1);
    ASSERT_EQ(block.size(), hi - lo);
    for (std::size_t i = 0; i < block.size(); ++i)
      EXPECT_FLOAT_EQ(block[i],
                      static_cast<float>(pp) * static_cast<float>(lo + i));
  });
}

TEST_P(CollectiveSweep, GatherConcatenatesOnRoot) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    auto local = rank_payload(c.rank(), nn);
    auto all = c.gather(std::span<const float>(local), /*root=*/0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), nn * static_cast<std::size_t>(pp));
      for (int r = 0; r < pp; ++r)
        EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(r) * nn],
                        static_cast<float>(r * 1000));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveSweep, ScatterDistributesChunks) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    std::vector<float> all;
    if (c.rank() == 0) {
      all.resize(nn * static_cast<std::size_t>(pp));
      std::iota(all.begin(), all.end(), 0.0f);
    }
    auto mine = c.scatter(std::span<const float>(all), /*root=*/0, nn);
    ASSERT_EQ(mine.size(), nn);
    for (std::size_t i = 0; i < nn; ++i)
      EXPECT_FLOAT_EQ(mine[i],
                      static_cast<float>(static_cast<std::size_t>(c.rank()) * nn + i));
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanks, CollectiveSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 12),
                       ::testing::Values<std::size_t>(1, 16, 23, 64)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(CollectiveSweep, AllGatherVMatchesAllGatherForEqualBlocks) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, nn = n](Comm& c) {
    auto local = rank_payload(c.rank(), nn);
    auto a = c.allgather(std::span<const float>(local));
    auto b = c.allgatherv(std::span<const float>(local));
    EXPECT_EQ(a, b);
  });
}

TEST_P(CollectiveSweep, AllToAllTransposesChunks) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([&, pp = p, nn = n](Comm& c) {
    // Chunk destined for rank d carries value 1000·me + d at each slot.
    std::vector<float> data(nn * static_cast<std::size_t>(pp));
    for (int d = 0; d < pp; ++d)
      for (std::size_t i = 0; i < nn; ++i)
        data[static_cast<std::size_t>(d) * nn + i] =
            static_cast<float>(1000 * c.rank() + d);
    auto out = c.alltoall(std::span<const float>(data), nn);
    ASSERT_EQ(out.size(), data.size());
    for (int s = 0; s < pp; ++s)
      for (std::size_t i = 0; i < nn; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(s) * nn + i],
                        static_cast<float>(1000 * s + c.rank()));
  });
}

// --- variable-size all-gather -------------------------------------------------

TEST(AllGatherV, UnevenBlocksOrderedByRank) {
  World world(4);
  world.run([](Comm& c) {
    // Rank r contributes r+1 elements valued r.
    std::vector<float> local(static_cast<std::size_t>(c.rank() + 1),
                             static_cast<float>(c.rank()));
    auto all = c.allgatherv(std::span<const float>(local));
    ASSERT_EQ(all.size(), 10u);  // 1+2+3+4
    std::size_t at = 0;
    for (int r = 0; r < 4; ++r)
      for (int k = 0; k <= r; ++k)
        EXPECT_FLOAT_EQ(all[at++], static_cast<float>(r));
  });
}

TEST(AllGatherV, EmptyContributionsAllowed) {
  World world(3);
  world.run([](Comm& c) {
    std::vector<float> local;
    if (c.rank() == 1) local = {7.0f, 8.0f};
    auto all = c.allgatherv(std::span<const float>(local));
    ASSERT_EQ(all.size(), 2u);
    EXPECT_FLOAT_EQ(all[0], 7.0f);
    EXPECT_FLOAT_EQ(all[1], 8.0f);
  });
}

TEST(AllGatherV, TotalTrafficIsPMinus1TimesTotal) {
  // The closed form the traffic predictions rely on: ring all-gatherv moves
  // exactly (P−1)·total_words across the machine, even for uneven blocks.
  World world(5);
  world.run([](Comm& c) {
    std::vector<float> local(static_cast<std::size_t>(3 * c.rank() + 1), 1.0f);
    (void)c.allgatherv(std::span<const float>(local));
  });
  const std::size_t total_words = 1 + 4 + 7 + 10 + 13;
  EXPECT_EQ(world.stats()[Coll::AllGather].bytes,
            4 * total_words * sizeof(float));
}

// --- back-to-back collectives must not cross ---------------------------------

TEST(Collectives, RepeatedAllReducesStaySeparated) {
  World world(4);
  world.run([](Comm& c) {
    for (int round = 0; round < 20; ++round) {
      std::vector<float> v(9, static_cast<float>(c.rank() + round));
      c.allreduce(std::span<float>(v));
      const float expect = static_cast<float>(6 + 4 * round);  // Σ ranks + 4·round
      for (float x : v) EXPECT_FLOAT_EQ(x, expect);
    }
  });
}

TEST(Collectives, MixedCollectiveSequence) {
  World world(3);
  world.run([](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank())};
    c.allreduce(std::span<float>(v));
    EXPECT_FLOAT_EQ(v[0], 3.0f);
    auto g = c.allgather(std::span<const float>(v));
    ASSERT_EQ(g.size(), 3u);
    c.barrier();
    c.broadcast(std::span<float>(v), 2);
    EXPECT_FLOAT_EQ(v[0], 3.0f);
  });
}

TEST(Collectives, AllReduceMaxOp) {
  World world(4);
  world.run([](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank() * 10)};
    c.allreduce(std::span<float>(v),
                [](float a, float b) { return std::max(a, b); });
    EXPECT_FLOAT_EQ(v[0], 30.0f);
  });
}

}  // namespace
}  // namespace mbd::comm
