// Instrumentation correctness: the byte/message counters must match the
// closed-form counts of the implemented algorithms — the foundation of the
// measured-vs-predicted validation of the paper's cost model.
#include <gtest/gtest.h>

#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/costmodel/collective_costs.hpp"

namespace mbd::comm {
namespace {

class StatsSweep : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(StatsSweep, RingAllReduceBytesMatchClosedForm) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([nn = n](Comm& c) {
    std::vector<float> v(nn, 1.0f);
    c.allreduce(std::span<float>(v), std::plus<float>{}, AllReduceAlgo::Ring);
  });
  const auto s = world.stats();
  const double expect_words =
      costmodel::allreduce_ring_words_total(static_cast<std::size_t>(p), n);
  EXPECT_EQ(s[Coll::AllReduce].bytes,
            static_cast<std::uint64_t>(expect_words) * sizeof(float));
  EXPECT_EQ(s[Coll::AllReduce].messages,
            static_cast<std::uint64_t>(p) *
                costmodel::allreduce_ring_messages_per_rank(
                    static_cast<std::size_t>(p)));
}

TEST_P(StatsSweep, BruckAllGatherBytesMatchClosedForm) {
  const auto [p, n] = GetParam();
  World world(p);
  world.run([nn = n](Comm& c) {
    std::vector<float> v(nn, 2.0f);
    (void)c.allgather(std::span<const float>(v), AllGatherAlgo::Bruck);
  });
  const auto s = world.stats();
  const double per_rank = costmodel::allgather_bruck_words_per_rank(
      static_cast<std::size_t>(p), n);
  EXPECT_EQ(s[Coll::AllGather].bytes,
            static_cast<std::uint64_t>(per_rank * p) * sizeof(float));
  EXPECT_EQ(s[Coll::AllGather].messages,
            static_cast<std::uint64_t>(p) *
                costmodel::allgather_bruck_messages_per_rank(
                    static_cast<std::size_t>(p)));
}

INSTANTIATE_TEST_SUITE_P(
    Counts, StatsSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8),
                       ::testing::Values<std::size_t>(8, 30, 128)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Stats, RabenseifnerMatchesRingBandwidth) {
  // Rabenseifner is bandwidth-equivalent to the ring (2(P−1)/P·n words per
  // process) for power-of-two P and divisible n, with only 2·log₂P latency
  // steps per rank.
  const int p = 8;
  const std::size_t n = 1 << 12;
  World ring_world(p), rab_world(p);
  ring_world.run([n](Comm& c) {
    std::vector<float> v(n, 1.0f);
    c.allreduce(std::span<float>(v), std::plus<float>{}, AllReduceAlgo::Ring);
  });
  rab_world.run([n](Comm& c) {
    std::vector<float> v(n, 1.0f);
    c.allreduce(std::span<float>(v), std::plus<float>{},
                AllReduceAlgo::Rabenseifner);
  });
  EXPECT_EQ(ring_world.stats()[Coll::AllReduce].bytes,
            rab_world.stats()[Coll::AllReduce].bytes);
  EXPECT_EQ(rab_world.stats()[Coll::AllReduce].messages,
            static_cast<std::uint64_t>(p) * 2 * 3);  // 2·log₂8 per rank
  EXPECT_EQ(ring_world.stats()[Coll::AllReduce].messages,
            static_cast<std::uint64_t>(p) * 2 * (p - 1));
}

TEST(Stats, RecursiveDoublingTradesBandwidthForLatency) {
  // Recursive doubling: n·log₂P words per process — more than the ring's
  // 2(P−1)/P·n for P > 2, fewer messages.
  const int p = 8;
  const std::size_t n = 1 << 12;
  World rd_world(p), ring_world(p);
  rd_world.run([n](Comm& c) {
    std::vector<float> v(n, 1.0f);
    c.allreduce(std::span<float>(v), std::plus<float>{},
                AllReduceAlgo::RecursiveDoubling);
  });
  ring_world.run([n](Comm& c) {
    std::vector<float> v(n, 1.0f);
    c.allreduce(std::span<float>(v), std::plus<float>{}, AllReduceAlgo::Ring);
  });
  EXPECT_EQ(rd_world.stats()[Coll::AllReduce].bytes,
            static_cast<std::uint64_t>(p) * 3 * n * sizeof(float));
  EXPECT_GT(rd_world.stats()[Coll::AllReduce].bytes,
            ring_world.stats()[Coll::AllReduce].bytes);
  EXPECT_LT(rd_world.stats()[Coll::AllReduce].messages,
            ring_world.stats()[Coll::AllReduce].messages);
}

TEST(Stats, PerRankAllGatherVolumeMatchesPaperFormula) {
  // Paper: all-gather moves (P−1)/P of the full buffer per process.
  const int p = 8;
  const std::size_t block = 100;
  const double per_rank =
      costmodel::allgather_bruck_words_per_rank(static_cast<std::size_t>(p), block);
  EXPECT_DOUBLE_EQ(per_rank,
                   static_cast<double>(block) * (p - 1));  // = (P−1)/P · P·block
}

TEST(Stats, RingAllReduceVolumeMatchesPaperFormula) {
  // Paper: ring all-reduce moves 2·(P−1)/P · n words per process.
  const std::size_t p = 8, n = 800;  // divisible: exact equality
  const double per_rank = costmodel::allreduce_ring_words_per_rank(p, n, 0);
  EXPECT_DOUBLE_EQ(per_rank, 2.0 * static_cast<double>(n) *
                                 static_cast<double>(p - 1) /
                                 static_cast<double>(p));
}

TEST(Stats, ResetClearsCounters) {
  World world(2);
  world.run([](Comm& c) {
    std::vector<float> v(4, 1.0f);
    c.allreduce(std::span<float>(v));
  });
  EXPECT_GT(world.stats().total_bytes(), 0u);
  world.reset_stats();
  EXPECT_EQ(world.stats().total_bytes(), 0u);
  EXPECT_EQ(world.stats().total_messages(), 0u);
}

TEST(Stats, SnapshotSince) {
  World world(2);
  world.run([](Comm& c) {
    std::vector<float> v(4, 1.0f);
    c.allreduce(std::span<float>(v));
  });
  const auto s1 = world.stats();
  world.run([](Comm& c) {
    std::vector<float> v(4, 1.0f);
    c.allreduce(std::span<float>(v));
    c.allreduce(std::span<float>(v));
  });
  const auto s2 = world.stats();
  const auto d = s2.since(s1);
  EXPECT_EQ(d[Coll::AllReduce].bytes, 2 * s1[Coll::AllReduce].bytes);
}

TEST(Stats, TrafficClassesSeparated) {
  World world(2);
  world.run([](Comm& c) {
    std::vector<float> v(4, 1.0f);
    c.allreduce(std::span<float>(v));
    (void)c.allgather(std::span<const float>(v));
    c.barrier();
    if (c.rank() == 0) {
      c.send(1, std::span<const float>(v));
    } else {
      (void)c.recv<float>(0);
    }
  });
  const auto s = world.stats();
  EXPECT_GT(s[Coll::AllReduce].bytes, 0u);
  EXPECT_GT(s[Coll::AllGather].bytes, 0u);
  EXPECT_GT(s[Coll::Barrier].messages, 0u);
  EXPECT_EQ(s[Coll::PointToPoint].bytes, 4 * sizeof(float));
  EXPECT_EQ(s[Coll::Broadcast].bytes, 0u);
}

}  // namespace
}  // namespace mbd::comm
