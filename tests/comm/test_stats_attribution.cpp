// Stats attribution under the nonblocking schedule and fault injection:
// a collective's logical volume is counted exactly once at send time —
// nonblocking completion never re-counts it, and retransmissions recovered
// by the fault fabric accrue to the injector's distinct retransmit counter,
// never to the collective's StatsCounters entry. This is what keeps the
// measured-vs-predicted α–β validation meaningful under Overlapped mode and
// under injected faults.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/costmodel/collective_costs.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/batch_parallel.hpp"

namespace mbd::comm {
namespace {

using namespace std::chrono_literals;

TEST(StatsAttribution, NonblockingAllReduceCountsBytesExactlyOnce) {
  for (int p : {2, 3, 4}) {
    const std::size_t n = 96;
    StatsSnapshot blocking, nonblocking;
    {
      World w(p);
      w.run([n](Comm& c) {
        std::vector<float> v(n, 1.0f);
        c.allreduce(std::span<float>(v), std::plus<float>{},
                    AllReduceAlgo::Ring);
      });
      blocking = w.stats();
    }
    {
      World w(p);
      w.run([n](Comm& c) {
        std::vector<float> v(n, 1.0f);
        c.iallreduce(std::span<float>(v)).wait();
      });
      nonblocking = w.stats();
    }
    // Identical schedule => identical attribution, and both match the
    // closed-form ring volume (wait/test drains must not double count).
    EXPECT_EQ(nonblocking[Coll::AllReduce].bytes,
              blocking[Coll::AllReduce].bytes)
        << "p=" << p;
    EXPECT_EQ(nonblocking[Coll::AllReduce].messages,
              blocking[Coll::AllReduce].messages)
        << "p=" << p;
    const double words = costmodel::allreduce_ring_words_total(
        static_cast<std::size_t>(p), n);
    EXPECT_EQ(nonblocking[Coll::AllReduce].bytes,
              static_cast<std::uint64_t>(words) * sizeof(float))
        << "p=" << p;
  }
}

TEST(StatsAttribution, RetransmitBytesAccrueToInjectorNotStats) {
  // Ten 1-int sends; the 3rd is dropped and recovered by the receiver's
  // timed retry. The P2P byte count must be what the *algorithm* sent —
  // 10 messages, 40 bytes — as if no fault had fired; the retransmitted
  // payload shows up only on the injector's dedicated counters.
  StatsSnapshot clean;
  {
    World w(2);
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 10; ++i)
          c.send(1, std::span<const int>(&i, 1), /*tag=*/3);
      } else {
        for (int i = 0; i < 10; ++i) (void)c.recv<int>(0, /*tag=*/3);
      }
    });
    clean = w.stats();
  }

  World w(2);
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 3});
  w.install_faults(plan, {.retry_interval = 10ms});
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        c.send(1, std::span<const int>(&i, 1), /*tag=*/3);
    } else {
      for (int i = 0; i < 10; ++i) (void)c.recv<int>(0, /*tag=*/3);
    }
  });
  const auto faulted = w.stats();
  EXPECT_EQ(faulted[Coll::PointToPoint].bytes,
            clean[Coll::PointToPoint].bytes);
  EXPECT_EQ(faulted[Coll::PointToPoint].messages,
            clean[Coll::PointToPoint].messages);
  const FaultInjector& fi = *w.fault_injector();
  EXPECT_EQ(fi.retransmit_count(), 1U);
  EXPECT_EQ(fi.retransmit_bytes(), sizeof(int));
  EXPECT_EQ(faulted.total_bytes(), clean.total_bytes());
}

TEST(StatsAttribution, OverlappedTrainingUnderDropKeepsLogicalVolume) {
  const auto specs = nn::mlp_spec({10, 14, 6});
  const auto data = nn::make_synthetic_dataset(10, 6, 16, 3);
  nn::TrainConfig cfg;
  cfg.batch = 8;
  cfg.iterations = 2;

  const auto run = [&](bool with_fault) {
    World w(2);
    if (with_fault) {
      FaultPlan plan;
      plan.actions.push_back(
          {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 4});
      w.install_faults(plan, {.retry_interval = 10ms});
    }
    parallel::DistResult res;
    w.run([&](Comm& c) {
      res = parallel::train_batch_parallel(c, specs, data, cfg, {},
                                           parallel::ReduceMode::Overlapped);
    });
    struct Out {
      StatsSnapshot stats;
      std::vector<double> losses;
      std::uint64_t retransmit_bytes;
    } out;
    out.stats = w.stats();
    out.losses = res.losses;
    out.retransmit_bytes =
        with_fault ? w.fault_injector()->retransmit_bytes() : 0;
    return out;
  };

  const auto clean = run(false);
  const auto faulted = run(true);
  // The drop changed nothing the experiment can see: bitwise-equal losses,
  // identical per-collective attribution.
  EXPECT_EQ(faulted.losses, clean.losses);
  EXPECT_EQ(faulted.stats[Coll::AllReduce].bytes,
            clean.stats[Coll::AllReduce].bytes);
  EXPECT_EQ(faulted.stats[Coll::AllReduce].messages,
            clean.stats[Coll::AllReduce].messages);
  EXPECT_EQ(faulted.stats.total_bytes(), clean.stats.total_bytes());
  // ... while the recovery traffic is visible where it belongs.
  EXPECT_GT(faulted.retransmit_bytes, 0U);
}

}  // namespace
}  // namespace mbd::comm
