#include <gtest/gtest.h>

#include <vector>

#include "mbd/comm/world.hpp"

namespace mbd::comm {
namespace {

TEST(Split, GridRowAndColumnGroups) {
  // 2 × 3 grid as in the paper's Fig. 5: rank = row·3 + col.
  World world(6);
  world.run([](Comm& c) {
    const int row = c.rank() / 3;
    const int col = c.rank() % 3;
    Comm row_comm = c.split(/*color=*/row, /*key=*/col);
    Comm col_comm = c.split(/*color=*/col, /*key=*/row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.rank(), row);

    // Sub-communicator all-reduce only sums within the group.
    std::vector<float> v{1.0f};
    row_comm.allreduce(std::span<float>(v));
    EXPECT_FLOAT_EQ(v[0], 3.0f);
    std::vector<float> w{static_cast<float>(col)};
    col_comm.allreduce(std::span<float>(w));
    EXPECT_FLOAT_EQ(w[0], static_cast<float>(2 * col));
  });
}

TEST(Split, KeyControlsOrdering) {
  World world(4);
  world.run([](Comm& c) {
    // Reverse ordering via descending keys.
    Comm rev = c.split(/*color=*/0, /*key=*/-c.rank());
    EXPECT_EQ(rev.rank(), c.size() - 1 - c.rank());
  });
}

TEST(Split, ConcurrentSubgroupCollectivesDoNotCross) {
  World world(4);
  world.run([](Comm& c) {
    const int color = c.rank() % 2;
    Comm sub = c.split(color, c.rank());
    // Both groups run many collectives concurrently with equal shapes; a
    // context mix-up would blend their sums.
    for (int round = 0; round < 10; ++round) {
      std::vector<float> v{static_cast<float>(color + 1)};
      sub.allreduce(std::span<float>(v));
      EXPECT_FLOAT_EQ(v[0], 2.0f * static_cast<float>(color + 1));
    }
  });
}

TEST(Split, NestedSplits) {
  World world(8);
  world.run([](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    EXPECT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    std::vector<int> v{1};
    quarter.allreduce(std::span<int>(v));
    EXPECT_EQ(v[0], 2);
  });
}

TEST(Split, SingletonGroups) {
  World world(3);
  world.run([](Comm& c) {
    Comm solo = c.split(c.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    std::vector<float> v{5.0f};
    solo.allreduce(std::span<float>(v));
    EXPECT_FLOAT_EQ(v[0], 5.0f);
  });
}

TEST(Split, ParentStillUsableAfterSplit) {
  World world(4);
  world.run([](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    std::vector<float> v{1.0f};
    c.allreduce(std::span<float>(v));
    EXPECT_FLOAT_EQ(v[0], 4.0f);
    sub.barrier();
    c.barrier();
  });
}

}  // namespace
}  // namespace mbd::comm
