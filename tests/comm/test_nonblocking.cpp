// Nonblocking collectives: completed results must be bitwise equal to the
// blocking algorithms, traffic must be identical to the blocking ring (that
// identity is what lets validation.hpp's exact predictions hold in
// overlapped trainer mode), handles must complete in any order, and the
// validator must turn the two new failure modes — a blocking/nonblocking
// mode mismatch across ranks, and a CollectiveHandle that is never driven
// to completion — into named errors instead of hangs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "mbd/comm/world.hpp"

namespace mbd::comm {
namespace {

std::vector<float> rank_vector(int rank, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.25f * static_cast<float>(rank + 1) * static_cast<float>(i + 3) -
           static_cast<float>(rank);
  return v;
}

TEST(Nonblocking, IAllReduceBitwiseEqualsBlockingRing) {
  for (int p : {1, 2, 3, 4}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                          std::size_t{40}}) {
      World world(p);
      world.enable_validation();
      std::mutex mu;
      bool all_equal = true;
      world.run([&](Comm& c) {
        std::vector<float> blocking = rank_vector(c.rank(), n);
        std::vector<float> nonblocking = blocking;
        c.allreduce(std::span<float>(blocking), std::plus<float>{},
                    AllReduceAlgo::Ring);
        CollectiveHandle h =
            c.iallreduce(std::span<float>(nonblocking));
        h.wait();
        EXPECT_TRUE(h.done());
        std::lock_guard lock(mu);
        all_equal = all_equal && std::memcmp(blocking.data(),
                                             nonblocking.data(),
                                             n * sizeof(float)) == 0;
      });
      EXPECT_TRUE(all_equal) << "p=" << p << " n=" << n;
    }
  }
}

TEST(Nonblocking, IAllReduceTrafficEqualsBlockingRing) {
  const int p = 4;
  const std::size_t n = 10;
  auto run = [&](bool nonblocking) {
    World world(p);
    world.run([&](Comm& c) {
      std::vector<float> v = rank_vector(c.rank(), n);
      if (nonblocking) {
        c.iallreduce(std::span<float>(v)).wait();
      } else {
        c.allreduce(std::span<float>(v), std::plus<float>{},
                    AllReduceAlgo::Ring);
      }
    });
    return world.stats();
  };
  const auto blocking = run(false);
  const auto overlapped = run(true);
  EXPECT_EQ(blocking[Coll::AllReduce].bytes,
            overlapped[Coll::AllReduce].bytes);
  EXPECT_EQ(blocking[Coll::AllReduce].messages,
            overlapped[Coll::AllReduce].messages);
  EXPECT_EQ(overlapped.total_bytes(), overlapped[Coll::AllReduce].bytes)
      << "nonblocking all-reduce leaked traffic into another class";
}

TEST(Nonblocking, IAllGatherMatchesBlocking) {
  for (int p : {1, 2, 3, 5}) {
    World world(p);
    world.enable_validation();
    world.run([&](Comm& c) {
      const std::vector<float> local = rank_vector(c.rank(), 6);
      const std::vector<float> expected =
          c.allgather(std::span<const float>(local));
      std::vector<float> out(local.size() *
                             static_cast<std::size_t>(c.size()));
      c.iallgather(std::span<const float>(local), std::span<float>(out))
          .wait();
      EXPECT_EQ(expected, out) << "rank " << c.rank() << " p=" << p;
    });
  }
}

TEST(Nonblocking, IAllGatherVUnevenBlocks) {
  for (int p : {2, 3, 4}) {
    World world(p);
    world.enable_validation();
    world.run([&](Comm& c) {
      // Block sizes differ per rank — the case Bruck cannot handle.
      const std::vector<float> local =
          rank_vector(c.rank(), static_cast<std::size_t>(c.rank()) + 1);
      const std::vector<float> expected =
          c.allgatherv(std::span<const float>(local));
      std::vector<float> out;
      c.iallgatherv(std::span<const float>(local), &out).wait();
      EXPECT_EQ(expected, out) << "rank " << c.rank() << " p=" << p;
    });
  }
}

TEST(Nonblocking, ISendRecvMatchesBlockingSendrecv) {
  const int p = 3;
  World world(p);
  world.enable_validation();
  world.run([&](Comm& c) {
    const int dst = (c.rank() + 1) % c.size();
    const int src = (c.rank() + c.size() - 1) % c.size();
    const std::vector<float> payload = rank_vector(c.rank(), 5);
    const std::vector<float> expected = c.sendrecv(
        dst, std::span<const float>(payload), src, /*tag=*/11);
    std::vector<float> got;
    CollectiveHandle h = c.isendrecv(dst, std::span<const float>(payload),
                                     src, &got, /*tag=*/11);
    h.wait();
    EXPECT_EQ(expected, got) << "rank " << c.rank();
  });
}

TEST(Nonblocking, HandlesCompleteInAnyOrder) {
  const int p = 4;
  World world(p);
  world.enable_validation();
  world.run([&](Comm& c) {
    std::vector<float> a = rank_vector(c.rank(), 9);
    std::vector<float> b = rank_vector(c.rank() + 7, 4);
    std::vector<float> gathered;
    const std::vector<float> local = rank_vector(c.rank(), 3);
    CollectiveHandle h1 = c.iallreduce(std::span<float>(a));
    CollectiveHandle h2 = c.iallreduce(std::span<float>(b));
    CollectiveHandle h3 =
        c.iallgatherv(std::span<const float>(local), &gathered);
    // Complete in reverse initiation order: each op lives in its own tag
    // block, so rounds never cross-match.
    h3.wait();
    h2.wait();
    h1.wait();

    std::vector<float> a_ref = rank_vector(c.rank(), 9);
    std::vector<float> b_ref = rank_vector(c.rank() + 7, 4);
    c.allreduce(std::span<float>(a_ref), std::plus<float>{},
                AllReduceAlgo::Ring);
    c.allreduce(std::span<float>(b_ref), std::plus<float>{},
                AllReduceAlgo::Ring);
    EXPECT_EQ(a_ref, a);
    EXPECT_EQ(b_ref, b);
    EXPECT_EQ(c.allgatherv(std::span<const float>(local)), gathered);
  });
}

TEST(Nonblocking, TestPollsToCompletionAndProgressAllDrives) {
  const int p = 3;
  World world(p);
  world.enable_validation();
  world.run([&](Comm& c) {
    std::vector<float> a = rank_vector(c.rank(), 8);
    std::vector<float> b = rank_vector(c.rank(), 2);
    std::vector<CollectiveHandle> handles;
    handles.push_back(c.iallreduce(std::span<float>(a)));
    handles.push_back(c.iallreduce(std::span<float>(b)));
    while (!progress_all(std::span<CollectiveHandle>(handles))) {
    }
    EXPECT_TRUE(handles[0].done());
    EXPECT_TRUE(handles[1].done());
    std::vector<float> a_ref = rank_vector(c.rank(), 8);
    c.allreduce(std::span<float>(a_ref), std::plus<float>{},
                AllReduceAlgo::Ring);
    EXPECT_EQ(a_ref, a);
  });
}

TEST(Nonblocking, SingleRankCompletesImmediately) {
  World world(1);
  world.enable_validation();
  world.run([&](Comm& c) {
    std::vector<float> v{1.0f, 2.0f};
    CollectiveHandle h = c.iallreduce(std::span<float>(v));
    EXPECT_TRUE(h.done());
    std::vector<float> out;
    c.iallgatherv(std::span<const float>(v), &out).wait();
    EXPECT_EQ(v, out);
  });
}

TEST(Nonblocking, ModeMismatchIsNamedValidationError) {
  World world(2);
  world.enable_validation();
  try {
    world.run([&](Comm& c) {
      std::vector<float> v(4, 1.0f);
      if (c.rank() == 0) {
        c.iallreduce(std::span<float>(v)).wait();
      } else {
        c.allreduce(std::span<float>(v), std::plus<float>{},
                    AllReduceAlgo::Ring);
      }
    });
    FAIL() << "blocking/nonblocking mismatch was not detected";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("nonblocking"), std::string::npos)
        << "mismatch error does not mention the nonblocking flag: "
        << e.what();
  }
}

TEST(Nonblocking, LeakedHandleIsNamedError) {
  World world(2);
  world.enable_validation();
  try {
    world.run([&](Comm& c) {
      std::vector<float> v(4, static_cast<float>(c.rank()));
      CollectiveHandle h = c.iallreduce(std::span<float>(v));
      // Deliberately destroyed without wait()/test()-to-done.
    });
    FAIL() << "leaked CollectiveHandle was not detected";
  } catch (const ValidationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("leaked CollectiveHandle"), std::string::npos)
        << what;
    EXPECT_NE(what.find("iallreduce"), std::string::npos) << what;
  }
}

TEST(Nonblocking, WatchdogReportsInitiatedButNeverWaited) {
  World world(2);
  world.set_validation_timeout(std::chrono::milliseconds(200));
  try {
    world.run([&](Comm& c) {
      std::vector<float> v(4, 1.0f);
      CollectiveHandle h = c.iallreduce(std::span<float>(v));
      // Both ranks now block on a message nobody sends while the
      // all-reduce is still in flight: the watchdog report must list it
      // distinctly from the blocked recv.
      (void)c.recv<float>((c.rank() + 1) % 2, /*tag=*/99);
      h.wait();
    });
    FAIL() << "watchdog did not fire";
  } catch (const Error& e) {  // the PopWatch throws plain mbd::Error
    const std::string what = e.what();
    EXPECT_NE(what.find("initiated but not completed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("iallreduce"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace mbd::comm
