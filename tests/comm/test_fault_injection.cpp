// Deterministic fault injection (mbd/comm/fault.hpp): seeded plans, the
// drop/retry/ack path, sequence-number dedup, delayed and duplicated
// deliveries, injected crashes with World::run_restartable recovery, fault
// attribution in watchdog reports, RAII handle cancellation, and the
// MBD_WATCHDOG_MS environment override.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mbd/comm/world.hpp"

using namespace std::chrono_literals;

namespace mbd::comm {
namespace {

FaultPlan crash_plan(int rank, std::uint64_t op, int epoch = 0) {
  FaultPlan plan;
  plan.actions.push_back({.kind = FaultKind::CrashRank,
                          .rank = rank,
                          .op_index = op,
                          .epoch = epoch});
  return plan;
}

std::vector<std::string> event_lines(const FaultInjector& fi) {
  std::vector<std::string> out;
  for (const auto& e : fi.events()) out.push_back(e.describe());
  return out;
}

TEST(FaultPlan, RandomIsDeterministicInSeed) {
  const FaultPlanOptions opts{
      .crashes = 2, .drops = 1, .duplicates = 1, .delays = 1};
  const FaultPlan a = FaultPlan::random(7, 4, opts);
  const FaultPlan b = FaultPlan::random(7, 4, opts);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.actions.size(), 5U);
  const FaultPlan c = FaultPlan::random(8, 4, opts);
  EXPECT_NE(a.describe(), c.describe());
  // Every epoch-0 send-fault precedes the epoch-0 crash on the same rank,
  // so the whole plan deterministically fires before teardown.
  std::uint64_t crash_op = 0;
  int crash_rank = -1;
  for (const auto& act : a.actions) {
    if (act.kind == FaultKind::CrashRank && act.epoch == 0) {
      crash_op = act.op_index;
      crash_rank = act.rank;
    }
  }
  for (const auto& act : a.actions) {
    if (act.kind == FaultKind::CrashRank) continue;
    EXPECT_EQ(act.rank, crash_rank);
    EXPECT_LT(act.op_index, crash_op);
  }
}

TEST(FaultInjection, CrashThrowsRankFailureAndLogsEvent) {
  World w(3);
  w.enable_validation();
  w.install_faults(crash_plan(/*rank=*/1, /*op=*/5));
  try {
    w.run([](Comm& c) {
      std::vector<float> v(4, static_cast<float>(c.rank()));
      for (int i = 0; i < 10; ++i) c.allreduce(std::span<float>(v));
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("op 5"), std::string::npos);
  }
  const auto evs = w.fault_injector()->events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].kind, "crash");
  EXPECT_EQ(evs[0].rank, 1);
  EXPECT_EQ(evs[0].op_index, 5U);
}

TEST(FaultInjection, DroppedMessageIsRetransmittedInOrder) {
  World w(2);
  w.enable_validation();
  // Rank 0's 3rd transport op (the send of value 2) is dropped; the
  // receiver's timed retry recovers it. Later sends (3..9) arrive first but
  // sequence gating keeps the delivered order FIFO.
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 3});
  w.install_faults(plan, {.retry_interval = 10ms});
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        c.send(1, std::span<const int>(&i, 1), /*tag=*/7);
    } else {
      for (int i = 0; i < 10; ++i) {
        const auto v = c.recv<int>(0, /*tag=*/7);
        ASSERT_EQ(v.size(), 1U);
        EXPECT_EQ(v[0], i);
      }
    }
  });
  const FaultInjector& fi = *w.fault_injector();
  EXPECT_EQ(fi.retransmit_count(), 1U);
  const auto evs = fi.events();
  ASSERT_EQ(evs.size(), 2U);
  EXPECT_EQ(evs[0].kind, "drop");
  EXPECT_EQ(evs[0].rank, 0);
  EXPECT_EQ(evs[0].op_index, 3U);
  EXPECT_EQ(evs[1].kind, "retransmit");
  EXPECT_EQ(evs[1].rank, 1);
}

TEST(FaultInjection, DropInsideSendrecvUsesRetryPath) {
  World w(2);
  w.enable_validation();
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 5});
  w.install_faults(plan, {.retry_interval = 10ms});
  w.run([](Comm& c) {
    const int peer = 1 - c.rank();
    for (int i = 0; i < 8; ++i) {
      const int mine = 100 * c.rank() + i;
      const auto got =
          c.sendrecv(peer, std::span<const int>(&mine, 1), peer);
      ASSERT_EQ(got.size(), 1U);
      EXPECT_EQ(got[0], 100 * peer + i);
    }
  });
  EXPECT_EQ(w.fault_injector()->retransmit_count(), 1U);
}

TEST(FaultInjection, DuplicateDeliveryIsDeduped) {
  World w(2);
  w.enable_validation();
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DuplicateDelivery, .rank = 0, .op_index = 2});
  w.install_faults(plan);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(1, std::span<const int>(&i, 1));
    } else {
      for (int i = 0; i < 5; ++i) {
        const auto v = c.recv<int>(0);
        EXPECT_EQ(v[0], i);  // a consumed duplicate would repeat a value
      }
    }
  });
  const auto evs = w.fault_injector()->events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].kind, "duplicate");
}

TEST(FaultInjection, DelayedDeliveryIsReleasedByOpProgress) {
  World w(2);
  w.enable_validation();
  FaultPlan plan;
  plan.actions.push_back({.kind = FaultKind::DelayDelivery,
                          .rank = 0,
                          .op_index = 2,
                          .defer_ops = 3});
  w.install_faults(plan);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 6; ++i) c.send(1, std::span<const int>(&i, 1));
    } else {
      for (int i = 0; i < 6; ++i) {
        const auto v = c.recv<int>(0);
        EXPECT_EQ(v[0], i);
      }
    }
  });
  const auto evs = w.fault_injector()->events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].kind, "delay");
  // Released by the sender's own op progress, not by a receiver retry.
  EXPECT_EQ(w.fault_injector()->retransmit_count(), 0U);
}

TEST(FaultInjection, DelayPastEndOfRunIsRescuedByRetry) {
  World w(2);
  w.enable_validation();
  FaultPlan plan;
  plan.actions.push_back({.kind = FaultKind::DelayDelivery,
                          .rank = 0,
                          .op_index = 3,
                          .defer_ops = 1000});
  w.install_faults(plan, {.retry_interval = 10ms});
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 4; ++i) c.send(1, std::span<const int>(&i, 1));
    } else {
      for (int i = 0; i < 4; ++i) {
        const auto v = c.recv<int>(0);
        EXPECT_EQ(v[0], i);
      }
    }
  });
  EXPECT_EQ(w.fault_injector()->retransmit_count(), 1U);
}

TEST(FaultInjection, SlowRankPerturbsOnlyTiming) {
  World w(2);
  w.enable_validation();
  FaultPlan plan;
  plan.actions.push_back({.kind = FaultKind::SlowRank,
                          .rank = 0,
                          .op_index = 1,
                          .delay = 2ms,
                          .slow_ops = 4});
  w.install_faults(plan);
  w.run([](Comm& c) {
    std::vector<float> v{1.0f + static_cast<float>(c.rank()), 2.0f};
    c.allreduce(std::span<float>(v));
    EXPECT_EQ(v[0], 3.0f);
    EXPECT_EQ(v[1], 4.0f);
  });
  const auto evs = w.fault_injector()->events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].kind, "slow");
}

TEST(FaultInjection, WatchdogReportNamesInjectedFault) {
  World w(2);
  w.set_validation_timeout(300ms);
  // The drop is never retransmitted (enormous retry interval), so the
  // receiver stalls until the watchdog fires — and the deadlock report must
  // attribute the stall to the injected drop.
  FaultPlan plan;
  plan.seed = 1234;
  plan.actions.push_back(
      {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 1});
  w.install_faults(plan, {.retry_interval = std::chrono::hours(1)});
  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        const int x = 42;
        c.send(1, std::span<const int>(&x, 1));
      } else {
        (void)c.recv<int>(0);
      }
    });
    FAIL() << "expected watchdog Error";
  } catch (const PoisonedError&) {
    FAIL() << "watchdog report was masked by a secondary PoisonedError";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault injection is active"), std::string::npos);
    EXPECT_NE(what.find("plan seed 1234"), std::string::npos);
    EXPECT_NE(what.find("drop"), std::string::npos);
  }
}

TEST(FaultInjection, RunRestartableRecoversFromCrash) {
  World w(2);
  w.enable_validation();
  w.install_faults(crash_plan(/*rank=*/0, /*op=*/7));
  int completions = 0;
  const auto rep = w.run_restartable([&](Comm& c) {
    std::vector<float> v(3, 1.0f);
    for (int i = 0; i < 5; ++i) c.allreduce(std::span<float>(v));
    if (c.rank() == 0) ++completions;
  });
  EXPECT_EQ(rep.restarts, 1);
  ASSERT_EQ(rep.log.size(), 1U);
  EXPECT_NE(rep.log[0].find("restarting as epoch 1"), std::string::npos);
  ASSERT_EQ(rep.events.size(), 1U);
  EXPECT_EQ(rep.events[0].kind, "crash");
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(w.fault_injector()->epoch(), 1);
}

TEST(FaultInjection, RecoveryLogIsIdenticalAcrossRuns) {
  const FaultPlan plan = FaultPlan::random(
      99, 2, {.crashes = 1, .drops = 1, .min_op = 10, .max_op = 20});
  const auto run_once = [&] {
    World w(2);
    w.enable_validation();
    w.install_faults(plan, {.retry_interval = 10ms});
    const auto rep = w.run_restartable([](Comm& c) {
      std::vector<float> v(2, 1.0f);
      for (int i = 0; i < 8; ++i) c.allreduce(std::span<float>(v));
    });
    std::vector<std::string> lines = rep.log;
    for (const auto& e : rep.events) lines.push_back(e.describe());
    lines.push_back("restarts=" + std::to_string(rep.restarts));
    lines.push_back("retransmits=" +
                    std::to_string(w.fault_injector()->retransmit_count()));
    return lines;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultInjection, ConsecutiveCrashesRestartTwice) {
  FaultPlan plan = crash_plan(/*rank=*/0, /*op=*/5, /*epoch=*/0);
  plan.actions.push_back({.kind = FaultKind::CrashRank,
                          .rank = 1,
                          .op_index = 5,
                          .epoch = 1});
  World w(2);
  w.enable_validation();
  w.install_faults(plan);
  const auto rep = w.run_restartable([](Comm& c) {
    std::vector<float> v(2, 1.0f);
    for (int i = 0; i < 4; ++i) c.allreduce(std::span<float>(v));
  });
  EXPECT_EQ(rep.restarts, 2);
  ASSERT_EQ(rep.events.size(), 2U);
  EXPECT_EQ(rep.events[0].epoch, 0);
  EXPECT_EQ(rep.events[1].epoch, 1);
}

TEST(FaultInjection, RestartBudgetExhaustionRethrows) {
  FaultPlan plan;
  for (int e = 0; e < 4; ++e)
    plan.actions.push_back(
        {.kind = FaultKind::CrashRank, .rank = 0, .op_index = 3, .epoch = e});
  World w(2);
  w.enable_validation();
  w.install_faults(plan);
  EXPECT_THROW(w.run_restartable(
                   [](Comm& c) {
                     std::vector<float> v(2, 1.0f);
                     for (int i = 0; i < 4; ++i)
                       c.allreduce(std::span<float>(v));
                   },
                   /*max_restarts=*/1),
               RankFailure);
}

// --- Fault injection inside nonblocking drain rounds ------------------------
//
// Nonblocking collectives reserve their per-round op identities at initiation
// (program order), so a plan's op_index lands on a *specific ring round send*
// even when the op is driven by test() polling. For a 2-rank iallreduce the
// first collective reserves ops 1 (reduce-scatter round) and 2 (all-gather
// round).

/// Poll test() a few times (exercising the try_recv drain path), then wait().
void drain(CollectiveHandle& h) {
  for (int i = 0; i < 50 && !h.test(); ++i)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  h.wait();
}

TEST(FaultInjection, NbRoundDropIsRescuedDuringDrain) {
  World w(2);
  w.enable_validation();
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 1});
  w.install_faults(plan, {.retry_interval = 10ms});
  w.run([](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank() + 1), 4.0f};
    CollectiveHandle h = c.iallreduce(std::span<float>(v));
    drain(h);
    EXPECT_EQ(v[0], 3.0f);
    EXPECT_EQ(v[1], 8.0f);
  });
  const FaultInjector& fi = *w.fault_injector();
  EXPECT_GE(fi.retransmit_count(), 1U);
  const auto evs = fi.events();
  ASSERT_GE(evs.size(), 2U);
  EXPECT_EQ(evs[0].kind, "drop");
  EXPECT_EQ(evs[0].rank, 0);
  EXPECT_EQ(evs[0].op_index, 1U);
  EXPECT_NE(evs[0].describe().find("nb round"), std::string::npos)
      << evs[0].describe();
}

TEST(FaultInjection, NbRoundDuplicateIsDeduped) {
  World w(2);
  w.enable_validation();
  // Op 2 is rank 0's all-gather-phase round send of its first iallreduce.
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DuplicateDelivery, .rank = 0, .op_index = 2});
  w.install_faults(plan);
  w.run([](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank() + 1), 4.0f};
    CollectiveHandle h = c.iallreduce(std::span<float>(v));
    drain(h);
    EXPECT_EQ(v[0], 3.0f);
    EXPECT_EQ(v[1], 8.0f);
  });
  const auto evs = w.fault_injector()->events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].kind, "duplicate");
  EXPECT_NE(evs[0].describe().find("nb round"), std::string::npos);
}

TEST(FaultInjection, NbRoundDelayIsReleasedByOpProgressNotRetry) {
  World w(2);
  w.enable_validation();
  // Delay rank 0's round-0 send by one op: it is released when rank 0 sends
  // its round-1 frame (op 2) — driven purely by the sender's own drain
  // progress. The enormous retry interval proves no receiver retry is
  // involved.
  FaultPlan plan;
  plan.actions.push_back({.kind = FaultKind::DelayDelivery,
                          .rank = 0,
                          .op_index = 1,
                          .defer_ops = 1});
  w.install_faults(plan, {.retry_interval = std::chrono::hours(1)});
  w.run([](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank() + 1), 4.0f};
    CollectiveHandle h = c.iallreduce(std::span<float>(v));
    drain(h);
    EXPECT_EQ(v[0], 3.0f);
    EXPECT_EQ(v[1], 8.0f);
  });
  EXPECT_EQ(w.fault_injector()->retransmit_count(), 0U);
  const auto evs = w.fault_injector()->events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].kind, "delay");
  EXPECT_NE(evs[0].describe().find("nb round"), std::string::npos);
}

TEST(FaultInjection, NbRoundCrashFiresMidDrain) {
  // 4 ranks: the first iallreduce reserves ops 1..6 on each rank. A crash at
  // op 4 fires when rank 1 posts its 4th ring round — mid-drain, after three
  // rounds already completed — and recovery still reaches the exact result.
  World w(4);
  w.enable_validation();
  w.install_faults(crash_plan(/*rank=*/1, /*op=*/4));
  std::vector<float> expect{10.0f, 14.0f};  // sum of rank+1, rank+2
  const auto rep = w.run_restartable([&](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank() + 1),
                         static_cast<float>(c.rank() + 2)};
    CollectiveHandle h = c.iallreduce(std::span<float>(v));
    drain(h);
    EXPECT_EQ(v, expect);
  });
  EXPECT_EQ(rep.restarts, 1);
  ASSERT_EQ(rep.events.size(), 1U);
  EXPECT_EQ(rep.events[0].kind, "crash");
  EXPECT_EQ(rep.events[0].op_index, 4U);
  EXPECT_NE(rep.events[0].describe().find("nb round"), std::string::npos);
}

TEST(FaultInjection, NbRoundFaultsAreDeterministicAcrossRuns) {
  // The reserved identities are assigned in program order at initiation, so
  // the same plan produces the same event log no matter how test()/wait()
  // interleave across runs.
  FaultPlan plan;
  plan.actions.push_back(
      {.kind = FaultKind::DropMessage, .rank = 0, .op_index = 3});
  plan.actions.push_back(
      {.kind = FaultKind::DuplicateDelivery, .rank = 1, .op_index = 2});
  const auto run_once = [&] {
    World w(2);
    w.enable_validation();
    w.install_faults(plan, {.retry_interval = 10ms});
    w.run([](Comm& c) {
      for (int i = 0; i < 3; ++i) {
        std::vector<float> v(4, static_cast<float>(c.rank() + i));
        CollectiveHandle h = c.iallreduce(std::span<float>(v));
        drain(h);
      }
    });
    return event_lines(*w.fault_injector());
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Satellite: RAII cancellation of CollectiveHandle -----------------------

TEST(HandleCancellation, UnwindDestroyedHandleIsNotALeak) {
  World w(2);
  w.enable_validation();
  // Throw between initiation and wait() on every rank: the handles are
  // destroyed during unwind, which must cancel them (no "leaked
  // CollectiveHandle" ValidationError at the World::run join) and leave the
  // World usable for a subsequent run.
  w.run([](Comm& c) {
    std::vector<float> v(4, 1.0f);
    try {
      CollectiveHandle h = c.iallreduce(std::span<float>(v));
      throw std::runtime_error("unwind with handle in flight");
    } catch (const std::runtime_error&) {
      // recovered locally; no rank failed
    }
  });
  // The cancelled operations' parked round-0 messages were drained at the
  // join, so the same nonblocking tag block is reusable in the next run.
  w.run([](Comm& c) {
    std::vector<float> v{static_cast<float>(c.rank() + 1), 1.0f};
    CollectiveHandle h = c.iallreduce(std::span<float>(v));
    h.wait();
    EXPECT_EQ(v[0], 3.0f);
    EXPECT_EQ(v[1], 2.0f);
  });
}

TEST(HandleCancellation, CompletedHandleDestroyedDuringUnwindIsFine) {
  World w(2);
  w.enable_validation();
  w.run([](Comm& c) {
    std::vector<float> v(2, 1.0f);
    try {
      CollectiveHandle h = c.iallreduce(std::span<float>(v));
      h.wait();
      throw std::runtime_error("unwind after completion");
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(v[0], 2.0f);
  });
}

// --- Satellite: primary-exception propagation under Overlapped --------------

class PrimaryBoom : public std::runtime_error {
 public:
  PrimaryBoom() : std::runtime_error("primary boom") {}
};

TEST(PoisonPropagation, PrimaryExceptionWinsWithInflightHandles) {
  World w(4);
  w.enable_validation();
  w.set_validation_timeout(30s);
  try {
    w.run([](Comm& c) {
      std::vector<float> v(8, static_cast<float>(c.rank()));
      CollectiveHandle h = c.iallreduce(std::span<float>(v));
      if (c.rank() == 2) throw PrimaryBoom();  // crash mid-Overlapped-drain
      h.wait();  // survivors block in the ring until poisoned
    });
    FAIL() << "expected PrimaryBoom";
  } catch (const PrimaryBoom& e) {
    EXPECT_STREQ(e.what(), "primary boom");
  } catch (const PoisonedError& e) {
    FAIL() << "secondary PoisonedError masked the primary: " << e.what();
  } catch (const ValidationError& e) {
    FAIL() << "cancelled handles were misreported as leaks: " << e.what();
  }
}

TEST(PoisonPropagation, InjectedCrashWinsWithInflightHandles) {
  // Same shape, but the primary failure is an injected RankFailure and the
  // in-flight handles belong to a GradReducer-style Overlapped drain.
  World w(4);
  w.enable_validation();
  w.install_faults(crash_plan(/*rank=*/2, /*op=*/9));
  try {
    w.run([](Comm& c) {
      std::vector<float> a(4, 1.0f), b(4, 2.0f);
      for (int i = 0; i < 6; ++i) {
        CollectiveHandle ha = c.iallreduce(std::span<float>(a));
        CollectiveHandle hb = c.iallreduce(std::span<float>(b));
        ha.wait();
        hb.wait();
      }
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  } catch (const PoisonedError&) {
    FAIL() << "secondary PoisonedError masked the injected RankFailure";
  }
}

// --- Satellite: MBD_WATCHDOG_MS -------------------------------------------

TEST(WatchdogEnv, EnvVariableOverridesDefaultTimeout) {
  ASSERT_EQ(setenv("MBD_WATCHDOG_MS", "12345", 1), 0);
  World w(2);
  w.enable_validation();
  EXPECT_EQ(w.validation_timeout(), 12345ms);
  // An explicit set_validation_timeout still wins over the environment.
  w.set_validation_timeout(777ms);
  EXPECT_EQ(w.validation_timeout(), 777ms);
  ASSERT_EQ(unsetenv("MBD_WATCHDOG_MS"), 0);
}

TEST(WatchdogEnv, InvalidValuesAreIgnored) {
  for (const char* bad : {"abc", "-5", "0", "12x"}) {
    ASSERT_EQ(setenv("MBD_WATCHDOG_MS", bad, 1), 0);
    World w(2);
    w.enable_validation();
    EXPECT_EQ(w.validation_timeout(), Validator::kDefaultTimeout)
        << "MBD_WATCHDOG_MS=" << bad;
  }
  ASSERT_EQ(unsetenv("MBD_WATCHDOG_MS"), 0);
}

}  // namespace
}  // namespace mbd::comm
