// Randomized stress test of the comm runtime: every rank executes the same
// pseudo-random sequence of collectives (with algorithm variants and
// sub-communicator hops) and checks each result against a locally computed
// reference. Catches cross-talk between back-to-back operations, context
// mix-ups after splits, and tag-reuse bugs that targeted tests can miss.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::comm {
namespace {

/// Deterministic per-rank payload for operation `op`.
float payload(std::uint64_t op, int rank, std::size_t i) {
  return static_cast<float>((op * 31 + static_cast<std::uint64_t>(rank) * 7 +
                             i * 3) %
                            101) -
         50.0f;
}

void run_sequence(std::uint64_t seed, int world_size, int ops) {
  World world(world_size);
  world.run([&](Comm& world_comm) {
    // Every rank derives the same op schedule from the seed.
    Rng schedule(seed);
    Comm* comm = &world_comm;
    Comm sub = world_comm;  // replaced on split ops
    for (int op = 0; op < ops; ++op) {
      const std::uint64_t kind = schedule.uniform_index(8);
      const std::size_t n = 1 + schedule.uniform_index(37);
      const int p = comm->size();
      const int r = comm->rank();
      std::vector<float> mine(n);
      for (std::size_t i = 0; i < n; ++i)
        mine[i] = payload(static_cast<std::uint64_t>(op), r, i);
      // The reference needs each *member's* identity in the current comm.
      // Ranks within `sub` were ordered by world rank, so member k of a
      // color group is reconstructible; to stay simple we only fuzz payloads
      // keyed by the comm-local rank.
      switch (kind) {
        case 0: {  // allreduce, random algorithm
          const auto algo = static_cast<AllReduceAlgo>(schedule.uniform_index(3));
          std::vector<float> v = mine;
          comm->allreduce(std::span<float>(v), std::plus<float>{}, algo);
          for (std::size_t i = 0; i < n; ++i) {
            float expect = 0.0f;
            for (int k = 0; k < p; ++k)
              expect += payload(static_cast<std::uint64_t>(op), k, i);
            ASSERT_NEAR(v[i], expect, 1e-3f)
                << "op " << op << " allreduce algo "
                << static_cast<int>(algo);
          }
          break;
        }
        case 1: {  // allgather, random algorithm
          const auto algo = static_cast<AllGatherAlgo>(schedule.uniform_index(2));
          auto all = comm->allgather(std::span<const float>(mine), algo);
          ASSERT_EQ(all.size(), n * static_cast<std::size_t>(p));
          for (int k = 0; k < p; ++k)
            for (std::size_t i = 0; i < n; ++i)
              ASSERT_FLOAT_EQ(all[static_cast<std::size_t>(k) * n + i],
                              payload(static_cast<std::uint64_t>(op), k, i));
          break;
        }
        case 2: {  // allgatherv with rank-dependent sizes
          const std::size_t my_n = 1 + static_cast<std::size_t>(r) % 5;
          std::vector<float> v(my_n);
          for (std::size_t i = 0; i < my_n; ++i)
            v[i] = payload(static_cast<std::uint64_t>(op), r, i);
          auto all = comm->allgatherv(std::span<const float>(v));
          std::size_t at = 0;
          for (int k = 0; k < p; ++k) {
            const std::size_t kn = 1 + static_cast<std::size_t>(k) % 5;
            for (std::size_t i = 0; i < kn; ++i)
              ASSERT_FLOAT_EQ(all[at++],
                              payload(static_cast<std::uint64_t>(op), k, i));
          }
          ASSERT_EQ(at, all.size());
          break;
        }
        case 3: {  // broadcast from random root
          const int root = static_cast<int>(schedule.uniform_index(
              static_cast<std::uint64_t>(p)));
          std::vector<float> v(n);
          for (std::size_t i = 0; i < n; ++i)
            v[i] = payload(static_cast<std::uint64_t>(op), root, i);
          if (r != root) std::fill(v.begin(), v.end(), -999.0f);
          comm->broadcast(std::span<float>(v), root);
          for (std::size_t i = 0; i < n; ++i)
            ASSERT_FLOAT_EQ(v[i],
                            payload(static_cast<std::uint64_t>(op), root, i));
          break;
        }
        case 4: {  // reduce to random root
          const int root = static_cast<int>(schedule.uniform_index(
              static_cast<std::uint64_t>(p)));
          std::vector<float> v = mine;
          comm->reduce(std::span<float>(v), root);
          if (r == root) {
            for (std::size_t i = 0; i < n; ++i) {
              float expect = 0.0f;
              for (int k = 0; k < p; ++k)
                expect += payload(static_cast<std::uint64_t>(op), k, i);
              ASSERT_NEAR(v[i], expect, 1e-3f) << "op " << op;
            }
          }
          break;
        }
        case 5: {  // reduce_scatter
          auto blockv = comm->reduce_scatter(std::span<const float>(mine));
          const std::size_t lo = Comm::block_lo(n, p, r);
          const std::size_t hi = Comm::block_lo(n, p, r + 1);
          ASSERT_EQ(blockv.size(), hi - lo);
          for (std::size_t i = 0; i < blockv.size(); ++i) {
            float expect = 0.0f;
            for (int k = 0; k < p; ++k)
              expect += payload(static_cast<std::uint64_t>(op), k, lo + i);
            ASSERT_NEAR(blockv[i], expect, 1e-3f) << "op " << op;
          }
          break;
        }
        case 6: {  // barrier (schedule noise)
          comm->barrier();
          break;
        }
        case 7: {  // hop between world and a fresh split
          if (comm == &world_comm && world_comm.size() > 1) {
            const int colors =
                1 + static_cast<int>(schedule.uniform_index(2));  // 1 or 2
            sub = world_comm.split(world_comm.rank() % colors,
                                   world_comm.rank());
            comm = &sub;
          } else {
            comm = &world_comm;
          }
          break;
        }
      }
    }
  });
}

class FuzzSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FuzzSweep, RandomCollectiveSequences) {
  const auto [seed, p] = GetParam();
  run_sequence(static_cast<std::uint64_t>(seed), p, /*ops=*/40);
}

INSTANTIATE_TEST_SUITE_P(
    Runs, FuzzSweep,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(2, 3, 5, 8)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mbd::comm
