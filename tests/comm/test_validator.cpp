// Negative tests for the collective-call validator: mismatched arguments
// must produce precise rank-attributed diagnostics instead of hangs, and the
// watchdog must convert genuine deadlocks into a per-rank activity report.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "mbd/comm/validator.hpp"
#include "mbd/comm/world.hpp"

namespace mbd::comm {
namespace {

using std::chrono::milliseconds;

// Runs `fn` on a validating world of `p` ranks and returns the diagnostic
// World::run surfaces. Fails the test if nothing is thrown.
std::string run_expect_diagnostic(int p, const std::function<void(Comm&)>& fn,
                                  milliseconds timeout = milliseconds(0)) {
  World world(p);
  world.enable_validation();
  if (timeout.count() > 0) world.set_validation_timeout(timeout);
  try {
    world.run(fn);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the validator to reject the program";
  return {};
}

void expect_contains(const std::string& diagnostic, const std::string& needle) {
  EXPECT_NE(diagnostic.find(needle), std::string::npos)
      << "diagnostic missing '" << needle << "':\n"
      << diagnostic;
}

TEST(Validator, MismatchedCountNamesBothRanks) {
  const std::string d = run_expect_diagnostic(2, [](Comm& c) {
    std::vector<float> data(c.rank() == 0 ? 1024 : 512, 1.0f);
    c.allreduce(std::span<float>(data));
  });
  expect_contains(d, "collective mismatch");
  expect_contains(d, "rank 0");
  expect_contains(d, "rank 1");
  expect_contains(d, "count=1024");
  expect_contains(d, "count=512");
  expect_contains(d, "allreduce");
}

TEST(Validator, MismatchedOpKindNamesBothCalls) {
  const std::string d = run_expect_diagnostic(2, [](Comm& c) {
    std::vector<float> data(256, 1.0f);
    if (c.rank() == 0) {
      c.allreduce(std::span<float>(data));
    } else {
      (void)c.allgather(std::span<const float>(data));
    }
  });
  expect_contains(d, "rank 0");
  expect_contains(d, "rank 1");
  expect_contains(d, "allreduce");
  expect_contains(d, "allgather");
}

TEST(Validator, MismatchedReduceOpIsRejected) {
  const std::string d = run_expect_diagnostic(2, [](Comm& c) {
    std::vector<float> data(64, 2.0f);
    if (c.rank() == 0) {
      c.allreduce(std::span<float>(data), std::plus<float>{});
    } else {
      c.allreduce(std::span<float>(data), std::multiplies<float>{});
    }
  });
  expect_contains(d, "rank 0");
  expect_contains(d, "rank 1");
  expect_contains(d, "plus");
  expect_contains(d, "multiplies");
}

TEST(Validator, MismatchedAlgorithmIsRejected) {
  const std::string d = run_expect_diagnostic(2, [](Comm& c) {
    std::vector<float> data(64, 1.0f);
    c.allreduce(std::span<float>(data), std::plus<float>{},
                c.rank() == 0 ? AllReduceAlgo::Ring
                              : AllReduceAlgo::RecursiveDoubling);
  });
  expect_contains(d, "allreduce");
  expect_contains(d, "algo=");
}

TEST(Validator, MismatchedElementTypeIsRejected) {
  const std::string d = run_expect_diagnostic(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<float> data(64, 1.0f);
      c.allreduce(std::span<float>(data));
    } else {
      std::vector<double> data(64, 1.0);
      c.allreduce(std::span<double>(data));
    }
  });
  expect_contains(d, "float");
  expect_contains(d, "double");
}

TEST(Validator, MismatchedRootIsRejected) {
  const std::string d = run_expect_diagnostic(2, [](Comm& c) {
    std::vector<float> data(32, 1.0f);
    c.broadcast(std::span<float>(data), /*root=*/c.rank());
  });
  expect_contains(d, "broadcast");
  expect_contains(d, "root=0");
  expect_contains(d, "root=1");
}

TEST(Validator, WatchdogCatchesDeadlockAndDumpsLastCollective) {
  // Both ranks complete a barrier, then block receiving a message the other
  // never sends — the canonical recv/recv deadlock. The watchdog must fire
  // and the report must attribute the hang and name each rank's last-known
  // collective.
  const std::string d = run_expect_diagnostic(
      2,
      [](Comm& c) {
        c.barrier();
        (void)c.recv<float>(/*src=*/1 - c.rank(), /*tag=*/7);
      },
      /*timeout=*/milliseconds(300));
  expect_contains(d, "probable deadlock");
  expect_contains(d, "rank");
  expect_contains(d, "tag=7");
  expect_contains(d, "barrier");
  expect_contains(d, "rank 0");
  expect_contains(d, "rank 1");
}

TEST(Validator, WatchdogCatchesMissingCollectiveParticipant) {
  // Rank 1 never joins the barrier; rank 0 hangs in the dissemination
  // exchange until the watchdog converts the hang into a diagnostic.
  const std::string d = run_expect_diagnostic(
      2,
      [](Comm& c) {
        if (c.rank() == 0) c.barrier();
      },
      /*timeout=*/milliseconds(300));
  expect_contains(d, "probable deadlock");
  expect_contains(d, "barrier");
}

TEST(Validator, MatchedProgramsPassEverything) {
  // A representative matched program touching every validated entry point:
  // nothing may throw with validation on.
  World world(4);
  world.enable_validation();
  ASSERT_TRUE(world.validation_enabled());
  world.run([](Comm& c) {
    std::vector<float> data(40, static_cast<float>(c.rank()));
    c.barrier();
    c.broadcast(std::span<float>(data), /*root=*/1);
    c.reduce(std::span<float>(data), /*root=*/2);
    c.allreduce(std::span<float>(data));
    c.allreduce(std::span<float>(data), std::plus<float>{},
                AllReduceAlgo::Rabenseifner);
    (void)c.allgather(std::span<const float>(data), AllGatherAlgo::Ring);
    // Rank-varying counts are legal for allgatherv and gather.
    std::vector<float> mine(static_cast<std::size_t>(c.rank()) + 1, 1.0f);
    (void)c.allgatherv(std::span<const float>(mine));
    (void)c.gather(std::span<const float>(mine), /*root=*/0);
    (void)c.reduce_scatter(std::span<const float>(data));
    (void)c.scatter(std::span<const float>(data), /*root=*/0, /*chunk=*/10);
    (void)c.alltoall(std::span<const float>(data), /*chunk=*/10);
    // Collectives continue to validate inside split sub-communicators.
    Comm half = c.split(c.rank() % 2, c.rank());
    std::vector<float> sub(8, 1.0f);
    half.allreduce(std::span<float>(sub));
    if (c.rank() % 2 == 0) {
      // Deliberately different op sequence per color group: contexts are
      // independent rendezvous domains.
      half.barrier();
    } else {
      (void)half.allgather(std::span<const float>(sub));
    }
  });
}

TEST(Validator, MismatchInsideSplitCommunicatorIsAttributed) {
  const std::string d = run_expect_diagnostic(4, [](Comm& c) {
    Comm half = c.split(c.rank() / 2, c.rank());
    std::vector<float> data(16, 1.0f);
    if (c.rank() == 1) {
      data.resize(8);
    }
    half.allreduce(std::span<float>(data));
  });
  expect_contains(d, "collective mismatch");
  expect_contains(d, "count=16");
  expect_contains(d, "count=8");
}

TEST(Validator, DisabledValidatorChecksNothing) {
  // Without validation, a mismatched program is caught by the payload-size
  // MBD_CHECKs inside the algorithms (or would hang without them) — this
  // test just pins down that enable/disable is honoured.
  World world(2);
  world.disable_validation();
  EXPECT_FALSE(world.validation_enabled());
  world.set_validation_timeout(milliseconds(5000));
  EXPECT_TRUE(world.validation_enabled());
}

#ifndef NDEBUG
TEST(Validator, OnByDefaultInDebugBuilds) {
  World world(2);
  EXPECT_TRUE(world.validation_enabled());
  try {
    world.run([](Comm& c) {
      std::vector<float> data(c.rank() == 0 ? 10 : 20, 0.0f);
      c.allreduce(std::span<float>(data));
    });
    FAIL() << "debug-default validation should have rejected the mismatch";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("collective mismatch"),
              std::string::npos);
  }
}
#endif

}  // namespace
}  // namespace mbd::comm
