// Boundary conditions of the comm runtime.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/support/check.hpp"

namespace mbd::comm {
namespace {

TEST(EdgeCases, ZeroLengthMessages) {
  World world(2);
  world.run([](Comm& c) {
    std::vector<float> empty;
    if (c.rank() == 0) {
      c.send(1, std::span<const float>(empty));
    } else {
      auto got = c.recv<float>(0);
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(EdgeCases, ZeroLengthCollectives) {
  World world(3);
  world.run([](Comm& c) {
    std::vector<float> empty;
    c.allreduce(std::span<float>(empty));
    auto g = c.allgather(std::span<const float>(empty));
    EXPECT_TRUE(g.empty());
    auto gv = c.allgatherv(std::span<const float>(empty));
    EXPECT_TRUE(gv.empty());
    c.broadcast(std::span<float>(empty), 0);
  });
}

TEST(EdgeCases, SingleElementEverywhere) {
  World world(5);
  world.run([](Comm& c) {
    std::vector<int> one{c.rank()};
    c.allreduce(std::span<int>(one));
    EXPECT_EQ(one[0], 0 + 1 + 2 + 3 + 4);
  });
}

TEST(EdgeCases, LargePayloadSurvivesTransit) {
  // 4 MiB through the mailbox fabric.
  World world(2);
  world.run([](Comm& c) {
    const std::size_t n = 1u << 20;
    if (c.rank() == 0) {
      std::vector<float> big(n);
      for (std::size_t i = 0; i < n; ++i)
        big[i] = static_cast<float>(i % 997);
      c.send(1, std::span<const float>(big));
    } else {
      auto got = c.recv<float>(0);
      ASSERT_EQ(got.size(), n);
      EXPECT_FLOAT_EQ(got[0], 0.0f);
      EXPECT_FLOAT_EQ(got[996], 996.0f);
      EXPECT_FLOAT_EQ(got[n - 1], static_cast<float>((n - 1) % 997));
    }
  });
}

TEST(EdgeCases, ManySmallMessagesInterleaved) {
  World world(4);
  world.run([](Comm& c) {
    // Every rank sends 50 tagged messages to every other rank, then drains
    // them in a different order.
    for (int peer = 0; peer < c.size(); ++peer) {
      if (peer == c.rank()) continue;
      for (int t = 0; t < 50; ++t) {
        const int v = c.rank() * 1000 + t;
        c.send(peer, std::span<const int>(&v, 1), /*tag=*/t);
      }
    }
    for (int peer = c.size() - 1; peer >= 0; --peer) {
      if (peer == c.rank()) continue;
      for (int t = 49; t >= 0; --t) {
        auto got = c.recv<int>(peer, /*tag=*/t);
        EXPECT_EQ(got[0], peer * 1000 + t);
      }
    }
  });
}

TEST(EdgeCases, NonPowerOfTwoEverywhere) {
  // Exercise the non-2^k folds of recursive doubling and Rabenseifner.
  for (int p : {3, 5, 6, 7, 9, 11}) {
    World world(p);
    world.run([pp = p](Comm& c) {
      std::vector<float> v(13, static_cast<float>(c.rank() + 1));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  AllReduceAlgo::RecursiveDoubling);
      std::vector<float> w(13, static_cast<float>(c.rank() + 1));
      c.allreduce(std::span<float>(w), std::plus<float>{},
                  AllReduceAlgo::Rabenseifner);
      const float expect = static_cast<float>(pp * (pp + 1) / 2);
      for (float x : v) EXPECT_FLOAT_EQ(x, expect);
      for (float x : w) EXPECT_FLOAT_EQ(x, expect);
    });
  }
}

TEST(EdgeCases, VectorShorterThanRanks) {
  // Ring all-reduce with n < P: most blocks are empty.
  World world(8);
  world.run([](Comm& c) {
    std::vector<float> v(3, static_cast<float>(c.rank()));
    c.allreduce(std::span<float>(v));
    for (float x : v) EXPECT_FLOAT_EQ(x, 28.0f);  // Σ 0..7
  });
}

TEST(EdgeCases, ConcurrentWorldsAreIsolated) {
  // Two Worlds running interleaved collectives must not share any state
  // (mailboxes, counters, contexts).
  World a(3), b(4);
  std::thread ta([&] {
    a.run([](Comm& c) {
      for (int i = 0; i < 20; ++i) {
        std::vector<float> v{static_cast<float>(c.rank())};
        c.allreduce(std::span<float>(v));
        ASSERT_FLOAT_EQ(v[0], 3.0f);  // 0+1+2
      }
    });
  });
  std::thread tb([&] {
    b.run([](Comm& c) {
      for (int i = 0; i < 20; ++i) {
        std::vector<float> v{static_cast<float>(c.rank())};
        c.allreduce(std::span<float>(v));
        ASSERT_FLOAT_EQ(v[0], 6.0f);  // 0+1+2+3
      }
    });
  });
  ta.join();
  tb.join();
  EXPECT_NE(a.stats()[Coll::AllReduce].bytes, 0u);
  EXPECT_NE(b.stats()[Coll::AllReduce].bytes, 0u);
}

TEST(EdgeCases, CommCopiesShareTheChannel) {
  // Comm is cheap to copy; copies address the same communicator.
  World world(2);
  world.run([](Comm& c) {
    Comm copy = c;
    if (c.rank() == 0) {
      const int x = 5;
      copy.send(1, std::span<const int>(&x, 1));
    } else {
      auto got = c.recv<int>(0);
      EXPECT_EQ(got[0], 5);
    }
  });
}

TEST(EdgeCases, RepeatedWorldRuns) {
  World world(3);
  for (int round = 0; round < 5; ++round) {
    world.run([round](Comm& c) {
      std::vector<int> v{c.rank() + round};
      c.allreduce(std::span<int>(v));
      EXPECT_EQ(v[0], 3 + 3 * round);
    });
  }
}

}  // namespace
}  // namespace mbd::comm
