// Poison/teardown path: a rank that throws mid-collective must wake every
// peer blocked in Mailbox::pop, World::run must rethrow the *original*
// exception (not one of the secondary PoisonedError wakeups), and no thread
// may deadlock. The CI sanitizer jobs run this file under TSan, which is the
// actual proof the teardown path is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "mbd/comm/world.hpp"

namespace mbd::comm {
namespace {

TEST(Poison, ThrowMidCollectiveReleasesBlockedPeers) {
  // Ranks != 2 block in a barrier that rank 2 never joins; rank 2 throws.
  // Every peer is woken via mailbox poisoning and run() completes.
  World world(4);
  EXPECT_THROW(
      {
        try {
          world.run([](Comm& c) {
            if (c.rank() == 2) throw std::runtime_error("boom on rank 2");
            c.barrier();
          });
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("boom on rank 2"),
                    std::string::npos)
              << "expected the original exception, got: " << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST(Poison, OriginalExceptionWinsOverSecondaryWakeups) {
  // Rank 3 throws while ranks 0..2 are blocked receiving from it. The woken
  // ranks all fail with PoisonedError; run() must surface rank 3's error
  // even though lower ranks also recorded exceptions.
  World world(4);
  try {
    world.run([](Comm& c) {
      if (c.rank() == 3) throw Error("primary failure on rank 3");
      (void)c.recv<float>(/*src=*/3);
    });
    FAIL() << "run() should have thrown";
  } catch (const PoisonedError&) {
    FAIL() << "secondary PoisonedError masked the original exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("primary failure on rank 3"),
              std::string::npos)
        << e.what();
  }
}

TEST(Poison, ThrowInsideRingAllreduceUnblocksRing) {
  // Rank 0 throws partway into a ring allreduce schedule while its ring
  // neighbours are blocked waiting for the next step's message.
  World world(4);
  std::atomic<int> entered{0};
  try {
    world.run([&](Comm& c) {
      std::vector<float> data(64, static_cast<float>(c.rank()));
      entered.fetch_add(1);
      if (c.rank() == 0) throw Error("rank 0 aborts before the collective");
      c.allreduce(std::span<float>(data));
    });
    FAIL() << "run() should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 0 aborts"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(entered.load(), 4);
}

TEST(Poison, SendAfterPoisonThrowsPoisonedError) {
  World world(2);
  try {
    world.run([](Comm& c) {
      if (c.rank() == 1) throw Error("rank 1 fails first");
      // Rank 0 spins sending; once rank 1 poisons the fabric the send
      // itself must throw (PoisonedError), not deposit into dead mailboxes.
      std::vector<float> payload(16, 1.0f);
      for (;;) c.send(1, std::span<const float>(payload));
    });
    FAIL() << "run() should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1 fails first"),
              std::string::npos)
        << e.what();
  }
}

TEST(Poison, PoisonedWorldRefusesFurtherRuns) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    if (c.rank() == 0) throw Error("first run fails");
    c.barrier();
  }),
               Error);
  EXPECT_THROW(world.run([](Comm&) {}), Error);
}

}  // namespace
}  // namespace mbd::comm
