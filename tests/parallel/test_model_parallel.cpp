#include "mbd/parallel/model_parallel.hpp"

#include <gtest/gtest.h>

#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
};

// Dims divisible by every world size tested (1, 2, 3, 4, 6).
Problem divisible_problem() {
  Problem p;
  p.specs = nn::mlp_spec({10, 24, 12, 12});
  p.data = nn::make_synthetic_dataset(10, 12, 72, /*seed=*/7);
  p.cfg.batch = 18;
  p.cfg.lr = 0.05f;
  p.cfg.iterations = 6;
  return p;
}

class ModelParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModelParallelSweep, MatchesSequential) {
  const int p = GetParam();
  auto prob = divisible_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(p, [&](comm::Comm& c) {
    return train_model_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ModelParallelSweep,
                         ::testing::Values(1, 2, 3, 4, 6),
                         ::testing::PrintToStringParamName());

TEST(ModelParallel, SupportsIndivisibleLayers) {
  // 24, 12, 12 % 5 != 0: uneven row blocks take the ring all-gatherv path.
  auto prob = divisible_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(5, [&](comm::Comm& c) {
    return train_model_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(ModelParallel, RejectsConvLayers) {
  auto specs = nn::small_cnn_spec(2, 6, 4);
  const auto data = nn::make_synthetic_dataset(2 * 6 * 6, 4, 16, 9);
  nn::TrainConfig cfg;
  cfg.batch = 4;
  comm::World world(2);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_model_parallel(c, specs, data, cfg);
  }),
               Error);
}

TEST(ModelParallel, BatchSizeNeedNotDivide) {
  // Pure model parallelism replicates the batch — any B works.
  auto prob = divisible_problem();
  prob.cfg.batch = 17;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_model_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
}

TEST(ModelParallel, LossDecreases) {
  auto prob = divisible_problem();
  prob.cfg.iterations = 30;
  const auto dist = run_distributed(2, [&](comm::Comm& c) {
    return train_model_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  EXPECT_LT(dist.losses.back(), 0.8 * dist.losses.front());
}

}  // namespace
}  // namespace mbd::parallel
