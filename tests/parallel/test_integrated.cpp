#include "mbd/parallel/integrated.hpp"

#include <gtest/gtest.h>

#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
};

// Every layer's output dim divisible by all tested pr values (1, 2, 3, 4, 6).
Problem grid_problem() {
  Problem p;
  p.specs = nn::mlp_spec({10, 24, 12, 12});
  p.data = nn::make_synthetic_dataset(10, 12, 96, /*seed=*/11);
  p.cfg.batch = 24;
  p.cfg.lr = 0.05f;
  p.cfg.iterations = 6;
  return p;
}

class GridSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridSweep, MatchesSequential) {
  const auto [pr, pc] = GetParam();
  auto prob = grid_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(pr * pc, [&, pr = pr, pc = pc](comm::Comm& c) {
    return train_integrated_15d(c, {pr, pc}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{1, 2},
                      std::pair{2, 2}, std::pair{3, 2}, std::pair{2, 3},
                      std::pair{2, 4}, std::pair{4, 2}, std::pair{6, 2}),
    [](const auto& info) {
      return "pr" + std::to_string(info.param.first) + "_pc" +
             std::to_string(info.param.second);
    });

TEST(Integrated, DegeneratesToPureBatch) {
  // Pr = 1: bit-level agreement with the batch-parallel trainer is not
  // guaranteed (different reduction order), but loss curves must agree to
  // float tolerance.
  auto prob = grid_problem();
  const auto grid = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {1, 4}, prob.specs, prob.data, prob.cfg);
  });
  const auto batch = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(grid.losses, batch.losses);
  expect_params_close(grid.params, batch.params);
}

TEST(Integrated, DegeneratesToPureModel) {
  auto prob = grid_problem();
  const auto grid = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {4, 1}, prob.specs, prob.data, prob.cfg);
  });
  const auto model = run_distributed(4, [&](comm::Comm& c) {
    return train_model_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(grid.losses, model.losses);
  expect_params_close(grid.params, model.params);
}

TEST(Integrated, RejectsBadGridShape) {
  auto prob = grid_problem();
  comm::World world(4);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_integrated_15d(c, {3, 2}, prob.specs, prob.data, prob.cfg);
  }),
               Error);
}

TEST(Integrated, SupportsIndivisibleBatch) {
  // batch = 25 over pc = 2: column blocks of 12 and 13.
  auto prob = grid_problem();
  prob.cfg.batch = 25;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {2, 2}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(Integrated, SupportsIndivisibleModelDimension) {
  // Layer widths 24/12/12 are not divisible by pr = 5: all-gatherv path.
  auto prob = grid_problem();
  prob.cfg.batch = 10;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(10, [&](comm::Comm& c) {
    return train_integrated_15d(c, {5, 2}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(Integrated, LossDecreases) {
  auto prob = grid_problem();
  prob.cfg.iterations = 30;
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_integrated_15d(c, {2, 2}, prob.specs, prob.data, prob.cfg);
  });
  EXPECT_LT(dist.losses.back(), 0.8 * dist.losses.front());
}

}  // namespace
}  // namespace mbd::parallel
