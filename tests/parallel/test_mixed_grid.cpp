// Mixed-grid trainer (Fig. 7 executable): batch-parallel conv stack,
// Eq. 6 redistribution, 1.5D FC.
#include "mbd/parallel/mixed_grid.hpp"

#include <gtest/gtest.h>

#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/validation.hpp"
#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
};

/// Conv + pool + FC — pooling and strides are allowed here because the conv
/// phase is pure batch parallel.
Problem mixed_problem() {
  Problem p;
  p.specs = nn::small_cnn_spec(2, 8, 8);  // conv, conv, pool, fc, fc
  p.data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 64, /*seed=*/61);
  p.cfg.batch = 16;
  p.cfg.lr = 0.02f;
  p.cfg.iterations = 4;
  return p;
}

class MixedGridSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MixedGridSweep, MatchesSequential) {
  const auto [pr, pc] = GetParam();
  auto prob = mixed_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(pr * pc, [&, pr = pr, pc = pc](comm::Comm& c) {
    return train_mixed_grid(c, {pr, pc}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MixedGridSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{1, 4},
                      std::pair{2, 2}, std::pair{4, 2}, std::pair{2, 4},
                      std::pair{3, 2}, std::pair{5, 3}),
    [](const auto& info) {
      return "pr" + std::to_string(info.param.first) + "_pc" +
             std::to_string(info.param.second);
    });

TEST(MixedGrid, PureBatchDegenerationMatchesBatchTrainer) {
  auto prob = mixed_problem();
  const auto mixed = run_distributed(4, [&](comm::Comm& c) {
    return train_mixed_grid(c, {1, 4}, prob.specs, prob.data, prob.cfg);
  });
  const auto batch = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(mixed.losses, batch.losses);
  expect_params_close(mixed.params, batch.params);
}

TEST(MixedGrid, TrafficMatchesPrediction) {
  auto prob = mixed_problem();
  for (const auto [pr, pc] : {std::pair{2, 2}, std::pair{3, 2},
                              std::pair{2, 4}}) {
    const GridShape grid{pr, pc};
    auto run = [&](std::size_t iters) {
      comm::World world(pr * pc);
      world.run([&](comm::Comm& c) {
        auto c2 = prob.cfg;
        c2.iterations = iters;
        (void)train_mixed_grid(c, grid, prob.specs, prob.data, c2);
      });
      return world.stats();
    };
    const auto s1 = run(1);
    const auto s3 = run(3);
    const auto pred = predict_mixed_grid(prob.specs, prob.cfg.batch, grid);
    EXPECT_EQ((s3[comm::Coll::AllReduce].bytes -
               s1[comm::Coll::AllReduce].bytes) / 2,
              pred.allreduce_bytes)
        << pr << "x" << pc;
    EXPECT_EQ((s3[comm::Coll::AllGather].bytes -
               s1[comm::Coll::AllGather].bytes) / 2,
              pred.allgather_bytes)
        << pr << "x" << pc;
  }
}

TEST(MixedGrid, RejectsMoreRanksThanSamples) {
  auto prob = mixed_problem();
  prob.cfg.batch = 3;
  comm::World world(4);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_mixed_grid(c, {2, 2}, prob.specs, prob.data, prob.cfg);
  }),
               Error);
}

TEST(MixedGrid, RejectsFcBeforeConv) {
  std::vector<nn::LayerSpec> bad;
  bad.push_back(nn::fc_spec("fc0", 8, 2 * 4 * 4));
  bad.push_back(nn::conv_spec("conv", 2, 4, 4, 2, 3, 1, 1));
  bad.push_back(nn::fc_spec("fc1", 2 * 4 * 4, 4, false));
  const auto data = nn::make_synthetic_dataset(8, 4, 16, 67);
  nn::TrainConfig cfg;
  cfg.batch = 4;
  comm::World world(2);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_mixed_grid(c, {2, 1}, bad, data, cfg);
  }),
               Error);
}

TEST(MixedGrid, LossDecreases) {
  auto prob = mixed_problem();
  prob.cfg.iterations = 20;
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_mixed_grid(c, {2, 2}, prob.specs, prob.data, prob.cfg);
  });
  EXPECT_LT(dist.losses.back(), dist.losses.front());
}

}  // namespace
}  // namespace mbd::parallel
