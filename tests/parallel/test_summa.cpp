// Executable 2D SUMMA (stationary-C) — correctness against the local gemm
// oracle and exact broadcast-volume accounting (§4's comparison algorithm).
#include "mbd/parallel/summa.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "mbd/comm/world.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/tensor/gemm.hpp"

namespace mbd::parallel {
namespace {

using tensor::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_normal(r, c, rng, 1.0f);
}

/// Run SUMMA on the grid and reassemble the distributed C on the test
/// thread; compare with A·B computed locally.
void check_summa(GridShape grid, SummaShape shape) {
  const Matrix a = random_matrix(shape.m, shape.k, 1);
  const Matrix b = random_matrix(shape.k, shape.n, 2);
  const Matrix expect = tensor::matmul_reference(a, b);

  comm::World world(grid.pr * grid.pc);
  Matrix assembled(shape.m, shape.n);
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    const int row = c.rank() / grid.pc;
    const int col = c.rank() % grid.pc;
    const BlockInfo ai = summa_block(shape.m, shape.k, grid, row, col);
    const BlockInfo bi = summa_block(shape.k, shape.n, grid, row, col);
    const Matrix a_block =
        a.row_block(ai.rows.lo, ai.rows.hi).col_block(ai.cols.lo, ai.cols.hi);
    const Matrix b_block =
        b.row_block(bi.rows.lo, bi.rows.hi).col_block(bi.cols.lo, bi.cols.hi);
    const Matrix c_block = summa_stationary_c(c, grid, shape, a_block, b_block);
    const BlockInfo ci = summa_block(shape.m, shape.n, grid, row, col);
    ASSERT_EQ(c_block.rows(), ci.rows.size());
    ASSERT_EQ(c_block.cols(), ci.cols.size());
    std::lock_guard lock(mu);
    for (std::size_t i = 0; i < c_block.rows(); ++i)
      for (std::size_t j = 0; j < c_block.cols(); ++j)
        assembled(ci.rows.lo + i, ci.cols.lo + j) = c_block(i, j);
  });
  EXPECT_LE(max_abs_diff(assembled, expect),
            1e-3f * static_cast<float>(shape.k));

  // Traffic: exact broadcast volume.
  const auto s = world.stats();
  // Subtract the two communicator-split all-gathers (Entry structs).
  EXPECT_EQ(s[comm::Coll::Broadcast].bytes,
            summa_stationary_c_bytes(grid, shape));
}

struct Case {
  GridShape grid;
  SummaShape shape;
  const char* name;
};

class SummaSweep : public ::testing::TestWithParam<Case> {};

TEST_P(SummaSweep, MatchesLocalGemmAndVolume) {
  check_summa(GetParam().grid, GetParam().shape);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SummaSweep,
    ::testing::Values(
        Case{{1, 1}, {7, 5, 9}, "single"},
        Case{{2, 2}, {8, 8, 8}, "square_divisible"},
        Case{{2, 3}, {13, 17, 11}, "ragged_2x3"},
        Case{{3, 2}, {12, 10, 14}, "ragged_3x2"},
        Case{{4, 2}, {32, 24, 16}, "tall_grid"},
        Case{{2, 4}, {16, 24, 32}, "wide_grid"},
        Case{{3, 3}, {27, 9, 27}, "threes"}),
    [](const auto& info) { return info.param.name; });

TEST(Summa, ForwardPassShapeWX) {
  // The paper's forward multiply: Y = W·X with W d×d and X d×B.
  check_summa({2, 2}, {/*m=*/24, /*k=*/24, /*n=*/12});
}

TEST(Summa, VolumeFormulaMatchesCostModelOrientation) {
  // summa_stationary_c_bytes over all P processes ÷ P ≈ the per-process
  // |A|/Pr + |B|/Pc count of the §4 discussion (up to (x−1)/x factors).
  const GridShape grid{4, 8};
  const SummaShape shape{256, 256, 64};
  const double total = static_cast<double>(summa_stationary_c_bytes(grid, shape)) / 4.0;
  const double per_proc = total / (grid.pr * grid.pc);
  const double model = (7.0 / 8.0) * 256.0 * 256.0 / 4.0 +
                       (3.0 / 4.0) * 256.0 * 64.0 / 8.0;
  EXPECT_NEAR(per_proc, model, 1e-9);
}

}  // namespace
}  // namespace mbd::parallel
