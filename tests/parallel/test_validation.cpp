// Measured-equals-predicted communication volumes: the executed trainers'
// instrumented byte counts must match the closed-form predictions exactly.
// This certifies the paper's Eq. 3/4/7/8 bandwidth terms against running
// code — the bandwidth words of those formulas are per-process counts of
// precisely these collectives.
#include "mbd/parallel/validation.hpp"

#include <gtest/gtest.h>

#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

/// Runs `fn` for 1 and for 3 iterations and returns the per-iteration byte
/// deltas — factoring out setup traffic (communicator splits, final
/// parameter assembly) that happens once per run.
template <typename Fn>
TrafficPrediction measure_per_iteration(int p, Fn fn) {
  auto run = [&](std::size_t iters) {
    comm::World world(p);
    world.run([&](comm::Comm& c) { fn(c, iters); });
    return world.stats();
  };
  const auto s1 = run(1);
  const auto s3 = run(3);
  TrafficPrediction t;
  t.allreduce_bytes = (s3[comm::Coll::AllReduce].bytes -
                       s1[comm::Coll::AllReduce].bytes) /
                      2;
  t.allgather_bytes = (s3[comm::Coll::AllGather].bytes -
                       s1[comm::Coll::AllGather].bytes) /
                      2;
  t.p2p_bytes =
      (s3[comm::Coll::PointToPoint].bytes - s1[comm::Coll::PointToPoint].bytes) /
      2;
  return t;
}

TEST(Validation, BatchParallelAllReduceVolume) {
  const auto specs = nn::mlp_spec({12, 16, 4});
  const auto data = nn::make_synthetic_dataset(12, 4, 64, 3);
  for (int p : {2, 3, 4, 8}) {
    nn::TrainConfig cfg;
    cfg.batch = 16;
    const auto measured = measure_per_iteration(p, [&](comm::Comm& c,
                                                       std::size_t iters) {
      auto c2 = cfg;
      c2.iterations = iters;
      (void)train_batch_parallel(c, specs, data, c2);
    });
    const auto predicted = predict_batch_parallel(specs, p);
    EXPECT_EQ(measured.allreduce_bytes, predicted.allreduce_bytes) << "p=" << p;
    EXPECT_EQ(measured.allgather_bytes, 0u) << "p=" << p;
    EXPECT_EQ(measured.p2p_bytes, 0u) << "p=" << p;
  }
}

TEST(Validation, ModelParallelVolumes) {
  const auto specs = nn::mlp_spec({10, 24, 12, 6});
  const auto data = nn::make_synthetic_dataset(10, 6, 48, 5);
  for (int p : {2, 3, 6}) {
    nn::TrainConfig cfg;
    cfg.batch = 12;
    const auto measured = measure_per_iteration(p, [&](comm::Comm& c,
                                                       std::size_t iters) {
      auto c2 = cfg;
      c2.iterations = iters;
      (void)train_model_parallel(c, specs, data, c2);
    });
    const auto predicted = predict_model_parallel(specs, cfg.batch, p);
    EXPECT_EQ(measured.allgather_bytes, predicted.allgather_bytes) << "p=" << p;
    EXPECT_EQ(measured.allreduce_bytes, predicted.allreduce_bytes) << "p=" << p;
  }
}

TEST(Validation, Integrated15DVolumes) {
  const auto specs = nn::mlp_spec({10, 24, 12, 12});
  const auto data = nn::make_synthetic_dataset(10, 12, 48, 7);
  for (const auto [pr, pc] : {std::pair{2, 2}, std::pair{3, 2},
                              std::pair{2, 4}, std::pair{4, 2},
                              std::pair{5, 3}}) {  // uneven rows AND columns
    nn::TrainConfig cfg;
    cfg.batch = 16;
    const GridShape grid{pr, pc};
    const auto measured = measure_per_iteration(
        pr * pc, [&, grid](comm::Comm& c, std::size_t iters) {
          auto c2 = cfg;
          c2.iterations = iters;
          (void)train_integrated_15d(c, grid, specs, data, c2);
        });
    const auto predicted = predict_integrated_15d(specs, cfg.batch, grid);
    EXPECT_EQ(measured.allgather_bytes, predicted.allgather_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(measured.allreduce_bytes, predicted.allreduce_bytes)
        << "grid " << pr << "x" << pc;
  }
}

TEST(Validation, DomainParallelVolumes) {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 32, 9);
  for (int p : {2, 3, 4, 8}) {  // p=3: uneven slabs, all-gatherv transition
    nn::TrainConfig cfg;
    cfg.batch = 8;
    const auto measured = measure_per_iteration(p, [&](comm::Comm& c,
                                                       std::size_t iters) {
      auto c2 = cfg;
      c2.iterations = iters;
      (void)train_domain_parallel(c, specs, data, c2);
    });
    const auto predicted = predict_domain_parallel(specs, cfg.batch, p);
    EXPECT_EQ(measured.p2p_bytes, predicted.p2p_bytes) << "p=" << p;
    EXPECT_EQ(measured.allgather_bytes, predicted.allgather_bytes) << "p=" << p;
    EXPECT_EQ(measured.allreduce_bytes, predicted.allreduce_bytes) << "p=" << p;
  }
}

TEST(Validation, HybridVolumes) {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 8, false));
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 32, 11);
  for (const auto [pr, pc] : {std::pair{2, 2}, std::pair{4, 2},
                              std::pair{2, 4}}) {
    nn::TrainConfig cfg;
    cfg.batch = 8;
    const GridShape grid{pr, pc};
    const auto measured = measure_per_iteration(
        pr * pc, [&, grid](comm::Comm& c, std::size_t iters) {
          auto c2 = cfg;
          c2.iterations = iters;
          (void)train_hybrid(c, grid, specs, data, c2);
        });
    const auto predicted = predict_hybrid(specs, cfg.batch, grid);
    EXPECT_EQ(measured.p2p_bytes, predicted.p2p_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(measured.allgather_bytes, predicted.allgather_bytes)
        << "grid " << pr << "x" << pc;
    EXPECT_EQ(measured.allreduce_bytes, predicted.allreduce_bytes)
        << "grid " << pr << "x" << pc;
  }
}

TEST(Validation, PredictionMatchesPaperBandwidthTerm) {
  // Sanity link to the α–β model: for divisible sizes, the predicted batch-
  // parallel bytes equal P · 2(P−1)/P · Σ|W| · 4 — the Eq. 4 bandwidth words
  // per process times P processes times 4 bytes.
  const auto specs = nn::mlp_spec({16, 32, 8});
  const int p = 4;
  const auto t = predict_batch_parallel(specs, p);
  const double total_w = 16 * 32 + 32 * 8;
  EXPECT_DOUBLE_EQ(static_cast<double>(t.allreduce_bytes),
                   p * 2.0 * (p - 1) / p * total_w * 4.0);
}

}  // namespace
}  // namespace mbd::parallel
