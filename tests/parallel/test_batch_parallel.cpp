#include "mbd/parallel/batch_parallel.hpp"

#include <gtest/gtest.h>

#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
};

Problem mlp_problem() {
  Problem p;
  p.specs = nn::mlp_spec({12, 16, 4});
  p.data = nn::make_synthetic_dataset(12, 4, 96, /*seed=*/3);
  p.cfg.batch = 24;
  p.cfg.lr = 0.05f;
  p.cfg.iterations = 8;
  return p;
}

class BatchParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchParallelSweep, MatchesSequentialOnMlp) {
  const int p = GetParam();
  auto prob = mlp_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(p, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

INSTANTIATE_TEST_SUITE_P(Ranks, BatchParallelSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8),
                         ::testing::PrintToStringParamName());

TEST(BatchParallel, MatchesSequentialOnCnn) {
  Problem prob;
  prob.specs = nn::small_cnn_spec(2, 6, 3);
  prob.data = nn::make_synthetic_dataset(2 * 6 * 6, 3, 48, /*seed=*/5);
  prob.cfg.batch = 12;
  prob.cfg.lr = 0.02f;
  prob.cfg.iterations = 4;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(BatchParallel, MatchesSequentialWithDropout) {
  // The stateless dropout mask makes batch partitioning transparent.
  auto prob = mlp_problem();
  nn::BuildOptions build;
  build.dropout_prob = 0.3;
  nn::Network net = nn::build_network(prob.specs, build);
  const auto ref_losses = nn::train_sgd(net, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg, build);
  });
  testing::expect_losses_close(ref_losses, dist.losses);
  expect_params_close(net.save_params(), dist.params);
}

TEST(BatchParallel, UnevenBatchDivision) {
  // batch=25 over p=4: ranks get 6/6/6/7 columns — block partition handles it.
  auto prob = mlp_problem();
  prob.cfg.batch = 25;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(BatchParallel, RejectsMoreRanksThanSamples) {
  auto prob = mlp_problem();
  prob.cfg.batch = 2;
  comm::World world(4);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  }),
               Error);
}

TEST(BatchParallel, LossDecreases) {
  auto prob = mlp_problem();
  prob.cfg.iterations = 30;
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_batch_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  EXPECT_LT(dist.losses.back(), 0.8 * dist.losses.front());
}

}  // namespace
}  // namespace mbd::parallel
