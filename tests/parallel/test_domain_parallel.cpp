#include "mbd/parallel/domain_parallel.hpp"

#include <gtest/gtest.h>

#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
};

/// Stride-1 same-pad conv stack + FC tail on 8×8 images (height divisible
/// by 1, 2, 4, 8 ranks).
std::vector<nn::LayerSpec> domain_cnn_spec(std::size_t in_c, std::size_t hw,
                                           std::size_t classes) {
  std::vector<nn::LayerSpec> net;
  net.push_back(nn::conv_spec("conv1", in_c, hw, hw, 4, 3, 1, 1));
  net.push_back(nn::conv_spec("conv2", 4, hw, hw, 4, 3, 1, 1));
  net.push_back(nn::fc_spec("fc1", 4 * hw * hw, 16));
  net.push_back(nn::fc_spec("fc2", 16, classes, /*relu=*/false));
  nn::check_chain(net);
  return net;
}

Problem domain_problem() {
  Problem p;
  p.specs = domain_cnn_spec(2, 8, 4);
  p.data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 32, /*seed=*/17);
  p.cfg.batch = 8;
  p.cfg.lr = 0.02f;
  p.cfg.iterations = 4;
  return p;
}

// Sweep both the rank count and the halo schedule (blocking vs overlapped —
// §2.2's non-blocking exchange must be bit-identical in results).
class DomainSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DomainSweep, MatchesSequential) {
  const auto [p, overlap] = GetParam();
  auto prob = domain_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(p, [&, overlap = overlap](comm::Comm& c) {
    return train_domain_parallel(c, prob.specs, prob.data, prob.cfg,
                                 /*seed=*/42, overlap);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, DomainSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Bool()),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_overlapped" : "_blocking");
    });

TEST(DomainParallel, OverlappedHaloSameTraffic) {
  // The overlapped schedule changes only when compute happens, not what is
  // communicated.
  auto prob = domain_problem();
  auto run = [&](bool overlap) {
    comm::World world(4);
    world.run([&](comm::Comm& c) {
      (void)train_domain_parallel(c, prob.specs, prob.data, prob.cfg, 42,
                                  overlap);
    });
    return world.stats();
  };
  const auto blocking = run(false);
  const auto overlapped = run(true);
  EXPECT_EQ(blocking[comm::Coll::PointToPoint].bytes,
            overlapped[comm::Coll::PointToPoint].bytes);
  EXPECT_EQ(blocking[comm::Coll::AllGather].bytes,
            overlapped[comm::Coll::AllGather].bytes);
}

TEST(DomainParallel, FiveByFiveKernelHaloOfTwo) {
  // Larger halo (⌊5/2⌋ = 2 rows) across 2 ranks on 8-row images.
  Problem prob;
  std::vector<nn::LayerSpec> net;
  net.push_back(nn::conv_spec("conv1", 1, 8, 8, 3, 5, 1, 2));
  net.push_back(nn::fc_spec("fc", 3 * 8 * 8, 4, false));
  prob.specs = net;
  prob.data = nn::make_synthetic_dataset(1 * 8 * 8, 4, 16, 19);
  prob.cfg.batch = 4;
  prob.cfg.lr = 0.02f;
  prob.cfg.iterations = 3;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(2, [&](comm::Comm& c) {
    return train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(DomainParallel, OneByOneConvNeedsNoHalo) {
  // 1×1 convolutions: zero halo traffic (paper's point about modern nets).
  Problem prob;
  std::vector<nn::LayerSpec> net;
  net.push_back(nn::conv_spec("conv1x1", 2, 4, 4, 6, 1, 1, 0));
  net.push_back(nn::fc_spec("fc", 6 * 4 * 4, 3, false));
  prob.specs = net;
  prob.data = nn::make_synthetic_dataset(2 * 4 * 4, 3, 12, 23);
  prob.cfg.batch = 4;
  prob.cfg.lr = 0.02f;
  prob.cfg.iterations = 2;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);

  comm::World world(2);
  std::vector<DistResult> results(2);
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    auto r = train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
    std::lock_guard lock(mu);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  expect_losses_close(ref.losses, results[0].losses);
  // No point-to-point (halo) traffic at all.
  EXPECT_EQ(world.stats()[comm::Coll::PointToPoint].bytes, 0u);
}

TEST(DomainParallel, RejectsPooling) {
  auto specs = nn::small_cnn_spec(2, 8, 4);  // has a pool layer
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 16, 29);
  nn::TrainConfig cfg;
  cfg.batch = 4;
  comm::World world(2);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_domain_parallel(c, specs, data, cfg);
  }),
               Error);
}

TEST(DomainParallel, SupportsIndivisibleHeight) {
  // Height 8 over 3 ranks: slabs of 2, 3, 3 rows — uneven halo neighbours
  // and an all-gatherv at the conv→FC transition.
  auto prob = domain_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(3, [&](comm::Comm& c) {
    return train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(DomainParallel, RejectsMoreRanksThanRows) {
  auto prob = domain_problem();  // height 8
  comm::World world(9);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
  }),
               Error);
}

TEST(DomainParallel, RejectsStridedConv) {
  std::vector<nn::LayerSpec> net;
  net.push_back(nn::conv_spec("strided", 1, 8, 8, 2, 3, 2, 1));
  net.push_back(nn::fc_spec("fc", 2 * 4 * 4, 2, false));
  const auto data = nn::make_synthetic_dataset(64, 2, 8, 31);
  nn::TrainConfig cfg;
  cfg.batch = 4;
  comm::World world(2);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_domain_parallel(c, net, data, cfg);
  }),
               Error);
}

TEST(DomainParallel, NonSquareImages) {
  // Height 6 (split axis) vs width 10 — the H/W roles must not be conflated
  // anywhere in the halo or slab logic.
  Problem prob;
  std::vector<nn::LayerSpec> net;
  nn::LayerSpec c1;
  c1.kind = nn::LayerKind::Conv;
  c1.name = "conv_rect";
  c1.conv = tensor::ConvGeom{2, 6, 10, 3, 3, 3, 1, 1};
  c1.relu_after = true;
  net.push_back(c1);
  net.push_back(nn::fc_spec("fc", 3 * 6 * 10, 4, false));
  nn::check_chain(net);
  prob.specs = net;
  prob.data = nn::make_synthetic_dataset(2 * 6 * 10, 4, 24, 97);
  prob.cfg.batch = 6;
  prob.cfg.lr = 0.02f;
  prob.cfg.iterations = 3;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  for (int p : {2, 3}) {
    const auto dist = run_distributed(p, [&](comm::Comm& c) {
      return train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
    });
    expect_losses_close(ref.losses, dist.losses);
    expect_params_close(ref.params, dist.params);
  }
}

TEST(DomainParallel, GrowingChannelStack) {
  // Channel counts changing layer to layer (2 -> 6 -> 3) exercise the
  // per-layer halo sizes.
  Problem prob;
  std::vector<nn::LayerSpec> net;
  net.push_back(nn::conv_spec("c1", 2, 8, 8, 6, 3, 1, 1));
  net.push_back(nn::conv_spec("c2", 6, 8, 8, 3, 5, 1, 2));  // halo 2
  net.push_back(nn::fc_spec("fc", 3 * 8 * 8, 4, false));
  nn::check_chain(net);
  prob.specs = net;
  prob.data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 24, 101);
  prob.cfg.batch = 6;
  prob.cfg.lr = 0.02f;
  prob.cfg.iterations = 3;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(DomainParallel, LossDecreases) {
  auto prob = domain_problem();
  prob.cfg.iterations = 20;
  const auto dist = run_distributed(2, [&](comm::Comm& c) {
    return train_domain_parallel(c, prob.specs, prob.data, prob.cfg);
  });
  EXPECT_LT(dist.losses.back(), dist.losses.front());
}

}  // namespace
}  // namespace mbd::parallel
