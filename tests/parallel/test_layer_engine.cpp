// Engine-level sweeps: every trainer runs through the shared LayerEngine in
// both reduce modes, over uneven partitions (P ∤ d_out, Pc ∤ B, uneven
// height slabs). For each trainer the two modes must produce bitwise-equal
// loss trajectories and parameters (the nonblocking ring is the blocking
// ring, resumable), identical per-iteration traffic in every class, and —
// where validation.hpp has a closed form — exactly the predicted byte
// counts. Finally, a traced 1.5D run is replayed under the α–β machine
// model to show that Overlapped mode actually hides reduction traffic
// behind annotated GEMM compute (smaller makespan, less recv wait).
#include "mbd/parallel/layer_engine.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <utility>
#include <vector>

#include "mbd/costmodel/machine.hpp"
#include "mbd/costmodel/replay.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/pipeline.hpp"
#include "mbd/parallel/validation.hpp"
#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_reference;

struct ModeRun {
  DistResult res;                 // 3-iteration run
  comm::StatsSnapshot one, three; // total traffic after 1 and 3 iterations
};

/// Per-iteration byte/message delta of one traffic class, with setup
/// traffic (splits, parameter assembly) factored out.
comm::TrafficEntry per_iteration(const ModeRun& m, comm::Coll c) {
  return {(m.three[c].bytes - m.one[c].bytes) / 2,
          (m.three[c].messages - m.one[c].messages) / 2};
}

/// Runs `fn(comm, iterations, mode)` on `p` ranks for 1 and 3 iterations
/// with collective validation on; checks all ranks agree bitwise.
template <typename Fn>
ModeRun run_mode(int p, ReduceMode mode, const Fn& fn) {
  ModeRun m;
  auto run = [&](std::size_t iters) {
    comm::World world(p);
    world.enable_validation();
    std::vector<DistResult> results(static_cast<std::size_t>(p));
    std::mutex mu;
    world.run([&](comm::Comm& c) {
      DistResult r = fn(c, iters, mode);
      std::lock_guard lock(mu);
      results[static_cast<std::size_t>(c.rank())] = std::move(r);
    });
    for (int r = 1; r < p; ++r)
      EXPECT_EQ(results[0].losses, results[static_cast<std::size_t>(r)].losses)
          << "rank " << r << " diverged";
    m.res = std::move(results[0]);
    return world.stats();
  };
  m.one = run(1);
  m.three = run(3);
  return m;
}

/// The cross-mode contract: bitwise-equal trajectories and parameters,
/// identical traffic in every class (bytes AND message counts).
void expect_modes_equivalent(const ModeRun& blocking, const ModeRun& overlapped) {
  EXPECT_EQ(blocking.res.losses, overlapped.res.losses)
      << "overlapped mode changed the loss trajectory";
  EXPECT_EQ(blocking.res.params, overlapped.res.params)
      << "overlapped mode changed the final weights";
  for (int ci = 0; ci < static_cast<int>(comm::Coll::kCount); ++ci) {
    const auto c = static_cast<comm::Coll>(ci);
    const auto b = per_iteration(blocking, c);
    const auto o = per_iteration(overlapped, c);
    EXPECT_EQ(b.bytes, o.bytes) << "class " << comm::coll_name(c);
    EXPECT_EQ(b.messages, o.messages) << "class " << comm::coll_name(c);
  }
}

void expect_predicted(const ModeRun& m, const TrafficPrediction& predicted,
                      const char* label) {
  EXPECT_EQ(per_iteration(m, comm::Coll::AllReduce).bytes,
            predicted.allreduce_bytes)
      << label;
  EXPECT_EQ(per_iteration(m, comm::Coll::AllGather).bytes,
            predicted.allgather_bytes)
      << label;
  EXPECT_EQ(per_iteration(m, comm::Coll::PointToPoint).bytes,
            predicted.p2p_bytes)
      << label;
}

nn::TrainConfig config(std::size_t batch, std::size_t iters) {
  nn::TrainConfig cfg;
  cfg.batch = batch;
  cfg.iterations = iters;
  cfg.momentum = 0.9f;
  return cfg;
}

TEST(LayerEngine, ModelParallelBothModesUnevenRows) {
  const auto specs = nn::mlp_spec({10, 19, 7});  // 3 ∤ 19, 3 ∤ 7
  const auto data = nn::make_synthetic_dataset(10, 7, 48, 5);
  const auto cfg = config(12, 3);
  const int p = 3;
  auto fn = [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
    auto c2 = cfg;
    c2.iterations = iters;
    return train_model_parallel(c, specs, data, c2, 42, mode);
  };
  const ModeRun blocking = run_mode(p, ReduceMode::Blocking, fn);
  const ModeRun overlapped = run_mode(p, ReduceMode::Overlapped, fn);
  expect_modes_equivalent(blocking, overlapped);
  expect_predicted(blocking, predict_model_parallel(specs, cfg.batch, p),
                   "blocking");
  expect_predicted(overlapped, predict_model_parallel(specs, cfg.batch, p),
                   "overlapped");
  const auto ref = run_reference(specs, data, cfg);
  expect_losses_close(blocking.res.losses, ref.losses);
  expect_params_close(blocking.res.params, ref.params);
}

TEST(LayerEngine, BatchParallelBothModesUnevenColumns) {
  const auto specs = nn::mlp_spec({12, 16, 4});
  const auto data = nn::make_synthetic_dataset(12, 4, 64, 3);
  const auto cfg = config(10, 3);  // 3 ∤ 10
  const int p = 3;
  auto fn = [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
    auto c2 = cfg;
    c2.iterations = iters;
    return train_batch_parallel(c, specs, data, c2, {}, mode);
  };
  const ModeRun blocking = run_mode(p, ReduceMode::Blocking, fn);
  const ModeRun overlapped = run_mode(p, ReduceMode::Overlapped, fn);
  expect_modes_equivalent(blocking, overlapped);
  expect_predicted(blocking, predict_batch_parallel(specs, p), "blocking");
  expect_predicted(overlapped, predict_batch_parallel(specs, p), "overlapped");
  const auto ref = run_reference(specs, data, cfg);
  expect_losses_close(blocking.res.losses, ref.losses);
  expect_params_close(blocking.res.params, ref.params);
}

TEST(LayerEngine, Integrated15DBothModesUnevenGrids) {
  const auto specs = nn::mlp_spec({10, 19, 12});  // 3 ∤ 19
  const auto data = nn::make_synthetic_dataset(10, 12, 48, 7);
  const auto ref = run_reference(specs, data, config(11, 3));
  for (const auto [pr, pc] : {std::pair{3, 2}, std::pair{2, 3}}) {
    const auto cfg = config(11, 3);  // pc ∤ 11 either way
    const GridShape grid{pr, pc};
    auto fn = [&, grid](comm::Comm& c, std::size_t iters, ReduceMode mode) {
      auto c2 = cfg;
      c2.iterations = iters;
      return train_integrated_15d(c, grid, specs, data, c2, 42, mode);
    };
    const ModeRun blocking = run_mode(pr * pc, ReduceMode::Blocking, fn);
    const ModeRun overlapped = run_mode(pr * pc, ReduceMode::Overlapped, fn);
    expect_modes_equivalent(blocking, overlapped);
    const auto predicted = predict_integrated_15d(specs, cfg.batch, grid);
    expect_predicted(blocking, predicted, "blocking");
    expect_predicted(overlapped, predicted, "overlapped");
    expect_losses_close(blocking.res.losses, ref.losses);
    expect_params_close(blocking.res.params, ref.params);
  }
}

std::vector<nn::LayerSpec> conv_fc_specs() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  return specs;
}

TEST(LayerEngine, DomainParallelBothModesUnevenSlabs) {
  const auto specs = conv_fc_specs();
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 32, 9);
  const auto cfg = config(8, 3);
  const int p = 3;  // 3 ∤ 8 image rows: uneven slabs
  auto fn = [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
    auto c2 = cfg;
    c2.iterations = iters;
    return train_domain_parallel(c, specs, data, c2, 42,
                                 /*overlap_halo=*/false, mode);
  };
  const ModeRun blocking = run_mode(p, ReduceMode::Blocking, fn);
  const ModeRun overlapped = run_mode(p, ReduceMode::Overlapped, fn);
  expect_modes_equivalent(blocking, overlapped);
  expect_predicted(blocking, predict_domain_parallel(specs, cfg.batch, p),
                   "blocking");
  expect_predicted(overlapped, predict_domain_parallel(specs, cfg.batch, p),
                   "overlapped");
  const auto ref = run_reference(specs, data, cfg);
  expect_losses_close(blocking.res.losses, ref.losses);
  expect_params_close(blocking.res.params, ref.params);
}

TEST(LayerEngine, HybridBothModesUnevenBatch) {
  const auto specs = conv_fc_specs();
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 32, 9);
  const auto cfg = config(7, 3);  // 2 ∤ 7 batch columns
  const GridShape grid{2, 2};
  auto fn = [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
    auto c2 = cfg;
    c2.iterations = iters;
    return train_hybrid(c, grid, specs, data, c2, 42,
                        /*overlap_halo=*/false, mode);
  };
  const ModeRun blocking = run_mode(4, ReduceMode::Blocking, fn);
  const ModeRun overlapped = run_mode(4, ReduceMode::Overlapped, fn);
  expect_modes_equivalent(blocking, overlapped);
  const auto predicted = predict_hybrid(specs, cfg.batch, grid);
  expect_predicted(blocking, predicted, "blocking");
  expect_predicted(overlapped, predicted, "overlapped");
  const auto ref = run_reference(specs, data, cfg);
  expect_losses_close(blocking.res.losses, ref.losses);
  expect_params_close(blocking.res.params, ref.params);
}

TEST(LayerEngine, MixedGridBothModesUnevenBatch) {
  const auto specs = conv_fc_specs();
  const auto data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 32, 9);
  const auto cfg = config(7, 3);  // 4 ∤ 7 conv blocks, 2 ∤ 7 group columns
  const GridShape grid{2, 2};
  auto fn = [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
    auto c2 = cfg;
    c2.iterations = iters;
    return train_mixed_grid(c, grid, specs, data, c2, 42, mode);
  };
  const ModeRun blocking = run_mode(4, ReduceMode::Blocking, fn);
  const ModeRun overlapped = run_mode(4, ReduceMode::Overlapped, fn);
  expect_modes_equivalent(blocking, overlapped);
  const auto predicted = predict_mixed_grid(specs, cfg.batch, grid);
  expect_predicted(blocking, predicted, "blocking");
  expect_predicted(overlapped, predicted, "overlapped");
  const auto ref = run_reference(specs, data, cfg);
  expect_losses_close(blocking.res.losses, ref.losses);
  expect_params_close(blocking.res.params, ref.params);
}

TEST(LayerEngine, PipelineBothModesUnevenStagesAndMicrobatches) {
  // Five layers over four stages (one rank owns two) and 3 ∤ 10 batch
  // columns, so both the layer blocks and the microbatch slices are uneven.
  const auto specs = nn::mlp_spec({12, 21, 17, 13, 11, 10});
  const auto data = nn::make_synthetic_dataset(12, 10, 48, 5);
  const auto cfg = config(10, 3);
  const int p = 4;
  const std::size_t microbatches = 3;
  auto fn = [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
    auto c2 = cfg;
    c2.iterations = iters;
    return train_pipeline(c, specs, data, c2, microbatches, 42, mode);
  };
  const ModeRun blocking = run_mode(p, ReduceMode::Blocking, fn);
  const ModeRun overlapped = run_mode(p, ReduceMode::Overlapped, fn);
  expect_modes_equivalent(blocking, overlapped);
  const auto predicted = predict_pipeline(specs, cfg.batch, p);
  EXPECT_EQ(predicted.allreduce_bytes, 0u);
  EXPECT_EQ(predicted.allgather_bytes, 0u);
  expect_predicted(blocking, predicted, "blocking");
  expect_predicted(overlapped, predicted, "overlapped");
  const auto ref = run_reference(specs, data, cfg);
  expect_losses_close(blocking.res.losses, ref.losses);
  expect_params_close(blocking.res.params, ref.params);
}

TEST(LayerEngine, PipelineTrafficIndependentOfMicrobatchCount) {
  // The 1F1B boundary traffic is B columns per boundary per iteration no
  // matter how B is sliced; only the message count grows with M.
  const auto specs = nn::mlp_spec({12, 21, 17, 13, 11, 10});
  const auto data = nn::make_synthetic_dataset(12, 10, 48, 5);
  const auto cfg = config(10, 3);
  const int p = 4;
  const auto run_m = [&](std::size_t microbatches) {
    return run_mode(p, ReduceMode::Blocking,
                    [&](comm::Comm& c, std::size_t iters, ReduceMode mode) {
                      auto c2 = cfg;
                      c2.iterations = iters;
                      return train_pipeline(c, specs, data, c2, microbatches,
                                            42, mode);
                    });
  };
  const ModeRun m1 = run_m(1);
  const ModeRun m5 = run_m(5);
  const auto predicted = predict_pipeline(specs, cfg.batch, p);
  expect_predicted(m1, predicted, "one microbatch");
  expect_predicted(m5, predicted, "five microbatches");
  EXPECT_EQ(per_iteration(m5, comm::Coll::PointToPoint).messages,
            5 * per_iteration(m1, comm::Coll::PointToPoint).messages);
  // Same optimisation problem, different gradient-accumulation order.
  expect_losses_close(m1.res.losses, m5.res.losses);
  expect_params_close(m1.res.params, m5.res.params);
}

/// Records a traced 1.5D run with modeled GEMM times in the given mode.
comm::Trace trace_integrated(ReduceMode mode, double seconds_per_flop) {
  const auto specs = nn::mlp_spec({8, 30, 6});
  const auto data = nn::make_synthetic_dataset(8, 6, 32, 11);
  nn::TrainConfig cfg;
  cfg.batch = 8;
  cfg.iterations = 2;
  const GridShape grid{2, 2};
  comm::World world(4);
  world.enable_validation();
  world.enable_tracing();
  world.run([&](comm::Comm& c) {
    (void)train_integrated_15d(c, grid, specs, data, cfg, 42, mode,
                               seconds_per_flop);
  });
  return world.trace();
}

TEST(LayerEngine, OverlappedModeHidesReductionsInReplay) {
  // Replayed under in-flight transfer semantics (the transport the paper's
  // overlap factor assumes): the blocking schedule exposes each reduction's
  // wire time as recv wait, while the overlapped schedule initiates the ∆X
  // reduce before the ∆W GEMM (≈100 µs of modeled compute, far more than
  // the ~0.1 µs transfers) and completes it behind that compute.
  const double spf = 1e-7;
  const comm::Trace blocking = trace_integrated(ReduceMode::Blocking, spf);
  const comm::Trace overlapped =
      trace_integrated(ReduceMode::Overlapped, spf);

  // Same work in both schedules: identical annotated compute and bytes.
  const auto m = costmodel::MachineModel::cori_knl();
  const costmodel::ReplayOptions inflight{.inflight_transfer = true};
  const auto rb = costmodel::replay_trace(blocking, m, inflight);
  const auto ro = costmodel::replay_trace(overlapped, m, inflight);
  EXPECT_GT(rb.total_compute, 0.0);
  EXPECT_NEAR(rb.total_compute, ro.total_compute, 1e-12);
  EXPECT_NEAR(rb.total_send_busy, ro.total_send_busy, 1e-12);

  // The overlap is real: reductions complete behind GEMMs.
  EXPECT_LT(ro.total_recv_wait, rb.total_recv_wait);
  EXPECT_LT(ro.makespan, rb.makespan);
}

}  // namespace
}  // namespace mbd::parallel
