#include "mbd/parallel/hybrid.hpp"

#include <gtest/gtest.h>

#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

using testing::expect_losses_close;
using testing::expect_params_close;
using testing::run_distributed;
using testing::run_reference;

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
};

/// Conv stack + FC tail with dims divisible by pr ∈ {1, 2, 4} and image
/// height 8.
Problem hybrid_problem() {
  Problem p;
  std::vector<nn::LayerSpec> net;
  net.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  net.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  net.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  net.push_back(nn::fc_spec("fc2", 16, 8, /*relu=*/false));
  nn::check_chain(net);
  p.specs = std::move(net);
  p.data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 48, /*seed=*/37);
  p.cfg.batch = 12;
  p.cfg.lr = 0.02f;
  p.cfg.iterations = 4;
  return p;
}

class HybridGridSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HybridGridSweep, MatchesSequential) {
  const auto [pr, pc] = GetParam();
  auto prob = hybrid_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(pr * pc, [&, pr = pr, pc = pc](comm::Comm& c) {
    return train_hybrid(c, {pr, pc}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, HybridGridSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{1, 2},
                      std::pair{2, 2}, std::pair{4, 1}, std::pair{4, 2},
                      std::pair{2, 4}),
    [](const auto& info) {
      return "pr" + std::to_string(info.param.first) + "_pc" +
             std::to_string(info.param.second);
    });

TEST(Hybrid, ScalesBeyondBatchSize) {
  // The paper's headline capability (Fig. 10): P > B still trains correctly.
  auto prob = hybrid_problem();
  prob.cfg.batch = 4;  // P = 8 > B = 4, Pc = 4, Pr = 2
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(8, [&](comm::Comm& c) {
    return train_hybrid(c, {2, 4}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(Hybrid, SupportsIndivisibleImageHeight) {
  // Height 8 over pr = 3: slab heights 2/3/3 within each model group.
  auto prob = hybrid_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(3, [&](comm::Comm& c) {
    return train_hybrid(c, {3, 1}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(Hybrid, SupportsIndivisibleFcWidthAndBatch) {
  // FC widths 12/8 over pr = 5 and batch 14 over pc = 4 — every partition
  // uneven at once.
  auto prob = hybrid_problem();
  prob.specs[2] = nn::fc_spec("fc1", 4 * 8 * 8, 12);
  prob.specs[3] = nn::fc_spec("fc2", 12, 8, false);
  prob.cfg.batch = 14;
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(20, [&](comm::Comm& c) {
    return train_hybrid(c, {5, 4}, prob.specs, prob.data, prob.cfg);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(Hybrid, OverlappedHaloMatchesSequential) {
  // §2.2's overlapped schedule inside the Eq. 9 trainer: identical results.
  auto prob = hybrid_problem();
  const auto ref = run_reference(prob.specs, prob.data, prob.cfg);
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_hybrid(c, {2, 2}, prob.specs, prob.data, prob.cfg,
                        /*seed=*/42, /*overlap_halo=*/true);
  });
  expect_losses_close(ref.losses, dist.losses);
  expect_params_close(ref.params, dist.params);
}

TEST(Hybrid, RejectsPooling) {
  auto prob = hybrid_problem();
  prob.specs.insert(prob.specs.begin() + 2,
                    nn::pool_spec("pool", 4, 8, 8, 2, 2));
  comm::World world(2);
  EXPECT_THROW(world.run([&](comm::Comm& c) {
    (void)train_hybrid(c, {2, 1}, prob.specs, prob.data, prob.cfg);
  }),
               Error);
}

TEST(Hybrid, LossDecreases) {
  auto prob = hybrid_problem();
  prob.cfg.iterations = 20;
  const auto dist = run_distributed(4, [&](comm::Comm& c) {
    return train_hybrid(c, {2, 2}, prob.specs, prob.data, prob.cfg);
  });
  EXPECT_LT(dist.losses.back(), dist.losses.front());
}

}  // namespace
}  // namespace mbd::parallel
