// Shared fixture pieces for the distributed-trainer equivalence tests.
#pragma once

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/common.hpp"

namespace mbd::parallel::testing {

/// Sequential reference: same specs, same seed, same data, same schedule.
struct Reference {
  std::vector<double> losses;
  std::vector<float> params;
};

inline Reference run_reference(const std::vector<nn::LayerSpec>& specs,
                               const nn::Dataset& data,
                               const nn::TrainConfig& cfg,
                               std::uint64_t seed = 42) {
  nn::Network net = nn::build_network(specs, {.seed = seed});
  Reference ref;
  ref.losses = nn::train_sgd(net, data, cfg);
  ref.params = net.save_params();
  return ref;
}

/// Runs `fn` on a world of `p` ranks, collects every rank's DistResult, and
/// checks the ranks agree with each other bit-for-bit on losses. Collective
/// validation is always on — every distributed trainer doubles as a
/// validator integration test in every build type.
template <typename Fn>
DistResult run_distributed(int p, Fn fn) {
  comm::World world(p);
  world.enable_validation();
  std::vector<DistResult> results(static_cast<std::size_t>(p));
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    DistResult r = fn(c);
    std::lock_guard lock(mu);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[0].losses, results[static_cast<std::size_t>(r)].losses)
        << "rank " << r << " diverged in loss";
    EXPECT_EQ(results[0].params.size(),
              results[static_cast<std::size_t>(r)].params.size());
  }
  return results[0];
}

/// Loss trajectories must match within float reduction-reordering noise.
inline void expect_losses_close(const std::vector<double>& a,
                                const std::vector<double>& b,
                                double tol = 2e-4) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol * (1.0 + std::abs(a[i]))) << "iteration " << i;
}

/// Final parameters must match within accumulated float noise.
inline void expect_params_close(const std::vector<float>& a,
                                const std::vector<float>& b,
                                float tol = 5e-4f) {
  ASSERT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  EXPECT_LE(worst, tol);
}

}  // namespace mbd::parallel::testing
