// Checkpoint/restart recovery (mbd/parallel/recovery.hpp): every trainer
// (the 1F1B pipeline included) × both ReduceModes survives an injected
// mid-run RankFailure under
// World::run_restartable and produces bitwise-identical losses and final
// weights to the uninterrupted run. Also: crash-before-first-checkpoint
// restarts from scratch, recovery is deterministic in the fault plan seed,
// send-faults (drop/duplicate/delay) compose with a crash, and dropout
// recovery works without snapshotting any RNG state beyond the step counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/pipeline.hpp"
#include "parallel_test_util.hpp"

namespace mbd::parallel {
namespace {

constexpr int kP = 4;

enum class TrainerKind {
  Batch,
  Model,
  Integrated,
  MixedGrid,
  Domain,
  Hybrid,
  Pipeline
};

const char* trainer_name(TrainerKind k) {
  switch (k) {
    case TrainerKind::Batch: return "Batch";
    case TrainerKind::Model: return "Model";
    case TrainerKind::Integrated: return "Integrated";
    case TrainerKind::MixedGrid: return "MixedGrid";
    case TrainerKind::Domain: return "Domain";
    case TrainerKind::Hybrid: return "Hybrid";
    case TrainerKind::Pipeline: return "Pipeline";
  }
  return "?";
}

struct Problem {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
  nn::TrainConfig cfg;
  nn::BuildOptions build;  // batch trainer only (others take a seed)
};

/// Small per-trainer problems: 7 iterations with momentum (so restored
/// velocity buffers matter), checkpoint cadence 3 → recovery points after
/// steps 3 and 6.
Problem problem_for(TrainerKind k) {
  Problem p;
  p.cfg.batch = 8;
  p.cfg.lr = 0.02f;
  p.cfg.momentum = 0.9f;
  p.cfg.iterations = 7;
  switch (k) {
    case TrainerKind::Batch:
    case TrainerKind::Model:
    case TrainerKind::Integrated:
      p.specs = nn::mlp_spec({12, 16, 8});
      p.data = nn::make_synthetic_dataset(12, 8, 40, /*seed=*/23);
      break;
    case TrainerKind::Domain:
    case TrainerKind::Hybrid: {
      std::vector<nn::LayerSpec> net;
      net.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
      net.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
      net.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
      net.push_back(nn::fc_spec("fc2", 16, 8, /*relu=*/false));
      nn::check_chain(net);
      p.specs = std::move(net);
      p.data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 40, /*seed=*/23);
      break;
    }
    case TrainerKind::MixedGrid:
      p.specs = nn::small_cnn_spec(2, 8, 8);
      p.data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 40, /*seed=*/23);
      break;
    case TrainerKind::Pipeline:
      // One FC layer per stage on kP ranks; two microbatches keep activation
      // stashes and in-flight boundary sends alive at the crash point.
      p.specs = nn::mlp_spec({12, 14, 12, 10, 8});
      p.data = nn::make_synthetic_dataset(12, 8, 40, /*seed=*/23);
      break;
  }
  return p;
}

DistResult run_trainer(comm::Comm& c, TrainerKind k, const Problem& p,
                       ReduceMode mode, const RecoveryContext* rc) {
  switch (k) {
    case TrainerKind::Batch:
      return train_batch_parallel(c, p.specs, p.data, p.cfg, p.build, mode,
                                  rc);
    case TrainerKind::Model:
      return train_model_parallel(c, p.specs, p.data, p.cfg, /*seed=*/42,
                                  mode, rc);
    case TrainerKind::Integrated:
      return train_integrated_15d(c, {2, 2}, p.specs, p.data, p.cfg,
                                  /*seed=*/42, mode, /*seconds_per_flop=*/0.0,
                                  rc);
    case TrainerKind::MixedGrid:
      return train_mixed_grid(c, {2, 2}, p.specs, p.data, p.cfg, /*seed=*/42,
                              mode, rc);
    case TrainerKind::Domain:
      return train_domain_parallel(c, p.specs, p.data, p.cfg, /*seed=*/42,
                                   /*overlap_halo=*/false, mode, rc);
    case TrainerKind::Hybrid:
      return train_hybrid(c, {2, 2}, p.specs, p.data, p.cfg, /*seed=*/42,
                          /*overlap_halo=*/false, mode, rc);
    case TrainerKind::Pipeline:
      return train_pipeline(c, p.specs, p.data, p.cfg, /*microbatches=*/2,
                            /*seed=*/42, mode, rc);
  }
  MBD_CHECK(false);
  return {};
}

/// Collect every rank's result, asserting the ranks agree bit-for-bit.
DistResult agree(std::vector<DistResult>& results) {
  for (int r = 1; r < kP; ++r) {
    EXPECT_EQ(results[0].losses, results[static_cast<std::size_t>(r)].losses)
        << "rank " << r << " diverged";
    EXPECT_EQ(results[0].params, results[static_cast<std::size_t>(r)].params);
  }
  return results[0];
}

/// Fault-free run with an op-counting (empty-plan) injector installed, so
/// the transport path is identical to the faulted runs and the rank-1 op
/// count is available for placing the crash mid-run.
DistResult reference_run(TrainerKind k, const Problem& p, ReduceMode mode,
                         std::uint64_t* rank1_ops) {
  comm::World w(kP);
  w.enable_validation();
  w.install_faults({});
  std::vector<DistResult> results(kP);
  std::mutex mu;
  w.run([&](comm::Comm& c) {
    DistResult r = run_trainer(c, k, p, mode, nullptr);
    std::lock_guard lock(mu);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  if (rank1_ops != nullptr) *rank1_ops = w.fault_injector()->op_count(1);
  return agree(results);
}

struct RecoveredRun {
  DistResult result;
  comm::RecoveryReport report;
  std::uint64_t commits = 0;
};

/// Run the trainer under run_restartable with `plan` installed and a
/// checkpoint-every-3 policy; the final (successful) attempt's results win.
RecoveredRun recovered_run(TrainerKind k, const Problem& p, ReduceMode mode,
                           comm::FaultPlan plan,
                           CheckpointPolicy policy = {.every = 3},
                           comm::FaultConfig fcfg = {}) {
  comm::World w(kP);
  w.enable_validation();
  w.install_faults(std::move(plan), fcfg);
  CheckpointStore store(kP);
  RecoveryContext rc{&store, policy};
  std::vector<DistResult> results(kP);
  std::mutex mu;
  RecoveredRun out;
  out.report = w.run_restartable([&](comm::Comm& c) {
    DistResult r = run_trainer(c, k, p, mode, &rc);
    std::lock_guard lock(mu);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  out.result = agree(results);
  out.commits = store.commits();
  return out;
}

comm::FaultPlan crash_at(std::uint64_t op, int rank = 1) {
  comm::FaultPlan plan;
  plan.actions.push_back({.kind = comm::FaultKind::CrashRank,
                          .rank = rank,
                          .op_index = op});
  return plan;
}

/// Like recovered_run, but the World holds `spares` hot spares and recovers
/// by promotion (in-place fabric repair) instead of teardown/rebuild.
RecoveredRun promoted_run(TrainerKind k, const Problem& p, ReduceMode mode,
                          comm::FaultPlan plan, int spares = 1,
                          CheckpointPolicy policy = {.every = 3},
                          comm::FaultConfig fcfg = {}) {
  comm::World w(kP);
  w.enable_validation();
  w.set_spares(spares);
  w.install_faults(std::move(plan), fcfg);
  CheckpointStore store(kP);
  RecoveryContext rc{&store, policy};
  std::vector<DistResult> results(kP);
  std::mutex mu;
  RecoveredRun out;
  out.report = w.run_promotable([&](comm::Comm& c) {
    DistResult r = run_trainer(c, k, p, mode, &rc);
    std::lock_guard lock(mu);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  out.result = agree(results);
  out.commits = store.commits();
  return out;
}

class RecoveryMatrix
    : public ::testing::TestWithParam<std::tuple<TrainerKind, ReduceMode>> {};

TEST_P(RecoveryMatrix, CrashedRunRecoversBitwise) {
  const auto [kind, mode] = GetParam();
  const Problem p = problem_for(kind);
  std::uint64_t rank1_ops = 0;
  const DistResult ref = reference_run(kind, p, mode, &rank1_ops);
  ASSERT_GT(rank1_ops, 4U);
  const auto rec =
      recovered_run(kind, p, mode, crash_at(rank1_ops / 2));
  EXPECT_EQ(rec.report.restarts, 1);
  ASSERT_EQ(rec.report.events.size(), 1U);
  EXPECT_EQ(rec.report.events[0].kind, "crash");
  // The acceptance bar: losses and final weights bitwise-equal to the
  // uninterrupted run.
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

INSTANTIATE_TEST_SUITE_P(
    Trainers, RecoveryMatrix,
    ::testing::Combine(::testing::Values(TrainerKind::Batch,
                                         TrainerKind::Model,
                                         TrainerKind::Integrated,
                                         TrainerKind::MixedGrid,
                                         TrainerKind::Domain,
                                         TrainerKind::Hybrid,
                                         TrainerKind::Pipeline),
                       ::testing::Values(ReduceMode::Blocking,
                                         ReduceMode::Overlapped)),
    [](const auto& info) {
      return std::string(trainer_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) == ReduceMode::Blocking ? "_Blocking"
                                                              : "_Overlapped");
    });

// --- Spare-rank hot-standby promotion -------------------------------------
//
// The same crash matrix, recovered by World::run_promotable: a hot spare is
// promoted into the dead rank's slot, the fabric is repaired in place (no
// teardown), survivors roll back from the shared CheckpointStore, and the
// result must still be bitwise-equal to the uninterrupted run.

class SparePromotionMatrix
    : public ::testing::TestWithParam<std::tuple<TrainerKind, ReduceMode>> {};

TEST_P(SparePromotionMatrix, PromotedRunRecoversBitwise) {
  const auto [kind, mode] = GetParam();
  const Problem p = problem_for(kind);
  std::uint64_t rank1_ops = 0;
  const DistResult ref = reference_run(kind, p, mode, &rank1_ops);
  ASSERT_GT(rank1_ops, 4U);
  const auto rec = promoted_run(kind, p, mode, crash_at(rank1_ops / 2));
  // Promotion, not restart: the report distinguishes the two recovery modes.
  EXPECT_EQ(rec.report.restarts, 0);
  ASSERT_EQ(rec.report.promotions.size(), 1U);
  EXPECT_EQ(rec.report.promotions[0].failed_rank, 1);
  EXPECT_EQ(rec.report.promotions[0].spare, kP);
  EXPECT_EQ(rec.report.promotions[0].epoch, 1);
  ASSERT_EQ(rec.report.events.size(), 1U);
  EXPECT_EQ(rec.report.events[0].kind, "crash");
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

INSTANTIATE_TEST_SUITE_P(
    Trainers, SparePromotionMatrix,
    ::testing::Combine(::testing::Values(TrainerKind::Batch,
                                         TrainerKind::Model,
                                         TrainerKind::Integrated,
                                         TrainerKind::MixedGrid,
                                         TrainerKind::Domain,
                                         TrainerKind::Hybrid,
                                         TrainerKind::Pipeline),
                       ::testing::Values(ReduceMode::Blocking,
                                         ReduceMode::Overlapped)),
    [](const auto& info) {
      return std::string(trainer_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) == ReduceMode::Blocking ? "_Blocking"
                                                              : "_Overlapped");
    });

TEST(Recovery, PromotionWithoutSparesRethrows) {
  const Problem p = problem_for(TrainerKind::Batch);
  std::uint64_t rank1_ops = 0;
  reference_run(TrainerKind::Batch, p, ReduceMode::Blocking, &rank1_ops);
  // No spare pool: the failure is not recoverable by promotion.
  EXPECT_THROW(promoted_run(TrainerKind::Batch, p, ReduceMode::Blocking,
                            crash_at(rank1_ops / 2), /*spares=*/0),
               comm::RankFailure);
}

TEST(Recovery, PromotionSurvivesTwoCrashesWithTwoSpares) {
  const Problem p = problem_for(TrainerKind::Model);
  std::uint64_t rank1_ops = 0;
  const DistResult ref =
      reference_run(TrainerKind::Model, p, ReduceMode::Overlapped, &rank1_ops);
  ASSERT_GT(rank1_ops, 6U);
  // Rank 1 dies in epoch 0, rank 2 dies in epoch 1; each consumes one spare.
  comm::FaultPlan plan;
  plan.actions.push_back({.kind = comm::FaultKind::CrashRank,
                          .rank = 1,
                          .op_index = rank1_ops / 3});
  plan.actions.push_back({.kind = comm::FaultKind::CrashRank,
                          .rank = 2,
                          .op_index = rank1_ops / 2,
                          .epoch = 1});
  const auto rec = promoted_run(TrainerKind::Model, p, ReduceMode::Overlapped,
                                std::move(plan), /*spares=*/2);
  EXPECT_EQ(rec.report.restarts, 0);
  ASSERT_EQ(rec.report.promotions.size(), 2U);
  EXPECT_EQ(rec.report.promotions[0].failed_rank, 1);
  EXPECT_EQ(rec.report.promotions[0].spare, kP);
  EXPECT_EQ(rec.report.promotions[1].failed_rank, 2);
  EXPECT_EQ(rec.report.promotions[1].spare, kP + 1);
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

TEST(Recovery, PromotionComposesWithSendFaults) {
  // Drop + duplicate + delay around the crash: the reliability substrate
  // absorbs them, the spare absorbs the crash, bitwise equality holds.
  const Problem p = problem_for(TrainerKind::Batch);
  const DistResult ref =
      reference_run(TrainerKind::Batch, p, ReduceMode::Blocking, nullptr);
  const auto plan = comm::FaultPlan::random(
      /*seed=*/5, kP,
      {.crashes = 1, .drops = 1, .duplicates = 1, .delays = 1, .min_op = 12,
       .max_op = 40});
  const auto rec =
      promoted_run(TrainerKind::Batch, p, ReduceMode::Blocking, plan,
                   /*spares=*/1, {.every = 3},
                   {.retry_interval = std::chrono::milliseconds(10)});
  EXPECT_EQ(rec.report.promotions.size(), 1U);
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

// --- Crash inside the checkpoint commit window -----------------------------

/// CheckpointStore that records the crash rank's injector op count at the
/// moment it stages — the op index immediately after is inside the
/// stage→commit window (the rank's next transport op is the pre-commit
/// barrier), which is exactly where the double-buffer protocol must protect
/// the previous generation.
class StageProbingStore : public CheckpointStore {
 public:
  StageProbingStore(int world_size, comm::FaultInjector* fi)
      : CheckpointStore(world_size), fi_(fi) {}

  void stage_rank(int rank, std::vector<float> state,
                  std::vector<double> losses) override {
    if (rank == 1 && fi_ != nullptr) {
      std::lock_guard lock(mu_);
      staged_ops_.push_back(fi_->op_count(1));
    }
    CheckpointStore::stage_rank(rank, std::move(state), std::move(losses));
  }

  std::vector<std::uint64_t> staged_ops() const {
    std::lock_guard lock(mu_);
    return staged_ops_;
  }

 private:
  comm::FaultInjector* fi_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> staged_ops_;
};

TEST(CheckpointStore, CrashInCommitWindowFallsBackToPreviousGeneration) {
  const Problem p = problem_for(TrainerKind::Batch);
  const ReduceMode mode = ReduceMode::Blocking;

  // Probe pass: where (in rank 1's op stream) does each staging happen?
  std::vector<std::uint64_t> staged_ops;
  DistResult ref;
  {
    comm::World w(kP);
    w.enable_validation();
    w.install_faults({});
    StageProbingStore store(kP, w.fault_injector());
    RecoveryContext rc{&store, {.every = 3}};
    std::vector<DistResult> results(kP);
    std::mutex mu;
    w.run([&](comm::Comm& c) {
      DistResult r = run_trainer(c, TrainerKind::Batch, p, mode, &rc);
      std::lock_guard lock(mu);
      results[static_cast<std::size_t>(c.rank())] = std::move(r);
    });
    ref = agree(results);
    staged_ops = store.staged_ops();
    // Cadence 3 over 7 iterations: checkpoints after steps 3 and 6.
    ASSERT_EQ(staged_ops.size(), 2U);
    ASSERT_EQ(store.commits(), 2U);
  }

  // Fault pass: rank 1 crashes on its first transport op after staging the
  // *second* checkpoint — between the stage barrier and the commit barrier.
  // The commit barrier can no longer complete, so the step-6 generation must
  // never become visible: recovery restores the step-3 generation and the
  // replay is bitwise-identical.
  comm::World w(kP);
  w.enable_validation();
  w.install_faults(crash_at(staged_ops[1] + 1));
  CheckpointStore store(kP);
  RecoveryContext rc{&store, {.every = 3}};
  std::vector<DistResult> results(kP);
  std::mutex mu;
  std::atomic<std::size_t> commits_at_restart{~std::size_t{0}};
  std::atomic<std::size_t> step_at_restart{0};
  std::atomic<int> attempts{0};
  const auto report = w.run_restartable([&](comm::Comm& c) {
    if (attempts.fetch_add(1) >= kP && c.rank() == 0) {
      // Second attempt: observe what survived the torn checkpoint.
      commits_at_restart.store(store.commits());
      step_at_restart.store(store.step());
    }
    DistResult r = run_trainer(c, TrainerKind::Batch, p, mode, &rc);
    std::lock_guard lock(mu);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  EXPECT_EQ(report.restarts, 1);
  // The interrupted commit never happened: one committed generation (step 3)
  // at restart time, with the staged step-6 slots discarded, not promoted.
  EXPECT_EQ(commits_at_restart.load(), 1U);
  EXPECT_EQ(step_at_restart.load(), 3U);
  // The replay re-stages and commits step 6.
  EXPECT_EQ(store.commits(), 2U);
  const DistResult rec = agree(results);
  EXPECT_EQ(rec.losses, ref.losses);
  EXPECT_EQ(rec.params, ref.params);
}

TEST(Recovery, CrashBeforeFirstCheckpointRestartsFromScratch) {
  const Problem p = problem_for(TrainerKind::Batch);
  std::uint64_t rank1_ops = 0;
  const DistResult ref =
      reference_run(TrainerKind::Batch, p, ReduceMode::Blocking, &rank1_ops);
  // Cadence longer than the run: no checkpoint is ever committed, so the
  // restart replays from iteration 0 — and must still match bitwise.
  const auto rec = recovered_run(TrainerKind::Batch, p, ReduceMode::Blocking,
                                 crash_at(rank1_ops / 2), {.every = 100});
  EXPECT_EQ(rec.report.restarts, 1);
  EXPECT_EQ(rec.commits, 0U);
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

TEST(Recovery, CheckpointActuallyCommits) {
  const Problem p = problem_for(TrainerKind::Batch);
  std::uint64_t rank1_ops = 0;
  reference_run(TrainerKind::Batch, p, ReduceMode::Blocking, &rank1_ops);
  const auto rec = recovered_run(TrainerKind::Batch, p, ReduceMode::Blocking,
                                 crash_at(rank1_ops - 2), {.every = 3});
  // 7 iterations at cadence 3 → commits after steps 3 and 6, possibly again
  // on the restarted attempt.
  EXPECT_GE(rec.commits, 2U);
}

TEST(Recovery, IdenticalConfigReplaysIdenticalRecovery) {
  const Problem p = problem_for(TrainerKind::Model);
  std::uint64_t rank1_ops = 0;
  reference_run(TrainerKind::Model, p, ReduceMode::Overlapped, &rank1_ops);
  const auto once = [&] {
    return recovered_run(TrainerKind::Model, p, ReduceMode::Overlapped,
                         crash_at(rank1_ops / 2));
  };
  const RecoveredRun a = once();
  const RecoveredRun b = once();
  EXPECT_EQ(a.report.restarts, b.report.restarts);
  EXPECT_EQ(a.report.log, b.report.log);
  ASSERT_EQ(a.report.events.size(), b.report.events.size());
  for (std::size_t i = 0; i < a.report.events.size(); ++i)
    EXPECT_EQ(a.report.events[i].describe(), b.report.events[i].describe());
  EXPECT_EQ(a.result.losses, b.result.losses);
  EXPECT_EQ(a.result.params, b.result.params);
}

TEST(Recovery, SeededPlanWithSendFaultsStillRecoversBitwise) {
  // A full random plan: drop + duplicate + delay land on the crash rank
  // before the crash; the reliability substrate absorbs them and the restart
  // absorbs the crash.
  const Problem p = problem_for(TrainerKind::Batch);
  const DistResult ref =
      reference_run(TrainerKind::Batch, p, ReduceMode::Blocking, nullptr);
  const auto plan = comm::FaultPlan::random(
      /*seed=*/5, kP,
      {.crashes = 1, .drops = 1, .duplicates = 1, .delays = 1, .min_op = 12,
       .max_op = 40});
  const auto rec =
      recovered_run(TrainerKind::Batch, p, ReduceMode::Blocking, plan,
                    {.every = 3}, {.retry_interval = std::chrono::milliseconds(10)});
  EXPECT_EQ(rec.report.restarts, 1);
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

TEST(Recovery, OverlappedDrainSendFaultsRecoverBitwise) {
  // Under ReduceMode::Overlapped the gradient allreduces are test()-polled
  // nonblocking rings. Reserved per-round op identities make drop/duplicate/
  // delay land on specific drain rounds, and the run must still recover
  // bitwise — the carried ROADMAP item this PR closes.
  const Problem p = problem_for(TrainerKind::Batch);
  const DistResult ref =
      reference_run(TrainerKind::Batch, p, ReduceMode::Overlapped, nullptr);
  const auto plan = comm::FaultPlan::random(
      /*seed=*/11, kP,
      {.crashes = 1, .drops = 1, .duplicates = 1, .delays = 1, .min_op = 12,
       .max_op = 40});
  const auto rec =
      recovered_run(TrainerKind::Batch, p, ReduceMode::Overlapped, plan,
                    {.every = 3},
                    {.retry_interval = std::chrono::milliseconds(10)});
  EXPECT_EQ(rec.report.restarts, 1);
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

TEST(Recovery, DropoutRecoversWithoutRngSnapshot) {
  // Dropout masks are a pure function of (seed, iteration, sample), so a
  // restored step counter reproduces them exactly — no RNG state in the
  // checkpoint.
  Problem p = problem_for(TrainerKind::Batch);
  p.build.dropout_prob = 0.2;
  std::uint64_t rank1_ops = 0;
  const DistResult ref =
      reference_run(TrainerKind::Batch, p, ReduceMode::Blocking, &rank1_ops);
  const auto rec = recovered_run(TrainerKind::Batch, p, ReduceMode::Blocking,
                                 crash_at(rank1_ops / 2));
  EXPECT_EQ(rec.report.restarts, 1);
  EXPECT_EQ(rec.result.losses, ref.losses);
  EXPECT_EQ(rec.result.params, ref.params);
}

TEST(CheckpointStore, StageCommitRestoreSemantics) {
  CheckpointStore store(2);
  EXPECT_FALSE(store.valid());
  EXPECT_EQ(store.commits(), 0U);
  store.stage_rank(0, {1.0f, 2.0f}, {0.5});
  store.stage_rank(1, {3.0f}, {0.5});
  EXPECT_FALSE(store.valid());  // staging alone is not a recovery point
  store.commit(/*next_step=*/3);
  EXPECT_TRUE(store.valid());
  EXPECT_EQ(store.step(), 3U);
  EXPECT_EQ(store.commits(), 1U);
  EXPECT_EQ(store.state(0), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(store.state(1), (std::vector<float>{3.0f}));
  EXPECT_EQ(store.losses(0), (std::vector<double>{0.5}));
  // Re-staging never touches the committed slots until the next commit.
  store.stage_rank(0, {9.0f, 9.0f}, {0.9});
  EXPECT_EQ(store.state(0), (std::vector<float>{1.0f, 2.0f}));
  store.stage_rank(1, {8.0f}, {0.9});
  store.commit(/*next_step=*/6);
  EXPECT_EQ(store.step(), 6U);
  EXPECT_EQ(store.state(0), (std::vector<float>{9.0f, 9.0f}));
  store.reset();
  EXPECT_FALSE(store.valid());
  EXPECT_EQ(store.commits(), 0U);
}

}  // namespace
}  // namespace mbd::parallel
