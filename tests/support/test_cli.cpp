#include "mbd/support/cli.hpp"

#include <gtest/gtest.h>

#include "mbd/support/check.hpp"

namespace mbd {
namespace {

ArgParser make_parser() {
  ArgParser p("test");
  p.add_int("count", 5, "a count");
  p.add_double("rate", 0.5, "a rate");
  p.add_string("name", "default", "a name");
  p.add_bool("verbose", false, "chatty");
  return p;
}

TEST(ArgParser, Defaults) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=9", "--rate=1.25", "--name=xyz"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.get_int("count"), 9);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.25);
  EXPECT_EQ(p.get_string("name"), "xyz");
}

TEST(ArgParser, SpaceSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "12"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("count"), 12);
}

TEST(ArgParser, BareBoolFlag) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, BadIntThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, WrongTypeAccessThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW(p.get_int("rate"), Error);
  EXPECT_THROW(p.get_bool("count"), Error);
}

TEST(ArgParser, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

}  // namespace
}  // namespace mbd
