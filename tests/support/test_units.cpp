#include "mbd/support/units.hpp"

#include <gtest/gtest.h>

namespace mbd {
namespace {

TEST(Units, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Units, Seconds) {
  EXPECT_EQ(format_seconds(2e-6), "2.00 us");
  EXPECT_EQ(format_seconds(1.3e-3), "1.30 ms");
  EXPECT_EQ(format_seconds(4.2), "4.20 s");
  EXPECT_EQ(format_seconds(3600.0), "60.0 min");
  EXPECT_EQ(format_seconds(10800.0), "3.00 h");
}

TEST(Units, Counts) {
  EXPECT_EQ(format_count(61e6), "61.0M");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1200), "1.2K");
}

}  // namespace
}  // namespace mbd
