#include "mbd/support/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mbd {
namespace {

TEST(Check, PassingConditionsAreSilent) {
  MBD_CHECK(true);
  MBD_CHECK_EQ(3, 3);
  MBD_CHECK_LT(1, 2);
  MBD_CHECK_LE(2, 2);
  MBD_CHECK_GT(5, 4);
}

TEST(Check, FailureThrowsError) {
  EXPECT_THROW(MBD_CHECK(false), Error);
  EXPECT_THROW(MBD_CHECK_EQ(1, 2), Error);
  EXPECT_THROW(MBD_CHECK_LT(2, 1), Error);
}

TEST(Check, MessageCarriesExpressionAndOperands) {
  try {
    MBD_CHECK_EQ(7, 9);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=7"), std::string::npos);
    EXPECT_NE(what.find("rhs=9"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, StreamedMessage) {
  try {
    const int x = 42;
    MBD_CHECK_MSG(x == 0, "x was " << x << " instead");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("x was 42 instead"),
              std::string::npos);
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto once = [&] {
    ++calls;
    return true;
  };
  MBD_CHECK(once());
  EXPECT_EQ(calls, 1);
}

TEST(Check, ErrorIsARuntimeError) {
  // Catchable through the standard hierarchy (library boundary guarantee).
  try {
    throw Error("boom");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

}  // namespace
}  // namespace mbd
