#include "mbd/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mbd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutOverflow) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaling) {
  Rng a(17), b(17);
  for (int i = 0; i < 10; ++i) {
    const double x = a.normal();
    const double y = b.normal(3.0, 2.0);
    EXPECT_DOUBLE_EQ(y, 3.0 + 2.0 * x);
  }
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng parent(21);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(1);
  Rng c3 = parent.split(2);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // Different salts give different streams.
  Rng c1b = parent.split(1);
  EXPECT_NE(c1b.next_u64(), c3.next_u64());
}

TEST(Rng, FillNormalSizesAndScale) {
  Rng rng(33);
  std::vector<float> v(1000);
  rng.fill_normal(v, 0.5f);
  double sum2 = 0.0;
  for (float x : v) sum2 += static_cast<double>(x) * x;
  // variance ≈ 0.25
  EXPECT_NEAR(sum2 / static_cast<double>(v.size()), 0.25, 0.05);
}

}  // namespace
}  // namespace mbd
