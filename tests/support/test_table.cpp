#include "mbd/support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mbd/support/check.hpp"

namespace mbd {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row().add("alpha").add_num(1.5, 2);
  t.row().add("b").add_int(42);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b", "c"});
  t.row().add("1").add("2").add("3");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(TextTable, SizeCountsRows) {
  TextTable t({"x"});
  EXPECT_EQ(t.size(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.size(), 2u);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"only"});
  t.row().add("ok");
  EXPECT_THROW(t.add("overflow"), Error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable t({}), Error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

}  // namespace
}  // namespace mbd
