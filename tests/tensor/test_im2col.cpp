#include "mbd/tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "mbd/support/rng.hpp"
#include "mbd/tensor/gemm.hpp"

namespace mbd::tensor {
namespace {

/// Direct (definitional) convolution used as the oracle.
Tensor4 conv_direct(const Tensor4& in, const Matrix& w, const ConvGeom& g) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  Tensor4 out(in.n(), g.out_c, oh, ow);
  for (std::size_t n = 0; n < in.n(); ++n)
    for (std::size_t oc = 0; oc < g.out_c; ++oc)
      for (std::size_t y = 0; y < oh; ++y)
        for (std::size_t x = 0; x < ow; ++x) {
          double acc = 0.0;
          for (std::size_t c = 0; c < g.in_c; ++c)
            for (std::size_t kh = 0; kh < g.kernel_h; ++kh)
              for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(y * g.stride + kh) -
                    static_cast<std::ptrdiff_t>(g.pad);
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                    static_cast<std::ptrdiff_t>(g.pad);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h) ||
                    ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w))
                  continue;
                const std::size_t wi = (c * g.kernel_h + kh) * g.kernel_w + kw;
                acc += static_cast<double>(
                           w(oc, wi)) *
                       in.at(n, c, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix));
              }
          out.at(n, oc, y, x) = static_cast<float>(acc);
        }
  return out;
}

struct GeomCase {
  ConvGeom g;
  const char* name;
};

class Im2ColSweep : public ::testing::TestWithParam<GeomCase> {};

TEST_P(Im2ColSweep, MatmulEqualsDirectConvolution) {
  const ConvGeom g = GetParam().g;
  Rng rng(3);
  Tensor4 in = Tensor4::random_normal(2, g.in_c, g.in_h, g.in_w, rng, 1.0f);
  Matrix w = Matrix::random_normal(g.out_c, g.in_c * g.kernel_h * g.kernel_w,
                                   rng, 1.0f);
  Tensor4 ref = conv_direct(in, w, g);
  for (std::size_t n = 0; n < in.n(); ++n) {
    const Matrix cols = im2col(in, n, g);
    const Matrix y = matmul(w, cols);
    for (std::size_t oc = 0; oc < g.out_c; ++oc)
      for (std::size_t i = 0; i < g.out_h() * g.out_w(); ++i)
        EXPECT_NEAR(y(oc, i),
                    ref.data()[ref.offset(n, oc, 0, 0) + i], 1e-3f)
            << "sample " << n << " channel " << oc << " pos " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColSweep,
    ::testing::Values(
        GeomCase{{1, 5, 5, 1, 3, 3, 1, 0}, "single_channel_3x3"},
        GeomCase{{3, 8, 8, 4, 3, 3, 1, 1}, "same_pad"},
        GeomCase{{2, 9, 7, 3, 3, 3, 2, 1}, "strided"},
        GeomCase{{4, 6, 6, 8, 1, 1, 1, 0}, "one_by_one"},
        GeomCase{{3, 11, 11, 2, 5, 5, 2, 2}, "alexnet_like_5x5"},
        GeomCase{{1, 10, 10, 2, 3, 3, 3, 0}, "stride3"}),
    [](const auto& info) { return info.param.name; });

TEST(Im2Col, AdjointProperty) {
  // <im2col(x), c> == <x, col2im_add(c)> — col2im is the exact adjoint,
  // which is what makes the conv backward pass correct.
  const ConvGeom g{2, 6, 6, 3, 3, 3, 1, 1};
  Rng rng(4);
  Tensor4 x = Tensor4::random_normal(1, g.in_c, g.in_h, g.in_w, rng, 1.0f);
  Matrix c = Matrix::random_normal(g.in_c * g.kernel_h * g.kernel_w,
                                   g.out_h() * g.out_w(), rng, 1.0f);
  const Matrix cols = im2col(x, 0, g);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i)
    lhs += static_cast<double>(cols.data()[i]) * c.data()[i];
  Tensor4 xadj(1, g.in_c, g.in_h, g.in_w);
  col2im_add(c, xadj, 0, g);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x.data()[i]) * xadj.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::abs(lhs) + 1e-3);
}

TEST(Im2Col, PaddingRegionsAreZero) {
  const ConvGeom g{1, 3, 3, 1, 3, 3, 1, 1};
  Tensor4 x(1, 1, 3, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = 1.0f;
  const Matrix cols = im2col(x, 0, g);
  // Top-left output position: kernel taps above/left of the image are zero.
  EXPECT_FLOAT_EQ(cols(0, 0), 0.0f);  // (kh=0, kw=0) tap at (-1, -1)
  EXPECT_FLOAT_EQ(cols(4, 0), 1.0f);  // centre tap at (0, 0)
}

TEST(Im2Col, ConvGeomShapeAlgebra) {
  const ConvGeom g{3, 227, 227, 96, 11, 11, 4, 0};
  EXPECT_EQ(g.out_h(), 55u);
  EXPECT_EQ(g.out_w(), 55u);
  EXPECT_EQ(g.weight_count(), 11u * 11 * 3 * 96);
}

}  // namespace
}  // namespace mbd::tensor
