#include "mbd/tensor/tensor4.hpp"

#include <gtest/gtest.h>

#include "mbd/support/check.hpp"

namespace mbd::tensor {
namespace {

Tensor4 iota(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  Tensor4 t(n, c, h, w);
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<float>(i);
  return t;
}

TEST(Tensor4, NchwLayout) {
  Tensor4 t = iota(2, 3, 4, 5);
  // Width runs fastest, then height, channel, batch (paper Fig. 3 caption).
  EXPECT_FLOAT_EQ(t.at(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 1, 0), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1, 0, 0), 20.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0, 0, 0), 60.0f);
}

TEST(Tensor4, HeightSlabRoundTrip) {
  Tensor4 t = iota(2, 3, 8, 4);
  Tensor4 slab = t.height_slab(2, 5);
  EXPECT_EQ(slab.h(), 3u);
  EXPECT_FLOAT_EQ(slab.at(1, 2, 0, 3), t.at(1, 2, 2, 3));
  Tensor4 back(2, 3, 8, 4);
  back.set_height_slab(2, slab);
  EXPECT_FLOAT_EQ(back.at(1, 2, 4, 1), t.at(1, 2, 4, 1));
  EXPECT_FLOAT_EQ(back.at(0, 0, 0, 0), 0.0f);
}

TEST(Tensor4, SlabPartitionReassembles) {
  Tensor4 t = iota(1, 2, 6, 3);
  Tensor4 out(1, 2, 6, 3);
  for (int p = 0; p < 3; ++p) {
    const std::size_t lo = static_cast<std::size_t>(p) * 2;
    out.set_height_slab(lo, t.height_slab(lo, lo + 2));
  }
  EXPECT_FLOAT_EQ(max_abs_diff(t, out), 0.0f);
}

TEST(Tensor4, BoundsChecked) {
  Tensor4 t(1, 1, 4, 4);
  EXPECT_THROW(t.height_slab(2, 6), Error);
  Tensor4 slab(1, 1, 2, 4);
  EXPECT_THROW(t.set_height_slab(3, slab), Error);
}

TEST(Tensor4, MaxAbsDiff) {
  Tensor4 a = iota(1, 1, 2, 2);
  Tensor4 b = iota(1, 1, 2, 2);
  b.at(0, 0, 1, 1) += 2.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.5f);
}

TEST(Tensor4, RandomNormalDeterministic) {
  Rng r1(8), r2(8);
  Tensor4 a = Tensor4::random_normal(1, 2, 3, 4, r1, 1.0f);
  Tensor4 b = Tensor4::random_normal(1, 2, 3, 4, r2, 1.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

}  // namespace
}  // namespace mbd::tensor
