#include "mbd/tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mbd/support/check.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::tensor {
namespace {

TEST(Ops, Axpy) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  std::vector<float> y{10.0f, 20.0f, 30.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(Ops, AxpySizeMismatchThrows) {
  std::vector<float> x{1.0f};
  std::vector<float> y{1.0f, 2.0f};
  EXPECT_THROW(axpy(1.0f, x, y), Error);
}

TEST(Ops, ReluForwardBackwardPair) {
  std::vector<float> x{-2.0f, 0.0f, 3.0f, -0.5f};
  std::vector<float> y(4);
  relu_forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
  std::vector<float> dy{1.0f, 1.0f, 1.0f, 1.0f}, dx(4);
  relu_backward(x, dy, dx);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.0f);  // subgradient 0 at the kink
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(Ops, SumAccumulatesInDouble) {
  std::vector<float> x(1000, 0.1f);
  EXPECT_NEAR(sum(x), 100.0, 1e-3);
}

TEST(Ops, SoftmaxColumnsNormalized) {
  Rng rng(1);
  Matrix logits = Matrix::random_normal(5, 7, rng, 3.0f);
  Matrix probs(5, 7);
  softmax_columns(logits, probs);
  for (std::size_t j = 0; j < 7; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_GE(probs(i, j), 0.0f);
      s += probs(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxShiftInvariance) {
  Matrix a(3, 1), b(3, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<float>(i);
    b(i, 0) = static_cast<float>(i) + 100.0f;  // shifted logits
  }
  Matrix pa(3, 1), pb(3, 1);
  softmax_columns(a, pa);
  softmax_columns(b, pb);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(pa(i, 0), pb(i, 0), 1e-6f);
}

TEST(Ops, SoftmaxExtremeLogitsFinite) {
  Matrix logits(2, 1);
  logits(0, 0) = 1e4f;
  logits(1, 0) = -1e4f;
  Matrix probs(2, 1);
  softmax_columns(logits, probs);
  EXPECT_NEAR(probs(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(probs(1, 0), 0.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(probs(0, 0)));
}

}  // namespace
}  // namespace mbd::tensor
