// Exhaustive shape sweep for the packed GEMM: every m,n,k around the
// register-tile boundaries (mr, nr — see gemm_config.hpp) plus odd and
// coprime sizes, all three variants, and the (alpha, beta) pairs the
// trainers use, checked against a naive reference kept here (independent of
// the library's matmul_reference, which has no alpha/beta). This is the
// test that pins the packing/edge-tail logic; it runs under the ASan/UBSan
// CI matrix like every other test.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "mbd/support/rng.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/gemm_config.hpp"

namespace mbd::tensor {
namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_normal(r, c, rng, 1.0f);
}

enum class Variant { NN, TN, NT };

// Max |gemm - naive| over the output for one case. Storage shapes:
//   NN: A m×k, B k×n;  TN: A k×m, B k×n;  NT: A m×k, B n×k.
float run_case(Variant v, std::size_t m, std::size_t n, std::size_t k,
               float alpha, float beta, std::uint64_t seed) {
  Matrix a, b;
  switch (v) {
    case Variant::NN:
      a = random(m, k, seed);
      b = random(k, n, seed + 1);
      break;
    case Variant::TN:
      a = random(k, m, seed);
      b = random(k, n, seed + 1);
      break;
    case Variant::NT:
      a = random(m, k, seed);
      b = random(n, k, seed + 1);
      break;
  }
  const Matrix c0 = random(m, n, seed + 2);
  Matrix c = c0;
  switch (v) {
    case Variant::NN: gemm_nn(a, b, c, alpha, beta); break;
    case Variant::TN: gemm_tn(a, b, c, alpha, beta); break;
    case Variant::NT: gemm_nt(a, b, c, alpha, beta); break;
  }
  float worst = 0.0f;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = v == Variant::TN ? a(p, i) : a(i, p);
        const float bv = v == Variant::NT ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      const float want = alpha * acc + beta * c0(i, j);
      worst = std::max(worst, std::abs(c(i, j) - want));
    }
  }
  return worst;
}

// Sizes straddling every tail boundary: the microtile edges (mr, nr), one
// below/above each, and odd sizes with no relation to any block size.
std::vector<std::size_t> boundary_sizes() {
  std::vector<std::size_t> s{1,
                             2,
                             kGemmMR - 1,
                             kGemmMR,
                             kGemmMR + 1,
                             kGemmNR - 1,
                             kGemmNR,
                             kGemmNR + 1,
                             2 * kGemmNR + 1,
                             31,
                             67};
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

constexpr std::array<std::pair<float, float>, 3> kAlphaBeta{
    {{1.0f, 0.0f}, {1.0f, 1.0f}, {0.5f, 2.0f}}};

void sweep(Variant v, const char* tag) {
  const auto sizes = boundary_sizes();
  for (std::size_t m : sizes) {
    for (std::size_t n : sizes) {
      for (std::size_t k : sizes) {
        for (std::size_t ab = 0; ab < kAlphaBeta.size(); ++ab) {
          const auto [alpha, beta] = kAlphaBeta[ab];
          const auto seed =
              static_cast<std::uint64_t>(((m * 73 + n) * 73 + k) * 4 + ab);
          const float tol = 1e-4f * static_cast<float>(k + 1);
          ASSERT_LE(run_case(v, m, n, k, alpha, beta, seed), tol)
              << tag << " m=" << m << " n=" << n << " k=" << k
              << " alpha=" << alpha << " beta=" << beta;
        }
      }
    }
  }
}

TEST(GemmExhaustive, NnSweep) { sweep(Variant::NN, "nn"); }
TEST(GemmExhaustive, TnSweep) { sweep(Variant::TN, "tn"); }
TEST(GemmExhaustive, NtSweep) { sweep(Variant::NT, "nt"); }

TEST(GemmExhaustive, AlphaZeroOnlyScalesC) {
  // alpha == 0 must not touch A·B at all (fast path) — only scale C.
  const Matrix a = random(9, 13, 1), b = random(13, 7, 2);
  const Matrix c0 = random(9, 7, 3);
  Matrix c = c0;
  gemm_nn(a, b, c, 0.0f, 0.5f);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 7; ++j)
      ASSERT_FLOAT_EQ(c(i, j), 0.5f * c0(i, j));
}

TEST(GemmExhaustive, BetaZeroOverwritesGarbage) {
  // beta == 0 must overwrite, not accumulate into, whatever C holds — huge
  // values would otherwise poison the result.
  const Matrix a = random(18, 19, 4), b = random(19, 17, 5);
  Matrix c = Matrix::filled(18, 17, 1e30f);
  gemm_nn(a, b, c, 1.0f, 0.0f);
  const Matrix ref = matmul_reference(a, b);
  EXPECT_LE(max_abs_diff(c, ref), 1e-3f);
}

TEST(GemmExhaustive, SameMatrixBothOperands) {
  // A aliased as both operands (e.g. Gram matrices): packing must read both
  // before any write lands in C. Square so all variants are shape-legal.
  const Matrix a = random(23, 23, 6);
  Matrix c(23, 23);
  gemm_nn(a, a, c);
  EXPECT_LE(max_abs_diff(c, matmul_reference(a, a)), 1e-3f);
  gemm_nt(a, a, c);
  EXPECT_LE(max_abs_diff(c, matmul_reference(a, a.transposed())), 1e-3f);
  gemm_tn(a, a, c);
  EXPECT_LE(max_abs_diff(c, matmul_reference(a.transposed(), a)), 1e-3f);
}

TEST(GemmExhaustive, ConfigIsSane) {
  const GemmConfig& cfg = gemm_config();
  EXPECT_EQ(cfg.mr, kGemmMR);
  EXPECT_EQ(cfg.nr, kGemmNR);
  EXPECT_GE(cfg.mc, cfg.mr);
  EXPECT_GE(cfg.nc, cfg.nr);
  EXPECT_GE(cfg.kc, 1u);
  EXPECT_NE(cfg.kernel, nullptr);
}

}  // namespace
}  // namespace mbd::tensor
