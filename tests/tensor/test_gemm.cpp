#include "mbd/tensor/gemm.hpp"

#include <gtest/gtest.h>

#include "mbd/support/check.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::tensor {
namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_normal(r, c, rng, 1.0f);
}

float tol(std::size_t k) { return 1e-4f * static_cast<float>(k); }

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapes, NnMatchesReference) {
  const auto [m, k, n] = GetParam();
  Matrix a = random(m, k, 1), b = random(k, n, 2);
  Matrix c = matmul(a, b);
  Matrix ref = matmul_reference(a, b);
  EXPECT_LE(max_abs_diff(c, ref), tol(k));
}

TEST_P(GemmShapes, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  Matrix a = random(k, m, 3), b = random(k, n, 4);  // Aᵀ is m×k
  Matrix c = matmul_tn(a, b);
  Matrix ref = matmul_reference(a.transposed(), b);
  EXPECT_LE(max_abs_diff(c, ref), tol(k));
}

TEST_P(GemmShapes, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  Matrix a = random(m, k, 5), b = random(n, k, 6);  // Bᵀ is k×n
  Matrix c = matmul_nt(a, b);
  Matrix ref = matmul_reference(a, b.transposed());
  EXPECT_LE(max_abs_diff(c, ref), tol(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1u, 1u, 1u}, std::tuple{3u, 5u, 2u},
                      std::tuple{17u, 9u, 31u}, std::tuple{64u, 64u, 64u},
                      std::tuple{65u, 257u, 3u}, std::tuple{128u, 70u, 96u}),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Gemm, AlphaBetaAccumulate) {
  Matrix a = random(4, 6, 7), b = random(6, 5, 8);
  Matrix c = Matrix::filled(4, 5, 2.0f);
  gemm_nn(a, b, c, /*alpha=*/0.5f, /*beta=*/3.0f);
  Matrix ref = matmul_reference(a, b);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(c(i, j), 0.5f * ref(i, j) + 6.0f, 1e-4f);
}

TEST(Gemm, BetaOneAccumulatesNt) {
  Matrix a = random(3, 4, 9), b = random(2, 4, 10);
  Matrix c = Matrix::filled(3, 2, 1.0f);
  gemm_nt(a, b, c, 1.0f, 1.0f);
  Matrix ref = matmul_reference(a, b.transposed());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(c(i, j), ref(i, j) + 1.0f, 1e-4f);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_nn(a, b, c), Error);
}

TEST(Gemm, AssociativityProperty) {
  // (AB)C == A(BC) within float tolerance — a classic linear-algebra
  // property check on the blocked kernel.
  Matrix a = random(8, 9, 11), b = random(9, 7, 12), c = random(7, 6, 13);
  Matrix left = matmul(matmul(a, b), c);
  Matrix right = matmul(a, matmul(b, c));
  EXPECT_LE(max_abs_diff(left, right), 1e-3f);
}

TEST(Gemm, TransposeIdentity) {
  // (A·B)ᵀ == Bᵀ·Aᵀ.
  Matrix a = random(5, 8, 14), b = random(8, 4, 15);
  Matrix lhs = matmul(a, b).transposed();
  Matrix rhs = matmul(b.transposed(), a.transposed());
  EXPECT_LE(max_abs_diff(lhs, rhs), 1e-4f);
}

}  // namespace
}  // namespace mbd::tensor
