#include "mbd/tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "mbd/support/check.hpp"

namespace mbd::tensor {
namespace {

Matrix iota_matrix(std::size_t r, std::size_t c) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      m(i, j) = static_cast<float>(i * c + j);
  return m;
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_FLOAT_EQ(m.data()[i], 0.0f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, RowMajorIndexing) {
  Matrix m = iota_matrix(2, 3);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.data()[4], m(1, 1));
}

TEST(Matrix, RowBlockRoundTrip) {
  Matrix m = iota_matrix(6, 4);
  Matrix b = m.row_block(2, 5);
  EXPECT_EQ(b.rows(), 3u);
  EXPECT_FLOAT_EQ(b(0, 0), m(2, 0));
  Matrix m2(6, 4);
  m2.set_row_block(2, b);
  EXPECT_FLOAT_EQ(m2(3, 1), m(3, 1));
  EXPECT_FLOAT_EQ(m2(0, 0), 0.0f);
}

TEST(Matrix, ColBlockRoundTrip) {
  Matrix m = iota_matrix(4, 6);
  Matrix b = m.col_block(1, 4);
  EXPECT_EQ(b.cols(), 3u);
  EXPECT_FLOAT_EQ(b(2, 0), m(2, 1));
  Matrix m2(4, 6);
  m2.set_col_block(1, b);
  EXPECT_FLOAT_EQ(m2(2, 3), m(2, 3));
  EXPECT_FLOAT_EQ(m2(2, 0), 0.0f);
}

TEST(Matrix, TransposeInvolution) {
  Matrix m = iota_matrix(3, 5);
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_FLOAT_EQ(t(4, 2), m(2, 4));
  EXPECT_FLOAT_EQ(max_abs_diff(t.transposed(), m), 0.0f);
}

TEST(Matrix, HcatInvertsColBlocks) {
  Matrix m = iota_matrix(3, 6);
  std::vector<Matrix> blocks{m.col_block(0, 2), m.col_block(2, 5),
                             m.col_block(5, 6)};
  Matrix back = Matrix::hcat(blocks);
  EXPECT_FLOAT_EQ(max_abs_diff(back, m), 0.0f);
}

TEST(Matrix, VcatInvertsRowBlocks) {
  Matrix m = iota_matrix(6, 3);
  std::vector<Matrix> blocks{m.row_block(0, 1), m.row_block(1, 4),
                             m.row_block(4, 6)};
  Matrix back = Matrix::vcat(blocks);
  EXPECT_FLOAT_EQ(max_abs_diff(back, m), 0.0f);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a = iota_matrix(2, 2);
  Matrix b = Matrix::filled(2, 2, 1.0f);
  a += b;
  EXPECT_FLOAT_EQ(a(1, 1), 4.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(1, 1), 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a(0, 1), 2.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(max_abs_diff(a, b), Error);
  EXPECT_THROW(a.row_block(1, 3), Error);
  EXPECT_THROW(Matrix::from_data(2, 2, {1.0f, 2.0f, 3.0f}), Error);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(frobenius_norm(m), 5.0f);
}

TEST(Matrix, RandomNormalDeterministic) {
  Rng r1(5), r2(5);
  Matrix a = Matrix::random_normal(4, 4, r1, 1.0f);
  Matrix b = Matrix::random_normal(4, 4, r2, 1.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Matrix, RandomNormalRowBlockMatchesFullDraw) {
  // The partitioned trainers rely on this: drawing the full matrix and
  // slicing rows equals what the sequential build sees.
  Rng r1(5);
  Matrix full = Matrix::random_normal(8, 3, r1, 0.7f);
  Matrix block = full.row_block(2, 6);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(block(i, j), full(i + 2, j));
}

}  // namespace
}  // namespace mbd::tensor
