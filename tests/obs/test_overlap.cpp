// Overlap-analysis math on hand-built timelines: which span kinds count as
// communication vs compute, per-rank merging, critical-rank selection, and
// the measured hidden fraction including its clamps.
#include "mbd/obs/overlap.hpp"

#include <gtest/gtest.h>

namespace mbd::obs {
namespace {

Span span(SpanKind k, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  Span s;
  s.kind = k;
  s.label = "t";
  s.t0_ns = t0_ns;
  s.t1_ns = t1_ns;
  return s;
}

TimelineSnapshot two_rank_snapshot() {
  TimelineSnapshot snap;
  ThreadTimeline unbound;  // main thread: must be skipped
  unbound.rank = -1;
  unbound.spans.push_back(span(SpanKind::Gemm, 0, 1'000'000'000));
  snap.threads.push_back(unbound);

  ThreadTimeline r0;
  r0.rank = 0;
  r0.spans.push_back(span(SpanKind::Gemm, 0, 400'000'000));
  r0.spans.push_back(span(SpanKind::Pack, 100'000'000, 200'000'000));
  r0.spans.push_back(span(SpanKind::CollWait, 400'000'000, 600'000'000));
  snap.threads.push_back(r0);

  ThreadTimeline r1a;
  r1a.rank = 1;
  r1a.spans.push_back(span(SpanKind::CollPost, 0, 100'000'000));
  r1a.spans.push_back(span(SpanKind::NbDrain, 100'000'000, 250'000'000));
  snap.threads.push_back(r1a);
  ThreadTimeline r1b;  // second life of rank 1: merged into the same rank
  r1b.rank = 1;
  r1b.life = 1;
  r1b.spans.push_back(span(SpanKind::Im2col, 300'000'000, 350'000'000));
  r1b.spans.push_back(span(SpanKind::CollWait, 350'000'000, 400'000'000));
  snap.threads.push_back(r1b);
  return snap;
}

TEST(Overlap, RankActivitySplitsCommAndCompute) {
  const auto acts = rank_activity(two_rank_snapshot());
  ASSERT_EQ(acts.size(), 2U);  // unbound thread skipped
  EXPECT_EQ(acts[0].rank, 0);
  // Pack nests inside Gemm and must NOT be double counted as compute.
  EXPECT_NEAR(acts[0].compute_seconds, 0.4, 1e-12);
  EXPECT_NEAR(acts[0].comm_seconds, 0.2, 1e-12);
  EXPECT_NEAR(acts[0].span_seconds, 0.6, 1e-12);
  EXPECT_EQ(acts[1].rank, 1);
  // Both lives of rank 1 merge: post 0.1 + drain 0.15 + wait 0.05 = 0.3.
  EXPECT_NEAR(acts[1].comm_seconds, 0.3, 1e-12);
  EXPECT_NEAR(acts[1].compute_seconds, 0.05, 1e-12);
}

TEST(Overlap, CriticalCommIsMaxOverRanks) {
  EXPECT_NEAR(critical_comm_seconds(two_rank_snapshot()), 0.3, 1e-12);
  EXPECT_EQ(critical_comm_seconds(TimelineSnapshot{}), 0.0);
}

TEST(Overlap, MeasuredHiddenFraction) {
  TimelineSnapshot blocking;
  ThreadTimeline b0;
  b0.rank = 0;
  b0.spans.push_back(span(SpanKind::CollWait, 0, 1'000'000'000));
  blocking.threads.push_back(b0);

  TimelineSnapshot overlapped;
  ThreadTimeline o0;
  o0.rank = 0;
  o0.spans.push_back(span(SpanKind::CollWait, 0, 400'000'000));
  overlapped.threads.push_back(o0);

  EXPECT_NEAR(measured_hidden_fraction(blocking, overlapped), 0.6, 1e-12);
  // More exposed comm than blocking clamps to 0, never negative.
  EXPECT_EQ(measured_hidden_fraction(overlapped, blocking), 0.0);
  // No communication in the blocking run: defined as 0.
  EXPECT_EQ(measured_hidden_fraction(TimelineSnapshot{}, overlapped), 0.0);
}

TEST(Overlap, TotalSecondsByKind) {
  const auto snap = two_rank_snapshot();
  EXPECT_NEAR(snap.total_seconds(SpanKind::Gemm), 1.4, 1e-12);
  EXPECT_NEAR(snap.total_seconds(SpanKind::CollWait), 0.25, 1e-12);
  EXPECT_EQ(snap.total_seconds(SpanKind::Checkpoint), 0.0);
}

}  // namespace
}  // namespace mbd::obs
