// Timeline profiler: gating, span recording, rank attribution, and the
// property the whole observability layer leans on — two runs of the same
// program produce the identical span *structure* (kind, label, sequence,
// flow, args), differing only in timestamps.
#include "mbd/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/integrated.hpp"

namespace mbd::obs {
namespace {

// Every test restores the ambient gate (MBD_PROFILE may have set it) and
// leaves the registry empty.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = profiling_enabled();
    enable_profiling(false);
    reset_timeline();
  }
  void TearDown() override {
    reset_timeline();
    enable_profiling(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  {
    ScopedSpan span(SpanKind::Gemm, "nn");
    EXPECT_FALSE(span.active());
  }
  record_span(SpanKind::Pack, "pack_b", 0, 10);
  EXPECT_EQ(next_flow_id(), 0U);
  EXPECT_TRUE(snapshot_timeline().threads.empty());
}

// Everything below needs spans to actually be recorded, which the
// MBD_PROFILER=OFF stub build compiles out by design.
#if MBD_OBS_PROFILER

TEST_F(ProfilerTest, RecordsSpansWithMonotonicSeq) {
  enable_profiling(true);
  {
    ScopedSpan a(SpanKind::Gemm, "nn", /*arg0=*/64, /*arg1=*/8);
    EXPECT_TRUE(a.active());
  }
  record_span(SpanKind::Im2col, "im2col", 100, 200, /*flow=*/0, /*arg0=*/3);
  const auto snap = snapshot_timeline();
  ASSERT_EQ(snap.threads.size(), 1U);
  EXPECT_EQ(snap.threads[0].rank, -1);  // never bound
  const auto& spans = snap.threads[0].spans;
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_EQ(spans[0].kind, SpanKind::Gemm);
  EXPECT_STREQ(spans[0].label, "nn");
  EXPECT_EQ(spans[0].arg0, 64U);
  EXPECT_EQ(spans[0].arg1, 8U);
  EXPECT_LE(spans[0].t0_ns, spans[0].t1_ns);
  EXPECT_LT(spans[0].seq, spans[1].seq);
  EXPECT_EQ(spans[1].kind, SpanKind::Im2col);
}

TEST_F(ProfilerTest, SnapshotSortsByRankNotRegistrationOrder) {
  enable_profiling(true);
  // Bind rank 1 first so registration order disagrees with rank order.
  std::thread t1([] {
    bind_thread(1);
    record_span(SpanKind::Gemm, "r1", 0, 1);
  });
  t1.join();
  std::thread t0([] {
    bind_thread(0);
    record_span(SpanKind::Gemm, "r0", 0, 1);
  });
  t0.join();
  const auto snap = snapshot_timeline();
  ASSERT_EQ(snap.threads.size(), 2U);
  EXPECT_EQ(snap.threads[0].rank, 0);
  EXPECT_EQ(snap.threads[1].rank, 1);
  EXPECT_STREQ(snap.threads[0].spans.at(0).label, "r0");
}

TEST_F(ProfilerTest, FlowIdsEncodeRankAndAreUnbound0) {
  enable_profiling(true);
  EXPECT_EQ(next_flow_id(), 0U);  // unbound thread: no flow identity
  std::uint64_t f1 = 0, f2 = 0;
  std::thread t([&] {
    bind_thread(2);
    f1 = next_flow_id();
    f2 = next_flow_id();
  });
  t.join();
  EXPECT_NE(f1, 0U);
  EXPECT_NE(f1, f2);
  EXPECT_EQ(f1 >> 32, 3U);  // (rank + 1) in the high word
}

using SpanSig = std::tuple<int, int, SpanKind, std::string, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t>;

std::vector<SpanSig> run_structure(parallel::ReduceMode mode) {
  reset_timeline();
  const auto specs = nn::mlp_spec({12, 17, 8});
  const auto data = nn::make_synthetic_dataset(12, 8, 24, 5);
  nn::TrainConfig cfg;
  cfg.batch = 8;
  cfg.iterations = 2;
  comm::World world(4);
  world.run([&](comm::Comm& c) {
    (void)parallel::train_integrated_15d(c, {2, 2}, specs, data, cfg, 42,
                                         mode);
  });
  std::vector<SpanSig> out;
  for (const auto& t : snapshot_timeline().threads)
    for (const auto& s : t.spans)
      out.emplace_back(t.rank, t.life, s.kind, s.label, s.seq, s.flow,
                       s.arg0, s.arg1);
  return out;
}

TEST_F(ProfilerTest, SpanStructureIsDeterministicAcrossRuns) {
  enable_profiling(true);
  for (const auto mode :
       {parallel::ReduceMode::Blocking, parallel::ReduceMode::Overlapped}) {
    const auto a = run_structure(mode);
    const auto b = run_structure(mode);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "span structure differs between identical runs";
  }
}

TEST_F(ProfilerTest, OverlappedRunPairsEveryPostWithItsWait) {
  enable_profiling(true);
  (void)run_structure(parallel::ReduceMode::Blocking);  // warm path
  const auto sigs = run_structure(parallel::ReduceMode::Overlapped);
  bool saw_post = false;
  for (const auto& [rank, life, kind, label, seq, flow, a0, a1] : sigs) {
    if (kind != SpanKind::CollPost || flow == 0) continue;
    saw_post = true;
    bool paired = false;
    for (const auto& [r2, l2, k2, lb2, s2, f2, x0, x1] : sigs)
      if (f2 == flow && (k2 == SpanKind::CollWait || k2 == SpanKind::NbDrain))
        paired = true;
    EXPECT_TRUE(paired) << "flow " << flow << " (" << label
                        << ") never completed";
  }
  EXPECT_TRUE(saw_post) << "overlapped run posted no nonblocking collective";
}

TEST_F(ProfilerTest, ResetClearsSpansAndLives) {
  enable_profiling(true);
  std::thread t([] {
    bind_thread(0);
    record_span(SpanKind::Gemm, "x", 0, 1);
  });
  t.join();
  reset_timeline();
  EXPECT_TRUE(snapshot_timeline().threads.empty());
  // A fresh thread binding rank 0 starts again at life 0.
  std::thread t2([] {
    bind_thread(0);
    record_span(SpanKind::Gemm, "y", 0, 1);
  });
  t2.join();
  const auto snap = snapshot_timeline();
  ASSERT_EQ(snap.threads.size(), 1U);
  EXPECT_EQ(snap.threads[0].life, 0);
}

#endif  // MBD_OBS_PROFILER

}  // namespace
}  // namespace mbd::obs
