// Metrics registry: counters accumulate, gauges overwrite, histograms
// bucket by powers of two, snapshots sort by name, and the JSON form stays
// well-shaped (the bench --json sink and docs/observability.md rely on it).
#include "mbd/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace mbd::obs {
namespace {

// The registry is process-wide; every test starts from a clean slate.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Metrics::instance().reset(); }
  void TearDown() override { Metrics::instance().reset(); }
};

TEST_F(MetricsTest, CountersAccumulate) {
  auto& m = Metrics::instance();
  m.counter_add("ops");
  m.counter_add("ops");
  m.counter_add("ops", 2.5);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].name, "ops");
  EXPECT_EQ(snap[0].kind, MetricValue::Kind::Counter);
  EXPECT_DOUBLE_EQ(snap[0].value, 4.5);
}

TEST_F(MetricsTest, GaugesOverwrite) {
  auto& m = Metrics::instance();
  m.gauge_set("temp", 1.0);
  m.gauge_set("temp", -7.25);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].kind, MetricValue::Kind::Gauge);
  EXPECT_DOUBLE_EQ(snap[0].value, -7.25);
}

TEST_F(MetricsTest, HistogramBucketsArePowersOfTwo) {
  auto& m = Metrics::instance();
  m.hist_observe("h", 0.5);   // bucket 0 (below 2)
  m.hist_observe("h", 1.0);   // bucket 0
  m.hist_observe("h", 5.0);   // [4, 8) -> bucket 2
  m.hist_observe("h", 1024);  // [2^10, 2^11) -> bucket 10
  m.hist_observe("h", 1e300); // clamps to the last bucket
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  const auto& h = snap[0].hist;
  EXPECT_EQ(h.count, 5U);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 5.0 + 1024 + 1e300);
  EXPECT_EQ(h.buckets[0], 2U);
  EXPECT_EQ(h.buckets[2], 1U);
  EXPECT_EQ(h.buckets[10], 1U);
  EXPECT_EQ(h.buckets[HistogramSnapshot::kBuckets - 1], 1U);
}

TEST_F(MetricsTest, SnapshotSortsByNameAcrossKinds) {
  auto& m = Metrics::instance();
  m.gauge_set("b", 1.0);
  m.counter_add("c");
  m.hist_observe("a", 3.0);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3U);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[2].name, "c");
}

TEST_F(MetricsTest, ToJsonEscapesAndShapes) {
  auto& m = Metrics::instance();
  m.counter_add("weird\"name\\x", 1.0);
  m.hist_observe("lat", 3.0);
  const std::string j = m.to_json();
  EXPECT_NE(j.find("\"weird\\\"name\\\\x\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
  // Trailing zero buckets elided: value 3 lands in bucket 1, so the bucket
  // array is exactly [0, 1].
  EXPECT_NE(j.find("\"buckets\": [0, 1]"), std::string::npos);
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const HistogramSnapshot h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(HistogramQuantile, SingleObservationStaysInsideItsBucket) {
  HistogramSnapshot h;
  h.count = 1;
  h.buckets[10] = 1;  // one observation in [1024, 2048)
  // All quantiles resolve to the same (sole) observation; interpolation may
  // place it anywhere inside the bucket but never outside it.
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_GT(h.quantile(q), 1024.0);
    EXPECT_LE(h.quantile(q), 2048.0);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(1.0));
}

TEST(HistogramQuantile, InterpolatesWithinABucket) {
  HistogramSnapshot h;
  h.count = 3;
  h.buckets[2] = 3;  // three observations in [4, 8)
  // Ranks 1, 2, 3 of 3 spread evenly across the bucket's value range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0 + (1.0 / 3.0) * 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0 + (2.0 / 3.0) * 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(HistogramQuantile, TailQuantileLandsInTheTailBucket) {
  HistogramSnapshot h;
  // 99 fast observations in [2, 4), one slow outlier in [1024, 2048).
  h.count = 100;
  h.buckets[1] = 99;
  h.buckets[10] = 1;
  const double p50 = h.p50();
  EXPECT_GE(p50, 2.0);
  EXPECT_LT(p50, 4.0);
  const double p99 = h.p99();
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 2048.0);
  EXPECT_LE(h.p50(), h.p99());  // quantiles are monotone in q
}

TEST(HistogramQuantile, Bucket0SpansZeroToTwo) {
  HistogramSnapshot h;
  h.count = 2;
  h.buckets[0] = 2;
  EXPECT_GE(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(1.0), 2.0);
}

TEST_F(MetricsTest, ObservedHistogramQuantilesComeBackThroughSnapshot) {
  auto& m = Metrics::instance();
  for (int i = 0; i < 99; ++i) m.hist_observe("lat_us", 100.0);  // bucket 6
  m.hist_observe("lat_us", 5000.0);                              // bucket 12
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  const auto& h = snap[0].hist;
  EXPECT_GE(h.p50(), 64.0);
  EXPECT_LT(h.p50(), 128.0);
  EXPECT_GE(h.p99(), 4096.0);
  EXPECT_LE(h.p99(), 8192.0);
}

TEST_F(MetricsTest, ResetClears) {
  auto& m = Metrics::instance();
  m.counter_add("x");
  m.gauge_set("y", 2.0);
  m.hist_observe("z", 4.0);
  m.reset();
  EXPECT_TRUE(m.snapshot().empty());
}

}  // namespace
}  // namespace mbd::obs
