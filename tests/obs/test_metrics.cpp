// Metrics registry: counters accumulate, gauges overwrite, histograms
// bucket by powers of two, snapshots sort by name, and the JSON form stays
// well-shaped (the bench --json sink and docs/observability.md rely on it).
#include "mbd/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace mbd::obs {
namespace {

// The registry is process-wide; every test starts from a clean slate.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Metrics::instance().reset(); }
  void TearDown() override { Metrics::instance().reset(); }
};

TEST_F(MetricsTest, CountersAccumulate) {
  auto& m = Metrics::instance();
  m.counter_add("ops");
  m.counter_add("ops");
  m.counter_add("ops", 2.5);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].name, "ops");
  EXPECT_EQ(snap[0].kind, MetricValue::Kind::Counter);
  EXPECT_DOUBLE_EQ(snap[0].value, 4.5);
}

TEST_F(MetricsTest, GaugesOverwrite) {
  auto& m = Metrics::instance();
  m.gauge_set("temp", 1.0);
  m.gauge_set("temp", -7.25);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].kind, MetricValue::Kind::Gauge);
  EXPECT_DOUBLE_EQ(snap[0].value, -7.25);
}

TEST_F(MetricsTest, HistogramBucketsArePowersOfTwo) {
  auto& m = Metrics::instance();
  m.hist_observe("h", 0.5);   // bucket 0 (below 2)
  m.hist_observe("h", 1.0);   // bucket 0
  m.hist_observe("h", 5.0);   // [4, 8) -> bucket 2
  m.hist_observe("h", 1024);  // [2^10, 2^11) -> bucket 10
  m.hist_observe("h", 1e300); // clamps to the last bucket
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  const auto& h = snap[0].hist;
  EXPECT_EQ(h.count, 5U);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 5.0 + 1024 + 1e300);
  EXPECT_EQ(h.buckets[0], 2U);
  EXPECT_EQ(h.buckets[2], 1U);
  EXPECT_EQ(h.buckets[10], 1U);
  EXPECT_EQ(h.buckets[HistogramSnapshot::kBuckets - 1], 1U);
}

TEST_F(MetricsTest, SnapshotSortsByNameAcrossKinds) {
  auto& m = Metrics::instance();
  m.gauge_set("b", 1.0);
  m.counter_add("c");
  m.hist_observe("a", 3.0);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3U);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[2].name, "c");
}

TEST_F(MetricsTest, ToJsonEscapesAndShapes) {
  auto& m = Metrics::instance();
  m.counter_add("weird\"name\\x", 1.0);
  m.hist_observe("lat", 3.0);
  const std::string j = m.to_json();
  EXPECT_NE(j.find("\"weird\\\"name\\\\x\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
  // Trailing zero buckets elided: value 3 lands in bucket 1, so the bucket
  // array is exactly [0, 1].
  EXPECT_NE(j.find("\"buckets\": [0, 1]"), std::string::npos);
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
}

TEST_F(MetricsTest, ResetClears) {
  auto& m = Metrics::instance();
  m.counter_add("x");
  m.gauge_set("y", 2.0);
  m.hist_observe("z", 4.0);
  m.reset();
  EXPECT_TRUE(m.snapshot().empty());
}

}  // namespace
}  // namespace mbd::obs
