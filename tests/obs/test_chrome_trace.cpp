// Chrome trace export: one process per rank, unique tids, complete ("X")
// events named <kind>:<label>, and flow arrows from each CollPost to the
// completing CollWait/NbDrain — the schema scripts/check_trace.py enforces
// in CI.
#include "mbd/obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mbd::obs {
namespace {

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size()))
    ++n;
  return n;
}

TimelineSnapshot sample_snapshot() {
  TimelineSnapshot snap;
  ThreadTimeline main_thread;  // unbound: pid 0
  main_thread.rank = -1;
  main_thread.spans.push_back(
      {SpanKind::Gemm, "nn", /*seq=*/1, /*flow=*/0, 500, 900, 64, 8});
  snap.threads.push_back(main_thread);

  ThreadTimeline r0;
  r0.rank = 0;
  r0.spans.push_back({SpanKind::CollPost, "iallreduce", 1, /*flow=*/77, 1000,
                      1100, 256, 0});
  // A partial drain echoes the flow id first; the completing wait must win
  // the "f" endpoint.
  r0.spans.push_back({SpanKind::NbDrain, "iallreduce", 2, 77, 1200, 1300, 0,
                      0});
  r0.spans.push_back({SpanKind::CollWait, "iallreduce", 3, 77, 1400, 1600, 0,
                      0});
  snap.threads.push_back(r0);

  ThreadTimeline r1;
  r1.rank = 1;
  r1.spans.push_back({SpanKind::Gemm, "tn", 1, 0, 1000, 2000, 128, 16});
  snap.threads.push_back(r1);
  return snap;
}

TEST(ChromeTrace, ProcessPerRankAndNamedEvents) {
  const std::string j = chrome_trace_json(sample_snapshot());
  EXPECT_NE(j.find("\"traceEvents\": ["), std::string::npos);
  // pid 0 = unbound, pid r+1 = rank r, each named once.
  EXPECT_EQ(count_of(j, "\"name\": \"process_name\""), 3U);
  EXPECT_NE(j.find("\"args\": {\"name\": \"unbound\"}"), std::string::npos);
  EXPECT_NE(j.find("\"args\": {\"name\": \"rank 0\"}"), std::string::npos);
  EXPECT_NE(j.find("\"args\": {\"name\": \"rank 1\"}"), std::string::npos);
  // Complete events carry <kind>:<label> names and their deterministic seq.
  EXPECT_NE(j.find("\"name\": \"gemm:nn\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"coll_post:iallreduce\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"coll_wait:iallreduce\""), std::string::npos);
  EXPECT_EQ(count_of(j, "\"ph\": \"X\""), 5U);
}

TEST(ChromeTrace, FlowArrowLinksPostToCompletingWait) {
  const std::string j = chrome_trace_json(sample_snapshot());
  EXPECT_EQ(count_of(j, "\"ph\": \"s\""), 1U);
  EXPECT_EQ(count_of(j, "\"ph\": \"f\""), 1U);
  EXPECT_EQ(count_of(j, "\"id\": 77"), 2U);
  // "s" anchors at the post's end (ts rebased to the earliest span, 500 ns):
  // (1100 - 500) ns = 0.600 us. "f" at the completing wait's start: 0.900 us
  // — the CollWait, not the earlier NbDrain.
  const std::size_t s_at = j.find("\"ph\": \"s\"");
  ASSERT_NE(s_at, std::string::npos);
  EXPECT_NE(j.find("\"ts\": 0.600", s_at), std::string::npos);
  const std::size_t f_at = j.find("\"ph\": \"f\"");
  ASSERT_NE(f_at, std::string::npos);
  EXPECT_NE(j.find("\"ts\": 0.900", f_at), std::string::npos);
}

TEST(ChromeTrace, UnpairedFlowEmitsNoArrow) {
  TimelineSnapshot snap;
  ThreadTimeline r0;
  r0.rank = 0;
  r0.spans.push_back({SpanKind::CollPost, "iallgather", 1, 5, 0, 10, 0, 0});
  snap.threads.push_back(r0);
  const std::string j = chrome_trace_json(snap);
  EXPECT_EQ(count_of(j, "\"ph\": \"s\""), 0U);
  EXPECT_EQ(count_of(j, "\"ph\": \"f\""), 0U);
}

TEST(ChromeTrace, BalancedJsonAndFileRoundTrip) {
  const std::string j = chrome_trace_json(sample_snapshot());
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));

  const std::string path =
      ::testing::TempDir() + "mbd_obs_trace_test.json";
  write_chrome_trace(path, sample_snapshot());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), j);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbd::obs
