// Shared pieces of the figure-regeneration harnesses.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "mbd/costmodel/optimizer.hpp"
#include "mbd/costmodel/strategy.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/support/table.hpp"

namespace mbd::bench {

/// Print the Table 1 banner (fixed simulation parameters) once per binary.
void print_table1_banner(const std::string& experiment);

/// The weighted AlexNet layers every simulation uses.
std::vector<nn::LayerSpec> alexnet();

/// Emit one Fig. 6/7/9-style sub-table: every feasible Pr×Pc grid at (P, B)
/// with the per-phase communication split, compute time, and totals, plus
/// the best-grid speedup lines the paper annotates on each subfigure.
/// Returns the best option.
costmodel::GridOption print_grid_sweep(const std::vector<nn::LayerSpec>& net,
                                       std::size_t batch, std::size_t p,
                                       const costmodel::MachineModel& m,
                                       costmodel::GridMode mode,
                                       bool overlap = false);

}  // namespace mbd::bench
