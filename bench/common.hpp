// Shared pieces of the figure-regeneration harnesses.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "mbd/costmodel/optimizer.hpp"
#include "mbd/costmodel/strategy.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/support/table.hpp"

namespace mbd::bench {

/// Print the Table 1 banner (fixed simulation parameters) once per binary.
void print_table1_banner(const std::string& experiment);

/// The weighted AlexNet layers every simulation uses.
std::vector<nn::LayerSpec> alexnet();

/// Emit one Fig. 6/7/9-style sub-table: every feasible Pr×Pc grid at (P, B)
/// with the per-phase communication split, compute time, and totals, plus
/// the best-grid speedup lines the paper annotates on each subfigure.
/// Returns the best option.
costmodel::GridOption print_grid_sweep(const std::vector<nn::LayerSpec>& net,
                                       std::size_t batch, std::size_t p,
                                       const costmodel::MachineModel& m,
                                       costmodel::GridMode mode,
                                       bool overlap = false);

// --- machine-readable bench records (docs/benchmarks.md) --------------------
//
// Every bench binary accepts `--json <path>` and appends one record per
// measured case:
//   {"bench": ..., "case": ..., "bytes": ..., "ns": ..., "gflops": ...}
// `ns` is per-iteration wall time for the microbenchmarks and model-predicted
// time for the table harnesses; `bytes`/`gflops` are 0 where not meaningful.

/// Parse and strip a `--json <path>` flag from argv and open the global
/// record sink. Without the flag the sink stays closed and record_json() is
/// a no-op. The file is written when the process exits normally. Call this
/// first in every bench main (before benchmark::Initialize, which rejects
/// flags it does not know).
void open_json_sink(int& argc, char** argv, const std::string& bench_name);

/// Append one record to the sink opened by open_json_sink.
void record_json(const std::string& case_name, double bytes, double ns,
                 double gflops);

}  // namespace mbd::bench
