// §4 memory discussion: "the 1.5D matrix-multiplication algorithms used by
// our integrated parallel approach cut down the model replication cost by a
// factor of pr, at the cost of an increase in data replication by a factor
// of pc. ... The main advantage of 2D algorithms over 1.5D is that their
// memory consumption is optimal."
//
// Prints per-process memory footprints for AlexNet across the grid spectrum
// and the machine-wide replication factors, against the 2D optimum.
#include <iostream>

#include "common.hpp"
#include "mbd/costmodel/memory.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_memory_model");
  using namespace mbd;
  bench::print_table1_banner("§4 — per-process memory across the grid spectrum");
  const auto net = bench::alexnet();
  const std::size_t batch = 2048, p = 512;
  const double word = 4.0;  // float32 bytes

  TextTable t({"grid Pr x Pc", "weights+grads", "activations", "total",
               "model repl.", "data repl."});
  for (const auto& [pr, pc] : costmodel::grid_factorizations(p)) {
    if (pc > batch) continue;
    const auto f = costmodel::memory_15d(net, batch, pr, pc);
    const auto r = costmodel::replication_15d(pr, pc);
    t.row()
        .add(std::to_string(pr) + " x " + std::to_string(pc))
        .add(format_bytes((f.weights + f.gradients) * word))
        .add(format_bytes(f.activations * word))
        .add(format_bytes(f.total() * word))
        .add(format_double(r.weights, 0) + "x")
        .add(format_double(r.activations, 0) + "x");
  }
  t.print(std::cout);

  const auto twod = costmodel::memory_2d_optimal(net, batch, p);
  std::cout << "\n2D memory optimum at P=" << p << ": "
            << format_bytes(twod.total() * word)
            << " per process (no replication — §4's one concession to"
               " SUMMA).\n";
  std::cout << "Shape check: weights shrink by Pr moving down the table while"
               " activations grow by the same factor — \"a linear combination"
               " of the two extremes\".\n";
  return 0;
}
