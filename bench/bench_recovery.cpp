// Recovery-path costs, measured on the executable batch-parallel trainer:
//
//  * baseline        — uninterrupted training, no checkpointing
//  * ckpt_every_1    — checkpoint after every step (worst-case cadence), so
//                      the delta over baseline is the full snapshot cost:
//                      two barriers plus staging every stage's weights,
//                      velocities, and loss history into the host-side store
//  * crash_restart   — an injected mid-run RankFailure under
//                      World::run_restartable with checkpoint cadence 2:
//                      fabric teardown + rebuild + restore + replay
//  * spare_promote   — the same injected failure under World::run_promotable
//                      with one hot spare: the dead rank's slot is adopted in
//                      place (mailbox resets, no fabric reallocation), then
//                      restore + replay as above. The crash_restart −
//                      spare_promote delta is the cost of the full teardown
//                      that promotion avoids.
//
// Per-case `ns` is total wall time for the full training run (median of
// kReps), so crash_restart / baseline reads directly as the end-to-end cost
// multiplier of one failure.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/batch_parallel.hpp"

namespace {

using namespace mbd;

constexpr int kP = 4;
constexpr std::size_t kIters = 12;
constexpr int kReps = 3;

struct Setup {
  std::vector<nn::LayerSpec> specs = nn::mlp_spec({64, 128, 64, 10});
  nn::Dataset data = nn::make_synthetic_dataset(64, 10, 96, /*seed=*/11);
  nn::TrainConfig cfg;
  Setup() {
    cfg.batch = 32;
    cfg.lr = 0.02f;
    cfg.momentum = 0.9f;
    cfg.iterations = kIters;
  }
};

double elapsed_ns(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

double median_of_reps(const std::function<void()>& fn) {
  fn();  // warm-up: thread spawn + allocator + cache effects dominate rep 0
  std::vector<double> ns;
  ns.reserve(kReps);
  for (int i = 0; i < kReps; ++i) ns.push_back(elapsed_ns(fn));
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

double run_plain(const Setup& s, std::size_t ckpt_every) {
  return median_of_reps([&] {
    comm::World w(kP);
    w.disable_validation();  // measure the transport, not the watchdog
    // Fresh store each rep: a carried-over checkpoint would make later reps
    // resume near the end instead of training the full run.
    parallel::CheckpointStore store(kP);
    parallel::RecoveryContext rc{&store, {.every = ckpt_every}};
    w.run([&](comm::Comm& c) {
      parallel::train_batch_parallel(c, s.specs, s.data, s.cfg, {},
                                     parallel::ReduceMode::Blocking,
                                     ckpt_every > 0 ? &rc : nullptr);
    });
  });
}

// Out-param `repair_ns` collects the fabric-recovery step (teardown+rebuild,
// or in-place repair) of every rep; the median isolates the latency the two
// recovery paths actually differ by, without the replayed-training noise.
double run_crash_restart(const Setup& s, std::uint64_t crash_op,
                         std::vector<double>& repair_ns) {
  return median_of_reps([&] {
    comm::World w(kP);
    w.disable_validation();
    comm::FaultPlan plan;
    plan.actions.push_back({.kind = comm::FaultKind::CrashRank,
                            .rank = 1,
                            .op_index = crash_op});
    w.install_faults(std::move(plan));
    parallel::CheckpointStore store(kP);
    parallel::RecoveryContext rc{&store, {.every = 2}};
    const comm::RecoveryReport rep =
        w.run_restartable([&](comm::Comm& c) {
          parallel::train_batch_parallel(c, s.specs, s.data, s.cfg, {},
                                         parallel::ReduceMode::Blocking, &rc);
        });
    for (const auto ns : rep.repair_ns)
      repair_ns.push_back(static_cast<double>(ns));
  });
}

double run_spare_promote(const Setup& s, std::uint64_t crash_op,
                         std::vector<double>& repair_ns) {
  return median_of_reps([&] {
    comm::World w(kP);
    w.disable_validation();
    w.set_spares(1);
    comm::FaultPlan plan;
    plan.actions.push_back({.kind = comm::FaultKind::CrashRank,
                            .rank = 1,
                            .op_index = crash_op});
    w.install_faults(std::move(plan));
    parallel::CheckpointStore store(kP);
    parallel::RecoveryContext rc{&store, {.every = 2}};
    const comm::RecoveryReport rep =
        w.run_promotable([&](comm::Comm& c) {
          parallel::train_batch_parallel(c, s.specs, s.data, s.cfg, {},
                                         parallel::ReduceMode::Blocking, &rc);
        });
    for (const auto ns : rep.repair_ns)
      repair_ns.push_back(static_cast<double>(ns));
  });
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_recovery");
  const Setup s;

  // Count one rank's transport ops with an empty-plan injector, then place
  // the crash at the halfway point of the run.
  std::uint64_t rank1_ops = 0;
  {
    comm::World w(kP);
    w.disable_validation();
    w.install_faults({});
    w.run([&](comm::Comm& c) {
      parallel::train_batch_parallel(c, s.specs, s.data, s.cfg);
    });
    rank1_ops = w.fault_injector()->op_count(1);
  }

  const double base_ns = run_plain(s, /*ckpt_every=*/0);
  const double ckpt_ns = run_plain(s, /*ckpt_every=*/1);
  std::vector<double> rebuild_samples;
  std::vector<double> repair_samples;
  const double crash_ns = run_crash_restart(s, rank1_ops / 2, rebuild_samples);
  const double spare_ns = run_spare_promote(s, rank1_ops / 2, repair_samples);

  std::cout << "-- recovery costs: batch-parallel MLP 64-128-64-10, P=" << kP
            << ", B=" << s.cfg.batch << ", " << kIters
            << " iterations (median of " << kReps << ") --\n";
  std::cout << std::left << std::setw(18) << "case" << std::right
            << std::setw(14) << "total(ms)" << std::setw(14) << "vs base"
            << '\n';
  const auto row = [&](const std::string& name, double ns) {
    std::cout << std::left << std::setw(18) << name << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << ns / 1e6 << std::setprecision(2) << std::setw(13)
              << ns / base_ns << "x\n";
    mbd::bench::record_json(name, 0, ns, 0);
  };
  row("baseline", base_ns);
  row("ckpt_every_1", ckpt_ns);
  row("crash_restart", crash_ns);
  row("spare_promote", spare_ns);
  std::cout << "(crash at rank-1 transport op " << rank1_ops / 2 << " of "
            << rank1_ops << "; checkpoint cadence 2 for the crash and "
               "promotion cases)\n";

  // The recovery step alone — teardown+rebuild vs in-place slot repair —
  // isolated from the replayed training both paths share.
  const double rebuild_ns = median(std::move(rebuild_samples));
  const double repair_ns = median(std::move(repair_samples));
  std::cout << "recovery step:   full rebuild " << std::setprecision(1)
            << rebuild_ns / 1e3 << " us, in-place repair " << repair_ns / 1e3
            << " us (" << std::setprecision(2) << rebuild_ns / repair_ns
            << "x)\n";
  mbd::bench::record_json("recovery_step_rebuild", 0, rebuild_ns, 0);
  mbd::bench::record_json("recovery_step_repair", 0, repair_ns, 0);
  return 0;
}
