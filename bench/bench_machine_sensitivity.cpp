// Machine-model sensitivity: the paper's Limitations note that interconnect
// effects "can be approximated by adjusting the latency and bandwidth terms
// accordingly". This bench sweeps α and β around the Table 1 values and on a
// modern fast-cluster stand-in, and reports how the optimal grid and the
// integrated-vs-batch speedup move — the qualitative conclusions are robust
// across a wide range of machine balances.
#include <iostream>

#include "common.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_machine_sensitivity");
  using namespace mbd;
  bench::print_table1_banner(
      "Sensitivity — optimal grid vs machine balance (alpha, beta sweeps)");
  const auto net = bench::alexnet();
  const std::size_t batch = 2048, p = 512;
  const auto base = costmodel::MachineModel::cori_knl();

  std::cout << "-- bandwidth sweep (beta x scale), P=" << p << ", B=" << batch
            << ", Fig. 7 mode --\n";
  TextTable t({"network", "1/beta", "best grid", "T_total/iter",
               "speedup vs pure batch"});
  auto report = [&](const std::string& name,
                    const costmodel::MachineModel& m) {
    const auto best = costmodel::best_integrated_grid(
        net, batch, p, m, costmodel::GridMode::BatchParallelConv);
    const auto pure = costmodel::integrated_cost(
        net, batch, 1, p, m, costmodel::GridMode::BatchParallelConv);
    t.row()
        .add(name)
        .add(format_bytes(1.0 / m.beta) + "/s")
        .add(std::to_string(best.pr) + "x" + std::to_string(best.pc))
        .add(format_seconds(best.cost.total()))
        .add_num(pure.total() / best.cost.total(), 2);
  };
  report("0.25x bandwidth", base.with_network(1.0, 4.0));
  report("Table 1 (Cori)", base);
  report("4x bandwidth", base.with_network(1.0, 0.25));
  report("16x bandwidth", base.with_network(1.0, 1.0 / 16.0));
  report("fast cluster*", costmodel::MachineModel::fast_cluster());
  t.print(std::cout);
  std::cout << "  (*fast cluster also scales compute 12x — faster compute"
               " makes communication relatively MORE important, favouring"
               " the integrated grid even at high bandwidth)\n\n";

  std::cout << "-- latency sweep (alpha x scale), same configuration --\n";
  TextTable t2({"alpha", "best grid", "T_comm latency part", "T_total/iter"});
  for (double scale : {0.1, 1.0, 10.0, 100.0}) {
    const auto m = base.with_network(scale, 1.0);
    const auto best = costmodel::best_integrated_grid(
        net, batch, p, m, costmodel::GridMode::BatchParallelConv);
    costmodel::CostBreakdown latency;
    for (const auto& lc : best.cost.layers) latency += lc.comm();
    t2.row()
        .add(format_seconds(m.alpha))
        .add(std::to_string(best.pr) + "x" + std::to_string(best.pc))
        .add(format_seconds(latency.latency))
        .add(format_seconds(best.cost.total()));
  }
  t2.print(std::cout);
  std::cout << "  (AlexNet's MB-scale reductions keep the optimum bandwidth-"
               "bound until alpha grows by orders of magnitude)\n";
  return 0;
}
