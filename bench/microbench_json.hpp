// Glue between the google-benchmark microbenchmarks and the --json record
// sink in common.{hpp,cpp}. Header-only so mbd_bench_common does not need a
// google-benchmark dependency for the table harnesses.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hpp"

namespace mbd::bench {

/// ConsoleReporter that additionally appends one record per measured run to
/// the global JSON sink. Benchmarks opt in to richer records by setting the
/// plain per-iteration counters "flop" and "bytes"; gflops is derived as
/// flop/ns (identical units: flop per iteration over ns per iteration).
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double ns = run.real_accumulated_time / iters * 1e9;
      double flop = 0.0, bytes = 0.0;
      if (auto it = run.counters.find("flop"); it != run.counters.end())
        flop = static_cast<double>(it->second);
      if (auto it = run.counters.find("bytes"); it != run.counters.end())
        bytes = static_cast<double>(it->second);
      else if (auto bi = run.counters.find("bytes_per_iter");
               bi != run.counters.end())
        bytes = static_cast<double>(bi->second);
      record_json(run.benchmark_name(), bytes, ns,
                  ns > 0.0 ? flop / ns : 0.0);
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// Shared main body for the google-benchmark binaries: --json handling plus
/// the standard Initialize/Run sequence.
inline int run_microbench(int argc, char** argv, const char* bench_name) {
  open_json_sink(argc, argv, bench_name);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace mbd::bench
