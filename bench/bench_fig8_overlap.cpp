// Fig. 8: the Fig. 7 configuration under PERFECT overlap of communication
// with backpropagation compute. Only the backprop all-reduces (≈ 2/3 of the
// communication) can hide behind the transpose-convolution work; the paper
// reports the integrated approach still wins 2.0× at P = 512.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig8_overlap");
  using namespace mbd;
  bench::print_table1_banner(
      "Fig. 8 — perfect communication/backprop overlap (Fig. 7 config)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;
  for (std::size_t p : {256u, 512u}) {
    std::cout << "-- subfigure: P = " << p << ", B = " << batch
              << " (per-iteration, overlapped) --\n";
    (void)bench::print_grid_sweep(net, batch, p, m,
                                  costmodel::GridMode::BatchParallelConv,
                                  /*overlap=*/true);
  }
  std::cout << "Paper reference point: even with perfect overlap the"
               " integrated approach keeps a ~2.0x speedup at P=512.\n";
  return 0;
}
