// Fig. 8: the Fig. 7 configuration under PERFECT overlap of communication
// with backpropagation compute. Only the backprop all-reduces (≈ 2/3 of the
// communication) can hide behind the transpose-convolution work; the paper
// reports the integrated approach still wins 2.0× at P = 512.
//
// The second section makes the overlap *executable*: the 1.5D trainer runs
// once with blocking reductions and once with the nonblocking schedule
// (ReduceMode::Overlapped), both traced with modeled GEMM durations. The
// traces replay under in-flight transfer semantics, and the measured hidden
// fraction of communication is printed next to the analytic model's
// min(f·comm, f·compute) prediction.
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/costmodel/replay.hpp"
#include "mbd/parallel/integrated.hpp"

namespace {

using namespace mbd;

struct ExecCase {
  parallel::GridShape grid;
  std::vector<nn::LayerSpec> net;
  std::size_t batch;
};

/// Traced 1.5D run with modeled GEMM times; returns the recorded trace.
comm::Trace run_traced(const ExecCase& ec, parallel::ReduceMode mode,
                       double seconds_per_flop, std::size_t iterations) {
  nn::TrainConfig cfg;
  cfg.batch = ec.batch;
  cfg.iterations = iterations;
  const auto data = nn::make_synthetic_dataset(
      ec.net.front().d_in(), ec.net.back().d_out(), 4 * ec.batch, 13);
  comm::World world(ec.grid.pr * ec.grid.pc);
  world.enable_tracing();
  world.run([&](comm::Comm& c) {
    (void)parallel::train_integrated_15d(c, ec.grid, ec.net, data, cfg, 42,
                                         mode, seconds_per_flop);
  });
  return world.trace();
}

/// Critical-path pure-compute time: max over ranks of annotated seconds.
double max_rank_compute(const comm::Trace& t) {
  double mx = 0.0;
  for (const auto& rank : t.ranks) {
    double s = 0.0;
    for (const auto& e : rank)
      if (e.kind == comm::TraceEvent::Kind::Compute) s += e.seconds;
    mx = std::max(mx, s);
  }
  return mx;
}

void executable_overlap_section() {
  std::cout << "\n-- executable overlap: 1.5D trainer, blocking vs "
               "nonblocking reduction schedule --\n"
               "(traces replayed under in-flight transfer semantics; "
               "'hidden' is the comm fraction\n completed behind modeled "
               "GEMM compute; predicted = min(f*comm, f*compute)/comm, "
               "f = 2/3)\n";
  const auto m = costmodel::MachineModel::cori_knl();
  const costmodel::ReplayOptions inflight{.inflight_transfer = true};
  // Modeled GEMM rate chosen so per-layer compute and per-layer reduction
  // wire time are the same order — the regime where overlap matters (at
  // cori_knl beta, a 256x512 layer's dW ring round is ~40 us of wire).
  const double spf = 3e-11;
  const std::size_t iters = 3;
  const std::vector<ExecCase> cases = {
      {{2, 2}, nn::mlp_spec({256, 512, 256, 10}), 32},
      {{2, 2}, nn::mlp_spec({512, 1024, 10}), 64},
      {{4, 1}, nn::mlp_spec({256, 512, 256, 10}), 32},
  };
  std::cout << std::left << std::setw(34) << "case" << std::right
            << std::setw(14) << "blocking(ms)" << std::setw(14)
            << "overlap(ms)" << std::setw(10) << "saved%" << std::setw(12)
            << "hidden" << std::setw(12) << "predicted" << '\n';
  for (const auto& ec : cases) {
    const auto tb = run_traced(ec, parallel::ReduceMode::Blocking, spf, iters);
    const auto to =
        run_traced(ec, parallel::ReduceMode::Overlapped, spf, iters);
    const auto rb = costmodel::replay_trace(tb, m, inflight);
    const auto ro = costmodel::replay_trace(to, m, inflight);
    // Exposed communication in the blocking schedule: everything on the
    // critical path that is not annotated compute.
    const double exposed = rb.makespan - max_rank_compute(tb);
    const double saved = rb.makespan - ro.makespan;
    const double measured_hidden = exposed > 0.0 ? saved / exposed : 0.0;
    // The analytic counterpart on the same network/grid/machine.
    const auto cost = costmodel::integrated_cost(
        ec.net, ec.batch, static_cast<std::size_t>(ec.grid.pr),
        static_cast<std::size_t>(ec.grid.pc), m);
    const double predicted_hidden =
        cost.comm() > 0.0
            ? (cost.total() - cost.total_overlapped()) / cost.comm()
            : 0.0;
    std::ostringstream name;
    name << "15d pr=" << ec.grid.pr << " pc=" << ec.grid.pc << " B="
         << ec.batch << " L=" << ec.net.size();
    std::cout << std::left << std::setw(34) << name.str() << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << rb.makespan * 1e3 << std::setw(14) << ro.makespan * 1e3
              << std::setprecision(1) << std::setw(9)
              << 100.0 * saved / rb.makespan << '%' << std::setprecision(2)
              << std::setw(12) << measured_hidden << std::setw(12)
              << predicted_hidden << '\n';
    bench::record_json("exec_" + name.str() + "_blocking", 0,
                       rb.makespan * 1e9, 0);
    bench::record_json("exec_" + name.str() + "_overlapped", 0,
                       ro.makespan * 1e9, 0);
  }
  std::cout << "note: measured < predicted is structural, not noise. The\n"
               "analytic f=2/3 bound assumes every backprop byte can hide;\n"
               "the executable schedule posts only round 0 of each ring at\n"
               "initiation (later rounds depend on receives, which run at\n"
               "deterministic drain points), so one round per reduction\n"
               "overlaps compute and the remaining rounds stay exposed.\n";
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig8_overlap");
  using namespace mbd;
  bench::print_table1_banner(
      "Fig. 8 — perfect communication/backprop overlap (Fig. 7 config)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;
  for (std::size_t p : {256u, 512u}) {
    std::cout << "-- subfigure: P = " << p << ", B = " << batch
              << " (per-iteration, overlapped) --\n";
    (void)bench::print_grid_sweep(net, batch, p, m,
                                  costmodel::GridMode::BatchParallelConv,
                                  /*overlap=*/true);
  }
  std::cout << "Paper reference point: even with perfect overlap the"
               " integrated approach keeps a ~2.0x speedup at P=512.\n";
  executable_overlap_section();
  return 0;
}
