// Fig. 8: the Fig. 7 configuration under PERFECT overlap of communication
// with backpropagation compute. Only the backprop all-reduces (≈ 2/3 of the
// communication) can hide behind the transpose-convolution work; the paper
// reports the integrated approach still wins 2.0× at P = 512.
//
// The second section makes the overlap *executable* for every trainer in the
// repo. Each of the seven trainers runs twice — blocking reductions, then the
// nonblocking schedule (ReduceMode::Overlapped) — with both the comm trace
// and the obs timeline recording. Three independent estimates of the hidden
// communication fraction are printed side by side:
//
//   measured  — from the wall-clock timeline: 1 − exposed_comm(overlapped)
//               / exposed_comm(blocking) on the critical rank
//               (obs::measured_hidden_fraction);
//   replay    — from replaying both traces under in-flight transfer
//               semantics on the modeled machine
//               (costmodel::replay_trace, inflight_transfer);
//   bound     — the paper's analytic ceiling min(f·comm, f·compute)/comm
//               with f = 2/3, evaluated on the replayed blocking critical
//               path.
#include <algorithm>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/costmodel/replay.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/obs/overlap.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/pipeline.hpp"

namespace {

using namespace mbd;

// Measured (wall-clock) and replay (modeled) estimates come from different
// clocks; on a loaded CI box the wall-clock runs are noisy, so disagreement
// beyond the tolerance prints WARN rather than failing the harness.
constexpr double kAgreementTolerance = 0.35;

struct TrainerCase {
  std::string name;
  int p;
  std::function<void(comm::Comm&, parallel::ReduceMode, double)> run;
};

struct RunCapture {
  comm::Trace trace;
  obs::TimelineSnapshot timeline;
};

/// One traced + profiled run of a trainer under `mode`.
RunCapture run_case(const TrainerCase& tc, parallel::ReduceMode mode,
                    double seconds_per_flop) {
  obs::reset_timeline();
  const bool was_profiling = obs::profiling_enabled();
  obs::enable_profiling(true);
  comm::World world(tc.p);
  world.enable_tracing();
  world.run([&](comm::Comm& c) { tc.run(c, mode, seconds_per_flop); });
  RunCapture rc;
  rc.timeline = obs::snapshot_timeline();
  obs::enable_profiling(was_profiling);
  rc.trace = world.trace();
  return rc;
}

/// Critical-path pure-compute time: max over ranks of annotated seconds.
double max_rank_compute(const comm::Trace& t) {
  double mx = 0.0;
  for (const auto& rank : t.ranks) {
    double s = 0.0;
    for (const auto& e : rank)
      if (e.kind == comm::TraceEvent::Kind::Compute) s += e.seconds;
    mx = std::max(mx, s);
  }
  return mx;
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

std::vector<nn::LayerSpec> small_conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  return specs;
}

void executable_overlap_section() {
  std::cout << "\n-- executable overlap: all seven trainers, blocking vs "
               "nonblocking reduction schedule --\n"
               "(measured = timeline exposed-comm shrinkage; replay = traces "
               "replayed under\n in-flight transfer semantics; bound = "
               "min(f*comm, f*compute)/comm, f = 2/3,\n on the replayed "
               "blocking critical path. measured vs replay agreement within "
            << std::fixed << std::setprecision(2) << kAgreementTolerance
            << ")\n";
  const auto m = costmodel::MachineModel::cori_knl();
  const costmodel::ReplayOptions inflight{.inflight_transfer = true};
  // Modeled GEMM rate chosen so per-layer compute and per-layer reduction
  // wire time are the same order — the regime where overlap matters (at
  // cori_knl beta, a 256x512 layer's dW ring round is ~40 us of wire).
  const double spf = 3e-11;
  const std::size_t iters = 3;

  const auto mlp = nn::mlp_spec({256, 512, 256, 10});
  const auto mlp_data = nn::make_synthetic_dataset(256, 10, 128, 13);
  nn::TrainConfig mlp_cfg;
  mlp_cfg.batch = 32;
  mlp_cfg.iterations = iters;

  // The pipeline needs one FC layer per stage; deepen the MLP so P = 4
  // stage groups each own a real block. Its "hidden" columns measure how
  // much of the p2p boundary traffic the 1F1B interleave keeps off the
  // critical path relative to the same program run microbatch-serially.
  const auto pipe_mlp = nn::mlp_spec({256, 512, 256, 128, 10});

  const auto cnn = small_conv_net();
  const auto cnn_data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 32, 9);
  nn::TrainConfig cnn_cfg;
  cnn_cfg.batch = 8;
  cnn_cfg.iterations = iters;

  using parallel::GridShape;
  using parallel::ReduceMode;
  const std::vector<TrainerCase> cases = {
      {"model p=4", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_model_parallel(c, mlp, mlp_data, mlp_cfg, 42,
                                              mode, nullptr, s);
       }},
      {"batch p=4", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_batch_parallel(c, mlp, mlp_data, mlp_cfg,
                                              nn::BuildOptions{}, mode,
                                              nullptr, s);
       }},
      {"15d pr=2 pc=2", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_integrated_15d(c, GridShape{2, 2}, mlp,
                                              mlp_data, mlp_cfg, 42, mode, s);
       }},
      {"mixed pr=2 pc=2", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_mixed_grid(c, GridShape{2, 2}, cnn, cnn_data,
                                          cnn_cfg, 42, mode, nullptr, s);
       }},
      {"domain p=4", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_domain_parallel(c, cnn, cnn_data, cnn_cfg, 42,
                                               /*overlap_halo=*/false, mode,
                                               nullptr, s);
       }},
      {"hybrid pr=2 pc=2", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_hybrid(c, GridShape{2, 2}, cnn, cnn_data,
                                      cnn_cfg, 42, /*overlap_halo=*/false,
                                      mode, nullptr, s);
       }},
      {"pipeline p=4 m=4", 4,
       [&](comm::Comm& c, ReduceMode mode, double s) {
         (void)parallel::train_pipeline(c, pipe_mlp, mlp_data, mlp_cfg,
                                        /*microbatches=*/4, 42, mode, nullptr,
                                        s);
       }},
  };

  std::cout << std::left << std::setw(20) << "trainer" << std::right
            << std::setw(14) << "blocking(ms)" << std::setw(13)
            << "replay(ms)" << std::setw(11) << "measured" << std::setw(11)
            << "replay" << std::setw(11) << "bound" << std::setw(8)
            << "agree" << '\n';
  for (const auto& tc : cases) {
    // Column 1: measured from the wall-clock timelines. The thread runtime's
    // exposed-comm time is mostly synchronization wait, so one sample is at
    // the mercy of the scheduler; best-of-3 per mode damps that.
    const int repeats = 3;
    auto bl = run_case(tc, ReduceMode::Blocking, spf);
    auto ov = run_case(tc, ReduceMode::Overlapped, spf);
    double comm_bl = obs::critical_comm_seconds(bl.timeline);
    double comm_ov = obs::critical_comm_seconds(ov.timeline);
    for (int r = 1; r < repeats; ++r) {
      comm_bl = std::min(
          comm_bl, obs::critical_comm_seconds(
                       run_case(tc, ReduceMode::Blocking, spf).timeline));
      comm_ov = std::min(
          comm_ov, obs::critical_comm_seconds(
                       run_case(tc, ReduceMode::Overlapped, spf).timeline));
    }
    const double measured =
        comm_bl > 0.0 ? clamp01(1.0 - comm_ov / comm_bl) : 0.0;

    // Column 2: replay both traces on the modeled machine. Exposed
    // communication in the blocking schedule is everything on the critical
    // path that is not annotated compute.
    const auto rb = costmodel::replay_trace(bl.trace, m, inflight);
    const auto ro = costmodel::replay_trace(ov.trace, m, inflight);
    const double compute = max_rank_compute(bl.trace);
    const double exposed = std::max(rb.makespan - compute, 0.0);
    const double replay_hidden =
        exposed > 0.0 ? clamp01((rb.makespan - ro.makespan) / exposed) : 0.0;

    // Column 3: the paper's f = 2/3 bound on the same replayed quantities.
    const double f = 2.0 / 3.0;
    const double bound =
        exposed > 0.0
            ? clamp01(std::min(f * exposed, f * compute) / exposed)
            : 0.0;

    const bool agree = std::abs(measured - replay_hidden) <=
                       kAgreementTolerance;
    std::cout << std::left << std::setw(20) << tc.name << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << rb.makespan * 1e3 << std::setw(13) << ro.makespan * 1e3
              << std::setprecision(2) << std::setw(11) << measured
              << std::setw(11) << replay_hidden << std::setw(11) << bound
              << std::setw(8) << (agree ? "ok" : "WARN") << '\n';

    bench::record_json("exec_" + tc.name + "_blocking", 0, rb.makespan * 1e9,
                       0);
    bench::record_json("exec_" + tc.name + "_overlapped", 0,
                       ro.makespan * 1e9, 0);
    // The fractions travel as metric records (no "ns": not timings).
    auto& metrics = obs::Metrics::instance();
    metrics.gauge_set("fig8." + tc.name + ".hidden_measured", measured);
    metrics.gauge_set("fig8." + tc.name + ".hidden_replay", replay_hidden);
    metrics.gauge_set("fig8." + tc.name + ".hidden_bound", bound);
  }
  std::cout << "note: measured < bound is structural, not noise. The f=2/3\n"
               "bound assumes every backprop byte can hide; the executable\n"
               "schedule posts only round 0 of each ring at initiation\n"
               "(later rounds depend on receives, which run at deterministic\n"
               "drain points), so one round per reduction overlaps compute\n"
               "and the rest stays exposed. The measured column uses wall\n"
               "clocks on whatever machine runs this bench; treat WARN as a\n"
               "load artifact unless it reproduces on a quiet machine.\n"
               "The pipeline row is the structural extreme: it moves no\n"
               "collective bytes at all (boundary activations travel as p2p\n"
               "messages under both modes), so its hidden fractions sit near\n"
               "zero and its two makespans agree — the interleave, not the\n"
               "reduction schedule, is what hides pipeline communication.\n";
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig8_overlap");
  using namespace mbd;
  bench::print_table1_banner(
      "Fig. 8 — perfect communication/backprop overlap (Fig. 7 config)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;
  for (std::size_t p : {256u, 512u}) {
    std::cout << "-- subfigure: P = " << p << ", B = " << batch
              << " (per-iteration, overlapped) --\n";
    (void)bench::print_grid_sweep(net, batch, p, m,
                                  costmodel::GridMode::BatchParallelConv,
                                  /*overlap=*/true);
  }
  std::cout << "Paper reference point: even with perfect overlap the"
               " integrated approach keeps a ~2.0x speedup at P=512.\n";
  executable_overlap_section();
  return 0;
}
