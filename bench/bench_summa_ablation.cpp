// §4 ablation: 1.5D vs 2D SUMMA communication volumes for the forward
// multiply Y = W·X across the |W| vs B·d regimes, on representative AlexNet
// FC-layer shapes. The paper's claim: "there is no regime where 2D becomes
// strictly favorable in terms of communication volume"; stationary-A
// approaches 1.5D for pr >> pc but never beats it.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/costmodel/summa.hpp"
#include "mbd/parallel/summa.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/support/units.hpp"
#include "mbd/tensor/gemm.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_summa_ablation");
  using namespace mbd;
  using costmodel::SummaVariant;
  bench::print_table1_banner("§4 — 1.5D vs 2D SUMMA communication volume");

  std::cout << "-- per-process words for Y = W·X (d x d times d x B) --\n";
  TextTable t({"d", "B", "regime", "grid", "1.5D", "stat-A", "stat-B",
               "stat-C", "best 2D / 1.5D"});
  for (const auto [d, b] : {std::pair{4096.0, 512.0},   // |W| > B·d
                            std::pair{4096.0, 4096.0},  // |W| = B·d
                            std::pair{1024.0, 16384.0}, // |W| < B·d
                            std::pair{9216.0, 2048.0}}) {
    for (const auto [pr, pc] :
         {std::pair{4u, 16u}, std::pair{8u, 8u}, std::pair{64u, 2u}}) {
      const double ours = costmodel::words_15d_forward(d, b, pc);
      const double a =
          costmodel::summa_words_per_process(SummaVariant::StationaryA, d, b, pr, pc);
      const double sb =
          costmodel::summa_words_per_process(SummaVariant::StationaryB, d, b, pr, pc);
      const double sc =
          costmodel::summa_words_per_process(SummaVariant::StationaryC, d, b, pr, pc);
      const double best2d = std::min({a, sb, sc});
      t.row()
          .add(format_count(d))
          .add(format_count(b))
          .add(d * d > b * d ? "|W|>Bd" : (d * d < b * d ? "|W|<Bd" : "|W|=Bd"))
          .add(std::to_string(pr) + "x" + std::to_string(pc))
          .add(format_count(ours))
          .add(format_count(a))
          .add(format_count(sb))
          .add(format_count(sc))
          .add_num(best2d / ours, 2);
    }
  }
  t.print(std::cout);
  std::cout << "  (ratio >= 1 everywhere: no 2D variant strictly beats 1.5D;"
               " stationary-A approaches 1.5D as pr grows)\n\n";

  std::cout << "-- asymptote: stationary-A / 1.5D as pr grows (d=4096,"
               " B=512, pc=8) --\n";
  TextTable t2({"pr", "stat-A / 1.5D"});
  for (std::size_t pr : {2u, 8u, 32u, 128u, 512u, 4096u}) {
    const double ours = costmodel::words_15d_forward(4096, 512, 8);
    const double a = costmodel::summa_words_per_process(
        SummaVariant::StationaryA, 4096, 512, pr, 8);
    t2.row().add_int(static_cast<long long>(pr)).add_num(a / ours, 3);
  }
  t2.print(std::cout);
  std::cout << "  (paper: \"its communication costs approach 1.5D when"
               " pr >> pc but never surpass it\")\n\n";

  // --- executable 2D SUMMA on thread ranks: measured broadcast volume ------
  std::cout << "-- executable stationary-C SUMMA (thread ranks): measured"
               " vs predicted volume --\n";
  TextTable t3({"grid", "Y = W·X shape", "measured", "predicted", "verdict"});
  for (const auto [pr, pc] : {std::pair{2, 2}, std::pair{2, 4},
                              std::pair{4, 2}, std::pair{3, 3}}) {
    const parallel::GridShape grid{pr, pc};
    const parallel::SummaShape shape{96, 96, 48};  // W 96×96, X 96×48
    mbd::Rng rng(3);
    const tensor::Matrix w =
        tensor::Matrix::random_normal(shape.m, shape.k, rng, 0.5f);
    const tensor::Matrix x =
        tensor::Matrix::random_normal(shape.k, shape.n, rng, 0.5f);
    comm::World world(pr * pc);
    world.run([&](comm::Comm& c) {
      const int row = c.rank() / grid.pc;
      const int col = c.rank() % grid.pc;
      const auto ai = parallel::summa_block(shape.m, shape.k, grid, row, col);
      const auto bi = parallel::summa_block(shape.k, shape.n, grid, row, col);
      const tensor::Matrix a_block = w.row_block(ai.rows.lo, ai.rows.hi)
                                         .col_block(ai.cols.lo, ai.cols.hi);
      const tensor::Matrix b_block = x.row_block(bi.rows.lo, bi.rows.hi)
                                         .col_block(bi.cols.lo, bi.cols.hi);
      (void)parallel::summa_stationary_c(c, grid, shape, a_block, b_block);
    });
    const auto measured = world.stats()[comm::Coll::Broadcast].bytes;
    const auto predicted = parallel::summa_stationary_c_bytes(grid, shape);
    t3.row()
        .add(std::to_string(pr) + "x" + std::to_string(pc))
        .add("96x96 · 96x48")
        .add(format_bytes(static_cast<double>(measured)))
        .add(format_bytes(static_cast<double>(predicted)))
        .add(measured == predicted ? "EXACT" : "MISMATCH");
  }
  t3.print(std::cout);
  std::cout << "  (the 2D algorithm moves both operands; the 1.5D algorithm"
               " moves only the smaller one — §4's conclusion, now measured"
               " on running code)\n";
  return 0;
}
