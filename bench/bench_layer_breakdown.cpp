// Per-layer communication breakdown at the Fig. 7 headline configuration —
// the layer-level evidence behind the paper's two structural arguments:
// (1) conv layers have huge activations (d_i) but few weights, so model
// parallelism there drowns in all-gathers (why Fig. 7 forces Pr=1 on conv);
// (2) FC layers have huge |W_i| but small activations, so splitting their
// rows slashes the dominant ∆W all-reduce (why the 1.5D grid wins).
#include <iostream>

#include "common.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_layer_breakdown");
  using namespace mbd;
  bench::print_table1_banner(
      "Per-layer breakdown — why conv wants batch and FC wants model rows");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048, p = 512;

  std::cout << "-- layer shapes: activations vs weights --\n";
  TextTable s({"layer", "d_in", "d_out", "|W|", "B*d_out / |W|"});
  for (const auto& l : net) {
    s.row()
        .add(l.name)
        .add(format_count(static_cast<double>(l.d_in())))
        .add(format_count(static_cast<double>(l.d_out())))
        .add(format_count(static_cast<double>(l.weight_count())))
        .add_num(static_cast<double>(batch) * static_cast<double>(l.d_out()) /
                     static_cast<double>(l.weight_count()),
                 1);
  }
  s.print(std::cout);
  std::cout << "  (ratio >> 1: activation-dominated, keep batch-parallel;"
               " << 1: weight-dominated, split the rows)\n\n";

  for (const auto mode : {costmodel::GridMode::Uniform,
                          costmodel::GridMode::BatchParallelConv}) {
    const bool uniform = mode == costmodel::GridMode::Uniform;
    const auto best = costmodel::best_integrated_grid(net, batch, p, m, mode);
    std::cout << "-- per-layer comm at best grid " << best.pr << "x" << best.pc
              << " (" << (uniform ? "Fig. 6 uniform" : "Fig. 7 fc-only")
              << " mode) --\n";
    TextTable t({"layer", "T_allgather", "T_ardx", "T_ardw", "layer total"});
    for (const auto& lc : best.cost.layers) {
      t.row()
          .add(lc.name)
          .add(format_seconds(lc.ag_forward.total()))
          .add(format_seconds(lc.ar_dx.total()))
          .add(format_seconds(lc.ar_dw.total()))
          .add(format_seconds(lc.comm().total()));
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Reading: in uniform mode the conv layers' all-gathers"
               " dominate; forcing them batch-parallel (Fig. 7) moves the"
               " entire budget to the FC ∆W reductions, which the Pr split"
               " then divides — the paper's layer-structure argument, one"
               " row per layer.\n";
  return 0;
}
