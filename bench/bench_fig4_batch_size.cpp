// Fig. 4: one-epoch AlexNet training time vs mini-batch size on a single
// node. Part 1 prints the digitized curve used by all simulations (the
// paper's empirical Intel-Caffe/KNL measurement). Part 2 re-measures the
// *shape* on this host with this project's own conv/FC kernels on a scaled
// AlexNet-like network: per-image time falls as the local batch grows
// because BLAS-3 utilization improves — the effect the paper's Fig. 4
// documents and its cost model consumes.
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "mbd/nn/loss.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/units.hpp"

namespace {

using namespace mbd;

void print_digitized_curve() {
  std::cout << "-- Fig. 4 (digitized): one-epoch time vs batch size,"
               " AlexNet on one KNL --\n";
  const auto curve = costmodel::ComputeCurve::alexnet_knl();
  TextTable t({"batch", "epoch time", "time/image", "iter time"});
  for (double b : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
                   1024.0, 2048.0}) {
    const double per_img = curve.seconds_per_image(b);
    const double epoch =
        per_img * static_cast<double>(curve.images_per_epoch());
    t.row()
        .add_int(static_cast<long long>(b))
        .add(format_seconds(epoch))
        .add(format_seconds(per_img))
        .add(format_seconds(per_img * b));
  }
  t.print(std::cout);
  std::cout << "  (paper: minimum at B = 256 — \"increasing batch size up to"
               " 256 reduces the time\")\n\n";
}

void measure_local_shape() {
  std::cout << "-- Fig. 4 (measured on this host): per-image training time"
               " vs batch size --\n";
  std::cout << "   scaled AlexNet-like CNN (conv stack + FC tail), our"
               " im2col+gemm kernels\n";
  // A small AlexNet-shaped network: conv/pool pyramid into an FC tail.
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 3, 32, 32, 16, 5, 2, 2));
  specs.push_back(nn::conv_spec("conv2", 16, 16, 16, 32, 3, 1, 1));
  specs.push_back(nn::pool_spec("pool2", 32, 16, 16, 2, 2));
  specs.push_back(nn::conv_spec("conv3", 32, 8, 8, 32, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 32 * 8 * 8, 256));
  specs.push_back(nn::fc_spec("fc2", 256, 10, false));
  nn::check_chain(specs);

  const std::size_t dim = specs.front().d_in();
  const auto data = nn::make_synthetic_dataset(dim, 10, 128, /*seed=*/1);

  TextTable t({"batch", "iter time", "time/image", "rel. to B=1"});
  double base_per_image = 0.0;
  for (std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    nn::Network net = nn::build_network(specs, {.seed = 2});
    nn::TrainConfig cfg;
    cfg.batch = batch;
    cfg.lr = 0.01f;
    cfg.iterations = 2;  // warm up allocations/caches
    (void)nn::train_sgd(net, data, cfg);
    const std::size_t reps = std::max<std::size_t>(1, 32 / batch);
    cfg.iterations = reps;
    const auto t0 = std::chrono::steady_clock::now();
    (void)nn::train_sgd(net, data, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double iter_s =
        std::chrono::duration<double>(t1 - t0).count() / static_cast<double>(reps);
    const double per_image = iter_s / static_cast<double>(batch);
    if (batch == 1) base_per_image = per_image;
    t.row()
        .add_int(static_cast<long long>(batch))
        .add(format_seconds(iter_s))
        .add(format_seconds(per_image))
        .add_num(per_image / base_per_image, 2);
  }
  t.print(std::cout);
  std::cout << "  (expected shape: time/image decreases with batch — larger"
               " local matmuls use the hardware better)\n";
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig4_batch_size");
  bench::print_table1_banner("Fig. 4 — one-epoch time vs mini-batch size");
  print_digitized_curve();
  measure_local_shape();
  return 0;
}
