// Trace-driven simulation (ours, beyond the paper): record the actual
// communication schedule of one training iteration on thread ranks, then
// replay it under the Table 1 machine model. Unlike the closed-form figures
// (which charge each collective its textbook complexity), the replayed
// makespan includes the real dependency chains and serialization of the
// executed schedule — an independent check that the closed forms describe
// what the algorithms actually do.
#include <functional>
#include <iostream>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/costmodel/replay.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/support/units.hpp"

namespace {

using namespace mbd;

/// Record one iteration (setup traffic excluded by tracing only the second
/// of two runs... splits happen per run, so we subtract a 0-iteration run's
/// events by replaying the difference — simpler: trace a 1-iteration run and
/// report alongside, noting setup inclusion).
costmodel::ReplayResult replay_one(
    int p, const costmodel::MachineModel& m,
    const std::function<void(comm::Comm&)>& fn) {
  comm::World world(p);
  world.enable_tracing();
  world.run(fn);
  return costmodel::replay_trace(world.trace(), m);
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_trace_replay");
  bench::print_table1_banner(
      "Trace replay — simulated iteration time from executed schedules");
  const auto m = costmodel::MachineModel::cori_knl();
  const auto specs = nn::mlp_spec({64, 128, 64, 16});
  const auto data = nn::make_synthetic_dataset(64, 16, 64, /*seed=*/1);
  nn::TrainConfig cfg;
  cfg.batch = 32;
  cfg.lr = 0.01f;
  cfg.iterations = 1;

  std::cout << "One SGD iteration of a 64-128-64-16 MLP, B=32, on thread"
               " ranks; communication replayed under Table 1 alpha/beta"
               " (compute excluded — schedules only).\n\n";
  TextTable t({"configuration", "replayed comm makespan", "closed-form comm",
               "recv wait (all ranks)", "events"});
  auto add_row = [&](const std::string& name, int p,
                     const std::function<void(comm::Comm&)>& fn,
                     double closed_form) {
    comm::World world(p);
    world.enable_tracing();
    world.run(fn);
    const auto r = costmodel::replay_trace(world.trace(), m);
    t.row()
        .add(name)
        .add(format_seconds(r.makespan))
        .add(format_seconds(closed_form))
        .add(format_seconds(r.total_recv_wait))
        .add_int(static_cast<long long>(world.trace().total_events()));
  };

  const auto weighted = specs;  // all FC, already weighted
  for (int p : {4, 8}) {
    const auto closed = costmodel::batch_parallel_cost(
        weighted, cfg.batch, static_cast<std::size_t>(p), m,
        {costmodel::LatencyMode::AlgorithmExact});
    add_row("batch parallel P=" + std::to_string(p), p,
            [&](comm::Comm& c) {
              (void)parallel::train_batch_parallel(c, specs, data, cfg);
            },
            closed.comm());
  }
  {
    const auto closed = costmodel::integrated_cost(
        weighted, cfg.batch, 2, 4, m, costmodel::GridMode::Uniform,
        {costmodel::LatencyMode::AlgorithmExact});
    add_row("1.5D 2x4", 8,
            [&](comm::Comm& c) {
              (void)parallel::train_integrated_15d(c, {2, 4}, specs, data,
                                                   cfg);
            },
            closed.comm());
  }
  t.print(std::cout);
  std::cout << "  (replayed makespans sit near the exact-latency closed"
               " forms — the residual is the loss gather/broadcast and the"
               " communicator-split setup the formulas do not model, plus"
               " pipeline effects only the schedule can show)\n\n";

  // Compute/communication interleaving: annotate imbalanced compute and
  // watch the replay absorb it into recv wait on the fast ranks.
  std::cout << "-- annotated compute: imbalance becomes recv wait --\n";
  TextTable t2({"imbalance", "makespan", "recv wait", "compute total"});
  for (double skew : {0.0, 0.5, 1.0}) {
    const auto r = replay_one(4, m, [&](comm::Comm& c) {
      // Rank r computes 1 + skew·r/P seconds, then joins an all-reduce.
      c.annotate_compute(1.0 + skew * c.rank() / 4.0);
      std::vector<float> v(1 << 16, 1.0f);
      c.allreduce(std::span<float>(v));
    });
    t2.row()
        .add(format_double(skew, 1) + "x")
        .add(format_seconds(r.makespan))
        .add(format_seconds(r.total_recv_wait))
        .add(format_seconds(r.total_compute));
  }
  t2.print(std::cout);
  std::cout << "  (a skewed compute distribution stretches the makespan by"
               " the slowest rank and shows up as waiting on the others —"
               " the synchronous-SGD straggler effect, visible only in"
               " schedule-aware simulation)\n";
  return 0;
}
