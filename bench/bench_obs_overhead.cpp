// Profiler overhead, measured on the two hot paths the timeline profiler
// instruments:
//
//  * gemm_off / gemm_on           — single-thread gemm_nn 96x96x96; the "on"
//                                   run records one Gemm span (plus nested
//                                   Pack spans) per call
//  * allreduce_off / allreduce_on — 4-rank iallreduce().wait() loop on a
//                                   16 KiB buffer; the "on" run records a
//                                   CollPost and a CollWait span per call
//
// Per-case `ns` is per-iteration wall time (median of kReps), so the on/off
// ratio per path reads directly as the runtime-enabled profiler tax. The
// committed BENCH_obs.json baseline gates these in the perf-regression CI
// job; the off cases double as the compiled-in-but-disabled cost guard the
// observability subsystem promises (docs/observability.md).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/matrix.hpp"

namespace {

using namespace mbd;

constexpr int kReps = 5;
constexpr std::size_t kGemmDim = 96;
constexpr std::size_t kGemmIters = 400;
constexpr int kP = 4;
constexpr std::size_t kCollWords = 4096;
constexpr std::size_t kCollIters = 512;

double median_ns_per_iter(std::size_t iters, const std::function<void()>& fn) {
  fn();  // warm-up: page faults, thread spawn, and buffer growth land here
  std::vector<double> ns;
  ns.reserve(kReps);
  for (int i = 0; i < kReps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                          t0)
                         .count()) /
                 static_cast<double>(iters));
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

double gemm_ns_per_iter(bool profile) {
  obs::enable_profiling(profile);
  obs::reset_timeline();
  tensor::Matrix a(kGemmDim, kGemmDim);
  tensor::Matrix b(kGemmDim, kGemmDim);
  tensor::Matrix c(kGemmDim, kGemmDim);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(i % 7) * 0.25f;
    b.data()[i] = static_cast<float>(i % 5) * 0.5f;
  }
  const double ns = median_ns_per_iter(kGemmIters, [&] {
    obs::reset_timeline();  // keep span buffers from growing across reps
    for (std::size_t i = 0; i < kGemmIters; ++i)
      tensor::gemm_nn(a, b, c, 1.0f, 0.0f);
  });
  obs::reset_timeline();
  return ns;
}

double allreduce_ns_per_iter(bool profile) {
  obs::enable_profiling(profile);
  obs::reset_timeline();
  const double ns = median_ns_per_iter(kCollIters, [&] {
    obs::reset_timeline();
    comm::World world(kP);
    world.disable_validation();  // measure the transport, not the watchdog
    world.run([](comm::Comm& c) {
      std::vector<float> buf(kCollWords, 1.0f);
      for (std::size_t i = 0; i < kCollIters; ++i)
        c.iallreduce(std::span<float>(buf)).wait();
    });
  });
  obs::reset_timeline();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_obs_overhead");
  // The sink turns the one-shot GEMM shape logger on; its per-call cost is
  // identical for the off and on runs, so the ratio is unaffected.

  const double gemm_off = gemm_ns_per_iter(false);
  const double gemm_on = gemm_ns_per_iter(true);
  const double coll_off = allreduce_ns_per_iter(false);
  const double coll_on = allreduce_ns_per_iter(true);
  obs::enable_profiling(false);

  std::cout << "-- profiler overhead: gemm_nn " << kGemmDim << "^3 x"
            << kGemmIters << ", iallreduce " << kCollWords << "f P=" << kP
            << " x" << kCollIters << " (median of " << kReps << ") --\n";
  std::cout << std::left << std::setw(16) << "case" << std::right
            << std::setw(14) << "ns/iter" << std::setw(12) << "on/off"
            << '\n';
  const auto row = [&](const std::string& name, double ns, double ratio) {
    std::cout << std::left << std::setw(16) << name << std::right
              << std::fixed << std::setprecision(1) << std::setw(14) << ns
              << std::setprecision(4) << std::setw(12);
    if (ratio > 0.0)
      std::cout << ratio;
    else
      std::cout << "-";
    std::cout << '\n';
    mbd::bench::record_json(name, 0, ns, 0);
  };
  row("gemm_off", gemm_off, 0.0);
  row("gemm_on", gemm_on, gemm_on / gemm_off);
  row("allreduce_off", coll_off, 0.0);
  row("allreduce_on", coll_on, coll_on / coll_off);
  obs::Metrics::instance().gauge_set("obs.overhead.gemm_ratio",
                                     gemm_on / gemm_off);
  obs::Metrics::instance().gauge_set("obs.overhead.allreduce_ratio",
                                     coll_on / coll_off);
  return 0;
}
