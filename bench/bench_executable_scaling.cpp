// Executable scaling (ours): run the actual trainers across rank counts on
// thread ranks and show the measured per-iteration traffic following the
// cost model's trends — the ∆W all-reduce volume saturating at 2·(P−1)/P·|W|
// for pure batch (Eq. 4's P-independence), and shrinking by Pr on the 1.5D
// grid (Eq. 8's headline effect). This complements the analytic figure
// benches with end-to-end measurements.
#include <iostream>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/support/units.hpp"

namespace {

using namespace mbd;

comm::StatsSnapshot per_iteration(int p,
                                  const std::function<void(comm::Comm&, std::size_t)>& fn) {
  auto run = [&](std::size_t iters) {
    comm::World world(p);
    world.run([&](comm::Comm& c) { fn(c, iters); });
    return world.stats();
  };
  const auto s1 = run(1);
  const auto s3 = run(3);
  auto d = s3.since(s1);
  for (auto& e : d.by_coll) {
    e.bytes /= 2;
    e.messages /= 2;
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_executable_scaling");
  bench::print_table1_banner(
      "Executable scaling — measured traffic of the running trainers");
  const auto specs = nn::mlp_spec({32, 64, 32, 16});
  const auto data = nn::make_synthetic_dataset(32, 16, 128, /*seed=*/1);
  const double w_bytes =
      static_cast<double>(nn::total_weights(specs)) * sizeof(float);

  std::cout << "-- pure batch parallel: dW all-reduce bytes/iteration vs P"
               " (Eq. 4: approaches 2|W| as P grows) --\n";
  TextTable t({"P", "allreduce/iter", "predicted 2(P-1)|W|", "per-process"});
  for (int p : {2, 4, 8, 16}) {
    nn::TrainConfig cfg;
    cfg.batch = 32;
    const auto s = per_iteration(p, [&](comm::Comm& c, std::size_t iters) {
      auto c2 = cfg;
      c2.iterations = iters;
      (void)parallel::train_batch_parallel(c, specs, data, c2);
    });
    const double measured = static_cast<double>(s[comm::Coll::AllReduce].bytes);
    t.row()
        .add_int(p)
        .add(format_bytes(measured))
        .add(format_bytes(2.0 * (p - 1) * w_bytes))
        .add(format_bytes(measured / p));
  }
  t.print(std::cout);
  std::cout << "  (per-process volume saturates at 2|W| = "
            << format_bytes(2.0 * w_bytes)
            << " — the Eq. 4 P-independence of the bandwidth term)\n\n";

  std::cout << "-- 1.5D at P = 16: dW all-reduce shrinks by Pr"
               " (Eq. 8), activation traffic grows --\n";
  TextTable t2({"grid Pr x Pc", "allreduce/iter", "allgather/iter",
                "total/iter"});
  for (const auto [pr, pc] : {std::pair{1, 16}, std::pair{2, 8},
                              std::pair{4, 4}, std::pair{8, 2},
                              std::pair{16, 1}}) {
    nn::TrainConfig cfg;
    cfg.batch = 32;
    const parallel::GridShape grid{pr, pc};
    const auto s = per_iteration(16, [&, grid](comm::Comm& c,
                                               std::size_t iters) {
      auto c2 = cfg;
      c2.iterations = iters;
      (void)parallel::train_integrated_15d(c, grid, specs, data, c2);
    });
    t2.row()
        .add(std::to_string(pr) + " x " + std::to_string(pc))
        .add(format_bytes(static_cast<double>(s[comm::Coll::AllReduce].bytes)))
        .add(format_bytes(static_cast<double>(s[comm::Coll::AllGather].bytes)))
        .add(format_bytes(static_cast<double>(s.total_bytes())));
  }
  t2.print(std::cout);
  std::cout << "  (the measured trade is exactly the one Eqs. 4 vs 8"
               " describe: model rows cut the weight reduction, batch"
               " columns cut the activation gather)\n";
  return 0;
}
