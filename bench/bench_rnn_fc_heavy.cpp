// Paper §2.3: the 1.5D integration "can be especially valuable for networks
// with many fully connected layers", and the Limitations section notes the
// analysis "naturally extends" to RNNs, which are mostly FC. This bench
// quantifies that: the best-grid speedup over pure batch parallelism for an
// unrolled-RNN proxy (all FC) vs AlexNet (conv-dominated compute) at the
// same scale.
#include <iostream>

#include "common.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_rnn_fc_heavy");
  using namespace mbd;
  bench::print_table1_banner(
      "RNN/FC-heavy extension — where the 1.5D integration pays off most");

  // 8 unrolled steps of a 4096-wide recurrent cell: 8·16.8M + projections.
  const auto rnn = nn::rnn_proxy_spec(/*input=*/2048, /*hidden=*/4096,
                                      /*steps=*/8, /*output=*/1000);
  const auto alexnet = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;

  std::cout << "RNN proxy: " << rnn.size() << " FC layers, "
            << format_count(static_cast<double>(nn::total_weights(rnn)))
            << " parameters (vs AlexNet "
            << format_count(static_cast<double>(nn::total_weights(alexnet)))
            << ")\n\n";

  TextTable t({"P", "net", "pure batch comm", "best grid", "best comm",
               "comm speedup"});
  for (std::size_t p : {64u, 256u, 512u}) {
    for (const auto* which : {"alexnet", "rnn"}) {
      const auto& net = which == std::string("alexnet") ? alexnet : rnn;
      const auto pure = costmodel::integrated_cost(
          net, batch, 1, p, m, costmodel::GridMode::BatchParallelConv);
      const auto best = costmodel::best_integrated_grid(
          net, batch, p, m, costmodel::GridMode::BatchParallelConv);
      t.row()
          .add_int(static_cast<long long>(p))
          .add(which)
          .add(format_seconds(pure.comm()))
          .add(std::to_string(best.pr) + "x" + std::to_string(best.pc))
          .add(format_seconds(best.cost.comm()))
          .add_num(pure.comm() / best.cost.comm(), 1);
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: the all-FC network gains at least as much"
               " communication speedup from the integrated grid as AlexNet —"
               " \"especially valuable for networks with many fully"
               " connected layers\".\n";
  return 0;
}
