// Eq. 5 (model-vs-batch crossover) and Eq. 6 (redistribution cost).
//
// Regenerates the paper's §2.2 claims: per AlexNet conv layer, the largest
// batch size at which pure model parallelism still moves no more data than
// pure batch parallelism ("for several convolutional layers ... model
// parallelism has lower communication volume than batch parallelism for
// B ≤ 12"), and the observation that switching distributions costs
// asymptotically 1/3 of the subsequent model-parallel step (Eq. 6).
#include <iostream>

#include "common.hpp"
#include "mbd/support/units.hpp"

namespace {

using namespace mbd;

void crossover_table() {
  std::cout << "-- Eq. 5: batch/model communication-volume ratio per conv"
               " layer --\n";
  const auto net = bench::alexnet();
  TextTable t({"layer", "|W|", "d_i", "ratio(B=4)", "ratio(B=16)",
               "ratio(B=64)", "model favorable for B <="});
  for (const auto& l : net) {
    if (l.kind != nn::LayerKind::Conv) continue;
    t.row()
        .add(l.name)
        .add(format_count(static_cast<double>(l.weight_count())))
        .add(format_count(static_cast<double>(l.d_out())))
        .add_num(costmodel::batch_over_model_volume_ratio(l, 4), 2)
        .add_num(costmodel::batch_over_model_volume_ratio(l, 16), 2)
        .add_num(costmodel::batch_over_model_volume_ratio(l, 64), 2)
        .add_int(static_cast<long long>(
            costmodel::model_favorable_batch_limit(l)));
  }
  t.print(std::cout);
  std::cout << "  (paper: 3x3 filters on 13x13x384 activations -> model"
               " parallel favorable for B <= ~12; ratio > 1 means the batch-"
               "parallel all-reduce moves more data)\n\n";
}

void redistribution_table() {
  std::cout << "-- Eq. 6: batch->model redistribution cost vs the subsequent"
               " model-parallel layer --\n";
  const auto m = costmodel::MachineModel::cori_knl();
  TextTable t({"P", "B", "d", "T_redistribute", "T_model_layer", "ratio"});
  for (std::size_t p : {16u, 64u, 256u, 1024u}) {
    const std::size_t batch = 2048, d = 4096;
    const auto redist = costmodel::redistribution_cost(m, p, batch, d);
    // Subsequent model-parallel step for one d×d layer: all-gather of B·d
    // plus the 2× ∆X all-reduce of B·d.
    const auto ag = costmodel::allgather_cost(
        m, p, static_cast<double>(batch) * static_cast<double>(d));
    const auto ar = costmodel::allreduce_cost(
        m, p, static_cast<double>(batch) * static_cast<double>(d));
    const double model_step = ag.total() + ar.total();
    t.row()
        .add_int(static_cast<long long>(p))
        .add_int(static_cast<long long>(batch))
        .add_int(static_cast<long long>(d))
        .add(format_seconds(redist.total()))
        .add(format_seconds(model_step))
        .add_num(model_step / redist.total(), 2);
  }
  t.print(std::cout);
  std::cout << "  (paper: \"this redistribution cost is asymptotically free"
               " because the subsequent model parallel step has communication"
               " cost that is three times the cost of the redistribution\")\n";
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_eq5_crossover");
  bench::print_table1_banner(
      "Eq. 5 / Eq. 6 — crossover batch sizes and redistribution");
  crossover_table();
  redistribution_table();
  return 0;
}
