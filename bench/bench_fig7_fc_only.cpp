// Fig. 7: strong scaling with model parallelism restricted to the FC layers
// (Pr = 1 for convolutional layers — pure batch there), the paper's improved
// configuration. Headline: at P = 512, B = 2048 the best grid gives 2.5×
// total / 9.7× communication speedup over pure batch parallelism —
// "significantly better than Fig. 6".
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig7_fc_only");
  using namespace mbd;
  bench::print_table1_banner(
      "Fig. 7 — strong scaling, model parallelism in FC layers only (Eq. 8)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;
  for (std::size_t p : {8u, 64u, 256u, 512u}) {
    std::cout << "-- subfigure: P = " << p << ", B = " << batch
              << " (per-iteration times) --\n";
    (void)bench::print_grid_sweep(net, batch, p, m,
                                  costmodel::GridMode::BatchParallelConv);
  }
  std::cout << "Paper reference points: P=512 best grid gives 2.5x total,"
               " 9.7x communication vs pure batch.\n";
  return 0;
}
