// Ablation (DESIGN.md §5): the paper charges every collective α⌈log₂P⌉
// latency, but the ring all-reduce it cites really pays 2(P−1)α. This bench
// quantifies when that accounting difference matters for the Fig. 7
// configuration, and compares all-reduce algorithm choices analytically.
#include <iostream>

#include "common.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_latency_ablation");
  using namespace mbd;
  using costmodel::LatencyMode;
  bench::print_table1_banner(
      "Ablation — paper's log-latency accounting vs exact ring latency");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;

  std::cout << "-- Fig. 7 best grid under both latency accountings --\n";
  TextTable t({"P", "best grid (log)", "T_total (log)", "best grid (exact)",
               "T_total (exact)", "delta"});
  for (std::size_t p : {64u, 256u, 512u, 2048u}) {
    if (p > batch) continue;
    const auto log_best = costmodel::best_integrated_grid(
        net, batch, p, m, costmodel::GridMode::BatchParallelConv,
        {LatencyMode::PaperLog});
    const auto exact_best = costmodel::best_integrated_grid(
        net, batch, p, m, costmodel::GridMode::BatchParallelConv,
        {LatencyMode::AlgorithmExact});
    t.row()
        .add_int(static_cast<long long>(p))
        .add(std::to_string(log_best.pr) + "x" + std::to_string(log_best.pc))
        .add(format_seconds(log_best.cost.total()))
        .add(std::to_string(exact_best.pr) + "x" +
             std::to_string(exact_best.pc))
        .add(format_seconds(exact_best.cost.total()))
        .add_num(exact_best.cost.total() / log_best.cost.total(), 3);
  }
  t.print(std::cout);
  std::cout << "  (the optimum grid is stable, but the exact 2(P-1)·alpha"
               " ring latency inflates totals increasingly with P — ~1.4x at"
               " P=512, >4x at P=2048. The paper's log accounting therefore"
               " flatters ALL strategies equally at large P; relative"
               " comparisons, which are what the figures argue, survive)\n\n";

  std::cout << "-- analytic all-reduce time by algorithm, P = 512 --\n";
  TextTable a({"message", "ring/rabenseifner", "recursive doubling",
               "better"});
  for (std::size_t words : {256u, 4096u, 65536u, 1u << 20, 16u << 20}) {
    // Ring/Rabenseifner: 2(P−1)α (Rab: 2·logP·α) + 2β·n(P−1)/P.
    const std::size_t p = 512;
    const double ring = 2.0 * m.alpha * 9 +  // Rabenseifner latency
                        2.0 * m.word_time() * static_cast<double>(words) *
                            511.0 / 512.0;
    const double rd = m.alpha * 9 +
                      m.word_time() * static_cast<double>(words) * 9;
    (void)p;
    a.row()
        .add(format_bytes(static_cast<double>(words) * 4))
        .add(format_seconds(ring))
        .add(format_seconds(rd))
        .add(rd < ring ? "recursive-doubling" : "ring/rabenseifner");
  }
  a.print(std::cout);
  std::cout << "  (classic crossover: latency-optimal algorithms win for"
               " small messages, bandwidth-optimal for gradient-sized ones —"
               " DNN ∆W all-reduces are firmly in the ring regime)\n";
  return 0;
}
