// Microbenchmarks of the three DNN-training gemm kernels (forward W·X,
// gradient ∆Y·Xᵀ, backward Wᵀ·∆Y) across AlexNet-FC-like shapes — the
// blocking ablation from DESIGN.md §5.
#include <benchmark/benchmark.h>

#include "mbd/nn/layers.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/im2col.hpp"

namespace {

using namespace mbd::tensor;

Matrix rand_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  mbd::Rng rng(seed);
  return Matrix::random_normal(r, c, rng, 1.0f);
}

void BM_GemmNN(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  const Matrix w = rand_matrix(d, d, 1);
  const Matrix x = rand_matrix(d, b, 2);
  Matrix y(d, b);
  for (auto _ : state) {
    gemm_nn(w, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(d) * d * b * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNN)->Args({128, 32})->Args({256, 64})->Args({512, 64});

void BM_GemmNT(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  const Matrix dy = rand_matrix(d, b, 3);
  const Matrix x = rand_matrix(d, b, 4);
  Matrix dw(d, d);
  for (auto _ : state) {
    gemm_nt(dy, x, dw);
    benchmark::DoNotOptimize(dw.data());
  }
}
BENCHMARK(BM_GemmNT)->Args({128, 32})->Args({256, 64})->Args({512, 64});

void BM_GemmTN(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  const Matrix w = rand_matrix(d, d, 5);
  const Matrix dy = rand_matrix(d, b, 6);
  Matrix dx(d, b);
  for (auto _ : state) {
    gemm_tn(w, dy, dx);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_GemmTN)->Args({128, 32})->Args({256, 64})->Args({512, 64});

void BM_Conv2DForward(benchmark::State& state) {
  // One AlexNet-conv3-shaped layer (256 -> 384, 3x3 on 13x13) per sample.
  const auto batch = static_cast<std::size_t>(state.range(0));
  mbd::Rng rng(9);
  const mbd::tensor::ConvGeom g{64, 13, 13, 96, 3, 3, 1, 1};
  mbd::nn::Conv2D conv("c", g, rng);
  const Matrix x = rand_matrix(64 * 13 * 13, batch, 10);
  for (auto _ : state) {
    Matrix y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["images/s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2DForward)->Arg(1)->Arg(4)->Arg(16);

void BM_Conv2DBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  mbd::Rng rng(11);
  const mbd::tensor::ConvGeom g{64, 13, 13, 96, 3, 3, 1, 1};
  mbd::nn::Conv2D conv("c", g, rng);
  const Matrix x = rand_matrix(64 * 13 * 13, batch, 12);
  Matrix y = conv.forward(x);
  const Matrix dy = rand_matrix(y.rows(), y.cols(), 13);
  for (auto _ : state) {
    Matrix dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2DBackward)->Arg(1)->Arg(4)->Arg(16);

void BM_Im2Col(benchmark::State& state) {
  mbd::Rng rng(14);
  const mbd::tensor::ConvGeom g{64, 27, 27, 96, 5, 5, 1, 2};
  const auto t = mbd::tensor::Tensor4::random_normal(1, 64, 27, 27, rng, 1.0f);
  for (auto _ : state) {
    Matrix cols = mbd::tensor::im2col(t, 0, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_GemmReference(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix a = rand_matrix(d, d, 7);
  const Matrix b = rand_matrix(d, d, 8);
  for (auto _ : state) {
    Matrix c = matmul_reference(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256);

}  // namespace
