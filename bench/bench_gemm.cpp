// Microbenchmarks of the three DNN-training gemm kernels (forward W·X,
// gradient ∆Y·Xᵀ, backward Wᵀ·∆Y) over the shapes the trainers actually
// emit, plus the im2col/conv substrate.
//
// Shape provenance: run any trainer with MBD_GEMM_LOG_SHAPES=1 to harvest
// the (variant, m, n, k) set from gemm.cpp's one-shot logger. The headline
// cases here are the full-size AlexNet FC layers (9216→4096→4096→1000 at
// batch 128/512, paper Table 1) and im2col-lowered conv shapes; the small
// cases keep granularity for quick regressions.
//
// Every case records {flop, bytes} counters that `--json <path>` turns into
// the committed BENCH_gemm.json baseline guarded by CI (docs/benchmarks.md).
#include <benchmark/benchmark.h>

#include "mbd/nn/layers.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/im2col.hpp"
#include "microbench_json.hpp"

namespace {

using namespace mbd::tensor;

Matrix rand_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  mbd::Rng rng(seed);
  return Matrix::random_normal(r, c, rng, 1.0f);
}

// m×k · k×n work/traffic counters: "GFLOP/s" for the console, plain "flop"
// and "bytes" per iteration for the JSON records.
void set_gemm_counters(benchmark::State& state, std::size_t m, std::size_t n,
                       std::size_t k) {
  const double flop = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                      static_cast<double>(k);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flop * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  state.counters["flop"] = benchmark::Counter(flop);
  state.counters["bytes"] = benchmark::Counter(
      4.0 * (static_cast<double>(m * k) + static_cast<double>(k * n) +
             2.0 * static_cast<double>(m * n)));
}

// Forward Y = W·X: args {m, k, n} = {d_out, d_in, B} for FC layers, or the
// im2col-lowered {C_out, C_in·KH·KW, H_out·W_out} for conv layers.
void BM_GemmNN(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const Matrix w = rand_matrix(m, k, 1);
  const Matrix x = rand_matrix(k, n, 2);
  Matrix y(m, n);
  for (auto _ : state) {
    gemm_nn(w, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_gemm_counters(state, m, n, k);
}
BENCHMARK(BM_GemmNN)
    ->Args({128, 128, 32})
    ->Args({512, 512, 64})
    // AlexNet FC forward: fc6 (9216→4096), fc7 (4096→4096), fc8 (4096→1000).
    ->Args({4096, 9216, 128})
    ->Args({4096, 4096, 128})
    ->Args({1000, 4096, 128})
    ->Args({4096, 4096, 512})
    // AlexNet conv1/conv2/conv3 lowered via im2col, one sample.
    ->Args({96, 363, 3025})
    ->Args({256, 2400, 729})
    ->Args({384, 2304, 169});

// Gradient ∆W = ∆Y·Xᵀ: args {m, n, k} = {d_out, d_in, B}.
void BM_GemmNT(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  const Matrix dy = rand_matrix(m, k, 3);
  const Matrix x = rand_matrix(n, k, 4);
  Matrix dw(m, n);
  for (auto _ : state) {
    gemm_nt(dy, x, dw);
    benchmark::DoNotOptimize(dw.data());
  }
  set_gemm_counters(state, m, n, k);
}
BENCHMARK(BM_GemmNT)
    ->Args({512, 512, 64})
    ->Args({4096, 9216, 128})
    ->Args({4096, 4096, 512});

// Backward ∆X = Wᵀ·∆Y: args {m, n, k} = {d_in, B, d_out}.
void BM_GemmTN(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  const Matrix w = rand_matrix(k, m, 5);
  const Matrix dy = rand_matrix(k, n, 6);
  Matrix dx(m, n);
  for (auto _ : state) {
    gemm_tn(w, dy, dx);
    benchmark::DoNotOptimize(dx.data());
  }
  set_gemm_counters(state, m, n, k);
}
BENCHMARK(BM_GemmTN)
    ->Args({512, 64, 512})
    ->Args({9216, 128, 4096})
    ->Args({4096, 512, 4096});

void BM_Conv2DForward(benchmark::State& state) {
  // One AlexNet-conv3-shaped layer (256 -> 384, 3x3 on 13x13) per sample.
  const auto batch = static_cast<std::size_t>(state.range(0));
  mbd::Rng rng(9);
  const mbd::tensor::ConvGeom g{64, 13, 13, 96, 3, 3, 1, 1};
  mbd::nn::Conv2D conv("c", g, rng);
  const Matrix x = rand_matrix(64 * 13 * 13, batch, 10);
  for (auto _ : state) {
    Matrix y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["images/s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2DForward)->Arg(1)->Arg(4)->Arg(16);

void BM_Conv2DBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  mbd::Rng rng(11);
  const mbd::tensor::ConvGeom g{64, 13, 13, 96, 3, 3, 1, 1};
  mbd::nn::Conv2D conv("c", g, rng);
  const Matrix x = rand_matrix(64 * 13 * 13, batch, 12);
  Matrix y = conv.forward(x);
  const Matrix dy = rand_matrix(y.rows(), y.cols(), 13);
  for (auto _ : state) {
    Matrix dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2DBackward)->Arg(1)->Arg(4)->Arg(16);

void BM_Im2Col(benchmark::State& state) {
  mbd::Rng rng(14);
  const mbd::tensor::ConvGeom g{64, 27, 27, 96, 5, 5, 1, 2};
  const auto t = mbd::tensor::Tensor4::random_normal(1, 64, 27, 27, rng, 1.0f);
  for (auto _ : state) {
    Matrix cols = mbd::tensor::im2col(t, 0, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_GemmReference(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix a = rand_matrix(d, d, 7);
  const Matrix b = rand_matrix(d, d, 8);
  for (auto _ : state) {
    Matrix c = matmul_reference(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, d, d, d);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  return mbd::bench::run_microbench(argc, argv, "bench_gemm");
}
