// Two-level network extension bench: how the flat Table 1 results shift on
// a machine with fast intra-node links (the topology effect the paper's
// Limitations defer to "adjusting α and β").
#include <iostream>

#include "common.hpp"
#include "mbd/costmodel/hierarchy.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_hierarchy");
  using namespace mbd;
  bench::print_table1_banner(
      "Extension — two-level (intra/inter node) network model");
  const auto net = bench::alexnet();
  const std::size_t batch = 2048, p = 512;
  const auto hm = costmodel::HierarchicalMachine::cori_like(/*node_size=*/8);

  std::cout << "Machine: 8 ranks/node, intra 0.2us & 60GB/s, inter 2us &"
               " 6GB/s (Table 1).\n\n";

  std::cout << "-- Fig. 7 grids at P = " << p << ", hierarchical vs flat --\n";
  TextTable t({"grid Pr x Pc", "T_comm flat", "T_comm hierarchical",
               "saving"});
  for (const auto& [pr, pc] : costmodel::grid_factorizations(p)) {
    if (pc > batch) continue;
    const auto flat = costmodel::integrated_cost(
        net, batch, pr, pc, hm.inter, costmodel::GridMode::BatchParallelConv);
    const auto hier = costmodel::integrated_cost_hierarchical(
        net, batch, pr, pc, hm, costmodel::GridMode::BatchParallelConv);
    t.row()
        .add(std::to_string(pr) + " x " + std::to_string(pc))
        .add(format_seconds(flat.comm()))
        .add(format_seconds(hier.comm()))
        .add_num(flat.comm() / hier.comm(), 2);
  }
  t.print(std::cout);
  std::cout << "  (grids whose frequent reductions fit inside nodes gain the"
               " most; the optimal grid can shift once topology is priced"
               " in — exactly the adjustment the paper's Limitations"
               " anticipate)\n\n";

  std::cout << "-- hierarchical all-reduce of one AlexNet gradient (62.4M"
               " words) vs flat --\n";
  TextTable t2({"P", "flat ring", "hierarchical (S=8)", "speedup"});
  const double words = 62.4e6;
  for (std::size_t pp : {64u, 256u, 1024u, 4096u}) {
    const auto flat = costmodel::allreduce_cost(hm.inter, pp, words);
    const auto hier = costmodel::hierarchical_allreduce_cost(hm, pp, words);
    t2.row()
        .add_int(static_cast<long long>(pp))
        .add(format_seconds(flat.total()))
        .add(format_seconds(hier.total()))
        .add_num(flat.total() / hier.total(), 2);
  }
  t2.print(std::cout);
  return 0;
}
