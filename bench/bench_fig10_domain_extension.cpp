// Fig. 10: extending the strong-scaling limit of pure batch parallelism with
// domain parallelism (Eq. 9). B = 512 fixed. At P = 512 each process has one
// image (the batch-parallel limit); beyond that, each image is split into
// s = P/512 parts over the Pr dimension, with conv layers domain-parallel
// and FC layers model-parallel — the paper's recommended assignment.
#include <iostream>

#include "common.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig10_domain_extension");
  using namespace mbd;
  using costmodel::LayerRole;
  bench::print_table1_banner(
      "Fig. 10 — scaling beyond the batch size with domain parallelism (Eq. 9)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 512;

  TextTable t({"P", "grid Pr x Pc", "image split", "conv roles", "T_comm",
               "T_comp", "T_total", "scaling vs P=512"});
  double base_total = 0.0;
  for (std::size_t p : {512u, 1024u, 2048u, 4096u}) {
    const std::size_t pc = batch;       // one image per batch group
    const std::size_t pr = p / pc;      // image split factor s
    auto roles = costmodel::choose_roles(net, batch, pr, pc, m);
    const auto cost =
        costmodel::full_integrated_cost(net, roles, batch, pr, pc, m);
    std::string role_str;
    for (std::size_t i = 0; i < roles.size(); ++i) {
      if (net[i].kind != nn::LayerKind::Conv) break;
      role_str += roles[i] == LayerRole::Domain ? 'D' : 'M';
    }
    if (base_total == 0.0) base_total = cost.total();
    t.row()
        .add_int(static_cast<long long>(p))
        .add(std::to_string(pr) + " x " + std::to_string(pc))
        .add(std::to_string(pr) + "-way")
        .add(role_str)
        .add(format_seconds(cost.comm()))
        .add(format_seconds(cost.compute))
        .add(format_seconds(cost.total()))
        .add_num(base_total / cost.total(), 2);
  }
  t.print(std::cout);
  std::cout << "  (conv roles: D = domain-parallel, M = model-parallel, in"
               " layer order conv1..conv5)\n\n";

  // Contrast: forcing MODEL parallelism on the conv layers instead (the
  // paper's "one could use the integrated approach and scale the model part"
  // — shown to be sub-optimal).
  std::cout << "-- contrast: all-model Pr dimension (sub-optimal per paper"
               " §2.4) --\n";
  TextTable t2({"P", "T_comm (domain roles)", "T_comm (all model)", "ratio"});
  for (std::size_t p : {1024u, 2048u, 4096u}) {
    const std::size_t pc = batch, pr = p / pc;
    const auto chosen = costmodel::full_integrated_cost(
        net, costmodel::choose_roles(net, batch, pr, pc, m), batch, pr, pc, m);
    const auto all_model = costmodel::full_integrated_cost(
        net, std::vector<LayerRole>(net.size(), LayerRole::Model), batch, pr,
        pc, m);
    t2.row()
        .add_int(static_cast<long long>(p))
        .add(format_seconds(chosen.comm()))
        .add(format_seconds(all_model.comm()))
        .add_num(all_model.comm() / chosen.comm(), 2);
  }
  t2.print(std::cout);
  std::cout << "  (shape check: domain roles for early conv layers cut the"
               " Pr-dimension communication; scaling continues past P = B)\n";
  return 0;
}
