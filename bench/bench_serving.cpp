// Serving throughput: dynamic batching vs. batch=1 dispatch.
//
// A 16-client closed loop drives the gateway over the 4-rank batch-parallel
// layout twice — once with the dispatcher pinned to batch 1 (every request
// pays a full collective forward) and once with startup-calibrated dynamic
// batching (queued requests coalesce, amortizing the per-forward collective
// latency and the GEMM's n-dimension inefficiency, the serving face of
// Fig. 4). Cases (docs/benchmarks.md):
//   serve_b1 p=4 / serve_dynamic p=4          ns = mean time per request
//   serve_b1_p99 p=4 / serve_dynamic_p99 p=4  ns = p99 request latency
// The committed BENCH_serving.json baseline gates regressions in CI, and
// scripts/check_serving.py bench asserts dynamic batching keeps its >= 2x
// throughput edge over batch=1.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/serve/gateway.hpp"

namespace {

using namespace mbd;
using Clock = std::chrono::steady_clock;

constexpr int kRanks = 4;
constexpr std::size_t kClients = 16;
constexpr std::size_t kRequestsPerClient = 16;
constexpr std::size_t kRequests = kClients * kRequestsPerClient;

struct ModeResult {
  double ns_per_request = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t batch = 0;
};

// An FC-heavy workload: at d = 256 the batch dimension decides GEMM
// efficiency, so batching has real compute leverage on top of the
// amortized collective latency.
ModeResult run_mode(const std::vector<nn::LayerSpec>& specs,
                    const nn::Dataset& data, std::size_t batch_size,
                    std::size_t max_batch) {
  obs::Metrics::instance().reset();

  serve::Gateway* gateway = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  ModeResult result;

  std::vector<std::thread> clients;
  std::thread driver([&] {
    {
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return gateway != nullptr; });
    }
    const auto start = Clock::now();
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
          const std::size_t col = (c * kRequestsPerClient + i) % data.size();
          const tensor::Matrix x = data.inputs.col_block(col, col + 1);
          (void)gateway->submit({x.span().begin(), x.span().end()}).get();
        }
      });
    }
    for (auto& t : clients) t.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.ns_per_request = wall * 1e9 / static_cast<double>(kRequests);
    result.batch = gateway->chosen_batch();
    gateway->shutdown();
  });

  comm::World world(kRanks);
  world.run([&](comm::Comm& c) {
    const parallel::TrainerEntry* entry = parallel::find_trainer("batch");
    serve::InferenceSession session(
        c, entry->layout(c, parallel::TrainerOptions{}, specs, /*batch=*/8));
    serve::GatewayOptions opts;
    opts.queue_capacity = kRequests;
    opts.batch_size = batch_size;
    opts.max_batch = max_batch;
    opts.calibration_reps = 2;
    serve::Gateway gw(session, c, opts);
    if (c.rank() == 0) {
      {
        const std::lock_guard lk(mu);
        gateway = &gw;
      }
      cv.notify_all();
    }
    gw.serve();
  });
  driver.join();

  for (const auto& m : obs::Metrics::instance().snapshot()) {
    if (m.name == "serve.latency_us") {
      result.p50_us = m.hist.p50();
      result.p99_us = m.hist.p99();
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::open_json_sink(argc, argv, "bench_serving");

  const auto specs = nn::mlp_spec({256, 512, 512, 10});
  const auto data = nn::make_synthetic_dataset(256, 10, 64, 7);

  const ModeResult b1 = run_mode(specs, data, /*batch_size=*/1,
                                 /*max_batch=*/1);
  const ModeResult dyn = run_mode(specs, data, /*batch_size=*/0,
                                  /*max_batch=*/32);

  std::printf("serving: %zu closed-loop clients, %zu requests, p=%d\n",
              kClients, kRequests, kRanks);
  std::printf("  %-14s batch=%-3zu %9.1f us/req  p50=%7.1f us  p99=%7.1f us\n",
              "batch=1", b1.batch, b1.ns_per_request / 1e3, b1.p50_us,
              b1.p99_us);
  std::printf("  %-14s batch=%-3zu %9.1f us/req  p50=%7.1f us  p99=%7.1f us\n",
              "dynamic", dyn.batch, dyn.ns_per_request / 1e3, dyn.p50_us,
              dyn.p99_us);
  std::printf("  throughput speedup: %.2fx\n",
              b1.ns_per_request / dyn.ns_per_request);

  bench::record_json("serve_b1 p=4", 0, b1.ns_per_request, 0);
  bench::record_json("serve_dynamic p=4", 0, dyn.ns_per_request, 0);
  bench::record_json("serve_b1_p99 p=4", 0, b1.p99_us * 1e3, 0);
  bench::record_json("serve_dynamic_p99 p=4", 0, dyn.p99_us * 1e3, 0);
  return 0;
}
