// Fig. 9: weak scaling — the mini-batch size grows with the process count
// (B/P fixed at 4 samples per process, matching the figure's (P, B) pairs).
// Same-grid-for-all-layers mode, as in the paper's Fig. 9 caption ("which is
// sub-optimal — a better approach is pure batch parallelism for the
// convolutional layers").
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig9_weak_scaling");
  using namespace mbd;
  bench::print_table1_banner(
      "Fig. 9 — weak scaling, variable mini-batch (Eq. 8, uniform grid)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  for (const auto [p, batch] :
       {std::pair{32u, 128u}, std::pair{64u, 256u}, std::pair{128u, 512u},
        std::pair{256u, 1024u}, std::pair{512u, 2048u}}) {
    std::cout << "-- subfigure: P = " << p << ", B = " << batch
              << " (per-iteration times) --\n";
    (void)bench::print_grid_sweep(net, batch, p, m,
                                  costmodel::GridMode::Uniform);
  }
  std::cout << "Shape check: the integrated approach's communication"
               " advantage persists as (P, B) scale together.\n";
  return 0;
}
