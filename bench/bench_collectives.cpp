// Microbenchmarks of the mbd::comm collective algorithms (google-benchmark).
//
// These measure the in-process runtime itself (thread ranks on one host);
// they back the design-choice ablations in DESIGN.md §5 — Bruck vs ring
// all-gather, ring vs recursive-doubling all-reduce — by wall time and by
// instrumented traffic (reported as counters).
#include <benchmark/benchmark.h>

#include <vector>

#include "mbd/comm/world.hpp"
#include "microbench_json.hpp"

namespace {

using namespace mbd;

void BM_AllReduceRing(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::Ring);
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].messages / state.iterations());
}
BENCHMARK(BM_AllReduceRing)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_AllReduceRecursiveDoubling(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::RecursiveDoubling);
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
}
BENCHMARK(BM_AllReduceRecursiveDoubling)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_AllReduceRabenseifner(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::Rabenseifner);
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].messages / state.iterations());
}
BENCHMARK(BM_AllReduceRabenseifner)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_AllGatherBruck(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      auto out = c.allgather(std::span<const float>(v),
                             comm::AllGatherAlgo::Bruck);
      benchmark::DoNotOptimize(out.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].messages / state.iterations());
}
BENCHMARK(BM_AllGatherBruck)
    ->Args({2, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({8, 1 << 16});

void BM_AllGatherRing(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      auto out =
          c.allgather(std::span<const float>(v), comm::AllGatherAlgo::Ring);
      benchmark::DoNotOptimize(out.data());
    });
  }
  const auto s = world.stats();
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].messages / state.iterations());
}
BENCHMARK(BM_AllGatherRing)
    ->Args({2, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({8, 1 << 16});

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  comm::World world(p);
  for (auto _ : state) {
    world.run([](comm::Comm& c) { c.barrier(); });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  return mbd::bench::run_microbench(argc, argv, "bench_collectives");
}
