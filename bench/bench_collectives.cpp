// Microbenchmarks of the mbd::comm collective algorithms (google-benchmark).
//
// These measure the in-process runtime itself (thread ranks on one host);
// they back the design-choice ablations in DESIGN.md §5 — Bruck vs ring
// all-gather, ring vs recursive-doubling all-reduce — by wall time and by
// instrumented traffic (reported as counters).
#include <benchmark/benchmark.h>

#include <vector>

#include "mbd/comm/world.hpp"
#include "microbench_json.hpp"

namespace {

using namespace mbd;

void BM_AllReduceRing(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::Ring);
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].messages / state.iterations());
}
BENCHMARK(BM_AllReduceRing)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_AllReduceRecursiveDoubling(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::RecursiveDoubling);
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
}
BENCHMARK(BM_AllReduceRecursiveDoubling)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_AllReduceRabenseifner(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      c.allreduce(std::span<float>(v), std::plus<float>{},
                  comm::AllReduceAlgo::Rabenseifner);
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].messages / state.iterations());
}
BENCHMARK(BM_AllReduceRabenseifner)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_AllGatherBruck(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      auto out = c.allgather(std::span<const float>(v),
                             comm::AllGatherAlgo::Bruck);
      benchmark::DoNotOptimize(out.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].messages / state.iterations());
}
BENCHMARK(BM_AllGatherBruck)
    ->Args({2, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({8, 1 << 16});

void BM_AllGatherRing(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      auto out =
          c.allgather(std::span<const float>(v), comm::AllGatherAlgo::Ring);
      benchmark::DoNotOptimize(out.data());
    });
  }
  const auto s = world.stats();
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].messages / state.iterations());
}
BENCHMARK(BM_AllGatherRing)
    ->Args({2, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({8, 1 << 16});

// Nonblocking entry points, driven the way the layer engine drives them.
// On this in-process fabric the message schedule is identical to the
// blocking ring, so these gate the handle machinery's overhead: state
// allocation, Post-only initiation, validator tokens, drain-order waits.

void BM_IAllReduceWait(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      auto h = c.iallreduce(std::span<float>(v));
      h.wait();
      benchmark::DoNotOptimize(v.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].messages / state.iterations());
}
BENCHMARK(BM_IAllReduceWait)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_IAllGatherWait(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<float> v(n, static_cast<float>(c.rank()));
      std::vector<float> out(n * static_cast<std::size_t>(c.size()));
      auto h = c.iallgather(std::span<const float>(v), std::span<float>(out));
      h.wait();
      benchmark::DoNotOptimize(out.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllGather].bytes / state.iterations());
}
BENCHMARK(BM_IAllGatherWait)
    ->Args({2, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({8, 1 << 16});

void BM_IAllReduceMultiDrain(benchmark::State& state) {
  // The GradReducer pattern: several reductions outstanding at once, drained
  // in initiation order. Stresses per-handle tag isolation and the mailbox
  // under interleaved schedules.
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  constexpr int kHandles = 4;
  comm::World world(p);
  for (auto _ : state) {
    world.run([n](comm::Comm& c) {
      std::vector<std::vector<float>> bufs(
          kHandles, std::vector<float>(n, static_cast<float>(c.rank())));
      std::vector<comm::CollectiveHandle> hs;
      hs.reserve(kHandles);
      for (auto& b : bufs) hs.push_back(c.iallreduce(std::span<float>(b)));
      for (auto& h : hs) h.wait();
      benchmark::DoNotOptimize(bufs.data());
    });
  }
  const auto s = world.stats();
  state.counters["bytes_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].bytes / state.iterations());
  state.counters["msgs_per_iter"] = static_cast<double>(
      s[comm::Coll::AllReduce].messages / state.iterations());
}
BENCHMARK(BM_IAllReduceMultiDrain)
    ->Args({2, 1 << 12})
    ->Args({4, 1 << 12})
    ->Args({4, 1 << 16});

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  comm::World world(p);
  for (auto _ : state) {
    world.run([](comm::Comm& c) { c.barrier(); });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  return mbd::bench::run_microbench(argc, argv, "bench_collectives");
}
