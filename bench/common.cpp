#include "common.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "mbd/obs/metrics.hpp"
#include "mbd/support/units.hpp"
#include "mbd/tensor/gemm.hpp"

namespace mbd::bench {

using costmodel::GridMode;
using costmodel::GridOption;
using costmodel::MachineModel;

void print_table1_banner(const std::string& experiment) {
  std::cout << "=== " << experiment << " ===\n"
            << "Fixed parameters (paper Table 1): AlexNet (61M params, 5 conv"
               " + 3 FC), ImageNet N=1,281,167,\n"
            << "Cori-KNL network: alpha=2us, 1/beta=6GB/s; compute curve"
               " digitized from Fig. 4.\n\n";
}

std::vector<nn::LayerSpec> alexnet() {
  return nn::weighted_layers(nn::alexnet_spec());
}

namespace {

// Global record sink: opened once per process by open_json_sink, flushed by
// std::atexit so every main stays a one-liner.
struct JsonSink {
  std::string path;
  std::string bench;
  std::vector<std::pair<std::string, std::array<double, 3>>> records;
  bool open = false;
};

JsonSink& sink() {
  static JsonSink s;
  return s;
}

void flush_sink() {
  JsonSink& s = sink();
  if (!s.open) return;
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write bench json to %s\n",
                 s.path.c_str());
    return;
  }
  // Metric records ride along after the timing records: counters/gauges from
  // the obs registry (GEMM shape inventory, ...) as {"case": "metric:<name>",
  // "value": ...} — deliberately without "ns", so regression tooling knows
  // they are not timings (scripts/check_bench_regression.py skips them).
  const auto metrics = obs::Metrics::instance().snapshot();
  std::fputs("[\n", f);
  const std::size_t total = s.records.size() + metrics.size();
  std::size_t emitted = 0;
  for (const auto& [name, v] : s.records) {
    ++emitted;
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"case\": \"%s\", \"bytes\": %.17g,"
                 " \"ns\": %.17g, \"gflops\": %.17g}%s\n",
                 s.bench.c_str(), name.c_str(), v[0], v[1], v[2],
                 emitted == total ? "" : ",");
  }
  for (const auto& m : metrics) {
    ++emitted;
    std::fprintf(f, "  {\"bench\": \"%s\", \"case\": \"metric:%s\","
                    " \"value\": %.17g}%s\n",
                 s.bench.c_str(), m.name.c_str(), m.value,
                 emitted == total ? "" : ",");
  }
  std::fputs("]\n", f);
  std::fclose(f);
}

}  // namespace

void open_json_sink(int& argc, char** argv, const std::string& bench_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: --json needs a path argument\n");
      std::exit(2);
    }
    JsonSink& s = sink();
    s.path = argv[i + 1];
    s.bench = bench_name;
    s.open = true;
    // Shape inventory for the record stream (one counter per distinct GEMM
    // shape the process issues), replacing the old stderr-only logger.
    tensor::set_gemm_shape_metrics(true);
    // Strip the two arguments so later flag parsers never see them.
    for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    std::atexit(flush_sink);
    return;
  }
}

void record_json(const std::string& case_name, double bytes, double ns,
                 double gflops) {
  JsonSink& s = sink();
  if (!s.open) return;
  s.records.emplace_back(case_name, std::array<double, 3>{bytes, ns, gflops});
}

GridOption print_grid_sweep(const std::vector<nn::LayerSpec>& net,
                            std::size_t batch, std::size_t p,
                            const MachineModel& m, GridMode mode,
                            bool overlap) {
  const auto options = costmodel::enumerate_integrated_grids(
      net, batch, p, m, mode, {}, overlap);
  // Recover the pure batch baseline for the speedup annotation.
  const GridOption* pure = nullptr;
  for (const auto& o : options)
    if (o.pr == 1) pure = &o;

  TextTable t({"grid Pr x Pc", "T_allgather", "T_ardx", "T_ardw(batch)",
               "T_comm", "T_comp", "T_total", overlap ? "T_overlap" : ""});
  // Sort rows by pr for a stable, figure-like ordering.
  auto rows = options;
  std::sort(rows.begin(), rows.end(),
            [](const GridOption& a, const GridOption& b) { return a.pr < b.pr; });
  for (const auto& o : rows) {
    t.row()
        .add(std::to_string(o.pr) + " x " + std::to_string(o.pc))
        .add(format_seconds(o.cost.ag_forward().total()))
        .add(format_seconds(o.cost.ar_dx().total()))
        .add(format_seconds(o.cost.ar_dw().total()))
        .add(format_seconds(o.cost.comm()))
        .add(format_seconds(o.cost.compute))
        .add(format_seconds(o.cost.total()))
        .add(overlap ? format_seconds(o.cost.total_overlapped()) : "");
  }
  t.print(std::cout);

  const GridOption& best = options.front();
  if (pure != nullptr && pure->pr != best.pr) {
    const double total_speedup =
        (overlap ? pure->cost.total_overlapped() : pure->cost.total()) /
        (overlap ? best.cost.total_overlapped() : best.cost.total());
    const double comm_speedup = pure->cost.comm() / best.cost.comm();
    std::cout << "  best grid " << best.pr << "x" << best.pc << ": "
              << format_double(total_speedup, 1) << "x total ("
              << format_double(comm_speedup, 1)
              << "x communication) vs pure batch parallel\n";
  } else {
    std::cout << "  best grid " << best.pr << "x" << best.pc
              << " (pure batch parallel is optimal here)\n";
  }
  std::cout << '\n';
  // Model-predicted best-grid time as a machine-readable record, so table
  // harnesses also accrue a trajectory under --json (docs/benchmarks.md).
  record_json("P" + std::to_string(p) + "/B" + std::to_string(batch) +
                  "/grid" + std::to_string(best.pr) + "x" +
                  std::to_string(best.pc),
              0.0,
              (overlap ? best.cost.total_overlapped() : best.cost.total()) *
                  1e9,
              0.0);
  return best;
}

}  // namespace mbd::bench
