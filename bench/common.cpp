#include "common.hpp"

#include <algorithm>

#include "mbd/support/units.hpp"

namespace mbd::bench {

using costmodel::GridMode;
using costmodel::GridOption;
using costmodel::MachineModel;

void print_table1_banner(const std::string& experiment) {
  std::cout << "=== " << experiment << " ===\n"
            << "Fixed parameters (paper Table 1): AlexNet (61M params, 5 conv"
               " + 3 FC), ImageNet N=1,281,167,\n"
            << "Cori-KNL network: alpha=2us, 1/beta=6GB/s; compute curve"
               " digitized from Fig. 4.\n\n";
}

std::vector<nn::LayerSpec> alexnet() {
  return nn::weighted_layers(nn::alexnet_spec());
}

GridOption print_grid_sweep(const std::vector<nn::LayerSpec>& net,
                            std::size_t batch, std::size_t p,
                            const MachineModel& m, GridMode mode,
                            bool overlap) {
  const auto options = costmodel::enumerate_integrated_grids(
      net, batch, p, m, mode, {}, overlap);
  // Recover the pure batch baseline for the speedup annotation.
  const GridOption* pure = nullptr;
  for (const auto& o : options)
    if (o.pr == 1) pure = &o;

  TextTable t({"grid Pr x Pc", "T_allgather", "T_ardx", "T_ardw(batch)",
               "T_comm", "T_comp", "T_total", overlap ? "T_overlap" : ""});
  // Sort rows by pr for a stable, figure-like ordering.
  auto rows = options;
  std::sort(rows.begin(), rows.end(),
            [](const GridOption& a, const GridOption& b) { return a.pr < b.pr; });
  for (const auto& o : rows) {
    t.row()
        .add(std::to_string(o.pr) + " x " + std::to_string(o.pc))
        .add(format_seconds(o.cost.ag_forward().total()))
        .add(format_seconds(o.cost.ar_dx().total()))
        .add(format_seconds(o.cost.ar_dw().total()))
        .add(format_seconds(o.cost.comm()))
        .add(format_seconds(o.cost.compute))
        .add(format_seconds(o.cost.total()))
        .add(overlap ? format_seconds(o.cost.total_overlapped()) : "");
  }
  t.print(std::cout);

  const GridOption& best = options.front();
  if (pure != nullptr && pure->pr != best.pr) {
    const double total_speedup =
        (overlap ? pure->cost.total_overlapped() : pure->cost.total()) /
        (overlap ? best.cost.total_overlapped() : best.cost.total());
    const double comm_speedup = pure->cost.comm() / best.cost.comm();
    std::cout << "  best grid " << best.pr << "x" << best.pc << ": "
              << format_double(total_speedup, 1) << "x total ("
              << format_double(comm_speedup, 1)
              << "x communication) vs pure batch parallel\n";
  } else {
    std::cout << "  best grid " << best.pr << "x" << best.pc
              << " (pure batch parallel is optimal here)\n";
  }
  std::cout << '\n';
  return best;
}

}  // namespace mbd::bench
