// Fig. 6: strong scaling of the integrated model+batch parallel approach
// with the SAME process grid used for every layer (so Pr > 1 applies model
// parallelism to convolutional layers too — the "naive" mode).
//
// B = 2048 fixed; P = 8 ... 512; every Pr×Pc factorization simulated with
// Eq. 8 plus the Fig. 4 compute curve. The paper's headline for this figure:
// at P = 512 the best grid (16×32) gives 2.1× total / 5.0× communication
// speedup over pure batch parallelism, while at P = 8 the integrated
// approach does not help (compute-bound).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_fig6_strong_scaling");
  using namespace mbd;
  bench::print_table1_banner(
      "Fig. 6 — strong scaling, same grid for all layers (Eq. 8)");
  const auto net = bench::alexnet();
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t batch = 2048;
  for (std::size_t p : {8u, 64u, 256u, 512u}) {
    std::cout << "-- subfigure: P = " << p << ", B = " << batch
              << " (per-iteration times) --\n";
    (void)bench::print_grid_sweep(net, batch, p, m,
                                  costmodel::GridMode::Uniform);
  }
  std::cout << "Paper reference points: P=512 best grid 16x32, 2.1x total,"
               " 5.0x communication; P=8 shows no benefit (compute-bound).\n";
  return 0;
}
