// Validation bench (not a paper figure): runs every distributed trainer on
// in-process ranks and compares the INSTRUMENTED per-iteration communication
// volume against the closed-form predictions derived from the paper's
// formulas. This certifies Eqs. 3, 4, 7, 8 bandwidth terms against executed
// collectives — something the paper (analysis-only) did not do.
#include <functional>
#include <iostream>

#include "common.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/validation.hpp"
#include "mbd/support/units.hpp"

namespace {

using namespace mbd;
using parallel::GridShape;
using parallel::TrafficPrediction;

TrafficPrediction measure(int p,
                          const std::function<void(comm::Comm&, std::size_t)>& fn) {
  auto run = [&](std::size_t iters) {
    comm::World world(p);
    world.run([&](comm::Comm& c) { fn(c, iters); });
    return world.stats();
  };
  const auto s1 = run(1);
  const auto s3 = run(3);
  TrafficPrediction t;
  t.allreduce_bytes =
      (s3[comm::Coll::AllReduce].bytes - s1[comm::Coll::AllReduce].bytes) / 2;
  t.allgather_bytes =
      (s3[comm::Coll::AllGather].bytes - s1[comm::Coll::AllGather].bytes) / 2;
  t.p2p_bytes =
      (s3[comm::Coll::PointToPoint].bytes - s1[comm::Coll::PointToPoint].bytes) / 2;
  return t;
}

void report(TextTable& t, const std::string& name,
            const TrafficPrediction& measured,
            const TrafficPrediction& predicted) {
  auto row = [&](const char* what, std::uint64_t meas, std::uint64_t pred) {
    t.row()
        .add(name)
        .add(what)
        .add(format_bytes(static_cast<double>(meas)))
        .add(format_bytes(static_cast<double>(pred)))
        .add(meas == pred ? "EXACT" : "MISMATCH");
  };
  row("allreduce", measured.allreduce_bytes, predicted.allreduce_bytes);
  row("allgather", measured.allgather_bytes, predicted.allgather_bytes);
  row("halo(p2p)", measured.p2p_bytes, predicted.p2p_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  mbd::bench::open_json_sink(argc, argv, "bench_validation_volume");
  bench::print_table1_banner(
      "Validation — measured vs predicted communication volume per iteration");
  std::cout << "Executable trainers on thread ranks (small networks);"
               " per-iteration byte deltas, totals over all ranks.\n\n";

  const auto mlp = nn::mlp_spec({10, 24, 12, 12});
  const auto mlp_data = nn::make_synthetic_dataset(10, 12, 48, 1);
  std::vector<nn::LayerSpec> cnn;
  cnn.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  cnn.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  cnn.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  cnn.push_back(nn::fc_spec("fc2", 16, 8, false));
  const auto cnn_data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 32, 2);

  nn::TrainConfig cfg;
  cfg.batch = 16;
  cfg.lr = 0.01f;

  TextTable t({"trainer", "traffic", "measured", "predicted", "verdict"});

  {
    const int p = 4;
    const auto meas = measure(p, [&](comm::Comm& c, std::size_t it) {
      auto c2 = cfg;
      c2.iterations = it;
      (void)parallel::train_batch_parallel(c, mlp, mlp_data, c2);
    });
    report(t, "batch (Eq.4) P=4", meas, parallel::predict_batch_parallel(mlp, p));
  }
  {
    const int p = 6;
    const auto meas = measure(p, [&](comm::Comm& c, std::size_t it) {
      auto c2 = cfg;
      c2.iterations = it;
      (void)parallel::train_model_parallel(c, mlp, mlp_data, c2);
    });
    report(t, "model (Eq.3) P=6", meas,
           parallel::predict_model_parallel(mlp, cfg.batch, p));
  }
  {
    const GridShape grid{3, 4};
    const auto meas = measure(12, [&](comm::Comm& c, std::size_t it) {
      auto c2 = cfg;
      c2.iterations = it;
      (void)parallel::train_integrated_15d(c, grid, mlp, mlp_data, c2);
    });
    report(t, "1.5D (Eq.8) 3x4", meas,
           parallel::predict_integrated_15d(mlp, cfg.batch, grid));
  }
  {
    const int p = 4;
    nn::TrainConfig c8 = cfg;
    c8.batch = 8;
    const auto meas = measure(p, [&](comm::Comm& c, std::size_t it) {
      auto c2 = c8;
      c2.iterations = it;
      (void)parallel::train_domain_parallel(c, cnn, cnn_data, c2);
    });
    report(t, "domain (Eq.7) P=4", meas,
           parallel::predict_domain_parallel(cnn, c8.batch, p));
  }
  {
    const GridShape grid{2, 4};
    nn::TrainConfig c8 = cfg;
    c8.batch = 8;
    const auto meas = measure(8, [&](comm::Comm& c, std::size_t it) {
      auto c2 = c8;
      c2.iterations = it;
      (void)parallel::train_hybrid(c, grid, cnn, cnn_data, c2);
    });
    report(t, "hybrid (Eq.9) 2x4", meas,
           parallel::predict_hybrid(cnn, c8.batch, grid));
  }

  {
    // Mixed grid (Fig. 7 executable): conv batch-parallel + Eq. 6
    // redistribution + 1.5D FC. Uses the pooled CNN since pooling is
    // allowed in the batch-parallel conv phase.
    const auto pooled = nn::small_cnn_spec(2, 8, 8);
    const auto pooled_data = nn::make_synthetic_dataset(2 * 8 * 8, 8, 32, 3);
    const GridShape grid{2, 4};
    nn::TrainConfig c8 = cfg;
    c8.batch = 8;
    const auto meas = measure(8, [&](comm::Comm& c, std::size_t it) {
      auto c2 = c8;
      c2.iterations = it;
      (void)parallel::train_mixed_grid(c, grid, pooled, pooled_data, c2);
    });
    report(t, "mixed (Fig.7 exec) 2x4", meas,
           parallel::predict_mixed_grid(pooled, c8.batch, grid));
  }

  t.print(std::cout);
  std::cout << "\nEvery row must read EXACT: the cost model's bandwidth terms"
               " are exact word counts of the executed collectives.\n";
  return 0;
}
