// AlexNet parallelization planner — the paper's "automatic selection of the
// best configuration" (§2.3) as a command-line tool.
//
//   $ ./alexnet_planner --procs 512 --batch 2048
//   $ ./alexnet_planner --procs 4096 --batch 512       # beyond P = B
//   $ ./alexnet_planner --procs 512 --batch 2048 --mode uniform --overlap
//
// Given P processes and a mini-batch B on the Cori-KNL machine model, ranks
// every Pr×Pc grid by Eq. 8 (or the full Eq. 9 plan with per-layer
// model/domain roles when P > B), and prints predicted iteration and epoch
// times.
#include <iostream>

#include "mbd/costmodel/optimizer.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/support/cli.hpp"
#include "mbd/support/table.hpp"
#include "mbd/support/units.hpp"

int main(int argc, char** argv) {
  using namespace mbd;
  ArgParser args(
      "Plan the best integrated model/batch/domain parallelization of "
      "AlexNet training (paper Eqs. 8-9, Table 1 machine model).");
  args.add_int("procs", 512, "number of processes P");
  args.add_int("batch", 2048, "global mini-batch size B");
  args.add_string("mode", "fc-only",
                  "grid mode: 'uniform' (Fig. 6) or 'fc-only' (Fig. 7)");
  args.add_bool("overlap", false,
                "rank by the Fig. 8 overlapped total instead");
  args.add_int("top", 5, "how many grid candidates to print");
  if (!args.parse(argc, argv)) return 0;

  const auto p = static_cast<std::size_t>(args.get_int("procs"));
  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  const bool overlap = args.get_bool("overlap");
  const auto mode = args.get_string("mode") == "uniform"
                        ? costmodel::GridMode::Uniform
                        : costmodel::GridMode::BatchParallelConv;

  const auto net = nn::weighted_layers(nn::alexnet_spec());
  const auto m = costmodel::MachineModel::cori_knl();
  const std::size_t iters =
      costmodel::iterations_per_epoch(nn::kImageNetTrainImages, batch);

  std::cout << "AlexNet planner: P=" << p << ", B=" << batch << ", "
            << iters << " iterations/epoch, mode="
            << args.get_string("mode") << (overlap ? ", overlapped" : "")
            << "\n\n";

  if (p <= batch) {
    const auto options = costmodel::enumerate_integrated_grids(
        net, batch, p, m, mode, {}, overlap);
    TextTable t({"rank", "grid Pr x Pc", "T_comm/iter", "T_comp/iter",
                 "T_total/iter", "epoch"});
    const auto top = static_cast<std::size_t>(args.get_int("top"));
    for (std::size_t i = 0; i < std::min(top, options.size()); ++i) {
      const auto& o = options[i];
      const double iter_t =
          overlap ? o.cost.total_overlapped() : o.cost.total();
      t.row()
          .add_int(static_cast<long long>(i + 1))
          .add(std::to_string(o.pr) + " x " + std::to_string(o.pc))
          .add(format_seconds(o.cost.comm()))
          .add(format_seconds(o.cost.compute))
          .add(format_seconds(iter_t))
          .add(format_seconds(iter_t * static_cast<double>(iters)));
    }
    t.print(std::cout);
    const auto& best = options.front();
    const auto& worst = options.back();
    std::cout << "\nRecommended grid: Pr=" << best.pr << ", Pc=" << best.pc
              << " (" << format_double(worst.cost.total() / best.cost.total(), 1)
              << "x better than the worst feasible grid)\n";
  } else {
    std::cout << "P > B: pure batch parallelism cannot use all processes —"
                 " engaging domain/model parallelism (Eq. 9).\n\n";
    const auto plan = costmodel::best_full_plan(net, batch, p, m);
    TextTable t({"layer", "role of Pr dimension"});
    for (std::size_t i = 0; i < net.size(); ++i) {
      t.row().add(net[i].name).add(
          plan.roles[i] == costmodel::LayerRole::Domain
              ? "domain (height slabs + halo)"
              : "model (row-partitioned W)");
    }
    t.print(std::cout);
    std::cout << "\nPlan: Pr=" << plan.pr << " x Pc=" << plan.pc
              << "; per-iteration comm " << format_seconds(plan.cost.comm())
              << ", compute " << format_seconds(plan.cost.compute)
              << ", total " << format_seconds(plan.cost.total()) << "; epoch "
              << format_seconds(plan.cost.total() * static_cast<double>(iters))
              << "\n";
  }
  return 0;
}
