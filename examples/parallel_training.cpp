// Train one CNN under every parallel strategy the paper analyzes —
// sequential, batch (Fig. 2), domain (Fig. 3), and the fully integrated
// hybrid (Eq. 9) — and show they follow the same loss trajectory while
// moving very different amounts of data.
//
//   $ ./parallel_training [--iterations 12] [--procs 4]
#include <iostream>
#include <mutex>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/support/cli.hpp"
#include "mbd/support/table.hpp"
#include "mbd/support/units.hpp"

namespace {

using namespace mbd;

struct Run {
  std::vector<double> losses;
  comm::StatsSnapshot stats;
};

template <typename Fn>
Run run_strategy(int p, Fn fn) {
  comm::World world(p);
  Run run;
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    auto r = fn(c);
    if (c.rank() == 0) {
      std::lock_guard lock(mu);
      run.losses = std::move(r.losses);
    }
  });
  run.stats = world.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Train one CNN under every parallel strategy.");
  args.add_int("iterations", 12, "SGD iterations");
  args.add_int("procs", 4, "process count (must divide image height 8)");
  if (!args.parse(argc, argv)) return 0;
  const int p = static_cast<int>(args.get_int("procs"));

  // Stride-1 same-pad CNN + FC tail — the structure the domain-parallel
  // decomposition (Fig. 3) addresses.
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 3, 8, 8, 8, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 8, 8, 8, 8, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 8 * 8 * 8, 32));
  specs.push_back(nn::fc_spec("fc2", 32, 8, /*relu=*/false));
  nn::check_chain(specs);

  const auto data = nn::make_synthetic_dataset(3 * 8 * 8, 8, 128, /*seed=*/7);
  nn::TrainConfig cfg;
  cfg.batch = 16;
  cfg.lr = 0.02f;
  cfg.iterations = static_cast<std::size_t>(args.get_int("iterations"));

  // Sequential reference.
  nn::Network net = nn::build_network(specs, {.seed = 42});
  const auto seq = nn::train_sgd(net, data, cfg);

  const auto batch = run_strategy(p, [&](comm::Comm& c) {
    return parallel::train_batch_parallel(c, specs, data, cfg);
  });
  const auto domain = run_strategy(p, [&](comm::Comm& c) {
    return parallel::train_domain_parallel(c, specs, data, cfg);
  });
  const auto hybrid = run_strategy(p, [&](comm::Comm& c) {
    return parallel::train_hybrid(c, {2, p / 2}, specs, data, cfg);
  });
  const auto mixed = run_strategy(p, [&](comm::Comm& c) {
    return parallel::train_mixed_grid(c, {2, p / 2}, specs, data, cfg);
  });

  std::cout << "Loss trajectories (P=" << p << ", B=" << cfg.batch << "):\n";
  TextTable t({"iter", "sequential", "batch", "domain",
               "hybrid 2x" + std::to_string(p / 2),
               "mixed 2x" + std::to_string(p / 2)});
  for (std::size_t i = 0; i < seq.size(); ++i) {
    t.row()
        .add_int(static_cast<long long>(i))
        .add_num(seq[i], 6)
        .add_num(batch.losses[i], 6)
        .add_num(domain.losses[i], 6)
        .add_num(hybrid.losses[i], 6)
        .add_num(mixed.losses[i], 6);
  }
  t.print(std::cout);

  std::cout << "\nCommunication per strategy (total over "
            << cfg.iterations << " iterations, all ranks):\n";
  TextTable s({"strategy", "allreduce", "allgather", "halo (p2p)"});
  auto add = [&](const char* name, const comm::StatsSnapshot& st) {
    s.row()
        .add(name)
        .add(format_bytes(static_cast<double>(st[comm::Coll::AllReduce].bytes)))
        .add(format_bytes(static_cast<double>(st[comm::Coll::AllGather].bytes)))
        .add(format_bytes(
            static_cast<double>(st[comm::Coll::PointToPoint].bytes)));
  };
  add("batch (Fig. 2)", batch.stats);
  add("domain (Fig. 3)", domain.stats);
  add("hybrid (Eq. 9)", hybrid.stats);
  add("mixed (Fig. 7)", mixed.stats);
  s.print(std::cout);

  std::cout << "\nSame synchronous-SGD trajectory, different data movement —"
               " the trade the paper's cost model optimizes.\n";
  return 0;
}
