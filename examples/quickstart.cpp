// Quickstart: train a small MLP with the paper's 1.5D integrated
// model+batch parallel algorithm on a 2×2 in-process process grid, and check
// it matches plain sequential SGD.
//
//   $ ./quickstart
//
// Walks through the full public API surface: specs -> dataset -> sequential
// baseline -> distributed run on a World -> comparison.
#include <iostream>
#include <mutex>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/support/table.hpp"

int main() {
  using namespace mbd;

  // 1. Describe the network: a 3-layer MLP (matrix form Y = W·X throughout).
  const auto specs = nn::mlp_spec({32, 64, 32, 8});

  // 2. Synthetic classification data: 8 Gaussian clusters in 32 dimensions.
  const auto data = nn::make_synthetic_dataset(/*dim=*/32, /*classes=*/8,
                                               /*n=*/256, /*seed=*/1);

  nn::TrainConfig cfg;
  cfg.batch = 32;
  cfg.lr = 0.05f;
  cfg.iterations = 20;

  // 3. Sequential reference.
  nn::Network net = nn::build_network(specs, {.seed = 42});
  const auto seq_losses = nn::train_sgd(net, data, cfg);

  // 4. The same training on a 2×2 process grid: weights split 2 ways
  //    (model parallel, Pr), batch split 2 ways (batch parallel, Pc).
  comm::World world(4);
  std::vector<double> dist_losses;
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    auto result =
        parallel::train_integrated_15d(c, {.pr = 2, .pc = 2}, specs, data, cfg);
    if (c.rank() == 0) {
      std::lock_guard lock(mu);
      dist_losses = std::move(result.losses);
    }
  });

  // 5. Compare.
  TextTable t({"iteration", "sequential loss", "1.5D (2x2 grid) loss"});
  for (std::size_t i = 0; i < seq_losses.size(); i += 4) {
    t.row()
        .add_int(static_cast<long long>(i))
        .add_num(seq_losses[i], 6)
        .add_num(dist_losses[i], 6);
  }
  t.print(std::cout);

  const auto stats = world.stats();
  std::cout << "\nCommunication for " << cfg.iterations << " iterations: "
            << stats[comm::Coll::AllGather].bytes << " B all-gather (forward Y), "
            << stats[comm::Coll::AllReduce].bytes
            << " B all-reduce (backprop dX + dW)\n"
            << "Synchronous SGD: the distributed trajectory tracks the"
               " sequential one to float precision.\n";
  return 0;
}
