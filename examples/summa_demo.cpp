// §4 hands-on: run the forward multiply Y = W·X three ways — locally, with
// the paper's 1.5D distribution, and with 2D stationary-C SUMMA — and
// compare what each moves. The 1.5D run communicates only the Y panels
// (the smaller side); SUMMA moves both operands.
//
//   $ ./summa_demo [--d 128] [--batch 64] [--pr 2] [--pc 4]
#include <iostream>
#include <mutex>

#include "mbd/comm/world.hpp"
#include "mbd/parallel/summa.hpp"
#include "mbd/support/cli.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/support/table.hpp"
#include "mbd/support/units.hpp"
#include "mbd/tensor/gemm.hpp"

int main(int argc, char** argv) {
  using namespace mbd;
  ArgParser args("Compare 1.5D vs 2D SUMMA data movement for Y = W·X.");
  args.add_int("d", 128, "square W dimension");
  args.add_int("batch", 64, "columns of X");
  args.add_int("pr", 2, "grid rows");
  args.add_int("pc", 4, "grid columns");
  if (!args.parse(argc, argv)) return 0;
  const auto d = static_cast<std::size_t>(args.get_int("d"));
  const auto b = static_cast<std::size_t>(args.get_int("batch"));
  const parallel::GridShape grid{static_cast<int>(args.get_int("pr")),
                                 static_cast<int>(args.get_int("pc"))};
  const int p = grid.pr * grid.pc;

  Rng rng(1);
  const tensor::Matrix w = tensor::Matrix::random_normal(d, d, rng, 0.5f);
  const tensor::Matrix x = tensor::Matrix::random_normal(d, b, rng, 0.5f);
  const tensor::Matrix expect = tensor::matmul(w, x);

  // --- 1.5D: W row-split over Pr, X column-split over Pc; one all-gather
  //     of the Y row blocks per model group --------------------------------
  comm::World world_15d(p);
  float err_15d = 0.0f;
  std::mutex mu;
  world_15d.run([&](comm::Comm& c) {
    const int row = c.rank() / grid.pc;
    const int col = c.rank() % grid.pc;
    comm::Comm model_group = c.split(col, row);
    const auto rows = parallel::block_range(d, grid.pr, row);
    const auto cols = parallel::block_range(b, grid.pc, col);
    const tensor::Matrix w_block = w.row_block(rows.lo, rows.hi);
    const tensor::Matrix x_block = x.col_block(cols.lo, cols.hi);
    const tensor::Matrix y_local = tensor::matmul(w_block, x_block);
    auto gathered = model_group.allgatherv(y_local.span());
    const tensor::Matrix y =
        tensor::Matrix::from_data(d, cols.size(), std::move(gathered));
    const tensor::Matrix ref = expect.col_block(cols.lo, cols.hi);
    std::lock_guard lock(mu);
    err_15d = std::max(err_15d, tensor::max_abs_diff(y, ref));
  });

  // --- 2D SUMMA (stationary-C) ---------------------------------------------
  comm::World world_2d(p);
  float err_2d = 0.0f;
  world_2d.run([&](comm::Comm& c) {
    const int row = c.rank() / grid.pc;
    const int col = c.rank() % grid.pc;
    const parallel::SummaShape shape{d, d, b};
    const auto ai = parallel::summa_block(d, d, grid, row, col);
    const auto bi = parallel::summa_block(d, b, grid, row, col);
    const tensor::Matrix a_block =
        w.row_block(ai.rows.lo, ai.rows.hi).col_block(ai.cols.lo, ai.cols.hi);
    const tensor::Matrix b_block =
        x.row_block(bi.rows.lo, bi.rows.hi).col_block(bi.cols.lo, bi.cols.hi);
    const tensor::Matrix y_block =
        parallel::summa_stationary_c(c, grid, shape, a_block, b_block);
    const auto ci = parallel::summa_block(d, b, grid, row, col);
    const tensor::Matrix ref = expect.row_block(ci.rows.lo, ci.rows.hi)
                                   .col_block(ci.cols.lo, ci.cols.hi);
    std::lock_guard lock(mu);
    err_2d = std::max(err_2d, tensor::max_abs_diff(y_block, ref));
  });

  TextTable t({"algorithm", "max |err|", "allgather", "broadcast",
               "total moved"});
  const auto s15 = world_15d.stats();
  const auto s2d = world_2d.stats();
  auto total = [](const comm::StatsSnapshot& s) {
    return static_cast<double>(s.total_bytes());
  };
  t.row()
      .add("1.5D (paper)")
      .add_num(err_15d, 5)
      .add(format_bytes(static_cast<double>(s15[comm::Coll::AllGather].bytes)))
      .add(format_bytes(static_cast<double>(s15[comm::Coll::Broadcast].bytes)))
      .add(format_bytes(total(s15)));
  t.row()
      .add("2D SUMMA stat-C")
      .add_num(err_2d, 5)
      .add(format_bytes(static_cast<double>(s2d[comm::Coll::AllGather].bytes)))
      .add(format_bytes(static_cast<double>(s2d[comm::Coll::Broadcast].bytes)))
      .add(format_bytes(total(s2d)));
  t.print(std::cout);
  std::cout << "\nY = W·X with W " << d << "x" << d << ", X " << d << "x" << b
            << " on a " << grid.pr << "x" << grid.pc << " grid.\n"
            << "(1.5D's all-gather includes the small communicator-split"
               " setup; SUMMA moves both W and X panels — §4's point.)\n";
  return 0;
}
