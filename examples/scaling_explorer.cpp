// Scaling explorer: sweep the cost model over process counts and emit a
// CSV (stdout) of the best pure-batch / integrated / fully-integrated times
// per iteration — the raw series behind Figs. 6, 7 and 10, ready to plot.
//
//   $ ./scaling_explorer --batch 2048 --pmin 8 --pmax 1024 > scaling.csv
//   $ ./scaling_explorer --batch 512 --pmax 8192 --epoch
#include <iostream>

#include "mbd/costmodel/optimizer.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/support/cli.hpp"
#include "mbd/support/table.hpp"

int main(int argc, char** argv) {
  using namespace mbd;
  ArgParser args(
      "Emit CSV of per-iteration (or per-epoch) times vs process count for "
      "pure batch, integrated 1.5D (fc-only grids), and the full Eq. 9 plan.");
  args.add_int("batch", 2048, "global mini-batch size B");
  args.add_int("pmin", 8, "smallest process count (doubled up to pmax)");
  args.add_int("pmax", 1024, "largest process count");
  args.add_bool("epoch", false, "report epoch times instead of per-iteration");
  if (!args.parse(argc, argv)) return 0;

  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  const bool epoch = args.get_bool("epoch");
  const auto net = nn::weighted_layers(nn::alexnet_spec());
  const auto m = costmodel::MachineModel::cori_knl();
  const double iters = static_cast<double>(
      costmodel::iterations_per_epoch(nn::kImageNetTrainImages, batch));
  const double scale = epoch ? iters : 1.0;

  TextTable csv({"P", "pure_batch_s", "integrated_15d_s", "best_grid",
                 "full_plan_s", "plan_grid"});
  for (std::size_t p = static_cast<std::size_t>(args.get_int("pmin"));
       p <= static_cast<std::size_t>(args.get_int("pmax")); p *= 2) {
    std::string pure_s = "infeasible";
    if (p <= batch) {
      const auto pure = costmodel::integrated_cost(
          net, batch, 1, p, m, costmodel::GridMode::BatchParallelConv);
      pure_s = format_double(pure.total() * scale, 6);
    }
    std::string grid_s = "infeasible", grid_name;
    if (p <= batch) {
      const auto best = costmodel::best_integrated_grid(
          net, batch, p, m, costmodel::GridMode::BatchParallelConv);
      grid_s = format_double(best.cost.total() * scale, 6);
      grid_name = std::to_string(best.pr) + "x" + std::to_string(best.pc);
    }
    const auto plan = costmodel::best_full_plan(net, batch, p, m);
    csv.row()
        .add(std::to_string(p))
        .add(pure_s)
        .add(grid_s)
        .add(grid_name)
        .add(format_double(plan.cost.total() * scale, 6))
        .add(std::to_string(plan.pr) + "x" + std::to_string(plan.pc));
  }
  csv.print_csv(std::cout);
  return 0;
}
