// A realistic training workflow on the public API: distributed training with
// momentum and a step-decay schedule, mid-run checkpointing, resuming from
// the checkpoint, and accuracy evaluation on held-out data.
//
//   $ ./checkpoint_training [--iterations 40] [--procs 4]
#include <cstdio>
#include <iostream>
#include <mutex>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/serialize.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/support/cli.hpp"
#include "mbd/support/table.hpp"

int main(int argc, char** argv) {
  using namespace mbd;
  ArgParser args("Train, checkpoint, resume, evaluate.");
  args.add_int("iterations", 40, "SGD iterations per phase");
  args.add_int("procs", 4, "batch-parallel process count");
  args.add_string("checkpoint", "/tmp/mbd_example_ckpt.bin",
                  "checkpoint path");
  if (!args.parse(argc, argv)) return 0;

  const auto specs = nn::mlp_spec({24, 48, 24, 6});
  // One synthetic distribution, split into train and held-out test columns.
  const auto all = nn::make_synthetic_dataset(24, 6, 420, /*seed=*/11);
  nn::Dataset train{all.inputs.col_block(0, 300),
                    {all.labels.begin(), all.labels.begin() + 300}};
  nn::Dataset test{all.inputs.col_block(300, 420),
                   {all.labels.begin() + 300, all.labels.end()}};

  nn::TrainConfig cfg;
  cfg.batch = 30;
  cfg.lr = 0.05f;
  cfg.momentum = 0.9f;
  cfg.lr_decay = 0.5f;
  cfg.decay_every = 20;
  cfg.iterations = static_cast<std::size_t>(args.get_int("iterations"));

  const int p = static_cast<int>(args.get_int("procs"));
  const std::string ckpt = args.get_string("checkpoint");

  // Phase 1: distributed training, then checkpoint the assembled model.
  comm::World world(p);
  std::vector<float> phase1_params;
  std::vector<double> phase1_losses;
  std::mutex mu;
  world.run([&](comm::Comm& c) {
    auto r = parallel::train_batch_parallel(c, specs, train, cfg);
    if (c.rank() == 0) {
      std::lock_guard lock(mu);
      phase1_params = std::move(r.params);
      phase1_losses = std::move(r.losses);
    }
  });
  nn::Network net = nn::build_network(specs, {.seed = 42});
  net.load_params(phase1_params);
  nn::save_checkpoint(net, ckpt);
  const double acc1 = nn::evaluate_accuracy(net, test);
  std::cout << "phase 1: " << cfg.iterations << " distributed iterations on "
            << p << " ranks; loss " << format_double(phase1_losses.front(), 4)
            << " -> " << format_double(phase1_losses.back(), 4)
            << "; test accuracy " << format_double(100.0 * acc1, 1)
            << "%; checkpoint written to " << ckpt << "\n";

  // Phase 2: a fresh process resumes from the checkpoint and keeps training
  // sequentially (e.g. fine-tuning on one node).
  nn::Network resumed = nn::build_network(specs, {.seed = 7});
  nn::load_checkpoint(resumed, ckpt);
  auto resumed_losses = nn::train_sgd(resumed, train, cfg);
  const double acc2 = nn::evaluate_accuracy(resumed, test);
  std::cout << "phase 2: resumed from checkpoint, " << cfg.iterations
            << " more sequential iterations; loss "
            << format_double(resumed_losses.front(), 4) << " -> "
            << format_double(resumed_losses.back(), 4)
            << "; test accuracy " << format_double(100.0 * acc2, 1) << "%\n";

  std::remove(ckpt.c_str());
  std::cout << (acc2 >= acc1 ? "accuracy improved or held after resuming — "
                               "checkpoint round-trip is lossless.\n"
                             : "note: accuracy dipped (stochastic schedule), "
                               "but the checkpoint round-trip is lossless.\n");
  return 0;
}
