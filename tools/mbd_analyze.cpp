// mbd_analyze: static schedule analyzer CLI.
//
// Dry-runs every distributed trainer (GEMMs elided, payloads size-exact)
// across a grid sweep, records the full per-rank communication schedule,
// and proves each schedule collective-matched, deadlock-free, leak-free,
// and byte-exact against the costmodel closed forms. Milliseconds per
// configuration — this is the CI gate behind the schedule-analysis job.
//
// Exit codes: 0 = all schedules proven clean, 1 = violations found,
// 2 = bad invocation.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mbd/analysis/report.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/support/check.hpp"
#include "mbd/support/cli.hpp"

namespace {

using mbd::analysis::AnalysisReport;
using mbd::analysis::AnalyzerConfig;
using mbd::costmodel::TrainerKind;
using mbd::parallel::GridShape;
using mbd::parallel::ReduceMode;
using mbd::parallel::TrainerWorkload;

struct SweepCase {
  TrainerKind kind;
  std::vector<mbd::nn::LayerSpec> specs;
  std::size_t batch;
  std::size_t microbatches = 1;  ///< pipeline only
};

// Per-workload networks: at least one even and one uneven-partition shape
// where the trainer class supports it, so both the Bruck all-gather and the
// ring all-gatherv paths (and, for the pipeline, even and uneven layer
// blocks with distinct microbatch counts) are exercised.
struct Workload {
  std::vector<mbd::nn::LayerSpec> specs;
  std::size_t batch;
  std::size_t microbatches = 1;
};

std::vector<Workload> workloads_for(TrainerWorkload w) {
  using mbd::nn::conv_spec;
  using mbd::nn::fc_spec;
  switch (w) {
    case TrainerWorkload::Mlp:
      // 23/11 divide by none of the grid extents; batch 18 splits unevenly
      // at pc=4 — stresses the allgatherv and uneven ring-block forms.
      return {{mbd::nn::mlp_spec({10, 24, 12, 12}), 16},
              {mbd::nn::mlp_spec({10, 23, 11, 12}), 18}};
    case TrainerWorkload::DeepMlp:
      // Eight layers so every sweep grid (P up to 8) meets the pipeline's
      // one-layer-per-stage floor; the uneven shape also makes the layer
      // blocks uneven at P=6.
      return {{mbd::nn::mlp_spec({10, 24, 20, 18, 16, 14, 12, 12, 12}), 16,
               /*microbatches=*/2},
              {mbd::nn::mlp_spec({10, 23, 19, 17, 15, 13, 11, 11, 12}), 18,
               /*microbatches=*/4}};
    case TrainerWorkload::ConvHalo:
      return {{{conv_spec("c1", 2, 8, 8, 4, 3, 1, 1),
                conv_spec("c2", 4, 8, 8, 4, 3, 1, 1),
                fc_spec("f1", 4 * 8 * 8, 16),
                fc_spec("f2", 16, 8, /*relu=*/false)},
               8}};
    case TrainerWorkload::ConvPool:
      return {{mbd::nn::small_cnn_spec(2, 8, 8), 16}};
  }
  MBD_CHECK(false);
  return {};
}

// The sweep matrix, driven by the trainer registry: every registered
// trainer over every network of its workload class.
std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const mbd::parallel::TrainerEntry& e : mbd::parallel::trainer_registry())
    for (Workload& w : workloads_for(e.workload))
      cases.push_back(
          {e.kind, std::move(w.specs), w.batch, w.microbatches});
  return cases;
}

bool kind_matches(TrainerKind k, const std::string& filter) {
  return filter == "all" ||
         filter == std::string(mbd::costmodel::trainer_kind_name(k));
}

}  // namespace

int main(int argc, char** argv) {
  mbd::ArgParser args(
      "Static schedule analyzer: prove every trainer's communication "
      "schedule deadlock-free and traffic-exact against the closed forms.");
  args.add_int("iterations", 3, "recorded SGD iterations per case (>= 2)");
  args.add_int("seed", 42, "weight-init / dataset seed");
  args.add_string("trainer", "all",
                  "restrict to one trainer: batch, model, integrated, "
                  "domain, hybrid, mixed, pipeline");
  args.add_string("mode", "both",
                  "reduction schedule: blocking, overlapped, both");
  args.add_string("json", "", "write the JSON report to this file");
  args.add_bool("quiet", false, "suppress the per-case summary on stdout");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const mbd::Error& e) {
    std::cerr << "mbd_analyze: " << e.what() << '\n';
    return 2;
  }

  const std::string mode_arg = args.get_string("mode");
  std::vector<ReduceMode> modes;
  if (mode_arg == "blocking" || mode_arg == "both")
    modes.push_back(ReduceMode::Blocking);
  if (mode_arg == "overlapped" || mode_arg == "both")
    modes.push_back(ReduceMode::Overlapped);
  if (modes.empty()) {
    std::cerr << "mbd_analyze: unknown --mode '" << mode_arg << "'\n";
    return 2;
  }

  const std::vector<GridShape> grids = {{2, 2}, {3, 2}, {2, 4}, {4, 2}};

  AnalysisReport report;
  try {
    for (const SweepCase& sc : sweep_cases()) {
      if (!kind_matches(sc.kind, args.get_string("trainer"))) continue;
      for (const GridShape& grid : grids) {
        for (const ReduceMode mode : modes) {
          AnalyzerConfig cfg;
          cfg.kind = sc.kind;
          cfg.grid = grid;
          cfg.specs = sc.specs;
          cfg.batch = sc.batch;
          cfg.iterations = static_cast<std::size_t>(args.get_int("iterations"));
          cfg.mode = mode;
          cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
          cfg.microbatches = sc.microbatches;
          report.cases.push_back(mbd::analysis::analyze_case(cfg));
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "mbd_analyze: extraction failed: " << e.what() << '\n';
    return 2;
  }
  if (report.cases.empty()) {
    std::cerr << "mbd_analyze: no cases match --trainer '"
              << args.get_string("trainer") << "'\n";
    return 2;
  }

  if (!args.get_bool("quiet")) std::cout << report.summary();
  const std::string json_path = args.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "mbd_analyze: cannot write " << json_path << '\n';
      return 2;
    }
    out << report.to_json();
  }
  return report.clean() ? 0 : 1;
}
