// mbd_analyze: static schedule analyzer CLI.
//
// Dry-runs every distributed trainer (GEMMs elided, payloads size-exact)
// across a grid sweep, records the full per-rank communication schedule,
// and proves each schedule collective-matched, deadlock-free, leak-free,
// and byte-exact against the costmodel closed forms. Milliseconds per
// configuration — this is the CI gate behind the schedule-analysis job.
//
// Exit codes: 0 = all schedules proven clean, 1 = violations found,
// 2 = bad invocation.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mbd/analysis/report.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/support/check.hpp"
#include "mbd/support/cli.hpp"

namespace {

using mbd::analysis::AnalysisReport;
using mbd::analysis::AnalyzerConfig;
using mbd::costmodel::TrainerKind;
using mbd::parallel::GridShape;
using mbd::parallel::ReduceMode;

struct SweepCase {
  TrainerKind kind;
  std::vector<mbd::nn::LayerSpec> specs;
  std::size_t batch;
};

// The sweep matrix: every trainer on at least one even and (where the
// trainer supports it) one uneven-partition network, so both the Bruck
// all-gather and the ring all-gatherv paths are exercised.
std::vector<SweepCase> sweep_cases() {
  using mbd::nn::conv_spec;
  using mbd::nn::fc_spec;
  const std::vector<mbd::nn::LayerSpec> mlp_even =
      mbd::nn::mlp_spec({10, 24, 12, 12});
  // 23/11 divide by none of the grid extents; batch 18 splits unevenly at
  // pc=4 — stresses the allgatherv and uneven ring-block closed forms.
  const std::vector<mbd::nn::LayerSpec> mlp_uneven =
      mbd::nn::mlp_spec({10, 23, 11, 12});
  const std::vector<mbd::nn::LayerSpec> conv_net = {
      conv_spec("c1", 2, 8, 8, 4, 3, 1, 1),
      conv_spec("c2", 4, 8, 8, 4, 3, 1, 1),
      fc_spec("f1", 4 * 8 * 8, 16),
      fc_spec("f2", 16, 8, /*relu=*/false),
  };
  const std::vector<mbd::nn::LayerSpec> cnn = mbd::nn::small_cnn_spec(2, 8, 8);

  return {
      {TrainerKind::BatchParallel, mlp_even, 16},
      {TrainerKind::ModelParallel, mlp_even, 16},
      {TrainerKind::ModelParallel, mlp_uneven, 18},
      {TrainerKind::Integrated15D, mlp_even, 16},
      {TrainerKind::Integrated15D, mlp_uneven, 18},
      {TrainerKind::DomainParallel, conv_net, 8},
      {TrainerKind::Hybrid, conv_net, 8},
      {TrainerKind::MixedGrid, cnn, 16},
  };
}

bool kind_matches(TrainerKind k, const std::string& filter) {
  return filter == "all" ||
         filter == std::string(mbd::costmodel::trainer_kind_name(k));
}

}  // namespace

int main(int argc, char** argv) {
  mbd::ArgParser args(
      "Static schedule analyzer: prove every trainer's communication "
      "schedule deadlock-free and traffic-exact against the closed forms.");
  args.add_int("iterations", 3, "recorded SGD iterations per case (>= 2)");
  args.add_int("seed", 42, "weight-init / dataset seed");
  args.add_string("trainer", "all",
                  "restrict to one trainer: batch, model, integrated, "
                  "domain, hybrid, mixed");
  args.add_string("mode", "both",
                  "reduction schedule: blocking, overlapped, both");
  args.add_string("json", "", "write the JSON report to this file");
  args.add_bool("quiet", false, "suppress the per-case summary on stdout");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const mbd::Error& e) {
    std::cerr << "mbd_analyze: " << e.what() << '\n';
    return 2;
  }

  const std::string mode_arg = args.get_string("mode");
  std::vector<ReduceMode> modes;
  if (mode_arg == "blocking" || mode_arg == "both")
    modes.push_back(ReduceMode::Blocking);
  if (mode_arg == "overlapped" || mode_arg == "both")
    modes.push_back(ReduceMode::Overlapped);
  if (modes.empty()) {
    std::cerr << "mbd_analyze: unknown --mode '" << mode_arg << "'\n";
    return 2;
  }

  const std::vector<GridShape> grids = {{2, 2}, {3, 2}, {2, 4}, {4, 2}};

  AnalysisReport report;
  try {
    for (const SweepCase& sc : sweep_cases()) {
      if (!kind_matches(sc.kind, args.get_string("trainer"))) continue;
      for (const GridShape& grid : grids) {
        for (const ReduceMode mode : modes) {
          AnalyzerConfig cfg;
          cfg.kind = sc.kind;
          cfg.grid = grid;
          cfg.specs = sc.specs;
          cfg.batch = sc.batch;
          cfg.iterations = static_cast<std::size_t>(args.get_int("iterations"));
          cfg.mode = mode;
          cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
          report.cases.push_back(mbd::analysis::analyze_case(cfg));
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "mbd_analyze: extraction failed: " << e.what() << '\n';
    return 2;
  }
  if (report.cases.empty()) {
    std::cerr << "mbd_analyze: no cases match --trainer '"
              << args.get_string("trainer") << "'\n";
    return 2;
  }

  if (!args.get_bool("quiet")) std::cout << report.summary();
  const std::string json_path = args.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "mbd_analyze: cannot write " << json_path << '\n';
      return 2;
    }
    out << report.to_json();
  }
  return report.clean() ? 0 : 1;
}
