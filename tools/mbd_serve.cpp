// Serving load driver for CI (.github/workflows/ci.yml, serving-smoke job).
//
// Trains the chosen trainer briefly, publishes the weights through
// CheckpointPolicy::final_commit, then serves them through the gateway while
// an open-loop client fires single-sample requests at a configured arrival
// rate (open-loop: arrival times are fixed up front, so a slow server builds
// queue depth instead of slowing the clients — the honest way to measure
// tail latency). Prints one JSON object with the accept/reject counts and
// the latency percentiles; scripts/check_serving.py schema-checks it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/recovery.hpp"
#include "mbd/serve/gateway.hpp"
#include "mbd/support/check.hpp"
#include "mbd/support/cli.hpp"

namespace {

using namespace mbd;
using Clock = std::chrono::steady_clock;

std::vector<nn::LayerSpec> small_conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  return specs;
}

struct Workload {
  std::vector<nn::LayerSpec> specs;
  nn::Dataset data;
};

Workload workload_for(parallel::TrainerWorkload w) {
  using parallel::TrainerWorkload;
  Workload wl;
  switch (w) {
    case TrainerWorkload::Mlp:
      wl.specs = nn::mlp_spec({24, 32, 10});
      wl.data = nn::make_synthetic_dataset(24, 10, 32, 13);
      break;
    case TrainerWorkload::DeepMlp:
      wl.specs = nn::mlp_spec({24, 22, 20, 12, 10});
      wl.data = nn::make_synthetic_dataset(24, 10, 32, 13);
      break;
    case TrainerWorkload::ConvHalo:
    case TrainerWorkload::ConvPool:
      wl.specs = small_conv_net();
      wl.data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 16, 9);
      break;
  }
  return wl;
}

double counter_value(const std::vector<obs::MetricValue>& snap,
                     const std::string& name) {
  for (const auto& m : snap)
    if (m.name == name) return m.value;
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Open-loop serving load driver over a trained checkpoint.");
  args.add_string("trainer", "batch", "registry trainer to serve");
  args.add_int("ranks", 4, "world size (4 fits every trainer's 2x2 grid)");
  args.add_int("requests", 64, "number of single-sample requests");
  args.add_double("rate", 500.0, "open-loop arrival rate, requests/second");
  args.add_int("batch", 0, "dispatch batch size (0 = calibrate at startup)");
  args.add_int("max-batch", 16, "largest batch the dispatcher may form");
  args.add_int("queue", 64, "admission queue capacity");
  args.add_double("budget-ms", 0.0, "latency budget in ms (0 = no deadline)");
  args.add_int("train-iters", 2, "training iterations before serving");
  args.add_int("calib-reps", 2, "timed forwards per calibration rung");
  args.add_string("json", "", "write the result JSON here (default stdout)");
  if (!args.parse(argc, argv)) return 0;

  const parallel::TrainerEntry* entry =
      parallel::find_trainer(args.get_string("trainer"));
  if (entry == nullptr) {
    std::fprintf(stderr, "error: unknown trainer '%s'\n",
                 args.get_string("trainer").c_str());
    return 2;
  }
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const std::size_t requests =
      static_cast<std::size_t>(args.get_int("requests"));
  const double rate = args.get_double("rate");
  MBD_CHECK_GT(rate, 0.0);

  const Workload wl = workload_for(entry->workload);
  parallel::TrainerOptions opts;
  opts.grid = ranks == 4 ? parallel::GridShape{2, 2}
                         : parallel::GridShape{1, ranks};

  // Phase 1: train and publish the weights.
  constexpr std::size_t kTrainBatch = 8;
  nn::TrainConfig cfg;
  cfg.batch = kTrainBatch;
  cfg.iterations = static_cast<std::size_t>(args.get_int("train-iters"));
  parallel::CheckpointStore store(ranks);
  parallel::RecoveryContext rc{&store, {.every = 0, .final_commit = true}};
  opts.recovery = &rc;
  {
    comm::World world(ranks);
    world.run([&](comm::Comm& c) {
      (void)entry->run(c, opts, wl.specs, wl.data, cfg);
    });
  }
  MBD_CHECK_MSG(store.valid(), "training did not publish a checkpoint");

  // Phase 2: serve the checkpoint under open-loop load.
  obs::Metrics::instance().reset();
  serve::GatewayOptions gopts;
  gopts.queue_capacity = static_cast<std::size_t>(args.get_int("queue"));
  gopts.max_batch = static_cast<std::size_t>(args.get_int("max-batch"));
  gopts.batch_size = static_cast<std::size_t>(args.get_int("batch"));
  gopts.latency_budget_s = args.get_double("budget-ms") * 1e-3;
  gopts.calibration_reps = static_cast<int>(args.get_int("calib-reps"));

  serve::Gateway* gateway = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t accepted = 0;
  std::size_t chosen_batch = 0;
  double wall_s = 0.0;

  std::thread client([&] {
    {
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return gateway != nullptr; });
    }
    const auto start = Clock::now();
    std::vector<std::future<serve::Reply>> futures;
    futures.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(
          start + std::chrono::duration<double>(static_cast<double>(i) /
                                                rate));
      const std::size_t col = i % wl.data.size();
      const tensor::Matrix x = wl.data.inputs.col_block(col, col + 1);
      futures.push_back(
          gateway->submit({x.span().begin(), x.span().end()}));
    }
    for (auto& f : futures) {
      if (f.get().accepted) ++accepted;
    }
    wall_s = std::chrono::duration<double>(Clock::now() - start).count();
    chosen_batch = gateway->chosen_batch();
    gateway->shutdown();
  });

  comm::World world(ranks);
  world.run([&](comm::Comm& c) {
    serve::InferenceSession session(
        c, entry->layout(c, opts, wl.specs, kTrainBatch));
    session.load(store);
    serve::Gateway gw(session, c, gopts);
    if (c.rank() == 0) {
      {
        const std::lock_guard lk(mu);
        gateway = &gw;
      }
      cv.notify_all();
    }
    gw.serve();
  });
  client.join();

  const auto snap = obs::Metrics::instance().snapshot();
  double p50_us = 0.0, p99_us = 0.0;
  for (const auto& m : snap) {
    if (m.name == "serve.latency_us") {
      p50_us = m.hist.p50();
      p99_us = m.hist.p99();
    }
  }

  std::ostringstream os;
  os << "{\"tool\": \"mbd_serve\", \"trainer\": \"" << entry->name
     << "\", \"ranks\": " << ranks << ", \"requests\": " << requests
     << ", \"accepted\": " << accepted << ", \"rejected_queue_full\": "
     << counter_value(snap, "serve.rejected.queue_full")
     << ", \"rejected_deadline\": "
     << counter_value(snap, "serve.rejected.deadline")
     << ", \"rejected_shutdown\": "
     << counter_value(snap, "serve.rejected.shutdown")
     << ", \"batch_size\": " << chosen_batch << ", \"p50_us\": " << p50_us
     << ", \"p99_us\": " << p99_us << ", \"throughput_rps\": "
     << (wall_s > 0.0 ? static_cast<double>(accepted) / wall_s : 0.0)
     << "}\n";

  const std::string out_path = args.get_string("json");
  if (out_path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream out(out_path);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << os.str();
  }
  std::fprintf(stderr,
               "served %zu/%zu requests (batch=%zu, p50=%.0fus p99=%.0fus)\n",
               accepted, requests, chosen_batch, p50_us, p99_us);
  return 0;
}
