// Observability smoke driver for CI (.github/workflows/ci.yml,
// observability-smoke job).
//
// Runs a 4-rank engine sweep — every registry trainer, nonblocking
// reduction schedule — with the timeline profiler on, and writes into
// <outdir>:
//   trace_<trainer>.json   Chrome trace-event export, one per trainer
//   metrics.json           metrics-registry snapshot (incl. GEMM shapes)
//   structure.txt          span structure (everything but timestamps)
//
// CI runs the binary twice and diffs the two structure.txt files: byte
// equality is the span-structure determinism guarantee of
// mbd/obs/profiler.hpp, checked under TSan. scripts/check_trace.py
// schema-checks every trace file.
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/obs/chrome_trace.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/tensor/gemm.hpp"

namespace {

using namespace mbd;

std::vector<nn::LayerSpec> small_conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  return specs;
}

// Four FC layers for the 4-rank pipeline (one per stage), reusing the flat
// MLP's dataset shape.
std::vector<nn::LayerSpec> deep_mlp() {
  return nn::mlp_spec({24, 22, 20, 12, 10});
}

void dump_structure(std::ofstream& out, const std::string& trainer,
                    const obs::TimelineSnapshot& snap) {
  for (const auto& t : snap.threads)
    for (const auto& s : t.spans)
      out << trainer << ' ' << t.rank << ' ' << t.life << ' '
          << obs::span_kind_name(s.kind) << ' ' << s.label << ' ' << s.seq
          << ' ' << s.flow << ' ' << s.arg0 << ' ' << s.arg1 << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  const std::string outdir = argv[1];

  obs::enable_profiling(true);
  tensor::set_gemm_shape_metrics(true);

  const auto mlp = nn::mlp_spec({24, 32, 10});
  const auto mlp_data = nn::make_synthetic_dataset(24, 10, 32, 13);
  nn::TrainConfig mlp_cfg;
  mlp_cfg.batch = 8;
  mlp_cfg.iterations = 2;

  const auto cnn = small_conv_net();
  const auto cnn_data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 16, 9);
  nn::TrainConfig cnn_cfg;
  cnn_cfg.batch = 8;
  cnn_cfg.iterations = 2;

  using parallel::GridShape;
  using parallel::ReduceMode;
  const auto pipe_mlp = deep_mlp();
  struct Case {
    std::string name;
    std::function<void(comm::Comm&)> run;
  };
  std::vector<Case> cases;
  for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
    const parallel::TrainerOptions opts{.grid = GridShape{2, 2},
                                        .mode = ReduceMode::Overlapped,
                                        .microbatches = 2};
    const bool conv = e.workload == parallel::TrainerWorkload::ConvHalo ||
                      e.workload == parallel::TrainerWorkload::ConvPool;
    const auto& specs =
        conv ? cnn
             : (e.workload == parallel::TrainerWorkload::DeepMlp ? pipe_mlp
                                                                 : mlp);
    const auto& data = conv ? cnn_data : mlp_data;
    const auto& cfg = conv ? cnn_cfg : mlp_cfg;
    cases.push_back({std::string(e.launch_name), [&, opts, run = e.run](
                                                     comm::Comm& c) {
                       (void)run(c, opts, specs, data, cfg);
                     }});
  }

  std::ofstream structure(outdir + "/structure.txt");
  if (!structure.good()) {
    std::fprintf(stderr, "error: cannot write to %s\n", outdir.c_str());
    return 2;
  }
  for (const auto& tc : cases) {
    obs::reset_timeline();
    comm::World world(4);
    world.enable_validation();
    world.run(tc.run);
    const auto snap = obs::snapshot_timeline();
    obs::write_chrome_trace(outdir + "/trace_" + tc.name + ".json", snap);
    dump_structure(structure, tc.name, snap);
    std::size_t spans = 0;
    for (const auto& t : snap.threads) spans += t.spans.size();
    std::printf("%-14s %zu threads, %zu spans\n", tc.name.c_str(),
                snap.threads.size(), spans);
  }
  structure.close();

  std::ofstream metrics(outdir + "/metrics.json");
  metrics << obs::Metrics::instance().to_json();
  metrics.close();
  std::printf("wrote %s/{trace_*.json, metrics.json, structure.txt}\n",
              outdir.c_str());
  return 0;
}
