// mbd_launch: multi-process runner for the registered trainers over TCP
// loopback.
//
// Parent mode forks one process per rank (re-exec'ing this binary with
// --worker), each worker binds an ephemeral 127.0.0.1 port, publishes
// "host port" to <rendezvous>/rank<R>.addr, dials the full mesh, and runs
// the trainer sweep on a distributed World(size, rank, TcpTransport). Each
// rank writes its results — per-iteration losses and final parameters, both
// bit-exact hex — to <out>/rank<R>.json.
//
// --inprocess runs the identical sweep on the thread-backed fabric and
// writes byte-identical files (the JSON never names the transport), so
//
//   mbd_launch --out tcp_out
//   mbd_launch --inprocess --out thread_out
//   diff -r tcp_out thread_out
//
// is the bitwise cross-transport equivalence check the multi-process CI job
// gates on: every registry trainer (pipeline included), both ReduceModes,
// same seeds.
//
// --spares S keeps S extra hot-standby processes in the mesh (physical ids
// ranks..ranks+S-1, no logical slot). With --fail-rank R --fail-op N every
// active worker installs the same injected-crash plan; rank R dies mid-run
// (fail-stop: _exit, no goodbye), the survivors promote spare ranks+0 into
// slot R via World::run_promotable, and the spare's await_failure fires: it
// adopts the slot, replays the case, and writes rank<R>.json in the victim's
// place. The out directory is byte-identical to an undisturbed run, so the
// same `diff -r` gate proves spare-promoted recovery bitwise-correct across
// real processes. Fault runs are restricted to a single (trainer, mode) case.
//
// Exit codes: 0 = sweep complete, 1 = a rank failed, 2 = bad invocation,
// 42 = this worker was the injected-crash victim (expected under
// --fail-rank; the parent does not count it as a failure).
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mbd/comm/fault.hpp"
#include "mbd/comm/transport_tcp.hpp"
#include "mbd/comm/world.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/support/check.hpp"
#include "mbd/support/cli.hpp"

namespace {

using namespace mbd;
using parallel::DistResult;
using parallel::GridShape;
using parallel::ReduceMode;

std::vector<nn::LayerSpec> small_conv_net() {
  std::vector<nn::LayerSpec> specs;
  specs.push_back(nn::conv_spec("conv1", 2, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::conv_spec("conv2", 4, 8, 8, 4, 3, 1, 1));
  specs.push_back(nn::fc_spec("fc1", 4 * 8 * 8, 16));
  specs.push_back(nn::fc_spec("fc2", 16, 4, false));
  return specs;
}

// One FC layer per rank (the pipeline's floor), same 24-dim input and 10
// classes as the flat MLP so it reuses the same synthetic dataset.
std::vector<nn::LayerSpec> deep_mlp_spec(int ranks) {
  std::vector<std::size_t> dims = {24};
  for (int i = 1; i < ranks; ++i)
    dims.push_back(std::max<std::size_t>(12, 24 - 2 * static_cast<std::size_t>(i)));
  dims.push_back(10);
  return nn::mlp_spec(dims);
}

struct SweepCase {
  std::string trainer;
  std::string mode_name;
  std::function<DistResult(comm::Comm&)> run;
};

// The trainer sweep, parameterized by mode: every registry trainer on the
// tiny workload matching its class, same seeds everywhere.
std::vector<SweepCase> make_cases(int ranks, int iterations,
                                  std::uint64_t seed,
                                  const std::string& trainer_filter,
                                  const std::string& mode_filter) {
  const GridShape grid{2, ranks / 2};
  const auto mlp = nn::mlp_spec({24, 32, 10});
  const auto deep_mlp = deep_mlp_spec(ranks);
  const auto mlp_data = nn::make_synthetic_dataset(24, 10, 32, 13);
  nn::TrainConfig mlp_cfg;
  mlp_cfg.batch = 8;
  mlp_cfg.iterations = static_cast<std::size_t>(iterations);
  const auto cnn = small_conv_net();
  const auto cnn_data = nn::make_synthetic_dataset(2 * 8 * 8, 4, 16, 9);
  nn::TrainConfig cnn_cfg = mlp_cfg;

  std::vector<SweepCase> cases;
  for (const ReduceMode mode :
       {ReduceMode::Blocking, ReduceMode::Overlapped}) {
    const std::string mode_name =
        mode == ReduceMode::Blocking ? "blocking" : "overlapped";
    if (mode_filter != "both" && mode_filter != mode_name) continue;
    for (const parallel::TrainerEntry& e : parallel::trainer_registry()) {
      const std::string name(e.launch_name);
      if (trainer_filter != "all" && trainer_filter != name) continue;
      const parallel::TrainerOptions opts{
          .grid = grid, .seed = seed, .mode = mode, .microbatches = 2};
      const bool conv = e.workload == parallel::TrainerWorkload::ConvHalo ||
                        e.workload == parallel::TrainerWorkload::ConvPool;
      const auto& specs =
          conv ? cnn
               : (e.workload == parallel::TrainerWorkload::DeepMlp ? deep_mlp
                                                                   : mlp);
      const auto& data = conv ? cnn_data : mlp_data;
      const auto& cfg = conv ? cnn_cfg : mlp_cfg;
      const auto run = e.run;
      cases.push_back({name, mode_name,
                       [=](comm::Comm& c) {
                         return run(c, opts, specs, data, cfg);
                       }});
    }
  }
  return cases;
}

struct CaseResult {
  std::string trainer;
  std::string mode_name;
  DistResult res;
};

std::string hex_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

std::string hex_float(float v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", std::bit_cast<std::uint32_t>(v));
  return buf;
}

std::uint64_t fnv1a(const std::vector<float>& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const float f : params) {
    const auto bits = std::bit_cast<std::uint32_t>(f);
    for (int i = 0; i < 4; ++i) {
      h ^= (bits >> (8 * i)) & 0xFFU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

// One rank's results. Deliberately transport-free: the TCP and in-process
// sweeps must produce byte-identical files for `diff -r` to gate on.
void write_rank_json(const std::string& path, int world_size, int rank,
                     int iterations, std::uint64_t seed,
                     const std::vector<CaseResult>& cases) {
  std::ofstream out(path);
  MBD_CHECK_MSG(out.good(), "mbd_launch: cannot write " << path);
  out << "{\n"
      << "  \"schema\": \"mbd-launch-results-v1\",\n"
      << "  \"world_size\": " << world_size << ",\n"
      << "  \"rank\": " << rank << ",\n"
      << "  \"iterations\": " << iterations << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& cr = cases[i];
    out << "    {\"trainer\": \"" << cr.trainer << "\", \"mode\": \""
        << cr.mode_name << "\",\n"
        << "     \"params_fnv1a\": \"0x" << std::hex << fnv1a(cr.res.params)
        << std::dec << "\",\n"
        << "     \"losses\": [";
    for (std::size_t j = 0; j < cr.res.losses.size(); ++j) {
      if (j != 0) out << ", ";
      out << '"' << hex_double(cr.res.losses[j]) << '"';
    }
    out << "],\n     \"params\": [";
    for (std::size_t j = 0; j < cr.res.params.size(); ++j) {
      if (j != 0) out << ", ";
      out << '"' << hex_float(cr.res.params[j]) << '"';
    }
    out << "]}" << (i + 1 < cases.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

void ensure_dir(const std::string& path) {
  std::string prefix;
  std::istringstream ss(path);
  std::string part;
  while (std::getline(ss, part, '/')) {
    prefix += part;
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0777) != 0 &&
        errno != EEXIST) {
      MBD_CHECK_MSG(false, "mbd_launch: cannot create directory " << prefix
                                                                  << " (errno "
                                                                  << errno
                                                                  << ')');
    }
    prefix += '/';
  }
}

std::string addr_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".addr";
}

std::string out_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".json";
}

// --- worker: one rank over TCP ---------------------------------------------

comm::FaultPlan crash_plan(int rank, std::uint64_t op) {
  comm::FaultPlan plan;
  plan.actions.push_back(
      {.kind = comm::FaultKind::CrashRank, .rank = rank, .op_index = op});
  return plan;
}

// Run the (single, CLI-enforced) sweep case on an adopted or original slot
// and write that slot's result file. Shared by active workers and a
// promoted spare — the JSON must be identical whoever produces it.
int run_cases(comm::World& world, int slot, bool promotable,
              const ArgParser& args) {
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int iterations = static_cast<int>(args.get_int("iterations"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  std::vector<CaseResult> results;
  for (auto& sc : make_cases(ranks, iterations, seed,
                             args.get_string("trainer"),
                             args.get_string("mode"))) {
    DistResult res;
    const auto body = [&](comm::Comm& c) { res = sc.run(c); };
    if (promotable) {
      world.run_promotable(body);
    } else {
      world.run(body);
    }
    std::printf("rank %d %-14s %-10s loss[last]=%s params_fnv1a=0x%llx\n",
                slot, sc.trainer.c_str(), sc.mode_name.c_str(),
                res.losses.empty() ? "-" : hex_double(res.losses.back()).c_str(),
                static_cast<unsigned long long>(fnv1a(res.params)));
    results.push_back({sc.trainer, sc.mode_name, std::move(res)});
  }
  write_rank_json(out_path(args.get_string("out"), slot), ranks, slot,
                  iterations, seed, results);
  return 0;
}

int run_worker(const ArgParser& args) {
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int rank = static_cast<int>(args.get_int("rank"));
  const int spares = static_cast<int>(args.get_int("spares"));
  const int fail_rank = static_cast<int>(args.get_int("fail-rank"));
  const auto fail_op = static_cast<std::uint64_t>(args.get_int("fail-op"));
  const std::string rendezvous = args.get_string("rendezvous");
  const std::string host = args.get_string("host");
  const int participants = ranks + spares;

  auto transport = std::make_shared<comm::TcpTransport>(
      ranks, rank, host, /*port=*/static_cast<std::uint16_t>(0),
      comm::TcpOptions{.spares = spares});
  // Publish our address atomically (write + rename) so peers never read a
  // partial file.
  const std::string tmp = addr_path(rendezvous, rank) + ".tmp";
  {
    std::ofstream f(tmp);
    MBD_CHECK_MSG(f.good(), "mbd_launch: cannot write " << tmp);
    f << host << ' ' << transport->port() << '\n';
  }
  MBD_CHECK_MSG(
      std::rename(tmp.c_str(), addr_path(rendezvous, rank).c_str()) == 0,
      "mbd_launch: cannot publish " << addr_path(rendezvous, rank));

  // Gather every participant's address (spares included); peers publish in
  // any order.
  std::vector<comm::TcpEndpoint> peers(static_cast<std::size_t>(participants));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (int r = 0; r < participants; ++r) {
    while (true) {
      std::ifstream f(addr_path(rendezvous, r));
      std::string peer_host;
      std::uint16_t peer_port = 0;
      if (f >> peer_host >> peer_port && peer_port != 0) {
        peers[static_cast<std::size_t>(r)] = {peer_host, peer_port};
        break;
      }
      MBD_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                    "mbd_launch: rank " << rank
                                        << " timed out waiting for rank " << r
                                        << "'s address");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  transport->connect_mesh(peers);

  if (rank >= ranks) {
    // Hot spare: idle until a peer's failure is broadcast, or until a
    // Goodbye proves the run finished without needing us.
    const auto slot = transport->await_failure(std::chrono::minutes(10));
    if (!slot.has_value()) {
      std::printf("spare %d: run completed without a failure; standing down\n",
                  rank);
      transport->shutdown();
      return 0;
    }
    std::printf("spare %d: adopting failed slot %d\n", rank, *slot);
    transport->promote(*slot, rank);
    transport->begin_epoch(1);
    comm::World world(ranks, *slot, transport);
    if (fail_rank >= 0) {
      // Same plan as every active worker — and the same epoch advance the
      // survivors' in-place repair applies, so the victim's epoch-0 crash
      // does not re-fire on its replacement.
      world.install_faults(crash_plan(fail_rank, fail_op));
      world.fault_injector()->begin_epoch(1);
    }
    const int rc = run_cases(world, *slot, /*promotable=*/false, args);
    transport->shutdown();
    return rc;
  }

  comm::World world(ranks, rank, transport);
  if (spares > 0) world.set_spares(spares);
  if (fail_rank >= 0) world.install_faults(crash_plan(fail_rank, fail_op));
  try {
    const int rc = run_cases(world, rank, /*promotable=*/spares > 0, args);
    transport->shutdown();
    return rc;
  } catch (const comm::RankFailure& e) {
    if (rank == fail_rank) {
      // The victim cannot be saved by promotion — its slot was given away.
      // Die fail-stop: no goodbye, no unwinding, sockets drop abruptly, so
      // the survivors see exactly what a killed process would leave behind.
      std::fprintf(stderr, "rank %d: injected victim dying (%s)\n", rank,
                   e.what());
      ::_exit(42);
    }
    throw;
  }
}

// --- in-process reference sweep --------------------------------------------

int run_inprocess(const ArgParser& args) {
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int iterations = static_cast<int>(args.get_int("iterations"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string out = args.get_string("out");
  ensure_dir(out);

  comm::World world(ranks);
  std::vector<std::vector<CaseResult>> results(
      static_cast<std::size_t>(ranks));
  std::mutex results_mu;
  for (auto& sc : make_cases(ranks, iterations, seed,
                             args.get_string("trainer"),
                             args.get_string("mode"))) {
    world.run([&](comm::Comm& c) {
      DistResult res = sc.run(c);
      std::lock_guard lock(results_mu);
      results[static_cast<std::size_t>(c.rank())].push_back(
          {sc.trainer, sc.mode_name, std::move(res)});
    });
    const auto& r0 = results[0].back();
    std::printf("%-14s %-10s loss[last]=%s params_fnv1a=0x%llx\n",
                r0.trainer.c_str(), r0.mode_name.c_str(),
                r0.res.losses.empty()
                    ? "-"
                    : hex_double(r0.res.losses.back()).c_str(),
                static_cast<unsigned long long>(fnv1a(r0.res.params)));
  }
  for (int r = 0; r < ranks; ++r) {
    write_rank_json(out_path(out, r), ranks, r, iterations, seed,
                    results[static_cast<std::size_t>(r)]);
  }
  return 0;
}

// --- parent: fork/exec one worker per rank ----------------------------------

int run_parent(const ArgParser& args) {
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int spares = static_cast<int>(args.get_int("spares"));
  const int fail_rank = static_cast<int>(args.get_int("fail-rank"));
  const int participants = ranks + spares;
  const std::string out = args.get_string("out");
  std::string rendezvous = args.get_string("rendezvous");
  if (rendezvous.empty()) rendezvous = out + ".rendezvous";
  ensure_dir(out);
  ensure_dir(rendezvous);
  for (int r = 0; r < participants; ++r) {
    (void)std::remove(addr_path(rendezvous, r).c_str());  // stale publishes
  }

  std::vector<pid_t> children;
  for (int r = 0; r < participants; ++r) {
    const pid_t pid = ::fork();
    MBD_CHECK_MSG(pid >= 0, "mbd_launch: fork failed (errno " << errno << ')');
    if (pid == 0) {
      const std::vector<std::string> sargs = {
          "/proc/self/exe",
          "--worker",
          "--rank=" + std::to_string(r),
          "--ranks=" + std::to_string(ranks),
          "--rendezvous=" + rendezvous,
          "--out=" + out,
          "--host=" + args.get_string("host"),
          "--trainer=" + args.get_string("trainer"),
          "--mode=" + args.get_string("mode"),
          "--iterations=" + std::to_string(args.get_int("iterations")),
          "--seed=" + std::to_string(args.get_int("seed")),
          "--spares=" + std::to_string(spares),
          "--fail-rank=" + std::to_string(fail_rank),
          "--fail-op=" + std::to_string(args.get_int("fail-op")),
      };
      std::vector<char*> argv;
      argv.reserve(sargs.size() + 1);
      for (const auto& s : sargs) argv.push_back(const_cast<char*>(s.c_str()));
      argv.push_back(nullptr);
      ::execv("/proc/self/exe", argv.data());
      std::perror("mbd_launch: execv");
      _exit(127);
    }
    children.push_back(pid);
  }

  int failures = 0;
  int victims = 0;
  for (std::size_t reaped = 0; reaped < children.size(); ++reaped) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) break;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 42 && fail_rank >= 0 &&
        victims == 0) {
      // The injected-crash victim dying fail-stop is the point of the run;
      // a spare writes its result file. Only one victim is expected.
      ++victims;
      continue;
    }
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "mbd_launch: child %d failed (status 0x%x)\n",
                   static_cast<int>(pid), status);
      // One dead rank means the sweep cannot complete; put the others out
      // of their misery rather than waiting out their watchdogs.
      if (failures == 1) {
        for (const pid_t other : children) {
          if (other != pid) ::kill(other, SIGTERM);
        }
      }
    }
  }
  if (failures == 0) {
    if (fail_rank >= 0 && victims == 0) {
      std::printf(
          "mbd_launch: note: --fail-rank %d never fired (op index past the "
          "end of the run?)\n",
          fail_rank);
    }
    std::printf("mbd_launch: %d rank(s) complete; results in %s\n", ranks,
                out.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Workers inherit a pipe when run under CI; keep per-case progress lines
  // visible even if a rank wedges before exit.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  ArgParser args(
      "Multi-process trainer runner: fork one process per rank, connect a "
      "TCP loopback mesh, run the full trainer sweep, and write bit-exact "
      "per-rank results for cross-transport diffing (--inprocess runs the "
      "same sweep on the thread-backed fabric).");
  args.add_int("ranks", 4, "world size (even, >= 2; grid is 2 x ranks/2)");
  args.add_string("trainer", "all",
                  "restrict to one trainer: model, batch, integrated_15d, "
                  "mixed_grid, domain, hybrid, pipeline");
  args.add_string("mode", "both",
                  "reduction schedule: blocking, overlapped, both");
  args.add_int("iterations", 2, "SGD iterations per case");
  args.add_int("seed", 42, "weight-init seed");
  args.add_string("out", "launch_out", "directory for rank<R>.json results");
  args.add_bool("inprocess", false,
                "run on the thread-backed fabric instead of TCP processes");
  args.add_int("spares", 0,
               "hot-standby processes beyond --ranks; a failed rank's slot "
               "is adopted by a spare without tearing down the mesh");
  args.add_int("fail-rank", -1,
               "inject a crash on this rank (requires --spares >= 1 and a "
               "single --trainer/--mode case)");
  args.add_int("fail-op", 0,
               "transport op index at which --fail-rank crashes");
  args.add_string("host", "127.0.0.1", "loopback address ranks bind/dial");
  args.add_string("rendezvous", "",
                  "address-exchange directory (default: <out>.rendezvous)");
  args.add_bool("worker", false, "internal: run one rank (set by the parent)");
  args.add_int("rank", -1, "internal: this worker's rank");

  try {
    if (!args.parse(argc, argv)) return 0;
    const int ranks = static_cast<int>(args.get_int("ranks"));
    if (ranks < 2 || ranks % 2 != 0) {
      std::cerr << "mbd_launch: --ranks must be even and >= 2\n";
      return 2;
    }
    const int fail_rank = static_cast<int>(args.get_int("fail-rank"));
    if (fail_rank >= 0) {
      if (fail_rank >= ranks || args.get_int("spares") < 1 ||
          args.get_int("fail-op") < 1) {
        std::cerr << "mbd_launch: --fail-rank needs a rank < --ranks, "
                     "--spares >= 1, and --fail-op >= 1\n";
        return 2;
      }
      if (args.get_string("trainer") == "all" ||
          args.get_string("mode") == "both" || args.get_bool("inprocess")) {
        std::cerr << "mbd_launch: --fail-rank runs exactly one TCP case; "
                     "pick one --trainer and one --mode\n";
        return 2;
      }
    }
    if (args.get_bool("worker")) return run_worker(args);
    if (args.get_bool("inprocess")) return run_inprocess(args);
    return run_parent(args);
  } catch (const std::exception& e) {
    std::cerr << "mbd_launch: " << e.what() << '\n';
    return args.get_bool("worker") ? 1 : 2;
  }
}
