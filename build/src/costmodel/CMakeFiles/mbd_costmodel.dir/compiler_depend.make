# Empty compiler generated dependencies file for mbd_costmodel.
# This may be replaced when dependencies are built.
