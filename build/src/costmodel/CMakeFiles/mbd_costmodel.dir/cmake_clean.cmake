file(REMOVE_RECURSE
  "CMakeFiles/mbd_costmodel.dir/src/collective_costs.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/collective_costs.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/hierarchy.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/hierarchy.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/machine.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/machine.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/memory.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/memory.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/optimizer.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/optimizer.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/replay.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/replay.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/strategy.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/strategy.cpp.o.d"
  "CMakeFiles/mbd_costmodel.dir/src/summa.cpp.o"
  "CMakeFiles/mbd_costmodel.dir/src/summa.cpp.o.d"
  "libmbd_costmodel.a"
  "libmbd_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
