
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/src/collective_costs.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/collective_costs.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/collective_costs.cpp.o.d"
  "/root/repo/src/costmodel/src/hierarchy.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/hierarchy.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/hierarchy.cpp.o.d"
  "/root/repo/src/costmodel/src/machine.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/machine.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/machine.cpp.o.d"
  "/root/repo/src/costmodel/src/memory.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/memory.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/memory.cpp.o.d"
  "/root/repo/src/costmodel/src/optimizer.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/optimizer.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/optimizer.cpp.o.d"
  "/root/repo/src/costmodel/src/replay.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/replay.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/replay.cpp.o.d"
  "/root/repo/src/costmodel/src/strategy.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/strategy.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/strategy.cpp.o.d"
  "/root/repo/src/costmodel/src/summa.cpp" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/summa.cpp.o" "gcc" "src/costmodel/CMakeFiles/mbd_costmodel.dir/src/summa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mbd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/mbd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mbd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mbd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
