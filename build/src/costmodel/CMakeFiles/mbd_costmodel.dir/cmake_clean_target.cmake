file(REMOVE_RECURSE
  "libmbd_costmodel.a"
)
