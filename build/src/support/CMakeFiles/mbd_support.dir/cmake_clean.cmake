file(REMOVE_RECURSE
  "CMakeFiles/mbd_support.dir/src/cli.cpp.o"
  "CMakeFiles/mbd_support.dir/src/cli.cpp.o.d"
  "CMakeFiles/mbd_support.dir/src/rng.cpp.o"
  "CMakeFiles/mbd_support.dir/src/rng.cpp.o.d"
  "CMakeFiles/mbd_support.dir/src/table.cpp.o"
  "CMakeFiles/mbd_support.dir/src/table.cpp.o.d"
  "CMakeFiles/mbd_support.dir/src/units.cpp.o"
  "CMakeFiles/mbd_support.dir/src/units.cpp.o.d"
  "libmbd_support.a"
  "libmbd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
