file(REMOVE_RECURSE
  "libmbd_support.a"
)
