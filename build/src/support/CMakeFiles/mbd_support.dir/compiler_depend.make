# Empty compiler generated dependencies file for mbd_support.
# This may be replaced when dependencies are built.
