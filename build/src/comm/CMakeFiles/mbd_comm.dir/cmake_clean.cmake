file(REMOVE_RECURSE
  "CMakeFiles/mbd_comm.dir/src/comm.cpp.o"
  "CMakeFiles/mbd_comm.dir/src/comm.cpp.o.d"
  "CMakeFiles/mbd_comm.dir/src/mailbox.cpp.o"
  "CMakeFiles/mbd_comm.dir/src/mailbox.cpp.o.d"
  "CMakeFiles/mbd_comm.dir/src/stats.cpp.o"
  "CMakeFiles/mbd_comm.dir/src/stats.cpp.o.d"
  "CMakeFiles/mbd_comm.dir/src/world.cpp.o"
  "CMakeFiles/mbd_comm.dir/src/world.cpp.o.d"
  "libmbd_comm.a"
  "libmbd_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
