
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/src/comm.cpp" "src/comm/CMakeFiles/mbd_comm.dir/src/comm.cpp.o" "gcc" "src/comm/CMakeFiles/mbd_comm.dir/src/comm.cpp.o.d"
  "/root/repo/src/comm/src/mailbox.cpp" "src/comm/CMakeFiles/mbd_comm.dir/src/mailbox.cpp.o" "gcc" "src/comm/CMakeFiles/mbd_comm.dir/src/mailbox.cpp.o.d"
  "/root/repo/src/comm/src/stats.cpp" "src/comm/CMakeFiles/mbd_comm.dir/src/stats.cpp.o" "gcc" "src/comm/CMakeFiles/mbd_comm.dir/src/stats.cpp.o.d"
  "/root/repo/src/comm/src/world.cpp" "src/comm/CMakeFiles/mbd_comm.dir/src/world.cpp.o" "gcc" "src/comm/CMakeFiles/mbd_comm.dir/src/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mbd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
