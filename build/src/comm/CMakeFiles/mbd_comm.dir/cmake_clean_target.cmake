file(REMOVE_RECURSE
  "libmbd_comm.a"
)
