# Empty compiler generated dependencies file for mbd_comm.
# This may be replaced when dependencies are built.
