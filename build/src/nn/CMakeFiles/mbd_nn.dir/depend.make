# Empty dependencies file for mbd_nn.
# This may be replaced when dependencies are built.
