file(REMOVE_RECURSE
  "libmbd_nn.a"
)
