
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/src/layer_spec.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/layer_spec.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/layer_spec.cpp.o.d"
  "/root/repo/src/nn/src/layers.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/layers.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/layers.cpp.o.d"
  "/root/repo/src/nn/src/loss.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/loss.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/loss.cpp.o.d"
  "/root/repo/src/nn/src/models.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/models.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/models.cpp.o.d"
  "/root/repo/src/nn/src/network.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/network.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/network.cpp.o.d"
  "/root/repo/src/nn/src/serialize.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/serialize.cpp.o.d"
  "/root/repo/src/nn/src/trainer.cpp" "src/nn/CMakeFiles/mbd_nn.dir/src/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/mbd_nn.dir/src/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/mbd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mbd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
