file(REMOVE_RECURSE
  "CMakeFiles/mbd_nn.dir/src/layer_spec.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/layer_spec.cpp.o.d"
  "CMakeFiles/mbd_nn.dir/src/layers.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/layers.cpp.o.d"
  "CMakeFiles/mbd_nn.dir/src/loss.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/loss.cpp.o.d"
  "CMakeFiles/mbd_nn.dir/src/models.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/models.cpp.o.d"
  "CMakeFiles/mbd_nn.dir/src/network.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/network.cpp.o.d"
  "CMakeFiles/mbd_nn.dir/src/serialize.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/serialize.cpp.o.d"
  "CMakeFiles/mbd_nn.dir/src/trainer.cpp.o"
  "CMakeFiles/mbd_nn.dir/src/trainer.cpp.o.d"
  "libmbd_nn.a"
  "libmbd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
