
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/src/batch_parallel.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/batch_parallel.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/batch_parallel.cpp.o.d"
  "/root/repo/src/parallel/src/common.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/common.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/common.cpp.o.d"
  "/root/repo/src/parallel/src/domain_conv.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/domain_conv.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/domain_conv.cpp.o.d"
  "/root/repo/src/parallel/src/domain_parallel.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/domain_parallel.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/domain_parallel.cpp.o.d"
  "/root/repo/src/parallel/src/hybrid.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/hybrid.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/hybrid.cpp.o.d"
  "/root/repo/src/parallel/src/integrated.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/integrated.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/integrated.cpp.o.d"
  "/root/repo/src/parallel/src/mixed_grid.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/mixed_grid.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/mixed_grid.cpp.o.d"
  "/root/repo/src/parallel/src/model_parallel.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/model_parallel.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/model_parallel.cpp.o.d"
  "/root/repo/src/parallel/src/summa.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/summa.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/summa.cpp.o.d"
  "/root/repo/src/parallel/src/validation.cpp" "src/parallel/CMakeFiles/mbd_parallel.dir/src/validation.cpp.o" "gcc" "src/parallel/CMakeFiles/mbd_parallel.dir/src/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/mbd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mbd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/mbd_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mbd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mbd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
