# Empty compiler generated dependencies file for mbd_parallel.
# This may be replaced when dependencies are built.
