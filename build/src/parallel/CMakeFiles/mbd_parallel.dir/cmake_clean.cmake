file(REMOVE_RECURSE
  "CMakeFiles/mbd_parallel.dir/src/batch_parallel.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/batch_parallel.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/common.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/common.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/domain_conv.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/domain_conv.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/domain_parallel.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/domain_parallel.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/hybrid.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/hybrid.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/integrated.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/integrated.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/mixed_grid.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/mixed_grid.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/model_parallel.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/model_parallel.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/summa.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/summa.cpp.o.d"
  "CMakeFiles/mbd_parallel.dir/src/validation.cpp.o"
  "CMakeFiles/mbd_parallel.dir/src/validation.cpp.o.d"
  "libmbd_parallel.a"
  "libmbd_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
