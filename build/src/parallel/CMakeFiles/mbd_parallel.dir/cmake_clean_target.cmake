file(REMOVE_RECURSE
  "libmbd_parallel.a"
)
