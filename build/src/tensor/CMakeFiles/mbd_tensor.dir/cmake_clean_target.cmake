file(REMOVE_RECURSE
  "libmbd_tensor.a"
)
