# Empty dependencies file for mbd_tensor.
# This may be replaced when dependencies are built.
