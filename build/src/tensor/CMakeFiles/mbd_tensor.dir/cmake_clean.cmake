file(REMOVE_RECURSE
  "CMakeFiles/mbd_tensor.dir/src/gemm.cpp.o"
  "CMakeFiles/mbd_tensor.dir/src/gemm.cpp.o.d"
  "CMakeFiles/mbd_tensor.dir/src/im2col.cpp.o"
  "CMakeFiles/mbd_tensor.dir/src/im2col.cpp.o.d"
  "CMakeFiles/mbd_tensor.dir/src/matrix.cpp.o"
  "CMakeFiles/mbd_tensor.dir/src/matrix.cpp.o.d"
  "CMakeFiles/mbd_tensor.dir/src/ops.cpp.o"
  "CMakeFiles/mbd_tensor.dir/src/ops.cpp.o.d"
  "CMakeFiles/mbd_tensor.dir/src/tensor4.cpp.o"
  "CMakeFiles/mbd_tensor.dir/src/tensor4.cpp.o.d"
  "libmbd_tensor.a"
  "libmbd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
