add_test([=[Umbrella.ExposesEverySubsystem]=]  /root/repo/build/tests/test_integration_umbrella [==[--gtest_filter=Umbrella.ExposesEverySubsystem]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.ExposesEverySubsystem]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_integration_umbrella_TESTS Umbrella.ExposesEverySubsystem)
