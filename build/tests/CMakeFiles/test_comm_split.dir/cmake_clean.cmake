file(REMOVE_RECURSE
  "CMakeFiles/test_comm_split.dir/comm/test_split.cpp.o"
  "CMakeFiles/test_comm_split.dir/comm/test_split.cpp.o.d"
  "test_comm_split"
  "test_comm_split.pdb"
  "test_comm_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
