file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_machine.dir/costmodel/test_machine.cpp.o"
  "CMakeFiles/test_costmodel_machine.dir/costmodel/test_machine.cpp.o.d"
  "test_costmodel_machine"
  "test_costmodel_machine.pdb"
  "test_costmodel_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
