# Empty compiler generated dependencies file for test_costmodel_machine.
# This may be replaced when dependencies are built.
