file(REMOVE_RECURSE
  "CMakeFiles/test_nn_models.dir/nn/test_models.cpp.o"
  "CMakeFiles/test_nn_models.dir/nn/test_models.cpp.o.d"
  "test_nn_models"
  "test_nn_models.pdb"
  "test_nn_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
