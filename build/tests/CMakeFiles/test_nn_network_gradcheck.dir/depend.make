# Empty dependencies file for test_nn_network_gradcheck.
# This may be replaced when dependencies are built.
