file(REMOVE_RECURSE
  "CMakeFiles/test_nn_network_gradcheck.dir/nn/test_network_gradcheck.cpp.o"
  "CMakeFiles/test_nn_network_gradcheck.dir/nn/test_network_gradcheck.cpp.o.d"
  "test_nn_network_gradcheck"
  "test_nn_network_gradcheck.pdb"
  "test_nn_network_gradcheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_network_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
