file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_properties.dir/costmodel/test_properties.cpp.o"
  "CMakeFiles/test_costmodel_properties.dir/costmodel/test_properties.cpp.o.d"
  "test_costmodel_properties"
  "test_costmodel_properties.pdb"
  "test_costmodel_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
