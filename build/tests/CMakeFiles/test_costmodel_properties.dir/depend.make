# Empty dependencies file for test_costmodel_properties.
# This may be replaced when dependencies are built.
