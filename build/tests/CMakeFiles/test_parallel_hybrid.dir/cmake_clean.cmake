file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_hybrid.dir/parallel/test_hybrid.cpp.o"
  "CMakeFiles/test_parallel_hybrid.dir/parallel/test_hybrid.cpp.o.d"
  "test_parallel_hybrid"
  "test_parallel_hybrid.pdb"
  "test_parallel_hybrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
