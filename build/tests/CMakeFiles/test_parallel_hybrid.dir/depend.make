# Empty dependencies file for test_parallel_hybrid.
# This may be replaced when dependencies are built.
