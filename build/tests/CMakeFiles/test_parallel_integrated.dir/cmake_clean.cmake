file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_integrated.dir/parallel/test_integrated.cpp.o"
  "CMakeFiles/test_parallel_integrated.dir/parallel/test_integrated.cpp.o.d"
  "test_parallel_integrated"
  "test_parallel_integrated.pdb"
  "test_parallel_integrated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_integrated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
