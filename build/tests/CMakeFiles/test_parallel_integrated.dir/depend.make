# Empty dependencies file for test_parallel_integrated.
# This may be replaced when dependencies are built.
