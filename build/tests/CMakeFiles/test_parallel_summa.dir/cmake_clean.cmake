file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_summa.dir/parallel/test_summa.cpp.o"
  "CMakeFiles/test_parallel_summa.dir/parallel/test_summa.cpp.o.d"
  "test_parallel_summa"
  "test_parallel_summa.pdb"
  "test_parallel_summa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
