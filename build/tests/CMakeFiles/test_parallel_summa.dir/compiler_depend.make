# Empty compiler generated dependencies file for test_parallel_summa.
# This may be replaced when dependencies are built.
