file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_memory.dir/costmodel/test_memory.cpp.o"
  "CMakeFiles/test_costmodel_memory.dir/costmodel/test_memory.cpp.o.d"
  "test_costmodel_memory"
  "test_costmodel_memory.pdb"
  "test_costmodel_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
