# Empty dependencies file for test_costmodel_memory.
# This may be replaced when dependencies are built.
