# Empty compiler generated dependencies file for test_integration_umbrella.
# This may be replaced when dependencies are built.
