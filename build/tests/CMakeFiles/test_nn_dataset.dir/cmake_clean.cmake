file(REMOVE_RECURSE
  "CMakeFiles/test_nn_dataset.dir/nn/test_dataset.cpp.o"
  "CMakeFiles/test_nn_dataset.dir/nn/test_dataset.cpp.o.d"
  "test_nn_dataset"
  "test_nn_dataset.pdb"
  "test_nn_dataset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
