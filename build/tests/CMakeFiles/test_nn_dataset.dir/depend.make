# Empty dependencies file for test_nn_dataset.
# This may be replaced when dependencies are built.
