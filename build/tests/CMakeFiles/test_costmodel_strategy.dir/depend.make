# Empty dependencies file for test_costmodel_strategy.
# This may be replaced when dependencies are built.
