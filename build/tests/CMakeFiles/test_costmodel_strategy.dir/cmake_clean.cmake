file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_strategy.dir/costmodel/test_strategy.cpp.o"
  "CMakeFiles/test_costmodel_strategy.dir/costmodel/test_strategy.cpp.o.d"
  "test_costmodel_strategy"
  "test_costmodel_strategy.pdb"
  "test_costmodel_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
