file(REMOVE_RECURSE
  "CMakeFiles/test_nn_layer_spec.dir/nn/test_layer_spec.cpp.o"
  "CMakeFiles/test_nn_layer_spec.dir/nn/test_layer_spec.cpp.o.d"
  "test_nn_layer_spec"
  "test_nn_layer_spec.pdb"
  "test_nn_layer_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_layer_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
