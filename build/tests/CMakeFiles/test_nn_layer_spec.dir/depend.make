# Empty dependencies file for test_nn_layer_spec.
# This may be replaced when dependencies are built.
