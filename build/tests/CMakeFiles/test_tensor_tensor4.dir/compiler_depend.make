# Empty compiler generated dependencies file for test_tensor_tensor4.
# This may be replaced when dependencies are built.
