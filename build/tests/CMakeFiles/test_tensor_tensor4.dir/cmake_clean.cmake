file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_tensor4.dir/tensor/test_tensor4.cpp.o"
  "CMakeFiles/test_tensor_tensor4.dir/tensor/test_tensor4.cpp.o.d"
  "test_tensor_tensor4"
  "test_tensor_tensor4.pdb"
  "test_tensor_tensor4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_tensor4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
