# Empty dependencies file for test_costmodel_replay.
# This may be replaced when dependencies are built.
