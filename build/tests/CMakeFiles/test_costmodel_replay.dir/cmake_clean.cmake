file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_replay.dir/costmodel/test_replay.cpp.o"
  "CMakeFiles/test_costmodel_replay.dir/costmodel/test_replay.cpp.o.d"
  "test_costmodel_replay"
  "test_costmodel_replay.pdb"
  "test_costmodel_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
