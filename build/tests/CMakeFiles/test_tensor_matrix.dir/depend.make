# Empty dependencies file for test_tensor_matrix.
# This may be replaced when dependencies are built.
