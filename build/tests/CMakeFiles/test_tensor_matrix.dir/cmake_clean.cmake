file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_matrix.dir/tensor/test_matrix.cpp.o"
  "CMakeFiles/test_tensor_matrix.dir/tensor/test_matrix.cpp.o.d"
  "test_tensor_matrix"
  "test_tensor_matrix.pdb"
  "test_tensor_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
