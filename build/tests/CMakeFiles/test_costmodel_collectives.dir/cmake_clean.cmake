file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_collectives.dir/costmodel/test_collective_costs.cpp.o"
  "CMakeFiles/test_costmodel_collectives.dir/costmodel/test_collective_costs.cpp.o.d"
  "test_costmodel_collectives"
  "test_costmodel_collectives.pdb"
  "test_costmodel_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
