# Empty compiler generated dependencies file for test_costmodel_collectives.
# This may be replaced when dependencies are built.
