file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_optimizer.dir/costmodel/test_optimizer.cpp.o"
  "CMakeFiles/test_costmodel_optimizer.dir/costmodel/test_optimizer.cpp.o.d"
  "test_costmodel_optimizer"
  "test_costmodel_optimizer.pdb"
  "test_costmodel_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
