file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_hierarchy.dir/costmodel/test_hierarchy.cpp.o"
  "CMakeFiles/test_costmodel_hierarchy.dir/costmodel/test_hierarchy.cpp.o.d"
  "test_costmodel_hierarchy"
  "test_costmodel_hierarchy.pdb"
  "test_costmodel_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
