file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_im2col.dir/tensor/test_im2col.cpp.o"
  "CMakeFiles/test_tensor_im2col.dir/tensor/test_im2col.cpp.o.d"
  "test_tensor_im2col"
  "test_tensor_im2col.pdb"
  "test_tensor_im2col[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_im2col.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
