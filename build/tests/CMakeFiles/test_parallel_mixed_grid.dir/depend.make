# Empty dependencies file for test_parallel_mixed_grid.
# This may be replaced when dependencies are built.
