file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_mixed_grid.dir/parallel/test_mixed_grid.cpp.o"
  "CMakeFiles/test_parallel_mixed_grid.dir/parallel/test_mixed_grid.cpp.o.d"
  "test_parallel_mixed_grid"
  "test_parallel_mixed_grid.pdb"
  "test_parallel_mixed_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_mixed_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
