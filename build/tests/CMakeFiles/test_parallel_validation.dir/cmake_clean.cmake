file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_validation.dir/parallel/test_validation.cpp.o"
  "CMakeFiles/test_parallel_validation.dir/parallel/test_validation.cpp.o.d"
  "test_parallel_validation"
  "test_parallel_validation.pdb"
  "test_parallel_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
