# Empty dependencies file for test_support_table.
# This may be replaced when dependencies are built.
