# Empty compiler generated dependencies file for test_support_units.
# This may be replaced when dependencies are built.
