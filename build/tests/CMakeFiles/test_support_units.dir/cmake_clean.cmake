file(REMOVE_RECURSE
  "CMakeFiles/test_support_units.dir/support/test_units.cpp.o"
  "CMakeFiles/test_support_units.dir/support/test_units.cpp.o.d"
  "test_support_units"
  "test_support_units.pdb"
  "test_support_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
