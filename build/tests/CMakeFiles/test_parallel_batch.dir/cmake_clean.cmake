file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_batch.dir/parallel/test_batch_parallel.cpp.o"
  "CMakeFiles/test_parallel_batch.dir/parallel/test_batch_parallel.cpp.o.d"
  "test_parallel_batch"
  "test_parallel_batch.pdb"
  "test_parallel_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
