# Empty dependencies file for test_parallel_batch.
# This may be replaced when dependencies are built.
