# Empty compiler generated dependencies file for test_parallel_model.
# This may be replaced when dependencies are built.
