file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_model.dir/parallel/test_model_parallel.cpp.o"
  "CMakeFiles/test_parallel_model.dir/parallel/test_model_parallel.cpp.o.d"
  "test_parallel_model"
  "test_parallel_model.pdb"
  "test_parallel_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
