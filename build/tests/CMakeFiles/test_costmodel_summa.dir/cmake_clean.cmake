file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_summa.dir/costmodel/test_summa.cpp.o"
  "CMakeFiles/test_costmodel_summa.dir/costmodel/test_summa.cpp.o.d"
  "test_costmodel_summa"
  "test_costmodel_summa.pdb"
  "test_costmodel_summa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
