# Empty compiler generated dependencies file for test_costmodel_summa.
# This may be replaced when dependencies are built.
