file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_domain.dir/parallel/test_domain_parallel.cpp.o"
  "CMakeFiles/test_parallel_domain.dir/parallel/test_domain_parallel.cpp.o.d"
  "test_parallel_domain"
  "test_parallel_domain.pdb"
  "test_parallel_domain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
