# Empty compiler generated dependencies file for test_parallel_domain.
# This may be replaced when dependencies are built.
