file(REMOVE_RECURSE
  "CMakeFiles/test_support_check.dir/support/test_check.cpp.o"
  "CMakeFiles/test_support_check.dir/support/test_check.cpp.o.d"
  "test_support_check"
  "test_support_check.pdb"
  "test_support_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
