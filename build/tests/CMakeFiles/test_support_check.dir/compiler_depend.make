# Empty compiler generated dependencies file for test_support_check.
# This may be replaced when dependencies are built.
