#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "mbd::mbd_support" for configuration "RelWithDebInfo"
set_property(TARGET mbd::mbd_support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbd::mbd_support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbd_support.a"
  )

list(APPEND _cmake_import_check_targets mbd::mbd_support )
list(APPEND _cmake_import_check_files_for_mbd::mbd_support "${_IMPORT_PREFIX}/lib/libmbd_support.a" )

# Import target "mbd::mbd_comm" for configuration "RelWithDebInfo"
set_property(TARGET mbd::mbd_comm APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbd::mbd_comm PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbd_comm.a"
  )

list(APPEND _cmake_import_check_targets mbd::mbd_comm )
list(APPEND _cmake_import_check_files_for_mbd::mbd_comm "${_IMPORT_PREFIX}/lib/libmbd_comm.a" )

# Import target "mbd::mbd_tensor" for configuration "RelWithDebInfo"
set_property(TARGET mbd::mbd_tensor APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbd::mbd_tensor PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbd_tensor.a"
  )

list(APPEND _cmake_import_check_targets mbd::mbd_tensor )
list(APPEND _cmake_import_check_files_for_mbd::mbd_tensor "${_IMPORT_PREFIX}/lib/libmbd_tensor.a" )

# Import target "mbd::mbd_nn" for configuration "RelWithDebInfo"
set_property(TARGET mbd::mbd_nn APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbd::mbd_nn PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbd_nn.a"
  )

list(APPEND _cmake_import_check_targets mbd::mbd_nn )
list(APPEND _cmake_import_check_files_for_mbd::mbd_nn "${_IMPORT_PREFIX}/lib/libmbd_nn.a" )

# Import target "mbd::mbd_costmodel" for configuration "RelWithDebInfo"
set_property(TARGET mbd::mbd_costmodel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbd::mbd_costmodel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbd_costmodel.a"
  )

list(APPEND _cmake_import_check_targets mbd::mbd_costmodel )
list(APPEND _cmake_import_check_files_for_mbd::mbd_costmodel "${_IMPORT_PREFIX}/lib/libmbd_costmodel.a" )

# Import target "mbd::mbd_parallel" for configuration "RelWithDebInfo"
set_property(TARGET mbd::mbd_parallel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(mbd::mbd_parallel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmbd_parallel.a"
  )

list(APPEND _cmake_import_check_targets mbd::mbd_parallel )
list(APPEND _cmake_import_check_files_for_mbd::mbd_parallel "${_IMPORT_PREFIX}/lib/libmbd_parallel.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
