file(REMOVE_RECURSE
  "../bench/bench_memory_model"
  "../bench/bench_memory_model.pdb"
  "CMakeFiles/bench_memory_model.dir/bench_memory_model.cpp.o"
  "CMakeFiles/bench_memory_model.dir/bench_memory_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
