# Empty compiler generated dependencies file for bench_executable_scaling.
# This may be replaced when dependencies are built.
