file(REMOVE_RECURSE
  "../bench/bench_executable_scaling"
  "../bench/bench_executable_scaling.pdb"
  "CMakeFiles/bench_executable_scaling.dir/bench_executable_scaling.cpp.o"
  "CMakeFiles/bench_executable_scaling.dir/bench_executable_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_executable_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
