file(REMOVE_RECURSE
  "../bench/bench_fig8_overlap"
  "../bench/bench_fig8_overlap.pdb"
  "CMakeFiles/bench_fig8_overlap.dir/bench_fig8_overlap.cpp.o"
  "CMakeFiles/bench_fig8_overlap.dir/bench_fig8_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
