file(REMOVE_RECURSE
  "../bench/bench_gemm"
  "../bench/bench_gemm.pdb"
  "CMakeFiles/bench_gemm.dir/bench_gemm.cpp.o"
  "CMakeFiles/bench_gemm.dir/bench_gemm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
