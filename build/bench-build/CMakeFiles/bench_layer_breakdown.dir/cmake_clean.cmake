file(REMOVE_RECURSE
  "../bench/bench_layer_breakdown"
  "../bench/bench_layer_breakdown.pdb"
  "CMakeFiles/bench_layer_breakdown.dir/bench_layer_breakdown.cpp.o"
  "CMakeFiles/bench_layer_breakdown.dir/bench_layer_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layer_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
