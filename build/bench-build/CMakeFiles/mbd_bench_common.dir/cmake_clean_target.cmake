file(REMOVE_RECURSE
  "../lib/libmbd_bench_common.a"
)
