file(REMOVE_RECURSE
  "../lib/libmbd_bench_common.a"
  "../lib/libmbd_bench_common.pdb"
  "CMakeFiles/mbd_bench_common.dir/common.cpp.o"
  "CMakeFiles/mbd_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
