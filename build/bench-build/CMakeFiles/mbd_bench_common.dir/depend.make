# Empty dependencies file for mbd_bench_common.
# This may be replaced when dependencies are built.
