file(REMOVE_RECURSE
  "../bench/bench_fig7_fc_only"
  "../bench/bench_fig7_fc_only.pdb"
  "CMakeFiles/bench_fig7_fc_only.dir/bench_fig7_fc_only.cpp.o"
  "CMakeFiles/bench_fig7_fc_only.dir/bench_fig7_fc_only.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fc_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
