# Empty dependencies file for bench_fig7_fc_only.
# This may be replaced when dependencies are built.
