file(REMOVE_RECURSE
  "../bench/bench_validation_volume"
  "../bench/bench_validation_volume.pdb"
  "CMakeFiles/bench_validation_volume.dir/bench_validation_volume.cpp.o"
  "CMakeFiles/bench_validation_volume.dir/bench_validation_volume.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
