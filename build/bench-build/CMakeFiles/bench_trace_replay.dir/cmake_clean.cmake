file(REMOVE_RECURSE
  "../bench/bench_trace_replay"
  "../bench/bench_trace_replay.pdb"
  "CMakeFiles/bench_trace_replay.dir/bench_trace_replay.cpp.o"
  "CMakeFiles/bench_trace_replay.dir/bench_trace_replay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
