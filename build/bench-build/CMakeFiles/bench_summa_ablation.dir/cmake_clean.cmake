file(REMOVE_RECURSE
  "../bench/bench_summa_ablation"
  "../bench/bench_summa_ablation.pdb"
  "CMakeFiles/bench_summa_ablation.dir/bench_summa_ablation.cpp.o"
  "CMakeFiles/bench_summa_ablation.dir/bench_summa_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summa_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
