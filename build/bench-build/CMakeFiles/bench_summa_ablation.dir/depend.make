# Empty dependencies file for bench_summa_ablation.
# This may be replaced when dependencies are built.
