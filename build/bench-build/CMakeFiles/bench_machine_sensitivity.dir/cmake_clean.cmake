file(REMOVE_RECURSE
  "../bench/bench_machine_sensitivity"
  "../bench/bench_machine_sensitivity.pdb"
  "CMakeFiles/bench_machine_sensitivity.dir/bench_machine_sensitivity.cpp.o"
  "CMakeFiles/bench_machine_sensitivity.dir/bench_machine_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
