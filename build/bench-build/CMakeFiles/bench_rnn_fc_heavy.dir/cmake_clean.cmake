file(REMOVE_RECURSE
  "../bench/bench_rnn_fc_heavy"
  "../bench/bench_rnn_fc_heavy.pdb"
  "CMakeFiles/bench_rnn_fc_heavy.dir/bench_rnn_fc_heavy.cpp.o"
  "CMakeFiles/bench_rnn_fc_heavy.dir/bench_rnn_fc_heavy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rnn_fc_heavy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
