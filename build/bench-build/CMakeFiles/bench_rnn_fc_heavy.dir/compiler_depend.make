# Empty compiler generated dependencies file for bench_rnn_fc_heavy.
# This may be replaced when dependencies are built.
