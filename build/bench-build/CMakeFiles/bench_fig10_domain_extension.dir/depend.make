# Empty dependencies file for bench_fig10_domain_extension.
# This may be replaced when dependencies are built.
