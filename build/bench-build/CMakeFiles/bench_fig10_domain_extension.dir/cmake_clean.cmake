file(REMOVE_RECURSE
  "../bench/bench_fig10_domain_extension"
  "../bench/bench_fig10_domain_extension.pdb"
  "CMakeFiles/bench_fig10_domain_extension.dir/bench_fig10_domain_extension.cpp.o"
  "CMakeFiles/bench_fig10_domain_extension.dir/bench_fig10_domain_extension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_domain_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
