file(REMOVE_RECURSE
  "../bench/bench_latency_ablation"
  "../bench/bench_latency_ablation.pdb"
  "CMakeFiles/bench_latency_ablation.dir/bench_latency_ablation.cpp.o"
  "CMakeFiles/bench_latency_ablation.dir/bench_latency_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
