# Empty compiler generated dependencies file for bench_latency_ablation.
# This may be replaced when dependencies are built.
