# Empty dependencies file for bench_eq5_crossover.
# This may be replaced when dependencies are built.
