file(REMOVE_RECURSE
  "../bench/bench_eq5_crossover"
  "../bench/bench_eq5_crossover.pdb"
  "CMakeFiles/bench_eq5_crossover.dir/bench_eq5_crossover.cpp.o"
  "CMakeFiles/bench_eq5_crossover.dir/bench_eq5_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq5_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
