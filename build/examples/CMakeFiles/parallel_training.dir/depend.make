# Empty dependencies file for parallel_training.
# This may be replaced when dependencies are built.
