
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scaling_explorer.cpp" "examples/CMakeFiles/scaling_explorer.dir/scaling_explorer.cpp.o" "gcc" "examples/CMakeFiles/scaling_explorer.dir/scaling_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/mbd_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/mbd_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mbd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mbd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/mbd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mbd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
