file(REMOVE_RECURSE
  "CMakeFiles/alexnet_planner.dir/alexnet_planner.cpp.o"
  "CMakeFiles/alexnet_planner.dir/alexnet_planner.cpp.o.d"
  "alexnet_planner"
  "alexnet_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
