# Empty dependencies file for alexnet_planner.
# This may be replaced when dependencies are built.
