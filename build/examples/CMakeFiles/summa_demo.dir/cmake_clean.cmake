file(REMOVE_RECURSE
  "CMakeFiles/summa_demo.dir/summa_demo.cpp.o"
  "CMakeFiles/summa_demo.dir/summa_demo.cpp.o.d"
  "summa_demo"
  "summa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
