# Empty dependencies file for summa_demo.
# This may be replaced when dependencies are built.
