# Sanitizer wiring for the whole tree (src/, tests/, examples/, bench/).
#
# MBD_SANITIZE is a comma-separated list of sanitizers to enable globally:
#   -DMBD_SANITIZE=thread              # TSan: races on Fabric/Mailbox state
#   -DMBD_SANITIZE=address,undefined   # ASan+UBSan: memory + UB
#   -DMBD_SANITIZE=leak                # standalone LeakSanitizer
#
# Flags are applied with add_compile_options/add_link_options from the top
# CMakeLists *before* any target is declared, so every object in the build —
# libraries, tests, examples, benches — is instrumented consistently (mixing
# instrumented and uninstrumented TUs produces false negatives under TSan).
#
# Illegal combinations (thread with address/leak) are rejected at configure
# time with the same error the compiler would eventually give, but sooner.

set(MBD_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to enable: address, undefined, thread, leak")

if(MBD_SANITIZE)
  string(REPLACE "," ";" _mbd_san_list "${MBD_SANITIZE}")
  set(_mbd_san_known address undefined thread leak)
  foreach(_san IN LISTS _mbd_san_list)
    if(NOT _san IN_LIST _mbd_san_known)
      message(FATAL_ERROR
        "MBD_SANITIZE: unknown sanitizer '${_san}' "
        "(expected a comma-separated subset of: address, undefined, thread, leak)")
    endif()
  endforeach()
  if("thread" IN_LIST _mbd_san_list AND
     ("address" IN_LIST _mbd_san_list OR "leak" IN_LIST _mbd_san_list))
    message(FATAL_ERROR
      "MBD_SANITIZE: 'thread' cannot be combined with 'address' or 'leak' "
      "(the runtimes share shadow memory)")
  endif()

  string(REPLACE ";" "," _mbd_san_flag "${_mbd_san_list}")
  message(STATUS "Sanitizers enabled: -fsanitize=${_mbd_san_flag}")

  add_compile_options(
    -fsanitize=${_mbd_san_flag}
    -fno-omit-frame-pointer     # usable stacks in sanitizer reports
  )
  if("undefined" IN_LIST _mbd_san_list)
    # Make every UBSan finding fatal instead of a log line CI would miss.
    add_compile_options(-fno-sanitize-recover=undefined)
  endif()
  add_link_options(-fsanitize=${_mbd_san_flag})
endif()
