#!/usr/bin/env python3
"""Validate serving artifacts (serving-smoke and perf-regression CI jobs).

Two modes:

    scripts/check_serving.py serve serve.json
        Schema-check a tools/mbd_serve result: every field present, the
        accept/reject counts add up to the request count, the latency
        percentiles are ordered and positive whenever something was served,
        and the dispatch batch is at least 1.

    scripts/check_serving.py bench BENCH_serving.json [--min-speedup 2.0]
        Assert the committed bench_serving baseline still shows dynamic
        batching beating batch=1 dispatch: ns("serve_b1 p=4") over
        ns("serve_dynamic p=4") must be at least --min-speedup.

Exit status: 0 clean, 1 check failed, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys

SERVE_FIELDS = {
    "tool": str,
    "trainer": str,
    "ranks": int,
    "requests": int,
    "accepted": int,
    "rejected_queue_full": (int, float),
    "rejected_deadline": (int, float),
    "rejected_shutdown": (int, float),
    "batch_size": int,
    "p50_us": (int, float),
    "p99_us": (int, float),
    "throughput_rps": (int, float),
}


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def check_serve(path: str) -> int:
    doc = load_json(path)
    if not isinstance(doc, dict):
        sys.exit(f"error: {path}: expected a JSON object")

    errors = []
    for field, want in SERVE_FIELDS.items():
        if field not in doc:
            errors.append(f"missing field {field!r}")
        elif not isinstance(doc[field], want) or isinstance(doc[field], bool):
            errors.append(f"field {field!r} has type {type(doc[field]).__name__}")
    if errors:
        for e in errors:
            print(f"FAIL  {e}")
        return 1

    if doc["tool"] != "mbd_serve":
        errors.append(f'tool is {doc["tool"]!r}, expected "mbd_serve"')
    rejected = (
        doc["rejected_queue_full"]
        + doc["rejected_deadline"]
        + doc["rejected_shutdown"]
    )
    if doc["accepted"] + rejected != doc["requests"]:
        errors.append(
            f'{doc["accepted"]} accepted + {rejected:g} rejected '
            f'!= {doc["requests"]} requests'
        )
    if doc["batch_size"] < 1:
        errors.append(f'batch_size {doc["batch_size"]} < 1')
    if doc["accepted"] > 0:
        if not 0 < doc["p50_us"] <= doc["p99_us"]:
            errors.append(
                f'latency percentiles out of order: p50={doc["p50_us"]:g}us '
                f'p99={doc["p99_us"]:g}us'
            )
        if doc["throughput_rps"] <= 0:
            errors.append(f'throughput_rps {doc["throughput_rps"]:g} <= 0')

    for e in errors:
        print(f"FAIL  {e}")
    if errors:
        return 1
    print(
        f'OK    {path}: {doc["accepted"]}/{doc["requests"]} accepted, '
        f'batch={doc["batch_size"]}, p50={doc["p50_us"]:.0f}us '
        f'p99={doc["p99_us"]:.0f}us, {doc["throughput_rps"]:.0f} req/s'
    )
    return 0


def check_bench(path: str, min_speedup: float) -> int:
    doc = load_json(path)
    if not isinstance(doc, list):
        sys.exit(f"error: {path}: expected a JSON array of records")

    ns = {}
    for rec in doc:
        if isinstance(rec, dict) and "ns" in rec:
            ns[rec.get("case")] = rec["ns"]
    missing = [c for c in ("serve_b1 p=4", "serve_dynamic p=4") if c not in ns]
    if missing:
        sys.exit(f"error: {path}: missing cases {missing}")
    if ns["serve_dynamic p=4"] <= 0:
        sys.exit(f"error: {path}: non-positive dynamic ns")

    speedup = ns["serve_b1 p=4"] / ns["serve_dynamic p=4"]
    if speedup < min_speedup:
        print(
            f"FAIL  dynamic batching speedup {speedup:.2f}x "
            f"< required {min_speedup:.2f}x"
        )
        return 1
    print(f"OK    {path}: dynamic batching {speedup:.2f}x over batch=1")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="mode", required=True)

    ap_serve = sub.add_parser("serve", help="schema-check a mbd_serve result")
    ap_serve.add_argument("json", help="JSON emitted by tools/mbd_serve")

    ap_bench = sub.add_parser(
        "bench", help="check the bench_serving speedup criterion"
    )
    ap_bench.add_argument("json", help="BENCH_serving.json (or a fresh run)")
    ap_bench.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required b1/dynamic throughput ratio (default 2.0)",
    )

    args = ap.parse_args()
    if args.mode == "serve":
        return check_serve(args.json)
    if args.min_speedup <= 0:
        ap.error("--min-speedup must be positive")
    return check_bench(args.json, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
