#!/usr/bin/env bash
# clang-tidy gate over the library, tool, and bench sources (src/**/*.cpp,
# tools/**/*.cpp, bench/**/*.cpp), driven by the CMake compilation database
# so include paths and C++20 flags match the real build. Fails (exit 1) on
# any warning — .clang-tidy sets WarningsAsErrors. Files run in parallel and
# a per-file timing summary prints at the end so slow TUs are visible.
#
#   scripts/run_clang_tidy.sh [--allow-missing] [-j N] [build-dir]
#
#   --allow-missing   exit 0 with a notice when clang-tidy is not installed
#                     (for developer boxes without LLVM; CI installs it and
#                     must NOT pass this flag)
#   -j N              parallel clang-tidy processes (default: nproc)
#   build-dir         compilation-database dir (default: build-tidy, created)
set -euo pipefail

cd "$(dirname "$0")/.."

ALLOW_MISSING=0
BUILD_DIR="build-tidy"
JOBS="$(nproc 2>/dev/null || echo 4)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --allow-missing) ALLOW_MISSING=1 ;;
    -j) JOBS="$2"; shift ;;
    -j*) JOBS="${1#-j}" ;;
    -*) echo "unknown flag: $1" >&2; exit 2 ;;
    *) BUILD_DIR="$1" ;;
  esac
  shift
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [[ "$ALLOW_MISSING" == 1 ]]; then
    echo "clang-tidy not found; skipping static-analysis gate (--allow-missing)"
    exit 0
  fi
  echo "error: clang-tidy not found (set CLANG_TIDY or pass --allow-missing)" >&2
  exit 1
fi

# The gate covers src/, tools/, and bench/; tests follow the same config via
# editor integration but do not block CI. Benches need Google Benchmark to
# configure — boxes without it fall back to a library+tools gate.
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  if ! cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DMBD_BUILD_TESTS=OFF -DMBD_BUILD_EXAMPLES=OFF \
      >/dev/null 2>"${BUILD_DIR}-configure.log"; then
    echo "notice: configure with benches failed" \
         "(see ${BUILD_DIR}-configure.log); retrying without bench/" >&2
    rm -rf "${BUILD_DIR}"
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DMBD_BUILD_TESTS=OFF -DMBD_BUILD_EXAMPLES=OFF -DMBD_BUILD_BENCH=OFF \
      >/dev/null
  fi
fi

# Derive the file list from the compilation database itself so the gate and
# the compiler always agree on what is buildable.
mapfile -t SOURCES < <(python3 - "$BUILD_DIR" <<'EOF'
import json, os, sys
root = os.getcwd()
with open(os.path.join(sys.argv[1], "compile_commands.json")) as f:
    entries = json.load(f)
files = set()
for e in entries:
    path = e["file"]
    if not os.path.isabs(path):
        path = os.path.join(e["directory"], path)
    rel = os.path.relpath(os.path.normpath(path), root)
    if rel.split(os.sep)[0] in ("src", "tools", "bench"):
        files.add(rel)
print("\n".join(sorted(files)))
EOF
)
echo "clang-tidy ($("$TIDY" --version | head -n1)) over ${#SOURCES[@]} files, -j${JOBS}"

TIMES_DIR="$(mktemp -d)"
trap 'rm -rf "$TIMES_DIR"' EXIT

run_one() {
  local f="$1" start end status=0 out
  start=$(date +%s%N)
  out=$("$TIDY" -p "$BUILD_DIR" --quiet "$f" 2>&1) || status=1
  end=$(date +%s%N)
  printf '%d %s\n' $(( (end - start) / 1000000 )) "$f" \
    > "$TIMES_DIR/${f//\//_}.time"
  if [[ -n "$out" ]]; then
    printf '== %s\n%s\n' "$f" "$out"
  fi
  if [[ "$status" != 0 ]]; then
    echo "FAIL: $f" >&2
  fi
  return "$status"
}
export TIDY BUILD_DIR TIMES_DIR
export -f run_one

FAILED=0
if ! printf '%s\n' "${SOURCES[@]}" \
    | xargs -P "$JOBS" -n 1 bash -c 'run_one "$1"' _; then
  FAILED=1
fi

echo "-- per-file timing (slowest 10) --"
sort -rn "$TIMES_DIR"/*.time | head -n 10 \
  | awk '{printf "  %7.2fs  %s\n", $1 / 1000, $2}'
cat "$TIMES_DIR"/*.time \
  | awk '{s += $1} END {printf "total tidy CPU time: %.1fs across %d files\n", s / 1000, NR}'

if [[ "$FAILED" != 0 ]]; then
  echo "clang-tidy gate failed — fix the warnings above or justify a" \
       "suppression in .clang-tidy" >&2
  exit 1
fi
echo "clang-tidy gate clean"
