#!/usr/bin/env bash
# clang-tidy gate over the library sources (src/**/*.cpp), driven by the
# CMake compilation database so include paths and C++20 flags match the real
# build. Fails (exit 1) on any warning — .clang-tidy sets WarningsAsErrors.
#
#   scripts/run_clang_tidy.sh [--allow-missing] [build-dir]
#
#   --allow-missing   exit 0 with a notice when clang-tidy is not installed
#                     (for developer boxes without LLVM; CI installs it and
#                     must NOT pass this flag)
#   build-dir         compilation-database dir (default: build-tidy, created)
set -euo pipefail

cd "$(dirname "$0")/.."

ALLOW_MISSING=0
BUILD_DIR="build-tidy"
for arg in "$@"; do
  case "$arg" in
    --allow-missing) ALLOW_MISSING=1 ;;
    -*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [[ "$ALLOW_MISSING" == 1 ]]; then
    echo "clang-tidy not found; skipping static-analysis gate (--allow-missing)"
    exit 0
  fi
  echo "error: clang-tidy not found (set CLANG_TIDY or pass --allow-missing)" >&2
  exit 1
fi

# Library sources only: the gate covers src/; tests and benches follow the
# same config via editor integration but do not block CI.
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DMBD_BUILD_TESTS=OFF -DMBD_BUILD_BENCH=OFF -DMBD_BUILD_EXAMPLES=OFF \
    >/dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "clang-tidy ($("$TIDY" --version | head -n1)) over ${#SOURCES[@]} files"

FAILED=0
for f in "${SOURCES[@]}"; do
  if ! "$TIDY" -p "${BUILD_DIR}" --quiet "$f"; then
    FAILED=1
    echo "FAIL: $f" >&2
  fi
done

if [[ "$FAILED" != 0 ]]; then
  echo "clang-tidy gate failed — fix the warnings above or justify a" \
       "suppression in .clang-tidy" >&2
  exit 1
fi
echo "clang-tidy gate clean"
