#!/usr/bin/env python3
"""Compare a fresh bench JSON run against a committed baseline.

    scripts/check_bench_regression.py --baseline BENCH_gemm.json \
        --fresh fresh.json [--threshold 1.25]

Both files hold a JSON array of records {bench, case, bytes, ns, gflops}
(see docs/benchmarks.md). Records are matched on (bench, case); a case is a
regression when fresh ns exceeds baseline ns by more than the threshold
ratio (default 1.25 = 25% slower). Cases present on only one side are
reported but never fail the gate, so adding or retiring benchmarks does not
require touching the baseline in the same commit. Records without an "ns"
field (metric records: {"case": "metric:...", "value": ...} from the obs
registry) are listed as METRIC and never gated — they are inventories, not
timings.

Exit status: 0 clean, 1 regression(s), 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_records(path: str) -> dict[tuple[str, str], dict]:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(data, list):
        sys.exit(f"error: {path}: expected a JSON array of records")
    out: dict[tuple[str, str], dict] = {}
    for rec in data:
        try:
            out[(rec["bench"], rec["case"])] = rec
        except (TypeError, KeyError):
            sys.exit(f"error: {path}: malformed record: {rec!r}")
    return out


def fmt_ns(ns: float | None) -> str:
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    ap.add_argument("--fresh", required=True, help="JSON from this run")
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when fresh_ns / baseline_ns exceeds this (default 1.25)",
    )
    args = ap.parse_args()
    if args.threshold <= 0:
        ap.error("--threshold must be positive")

    base = load_records(args.baseline)
    fresh = load_records(args.fresh)

    rows = []
    regressions = []
    for key in sorted(base.keys() | fresh.keys()):
        b, f = base.get(key), fresh.get(key)
        case = f"{key[0]}:{key[1]}"
        b_ns = b.get("ns") if b is not None else None
        f_ns = f.get("ns") if f is not None else None
        if b is None:
            rows.append((case, "-", fmt_ns(f_ns), "-", "NEW"))
            continue
        if f is None:
            rows.append((case, fmt_ns(b_ns), "-", "-", "MISSING"))
            continue
        if b_ns is None or f_ns is None:
            # Metric records (and any future non-timing record) carry no
            # "ns"; list them for visibility, never gate on them.
            rows.append((case, fmt_ns(b_ns), fmt_ns(f_ns), "-", "METRIC"))
            continue
        if b_ns <= 0:
            rows.append((case, fmt_ns(b_ns), fmt_ns(f_ns), "-", "SKIP"))
            continue
        ratio = f_ns / b_ns
        status = "OK"
        if ratio > args.threshold:
            status = "REGRESSION"
            regressions.append((case, ratio))
        elif ratio < 1 / args.threshold:
            status = "FASTER"
        rows.append((case, fmt_ns(b_ns), fmt_ns(f_ns), f"{ratio:.2f}x", status))

    headers = ("case", "baseline", "fresh", "ratio", "status")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i]) for i in range(5)]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} case(s) more than "
            f"{(args.threshold - 1) * 100:.0f}% slower than {args.baseline}:",
            file=sys.stderr,
        )
        for case, ratio in regressions:
            print(f"  {case}: {ratio:.2f}x baseline", file=sys.stderr)
        print(
            "If this slowdown is intended, re-baseline per docs/benchmarks.md.",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no case slower than {args.threshold:.2f}x baseline "
          f"({len(rows)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
