#!/usr/bin/env python3
"""Plot the scaling series emitted by examples/scaling_explorer.

Usage:
    build/examples/scaling_explorer --batch 2048 --pmax 2048 > scaling.csv
    scripts/plot_scaling.py scaling.csv [-o scaling.png]

Produces a log-log strong-scaling plot of per-iteration time for pure batch
parallelism, the best 1.5D grid, and the full Eq. 9 plan — the series behind
the paper's Figs. 6/7/10. Requires matplotlib.
"""
import argparse
import csv
import sys


def read_series(path):
    rows = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            rows.append(row)
    if not rows:
        sys.exit(f"no data rows in {path}")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", help="output of scaling_explorer")
    ap.add_argument("-o", "--output", default="scaling.png")
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    rows = read_series(args.csv)
    ps = [int(r["P"]) for r in rows]

    def series(key):
        xs, ys = [], []
        for r in rows:
            v = r[key]
            try:
                ys.append(float(v))
                xs.append(int(r["P"]))
            except ValueError:
                continue  # "infeasible"
        return xs, ys

    fig, ax = plt.subplots(figsize=(7, 5))
    for key, label, style in [
        ("pure_batch_s", "pure batch (Eq. 4)", "o--"),
        ("integrated_15d_s", "best 1.5D grid (Eq. 8)", "s-"),
        ("full_plan_s", "full plan (Eq. 9)", "^-"),
    ]:
        xs, ys = series(key)
        if xs:
            ax.loglog(xs, ys, style, label=label, base=2)
    ax.set_xlabel("processes P")
    ax.set_ylabel("time per iteration (s)")
    ax.set_title("Integrated model/batch/domain parallelism — strong scaling")
    ax.grid(True, which="both", alpha=0.3)
    ax.legend()
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output} ({min(ps)} <= P <= {max(ps)})")


if __name__ == "__main__":
    main()
