#!/usr/bin/env bash
# Regenerate the paper's full evaluation: every bench binary in order, with
# section separators, into stdout (tee to a file to archive a run).
#
#   scripts/run_all_benches.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: '${BUILD_DIR}/bench' not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

for b in "${BUILD_DIR}"/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo
  echo "################################################################"
  echo "## $(basename "$b")"
  echo "################################################################"
  "$b"
done
