#!/usr/bin/env bash
# Regenerate the paper's full evaluation: every bench binary in order, with
# section separators, into stdout (tee to a file to archive a run).
#
#   scripts/run_all_benches.sh [--json <dir>] [build-dir]
#
# With --json, each binary additionally writes machine-readable records to
# <dir>/<bench>.json (schema in docs/benchmarks.md) — the nightly workflow
# archives that directory so the perf trajectory accrues per commit.
#
# The binary list is explicit (not a directory glob) so a bench that fails to
# build is a loud error here rather than a silently missing section.
set -euo pipefail

BUILD_DIR="build"
JSON_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --json)
      [[ $# -ge 2 ]] || { echo "error: --json needs a directory" >&2; exit 2; }
      JSON_DIR="$2"
      shift 2
      ;;
    -*) echo "unknown flag: $1" >&2; exit 2 ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done
if [[ -n "${JSON_DIR}" ]]; then
  mkdir -p "${JSON_DIR}"
fi
if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: '${BUILD_DIR}/bench' not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

BENCHES=(
  bench_gemm
  bench_collectives
  bench_eq5_crossover
  bench_fig4_batch_size
  bench_fig6_strong_scaling
  bench_fig7_fc_only
  bench_fig8_overlap
  bench_fig9_weak_scaling
  bench_fig10_domain_extension
  bench_hierarchy
  bench_latency_ablation
  bench_layer_breakdown
  bench_machine_sensitivity
  bench_memory_model
  bench_rnn_fc_heavy
  bench_summa_ablation
  bench_trace_replay
  bench_validation_volume
  bench_executable_scaling
  bench_recovery
  bench_obs_overhead
)

for name in "${BENCHES[@]}"; do
  b="${BUILD_DIR}/bench/${name}"
  if [[ ! -x "$b" ]]; then
    echo "error: bench binary missing: $b" >&2
    exit 1
  fi
  echo
  echo "################################################################"
  echo "## ${name}"
  echo "################################################################"
  if [[ -n "${JSON_DIR}" ]]; then
    "$b" --json "${JSON_DIR}/${name}.json"
  else
    "$b"
  fi
done
