#!/usr/bin/env bash
# Regenerate the paper's full evaluation: every bench binary in order, with
# section separators, into stdout (tee to a file to archive a run).
#
#   scripts/run_all_benches.sh [build-dir]
#
# The binary list is explicit (not a directory glob) so a bench that fails to
# build is a loud error here rather than a silently missing section.
set -euo pipefail

BUILD_DIR="${1:-build}"
if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: '${BUILD_DIR}/bench' not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

BENCHES=(
  bench_gemm
  bench_collectives
  bench_eq5_crossover
  bench_fig4_batch_size
  bench_fig6_strong_scaling
  bench_fig7_fc_only
  bench_fig8_overlap
  bench_fig9_weak_scaling
  bench_fig10_domain_extension
  bench_hierarchy
  bench_latency_ablation
  bench_layer_breakdown
  bench_machine_sensitivity
  bench_memory_model
  bench_rnn_fc_heavy
  bench_summa_ablation
  bench_trace_replay
  bench_validation_volume
  bench_executable_scaling
)

for name in "${BENCHES[@]}"; do
  b="${BUILD_DIR}/bench/${name}"
  if [[ ! -x "$b" ]]; then
    echo "error: bench binary missing: $b" >&2
    exit 1
  fi
  echo
  echo "################################################################"
  echo "## ${name}"
  echo "################################################################"
  "$b"
done
