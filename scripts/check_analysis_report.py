#!/usr/bin/env python3
"""Schema-check a static schedule-analysis report from tools/mbd_analyze.

    scripts/check_analysis_report.py report.json [--expect-all-trainers]
        [--expect-min-cases N] [--require-clean]

Checks (see docs/static_analysis.md):
  * top level is {"schema": "mbd-schedule-analysis-v1", "clean": bool,
    "cases": [...]}
  * every case names a known trainer, a valid grid (pr, pc >= 1), a known
    reduce mode, a positive recorded event count, and a traffic object with
    the three byte classes (allreduce/allgather/p2p)
  * every violation entry carries a known kind, a rank, an op_index, and a
    non-empty detail string
  * the top-level "clean" flag agrees with the per-case violation lists
  * --expect-all-trainers: all six trainers must appear (batch, model,
    integrated, domain, hybrid, mixed)
  * --expect-min-cases N: at least N cases analyzed
  * --require-clean: a schema-valid report with violations still fails

Exit status: 0 schema-valid (and clean if required), 1 violation(s),
2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys

TRAINERS = {"batch", "model", "integrated", "domain", "hybrid", "mixed",
            "pipeline"}
MODES = {"blocking", "overlapped"}
VIOLATION_KINDS = {
    "collective_mismatch",
    "deadlock",
    "unconsumed_message",
    "handle_leak",
    "traffic_mismatch",
}
TRAFFIC_KEYS = ("allreduce_bytes", "allgather_bytes", "p2p_bytes")


def check_case(i: int, case: object, errors: list[str]) -> int:
    """Validate one case object; returns its violation count."""
    where = f"case {i}"
    if not isinstance(case, dict):
        errors.append(f"{where}: not an object")
        return 0
    trainer = case.get("trainer")
    if trainer not in TRAINERS:
        errors.append(f"{where}: unknown trainer {trainer!r}")
    if case.get("mode") not in MODES:
        errors.append(f"{where}: unknown mode {case.get('mode')!r}")
    for field in ("pr", "pc", "batch", "iterations", "events"):
        v = case.get(field)
        if not isinstance(v, int) or isinstance(v, bool) or v < 1:
            errors.append(f"{where} ({trainer}): {field} must be a positive int")
    traffic = case.get("traffic")
    if not isinstance(traffic, dict):
        errors.append(f"{where} ({trainer}): missing traffic object")
    else:
        for key in TRAFFIC_KEYS:
            v = traffic.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where} ({trainer}): traffic.{key} must be an int >= 0")
        if sum(traffic.get(k, 0) for k in TRAFFIC_KEYS) == 0:
            errors.append(f"{where} ({trainer}): schedule moved zero bytes")
    violations = case.get("violations")
    if not isinstance(violations, list):
        errors.append(f"{where} ({trainer}): violations must be a list")
        return 0
    for j, viol in enumerate(violations):
        vwhere = f"{where} violation {j}"
        if not isinstance(viol, dict):
            errors.append(f"{vwhere}: not an object")
            continue
        if viol.get("kind") not in VIOLATION_KINDS:
            errors.append(f"{vwhere}: unknown kind {viol.get('kind')!r}")
        if not isinstance(viol.get("rank"), int):
            errors.append(f"{vwhere}: missing integer rank")
        if not isinstance(viol.get("op_index"), int):
            errors.append(f"{vwhere}: missing integer op_index")
        if not isinstance(viol.get("detail"), str) or not viol.get("detail"):
            errors.append(f"{vwhere}: missing detail string")
    return len(violations)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="mbd_analyze JSON report")
    ap.add_argument(
        "--expect-all-trainers",
        action="store_true",
        help="require every trainer to appear in the sweep",
    )
    ap.add_argument(
        "--expect-min-cases",
        type=int,
        default=1,
        help="minimum number of analyzed cases",
    )
    ap.add_argument(
        "--require-clean",
        action="store_true",
        help="fail if any case has violations",
    )
    args = ap.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.report}: {e}", file=sys.stderr)
        return 2

    errors: list[str] = []
    if not isinstance(doc, dict):
        print(f"error: {args.report}: top level must be an object", file=sys.stderr)
        return 2
    if doc.get("schema") != "mbd-schedule-analysis-v1":
        errors.append(f"unknown schema {doc.get('schema')!r}")
    if not isinstance(doc.get("clean"), bool):
        errors.append("missing boolean 'clean'")
    cases = doc.get("cases")
    if not isinstance(cases, list):
        print(f"error: {args.report}: 'cases' must be a list", file=sys.stderr)
        return 2

    n_violations = 0
    for i, case in enumerate(cases):
        n_violations += check_case(i, case, errors)

    if len(cases) < args.expect_min_cases:
        errors.append(
            f"only {len(cases)} case(s) analyzed (want >= {args.expect_min_cases})"
        )
    if args.expect_all_trainers:
        seen = {c.get("trainer") for c in cases if isinstance(c, dict)}
        for t in sorted(TRAINERS - seen):
            errors.append(f"trainer '{t}' missing from the sweep")
    if isinstance(doc.get("clean"), bool) and doc["clean"] != (n_violations == 0):
        errors.append(
            f"'clean' is {doc['clean']} but cases carry {n_violations} violation(s)"
        )
    if args.require_clean and n_violations:
        errors.append(f"{n_violations} schedule violation(s) reported")

    if errors:
        print(f"{args.report}: {len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    modes = {c.get("mode") for c in cases if isinstance(c, dict)}
    print(
        f"{args.report}: OK — {len(cases)} case(s), "
        f"{len({c.get('trainer') for c in cases if isinstance(c, dict)})} trainer(s), "
        f"{len(modes)} mode(s), {n_violations} violation(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
