#!/usr/bin/env python3
"""Schema-check a Chrome trace-event JSON exported by mbd/obs/chrome_trace.

    scripts/check_trace.py trace.json [--expect-ranks N]

Checks (see docs/observability.md):
  * top level is {"traceEvents": [...]}
  * every event has string "name"/"ph" and integer "pid"
  * every complete ("X") event has ts/dur/tid/cat and a deterministic
    args.seq
  * exactly one process_name metadata event per pid; with --expect-ranks N,
    processes named "rank 0" .. "rank N-1" must all be present
  * flow arrows pair up: each flow id has exactly one "s" (post) and one
    "f" (completing wait/drain), and every coll_post event carrying
    args.flow has its arrow emitted

Exit status: 0 schema-valid, 1 violation(s), 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON file")
    ap.add_argument(
        "--expect-ranks",
        type=int,
        default=0,
        help="require process rows for ranks 0..N-1",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {args.trace}: {e}")

    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        sys.exit(f"error: {args.trace}: top level must be {{'traceEvents': [...]}}")
    events = doc["traceEvents"]

    process_names: dict[int, list[str]] = {}
    flow_starts: dict[int, int] = {}
    flow_finishes: dict[int, int] = {}
    posted_flows: set[int] = set()
    n_complete = 0

    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not isinstance(ev.get("ph"), str):
            errors.append(f"{where}: missing string name/ph")
            continue
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
            continue
        ph = ev["ph"]
        if ph == "M":
            if ev["name"] == "process_name":
                name = ev.get("args", {}).get("name")
                if not isinstance(name, str):
                    errors.append(f"{where}: process_name without args.name")
                else:
                    process_names.setdefault(ev["pid"], []).append(name)
        elif ph == "X":
            n_complete += 1
            for field, ty in (("ts", (int, float)), ("dur", (int, float)),
                              ("tid", int), ("cat", str)):
                if not isinstance(ev.get(field), ty):
                    errors.append(f"{where} ({ev['name']}): missing {field}")
            ev_args = ev.get("args", {})
            if not isinstance(ev_args.get("seq"), int):
                errors.append(f"{where} ({ev['name']}): missing args.seq")
            if ev["name"].startswith("coll_post:") and "flow" in ev_args:
                posted_flows.add(ev_args["flow"])
        elif ph in ("s", "f"):
            fid = ev.get("id")
            if not isinstance(fid, int):
                errors.append(f"{where}: flow event without integer id")
                continue
            bucket = flow_starts if ph == "s" else flow_finishes
            bucket[fid] = bucket.get(fid, 0) + 1

    for pid, names in sorted(process_names.items()):
        if len(names) > 1:
            errors.append(f"pid {pid}: named {len(names)} times: {names}")
    rank_pids = {
        name: pid
        for pid, names in process_names.items()
        for name in names
        if name.startswith("rank ")
    }
    for r in range(args.expect_ranks):
        if f"rank {r}" not in rank_pids:
            errors.append(f"no process row for rank {r}")

    for fid, n in sorted(flow_starts.items()):
        if n != 1:
            errors.append(f"flow {fid}: {n} start events (want 1)")
        if flow_finishes.get(fid, 0) != 1:
            errors.append(
                f"flow {fid}: {flow_finishes.get(fid, 0)} finish events (want 1)"
            )
    for fid in sorted(set(flow_finishes) - set(flow_starts)):
        errors.append(f"flow {fid}: finish without start")
    for fid in sorted(posted_flows - set(flow_starts)):
        errors.append(f"flow {fid}: coll_post carries it but no arrow emitted")

    if errors:
        print(f"{args.trace}: {len(errors)} schema violation(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(
        f"{args.trace}: OK — {n_complete} spans, {len(flow_starts)} flow "
        f"arrows, {len(process_names)} processes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
