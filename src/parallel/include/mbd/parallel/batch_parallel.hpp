// Pure batch-parallel SGD (paper Fig. 2, Eq. 4).
//
// Every process holds the full model; the mini-batch's columns are block-
// partitioned over processes. The forward pass needs no communication; the
// backward pass ends with one ring all-reduce of every layer's ∆W.
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"

namespace mbd::parallel {

/// The batch-parallel stage layout as a value (see engine_layout.hpp);
/// weights built from nn::BuildOptions{.seed = opts.seed}.
EngineLayout build_batch_parallel_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run `cfg.iterations` steps of batch-parallel SGD on comm's ranks.
/// Every rank builds an identical network from (specs, build options), so
/// weights start equal and stay equal after each all-reduced step.
/// Must be called collectively (inside World::run). With
/// ReduceMode::Overlapped the per-layer ∆W all-reduces are issued
/// nonblocking and drained before the SGD step — same ring schedule, same
/// bytes, bitwise-identical weights.
DistResult train_batch_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                const nn::BuildOptions& build = {},
                                ReduceMode mode = ReduceMode::Blocking,
                                const RecoveryContext* recovery = nullptr,
                                double seconds_per_flop = 0.0);

}  // namespace mbd::parallel
