// Exact per-iteration traffic predictions for each distributed trainer.
//
// These are not the α–β *time* model (that is mbd::costmodel) but exact byte
// counts of what the implemented collectives move, summed over all ranks per
// SGD iteration. Comparing them against mbd::comm's instrumented counters is
// the strongest form of validation this project does: the paper's bandwidth
// terms (Eqs. 3, 4, 7, 8) are per-process word counts of exactly these
// collectives, so measured == predicted here certifies the formulas against
// running code.
//
// Setup traffic (communicator splits, final parameter assembly) is excluded;
// tests measure per-iteration deltas to factor it out.
#pragma once

#include <cstdint>
#include <vector>

#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/integrated.hpp"

namespace mbd::parallel {

/// Bytes per iteration, summed over all ranks, by traffic class.
struct TrafficPrediction {
  std::uint64_t allreduce_bytes = 0;
  std::uint64_t allgather_bytes = 0;
  std::uint64_t p2p_bytes = 0;  ///< halo exchanges

  std::uint64_t total() const {
    return allreduce_bytes + allgather_bytes + p2p_bytes;
  }
};

/// Pure batch parallelism: one ring all-reduce of each layer's |W|.
TrafficPrediction predict_batch_parallel(
    const std::vector<nn::LayerSpec>& specs, int p);

/// Pure model parallelism on an MLP: per layer one all-gather of B·d_out and
/// (for all but the first layer) one all-reduce of B·d_in.
TrafficPrediction predict_model_parallel(
    const std::vector<nn::LayerSpec>& specs, std::size_t batch, int p);

/// 1.5D integrated on a Pr × Pc grid (MLP).
TrafficPrediction predict_integrated_15d(
    const std::vector<nn::LayerSpec>& specs, std::size_t batch,
    GridShape grid);

/// Pure domain parallelism on a conv+FC network.
TrafficPrediction predict_domain_parallel(
    const std::vector<nn::LayerSpec>& specs, std::size_t batch, int p);

/// Fully integrated hybrid on a Pr × Pc grid (conv stack + FC tail).
TrafficPrediction predict_hybrid(const std::vector<nn::LayerSpec>& specs,
                                 std::size_t batch, GridShape grid);

/// Mixed grid (Fig. 7 executable): batch-parallel conv + Eq. 6
/// redistribution + 1.5D FC.
TrafficPrediction predict_mixed_grid(const std::vector<nn::LayerSpec>& specs,
                                     std::size_t batch, GridShape grid);

/// 1F1B pipeline over p contiguous layer groups (MLP): each of the p−1
/// stage boundaries moves its activations forward and gradients backward,
/// B columns per iteration regardless of the microbatch count — no
/// collective moves a byte.
TrafficPrediction predict_pipeline(const std::vector<nn::LayerSpec>& specs,
                                   std::size_t batch, int p);

}  // namespace mbd::parallel
