// 1F1B inter-layer pipeline parallelism (PipeDream-style) — the seventh
// trainer, and the first whose schedule program is not the degenerate
// fwd-all/bwd-all sweep.
//
// The layer chain is block-partitioned into P contiguous stage groups, one
// per rank; the mini-batch is column-split into M microbatches. Each rank
// interprets the classic one-forward-one-backward program — min(P−1−rank, M)
// warmup forwards, then (Fwd, Bwd) steady-state pairs, then the drain
// backwards — with boundary activations and gradients moving between
// neighbouring ranks as tagged point-to-point messages through the existing
// fabric. No collective moves a byte, so both ReduceModes are trivially
// bitwise-equal; gradients accumulate across microbatches and apply at the
// fixed end-of-iteration tick, keeping every run bitwise-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"

namespace mbd::parallel {

/// The 1F1B pipeline stage layout as a value (see engine_layout.hpp),
/// including the rank's 1F1B tick program in sched.program. The post-train
/// full-parameter broadcast assembly stays in train_pipeline.
EngineLayout build_pipeline_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run 1F1B pipelined SGD. `specs` must be all fully connected and at least
/// comm.size() layers deep (every rank needs a non-empty stage group);
/// `microbatches` must be in [1, cfg.batch]. Checkpoint/restart, fault
/// injection, schedule recording, and modeled-compute annotation behave
/// exactly as in the other six trainers.
DistResult train_pipeline(comm::Comm& comm,
                          const std::vector<nn::LayerSpec>& specs,
                          const nn::Dataset& data, const nn::TrainConfig& cfg,
                          std::size_t microbatches = 2, std::uint64_t seed = 42,
                          ReduceMode mode = ReduceMode::Blocking,
                          const RecoveryContext* recovery = nullptr,
                          double seconds_per_flop = 0.0);

}  // namespace mbd::parallel
