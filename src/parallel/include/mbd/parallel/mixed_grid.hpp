// Mixed-grid training: the executable realization of the paper's Fig. 7
// configuration — convolutional (and pooling) layers run PURE BATCH parallel
// on a 1 × P grid, then the activations are REDISTRIBUTED (Eq. 6's
// all-gather) to a Pr × Pc grid on which the fully-connected layers run the
// 1.5D integrated algorithm.
//
// Process (i, j) (i over Pr, j over Pc) holds conv batch block j·Pr + i of
// B/P samples; the redistribution all-gathers those blocks within each model
// group {(·, j)}, after which the group shares its B/Pc columns and the FC
// stack proceeds exactly as in train_integrated_15d. This is the grid switch
// whose cost Eq. 6 shows to be asymptotically free.
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"
#include "mbd/parallel/integrated.hpp"

namespace mbd::parallel {

/// The mixed-grid stage layout as a value (see engine_layout.hpp).
EngineLayout build_mixed_grid_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run mixed-grid SGD. `specs` must be conv/pool layers followed by FC
/// layers (any conv geometry — stride, padding, pooling all allowed, since
/// the conv stack is batch parallel); batch ≥ P so every process holds at
/// least one sample. Uneven partitions are allowed everywhere. `mode`
/// selects blocking or overlapped (nonblocking) gradient reductions; both
/// produce bitwise-identical weights and identical traffic.
DistResult train_mixed_grid(comm::Comm& comm, GridShape grid,
                            const std::vector<nn::LayerSpec>& specs,
                            const nn::Dataset& data,
                            const nn::TrainConfig& cfg,
                            std::uint64_t seed = 42,
                            ReduceMode mode = ReduceMode::Blocking,
                            const RecoveryContext* recovery = nullptr,
                            double seconds_per_flop = 0.0);

}  // namespace mbd::parallel
