// Checkpoint/restart for the layer engine.
//
// A CheckpointPolicy tells LayerEngine::train to snapshot its training state
// — every stage's weights and momentum velocities, the per-rank loss history,
// and the step counter — every k steps. The snapshot is coordinated by two
// barriers: every rank reaches the checkpoint step, stages its state, and
// only after the second barrier does rank 0 commit the staged slots as the
// new recovery point. A rank can therefore crash at any transport op without
// ever leaving a torn (partially-staged) committed checkpoint: either the
// commit happened and every rank's slot is from the same step, or the
// previous checkpoint is still intact.
//
// RNG streams need no snapshot bytes beyond the step counter: every source
// of randomness downstream of initialization (dropout masks, batch order) is
// a pure function of (seed, iteration, sample), so restoring weights,
// velocities, and the step counter resumes the identical trajectory — that
// is what makes crashed-and-recovered runs bitwise-equal to uninterrupted
// ones.
//
// The store lives outside the World (host memory, one slot per rank),
// mirroring a parallel filesystem in the paper's Cori setting: it survives
// the fabric teardown World::run_restartable performs after a RankFailure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mbd::parallel {

/// Snapshot cadence: checkpoint after every `every` completed steps
/// (0 = never). The in-loop cadence never checkpoints the final step —
/// training is done, there is nothing left to recover. `final_commit`
/// instead commits one checkpoint *after* the loop (tagged with
/// cfg.iterations): not a recovery point but a publication step, so a
/// forward-only executor (serve::InferenceSession) can load the trained
/// weights from the same store the engine checkpoints into.
struct CheckpointPolicy {
  std::size_t every = 0;
  bool final_commit = false;
};

/// Double-buffered in-memory checkpoint, one slot per global rank.
/// Thread-safe: rank threads stage/read concurrently under one mutex.
/// stage_rank/commit are virtual so fault tests can interpose on the
/// stage→commit window (e.g. crash a rank after staging but before the
/// commit barrier) without touching the engine.
class CheckpointStore {
 public:
  explicit CheckpointStore(int world_size);
  virtual ~CheckpointStore() = default;

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// True once a checkpoint has been committed.
  bool valid() const;
  /// The step training resumes from (number of completed steps at commit).
  std::size_t step() const;
  /// Commits so far (diagnostic).
  std::uint64_t commits() const;

  /// Stage rank `rank`'s state for the checkpoint being taken. Staging
  /// never touches the committed slots.
  virtual void stage_rank(int rank, std::vector<float> state,
                          std::vector<double> losses);
  /// Promote every staged slot to committed, tagged with `next_step`.
  /// Called by one rank, after a barrier guarantees all ranks staged.
  virtual void commit(std::size_t next_step);

  /// Committed state / loss history for `rank` (copies; restore mutates
  /// the engine's copy in place).
  std::vector<float> state(int rank) const;
  std::vector<double> losses(int rank) const;

  /// Forget everything (back to the never-checkpointed state).
  void reset();

 private:
  struct Slot {
    std::vector<float> state;
    std::vector<double> losses;
  };

  mutable std::mutex mu_;
  std::vector<Slot> staging_, committed_;
  std::size_t step_ = 0;
  bool valid_ = false;
  std::uint64_t commits_ = 0;
};

/// Threaded through a trainer into LayerEngine::train: where to checkpoint
/// to (and restore from), and how often.
struct RecoveryContext {
  CheckpointStore* store = nullptr;
  CheckpointPolicy policy;
};

}  // namespace mbd::parallel
