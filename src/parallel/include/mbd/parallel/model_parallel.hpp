// Pure model-parallel SGD for fully-connected networks (paper Fig. 1, Eq. 3).
//
// Each process owns a block of d_i/P rows of every weight matrix; input
// activations are replicated. The forward pass all-gathers each layer's
// output rows; backprop all-reduces the ∆X contributions. ∆W needs no
// communication — each process sees the full batch for its weight rows.
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"

namespace mbd::parallel {

/// The model-parallel stage layout as a value (see engine_layout.hpp):
/// exactly the configuration train_model_parallel runs, reusable by other
/// executors (forward-only inference, planners). Same RNG stream, same
/// stage order — training through train_layout is bitwise-identical.
EngineLayout build_model_parallel_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run model-parallel SGD. `specs` must be all fully-connected (an MLP).
/// Output dimensions need not divide comm.size(): equal row blocks go
/// through the Bruck all-gather, uneven ones through the ring all-gatherv.
/// Weight initialization matches nn::build_network(specs, {seed}) exactly,
/// so final parameters are directly comparable with the sequential
/// reference. `mode` selects how gradient reductions complete (see
/// ReduceMode); results are bitwise identical either way.
DistResult train_model_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed = 42,
                                ReduceMode mode = ReduceMode::Blocking,
                                const RecoveryContext* recovery = nullptr,
                                double seconds_per_flop = 0.0);

}  // namespace mbd::parallel
