// Pure domain-parallel SGD (paper Fig. 3, Eq. 7).
//
// Every process holds the full model and ALL samples of the mini-batch, but
// only a horizontal slab (a block of image rows — the paper's recommended
// split for NCHW) of each sample. Convolutions exchange ⌊k/2⌋ boundary rows
// with the two neighbouring processes (the halo); ∆W is all-reduced over all
// processes. Fully-connected layers are computed replicated after an
// all-gather of the conv stack's output — the "halo is the whole input"
// degeneration the paper describes for FC layers.
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"

namespace mbd::parallel {

/// The domain-parallel stage layout as a value (see engine_layout.hpp).
EngineLayout build_domain_parallel_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run domain-parallel SGD. `specs` must be a stack of stride-1, odd-kernel,
/// same-padded conv layers followed by FC layers (no pooling); each rank's
/// height slab (block partition, uneven allowed) must be at least as tall as
/// the largest halo. Weight init matches nn::build_network(specs).
/// `overlap_halo` computes interior conv rows while the halo is in flight
/// (§2.2's non-blocking exchange); results are identical either way.
/// `mode` selects blocking or overlapped (nonblocking, drained before the
/// SGD step) ∆W all-reduces — also bitwise identical.
DistResult train_domain_parallel(comm::Comm& comm,
                                 const std::vector<nn::LayerSpec>& specs,
                                 const nn::Dataset& data,
                                 const nn::TrainConfig& cfg,
                                 std::uint64_t seed = 42,
                                 bool overlap_halo = false,
                                 ReduceMode mode = ReduceMode::Blocking,
                                 const RecoveryContext* recovery = nullptr,
                                 double seconds_per_flop = 0.0);

}  // namespace mbd::parallel
