// Fully integrated model+batch+domain parallel SGD (paper §2.4, Eq. 9).
//
// On a Pr × Pc grid, the Pc dimension partitions the mini-batch. Within each
// batch group the Pr dimension is used as *domain* parallelism for the conv
// stack (height slabs + halo exchange, LD layers) and as *model* parallelism
// for the FC tail (1.5D row partition, LM layers) — exactly the assignment
// the paper recommends: domain for the early layers with large activations,
// model for the fully-connected layers where the halo would degenerate to
// the whole input.
//
// This is the executable that "extends the strong scaling limit of pure
// batch parallelism": with B = Pc and Pr > 1, P = Pr·Pc exceeds the batch
// size while every process still has a full slab of work (Fig. 10).
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"
#include "mbd/parallel/integrated.hpp"

namespace mbd::parallel {

/// The hybrid stage layout as a value (see engine_layout.hpp).
EngineLayout build_hybrid_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run fully integrated SGD. `specs` must be a stride-1 odd-kernel same-pad
/// conv stack followed by FC layers; grid.pr must not exceed the image
/// height and grid.pc must not exceed the batch (uneven partitions allowed).
/// `overlap_halo` computes interior conv rows while the halo is in flight.
/// `mode` selects blocking or overlapped (nonblocking) gradient reductions;
/// both produce bitwise-identical weights and identical traffic.
DistResult train_hybrid(comm::Comm& comm, GridShape grid,
                        const std::vector<nn::LayerSpec>& specs,
                        const nn::Dataset& data, const nn::TrainConfig& cfg,
                        std::uint64_t seed = 42, bool overlap_halo = false,
                        ReduceMode mode = ReduceMode::Blocking,
                        const RecoveryContext* recovery = nullptr,
                        double seconds_per_flop = 0.0);

}  // namespace mbd::parallel
