// Integrated model+batch parallel SGD on a Pr × Pc process grid — the
// executable realization of the paper's 1.5D algorithm (Fig. 5, Eq. 8).
//
// Process (i, j) owns row block i of every W (1/Pr of the model, replicated
// Pc times) and column block j of every activation (1/Pc of the batch,
// replicated Pr times). Per layer:
//   forward:  local matmul, then all-gather of Y row blocks over the Pr
//             group {(·, j)};
//   ∆W:       local ∆Y_block·Xᵀ, then all-reduce over the Pc group {(i, ·)};
//   ∆X:       local Wᵀ·∆Y_block, then all-reduce over the Pr group {(·, j)}.
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/recovery.hpp"

namespace mbd::parallel {

// GridShape lives in common.hpp (shared by the trainer registry).

/// The 1.5D stage layout as a value (see engine_layout.hpp). Owns its two
/// comm splits (same split order as train_integrated_15d, so schedules and
/// weights match bit for bit).
EngineLayout build_integrated_15d_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch);

/// Run 1.5D integrated SGD. `specs` must be all fully connected; batch must
/// be at least pc. Neither d_out/pr nor batch/pc need divide evenly (uneven
/// blocks use the ring all-gatherv / block column partition). pr = P, pc = 1
/// degenerates to pure model parallelism; pr = 1, pc = P to pure batch
/// parallelism.
///
/// With ReduceMode::Overlapped, each layer's ∆W all-reduce (Pc group) is
/// issued nonblocking and completes behind the GEMMs of the layers below,
/// and the ∆X all-reduce (Pr group) hides behind the same layer's ∆W GEMM —
/// the paper's Fig. 8 overlap, executable. The nonblocking ring runs the
/// identical schedule as blocking mode: byte counts and weights match bit
/// for bit. `seconds_per_flop` > 0 logs modeled compute annotations into an
/// enabled trace so replay can measure the overlap actually achieved.
DistResult train_integrated_15d(comm::Comm& comm, GridShape grid,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed = 42,
                                ReduceMode mode = ReduceMode::Blocking,
                                double seconds_per_flop = 0.0,
                                const RecoveryContext* recovery = nullptr);

}  // namespace mbd::parallel
