// The shared layer-engine behind every distributed trainer.
//
// Each of the six trainers (model-, batch-, domain-parallel, 1.5D
// integrated, hybrid, mixed-grid) used to carry its own copy of the same
// training loop: slice the mini-batch, run the stages forward, evaluate the
// softmax loss, run the stages backward while reducing weight gradients,
// apply momentum SGD, and finally assemble the replicated parameter vector.
// The engine owns that loop once; a trainer is reduced to *configuration* —
// it picks the stages (partitioned FC layer, domain-decomposed conv stack,
// whole sequential network, Eq. 6 redistribution, ...) and a StepSchedule
// (which batch columns this rank owns, how the loss partials combine, and
// whether gradient reductions block or overlap with compute).
//
// Overlap (ReduceMode::Overlapped) is *executable*, not modeled: ∆W ring
// all-reduces are issued as nonblocking collectives (mbd/comm/nonblocking.hpp)
// and drained behind the remaining layers' GEMMs; ∆X all-reduces hide behind
// the same layer's ∆W GEMM. The nonblocking ring runs the identical schedule
// as the blocking one, so byte counts (validation.hpp) and numerics match the
// blocking mode bit for bit.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/detail/domain_conv.hpp"
#include "mbd/parallel/recovery.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/matrix.hpp"
#include "mbd/tensor/tensor4.hpp"

namespace mbd::parallel {

/// Per-iteration facts the engine hands to every stage.
struct StepContext {
  std::size_t iteration = 0;
  std::size_t batch = 0;         ///< global mini-batch size B
  std::size_t first_sample = 0;  ///< dataset index of this rank's first column
  comm::Comm* world = nullptr;   ///< the full communicator
  ReduceMode mode = ReduceMode::Blocking;
  /// When > 0, stages log `flops * seconds_per_flop` of modeled compute into
  /// the trace (Comm::annotate_compute) so replay can measure how much
  /// communication the overlapped schedule actually hides.
  double seconds_per_flop = 0.0;
  /// Which microbatch the current tick operates on, and how many the
  /// iteration's schedule program runs. Degenerate (whole-minibatch)
  /// programs always see microbatch 0 of 1.
  std::size_t microbatch = 0;
  std::size_t num_microbatches = 1;
  /// True on a stage's final Bwd tick of the iteration: the point where its
  /// accumulated ∆W is complete and any cross-rank ∆W reduction must run.
  bool last_backward = true;

  void annotate(double flops) const;
};

/// One tick of a schedule program: run one stage's forward or backward on
/// one microbatch.
struct ScheduleTick {
  enum class Op : std::uint8_t { Fwd, Bwd };
  Op op = Op::Fwd;
  std::size_t stage = 0;       ///< index into the engine's stage list
  std::size_t microbatch = 0;  ///< which microbatch the tick operates on
};

/// The per-iteration execution program the engine interprets. Empty ticks
/// mean the degenerate program: every stage Fwd first-to-last, then Bwd
/// last-to-first, over the whole minibatch as microbatch 0 of 1 — exactly
/// the classic fwd-all/bwd-all loop the six original trainers run.
///
/// Determinism rules (what keeps every program bitwise-reproducible):
/// * every (stage, microbatch) pair gets exactly one Fwd and one Bwd tick;
/// * a stage's Bwd ticks run in increasing microbatch order, so its final
///   Bwd tick (microbatch M−1) is the fixed point where ∆W reductions fire;
/// * weights are versioned per iteration: every tick of iteration `it`
///   reads the weights produced by iteration `it−1`, and the accumulated
///   gradient applies once at the end-of-iteration update tick — never
///   "when ready".
struct ScheduleProgram {
  std::vector<ScheduleTick> ticks;
  std::size_t num_microbatches = 1;
  /// Tick index after which the iteration loss is finalized (summed over
  /// the world when StepSchedule::sum_loss, then recorded). The default
  /// builder puts this at the last Fwd tick so the degenerate program
  /// matches the classic loop's loss-between-passes order.
  std::size_t loss_tick = 0;
};

/// What a trainer tells the engine about one training step.
struct StepSchedule {
  Range input_cols;  ///< this rank's input columns within [0, B)
  Range label_cols;  ///< columns the loss is evaluated on (== input_cols
                     ///< unless a redistribution stage changes the layout)
  bool sum_loss = false;     ///< sum loss partials over the world?
  double loss_replicas = 1;  ///< how often each partial is replicated in it
  ReduceMode mode = ReduceMode::Blocking;
  double seconds_per_flop = 0.0;  ///< see StepContext
  /// False on ranks whose last stage yields no logits (pipeline ranks below
  /// the tail); they still participate in the sum_loss reduction with a
  /// zero partial.
  bool compute_loss = true;
  /// The iteration's tick program; empty ticks = degenerate program.
  ScheduleProgram program;
};

/// Collects the ∆W reductions of one backward pass. Blocking mode reduces in
/// place; Overlapped mode issues nonblocking ring all-reduces and drains them
/// all before the SGD update (the gradient buffers stay live until then, so
/// overlap is safe). Draining in initiation order keeps the receive side of
/// every reduction at a deterministic program point — important for traces.
class GradReducer {
 public:
  explicit GradReducer(ReduceMode mode) : mode_(mode) {}

  /// Reduce `grads` over `group` (sum). No-op traffic when group has 1 rank.
  void allreduce(comm::Comm& group, std::span<float> grads);
  /// Complete every pending reduction (must run before the weights update).
  void drain();

 private:
  ReduceMode mode_;
  std::vector<comm::CollectiveHandle> pending_;
};

/// The value flowing between stages: activations forward, gradients
/// backward. Either a matrix (d × B_local, one column per sample) or an NCHW
/// tensor (the domain-decomposed conv stages).
struct Flow {
  tensor::Matrix mat;
  tensor::Tensor4 ten;
  bool is_tensor = false;

  static Flow from_matrix(tensor::Matrix m) {
    Flow f;
    f.mat = std::move(m);
    return f;
  }
  static Flow from_tensor(tensor::Tensor4 t) {
    Flow f;
    f.ten = std::move(t);
    f.is_tensor = true;
    return f;
  }
  tensor::Matrix& as_matrix() {
    MBD_CHECK_MSG(!is_tensor, "stage expected a matrix flow");
    return mat;
  }
  tensor::Tensor4& as_tensor() {
    MBD_CHECK_MSG(is_tensor, "stage expected a tensor flow");
    return ten;
  }
};

/// One stop of the per-iteration schedule: owns its parameter shard and
/// momentum state, knows its own communication pattern.
class EngineStage {
 public:
  virtual ~EngineStage() = default;
  EngineStage() = default;
  EngineStage(const EngineStage&) = delete;
  EngineStage& operator=(const EngineStage&) = delete;

  /// Static label used by the timeline profiler for this stage's
  /// StageFwd/StageBwd spans. Must return a string literal.
  virtual const char* name() const { return "stage"; }

  /// Called once per iteration before the forward pass.
  virtual void begin_iteration(const StepContext& /*ctx*/) {}
  /// Whether the stage keeps per-microbatch activation stashes and
  /// accumulates ∆W across Bwd ticks. The engine refuses multi-microbatch
  /// programs over stages that do not.
  virtual bool supports_microbatching() const { return false; }
  virtual Flow forward(Flow in, const StepContext& ctx) = 0;
  /// Consumes the gradient at this stage's output, registers its ∆W
  /// reductions with `red`, returns the gradient at its input (an empty
  /// Flow if the stage below needs none).
  virtual Flow backward(Flow grad, const StepContext& ctx,
                        GradReducer& red) = 0;
  virtual void update(float lr, float momentum) = 0;
  /// Append this stage's parameters in the full (unpartitioned) layout.
  virtual void collect_params(std::vector<float>& out) = 0;

  /// Append this rank's persistent training state (weight shard + momentum
  /// velocities; forward scratch is per-iteration and excluded). Stateless
  /// stages append nothing.
  virtual void save_state(std::vector<float>& /*out*/) {}
  /// Restore state written by save_state, consuming this stage's prefix of
  /// `in` (the span is advanced past what was read).
  virtual void restore_state(std::span<const float>& /*in*/) {}
};

/// Row-partitioned (or replicated) fully connected layer with optional ReLU:
/// the layer math of the model-parallel, 1.5D, hybrid, and mixed trainers,
/// and — with no groups — the replicated FC tail of the domain trainer.
class FcStage final : public EngineStage {
 public:
  struct Config {
    std::size_t d_in = 0, d_out = 0;
    bool relu_after = false;
    /// Row-partition group (forward all-gather of Y, ∆X all-reduce);
    /// nullptr = weights replicated, no model communication.
    comm::Comm* model_group = nullptr;
    /// ∆W all-reduce group; nullptr (or a 1-rank group) = no ∆W reduction.
    comm::Comm* batch_group = nullptr;
    Range rows;  ///< owned rows of W (== {0, d_out} when replicated)
    bool compute_dx = true;  ///< false for the bottom layer of an FC-only net
  };

  FcStage(const Config& cfg, tensor::Matrix w);

  const char* name() const override { return "fc"; }
  bool supports_microbatching() const override { return true; }
  void begin_iteration(const StepContext& ctx) override;
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float lr, float momentum) override;
  void collect_params(std::vector<float>& out) override;
  void save_state(std::vector<float>& out) override;
  void restore_state(std::span<const float>& in) override;

 private:
  Config cfg_;
  tensor::Matrix w_, dw_, vel_;  // rows.size() × d_in
  /// Forward state, stashed per microbatch (size 1 for whole-minibatch
  /// programs): the Bwd tick of microbatch m reads exactly its own stash.
  std::vector<tensor::Matrix> x_, y_pre_;
  tensor::Matrix dw_scratch_;  ///< per-microbatch ∆W before accumulation
  bool accumulate_dw_ = false;
};

/// A whole sequential nn::Network as one stage: the batch-parallel trainer.
/// Every layer's ∆W is all-reduced over `reduce_group`.
class NetworkStage final : public EngineStage {
 public:
  /// `macs_per_sample` is the whole network's forward multiply-accumulate
  /// count per sample (nn::LayerSpec::macs_per_sample summed); it feeds
  /// StepContext::annotate so replay prediction works for this trainer.
  NetworkStage(nn::Network net, comm::Comm* reduce_group,
               double macs_per_sample = 0.0);

  const char* name() const override { return "network"; }
  void begin_iteration(const StepContext& ctx) override;
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float lr, float momentum) override;
  void collect_params(std::vector<float>& out) override;
  void save_state(std::vector<float>& out) override;
  void restore_state(std::span<const float>& in) override;

 private:
  nn::Network net_;
  comm::Comm* reduce_group_;
  double macs_per_sample_;
};

/// A batch-parallel conv/pool prefix with fully replicated weights (the
/// mixed-grid trainer's conv phase): raw layers run on this rank's B/P
/// columns; conv ∆W is all-reduced over `reduce_group` after the backward.
class ConvStackStage final : public EngineStage {
 public:
  ConvStackStage(std::vector<std::unique_ptr<nn::Layer>> layers,
                 std::size_t d_out, comm::Comm* reduce_group,
                 double macs_per_sample = 0.0);

  const char* name() const override { return "conv_stack"; }
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float lr, float momentum) override;
  void collect_params(std::vector<float>& out) override;
  void save_state(std::vector<float>& out) override;
  void restore_state(std::span<const float>& in) override;

 private:
  std::vector<std::unique_ptr<nn::Layer>> layers_;
  std::size_t d_out_;
  comm::Comm* reduce_group_;
  std::vector<std::vector<float>> vel_;
  double macs_per_sample_;
};

/// One domain-decomposed conv layer on a height slab (Fig. 3): halo
/// exchanges within `conv_group`, ∆W all-reduced over `reduce_group`
/// (the full world when the weights are replicated everywhere).
class DomainConvStage final : public EngineStage {
 public:
  DomainConvStage(detail::DomainConvState state, comm::Comm* conv_group,
                  comm::Comm* reduce_group, double macs_per_sample = 0.0);

  const char* name() const override { return "domain_conv"; }
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float lr, float momentum) override;
  void collect_params(std::vector<float>& out) override;
  void save_state(std::vector<float>& out) override;
  void restore_state(std::span<const float>& in) override;

 private:
  detail::DomainConvState st_;
  comm::Comm* conv_group_;
  comm::Comm* reduce_group_;
  double macs_per_sample_;
};

/// Entry into a domain-decomposed conv stack: reshapes the replicated batch
/// matrix to NCHW and keeps this rank's height rows. Backward discards the
/// input gradient (the data layer needs none).
class SlabScatterStage final : public EngineStage {
 public:
  SlabScatterStage(std::size_t in_c, std::size_t in_h, std::size_t in_w,
                   Range rows);

  const char* name() const override { return "slab_scatter"; }
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float /*lr*/, float /*momentum*/) override {}
  void collect_params(std::vector<float>& /*out*/) override {}

 private:
  std::size_t in_c_, in_h_, in_w_;
  Range rows_;
};

/// Exit from a domain-decomposed conv stack: all-gathers the height slabs
/// within `group` into the full activation matrix ("the halo is the whole
/// input"); backward slices this rank's slab rows back out.
class SlabGatherStage final : public EngineStage {
 public:
  SlabGatherStage(comm::Comm* group, std::size_t out_c, std::size_t img_h,
                  std::size_t img_w, Range rows);

  const char* name() const override { return "slab_gather"; }
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float /*lr*/, float /*momentum*/) override {}
  void collect_params(std::vector<float>& /*out*/) override {}

 private:
  comm::Comm* group_;
  std::size_t out_c_, img_h_, img_w_;
  Range rows_;
};

/// The mixed-grid trainer's Eq. 6 redistribution: all-gather the conv-phase
/// B/P column blocks within the model group so each rank holds its FC-phase
/// B/Pc columns; backward slices this rank's conv columns back out. Column
/// ranges are derived from StepContext::batch per call (the canonical block
/// partition at whatever batch the executor runs), so one stage serves both
/// the fixed training batch and variable-size inference batches.
class RedistributeStage final : public EngineStage {
 public:
  /// `conv_index` is this rank's block index within its model group (the
  /// `i` of conv block j·Pr + i — its row coordinate on the grid).
  RedistributeStage(comm::Comm* model_group, int world_size, int pr, int col,
                    int conv_index, std::size_t d_out);

  const char* name() const override { return "redistribute"; }
  Flow forward(Flow in, const StepContext& ctx) override;
  Flow backward(Flow grad, const StepContext& ctx, GradReducer& red) override;
  void update(float /*lr*/, float /*momentum*/) override {}
  void collect_params(std::vector<float>& /*out*/) override {}

 private:
  comm::Comm* model_group_;
  int world_size_, pr_, col_, conv_index_;
  std::size_t d_out_;
};

/// The one training loop shared by all trainers. Each iteration interprets
/// the StepSchedule's tick program (degenerate fwd-all/bwd-all unless a
/// trainer installs its own, e.g. the 1F1B pipeline); the gradient reducer
/// is drained before the end-of-iteration SGD update — the fixed tick where
/// every accumulated gradient applies — and parameters are collected in
/// stage order.
class LayerEngine {
 public:
  LayerEngine(comm::Comm& world, StepSchedule sched);

  void add_stage(std::unique_ptr<EngineStage> stage);

  /// Run the training loop. With a RecoveryContext, training (re)starts
  /// from the store's last committed checkpoint when one exists and
  /// checkpoints every policy.every steps (barrier-coordinated, see
  /// recovery.hpp) — the restart half of World::run_restartable.
  DistResult train(const nn::Dataset& data, const nn::TrainConfig& cfg,
                   const RecoveryContext* recovery = nullptr);

 private:
  ScheduleProgram degenerate_program() const;
  void validate_program(const ScheduleProgram& prog) const;
  void save_checkpoint(const RecoveryContext& rc, std::size_t next_step,
                       const std::vector<double>& losses);
  std::size_t restore_checkpoint(const RecoveryContext& rc,
                                 std::vector<double>& losses);

  comm::Comm* world_;
  StepSchedule sched_;
  std::vector<std::unique_ptr<EngineStage>> stages_;
};

}  // namespace mbd::parallel
