// Shared machinery of the domain-decomposed convolution: halo exchange,
// extended-slab construction, and the slab-local forward/backward passes.
// Used by both the pure domain-parallel trainer (Eq. 7) and the fully
// integrated hybrid trainer (Eq. 9).
//
// Internal API — not part of the public surface.
#pragma once

#include <utility>

#include "mbd/comm/comm.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/tensor/im2col.hpp"
#include "mbd/tensor/matrix.hpp"
#include "mbd/tensor/tensor4.hpp"

namespace mbd::parallel::detail {

/// State of one domain-decomposed conv layer on one process.
struct DomainConvState {
  tensor::ConvGeom geom;  ///< full-image geometry (stride 1, same-pad)
  bool relu_after = false;
  /// Overlap the halo exchange with interior compute (paper §2.2: "the
  /// convolutions that do not require this boundary data could be computed
  /// while the communication is being performed"). Results are identical;
  /// only the schedule changes. Requires slab height ≥ 2·halo, else the
  /// blocking path is used for that layer.
  bool overlap_halo = false;
  tensor::Matrix w, dw;       ///< full weights, replicated on every process
  tensor::Matrix vel;         ///< momentum velocity (local state)
  tensor::Tensor4 ext_input;  ///< extended input slab cached for backward
  tensor::Tensor4 y_pre;      ///< pre-activation output slab
};

/// Columns-per-sample matrix layout -> NCHW tensor.
tensor::Tensor4 matrix_to_tensor(const tensor::Matrix& m, std::size_t c,
                                 std::size_t h, std::size_t w);
tensor::Matrix tensor_to_matrix(const tensor::Tensor4& t);

/// Post the (buffered, hence non-blocking) halo sends: my top `halo` rows to
/// the up neighbour, bottom rows to the down neighbour.
void send_halo(comm::Comm& group, const tensor::Tensor4& slab,
               std::size_t halo);

/// Receive the halo rows the neighbours sent. Returns {top_rows,
/// bottom_rows}; zero tensors at the image boundary.
std::pair<tensor::Tensor4, tensor::Tensor4> recv_halo(
    comm::Comm& group, const tensor::Tensor4& slab, std::size_t halo);

/// send_halo + recv_halo (the blocking schedule).
std::pair<tensor::Tensor4, tensor::Tensor4> exchange_halo(
    comm::Comm& group, const tensor::Tensor4& slab, std::size_t halo);

/// Forward pass of one conv layer on a height slab. Performs the halo
/// exchange in `group`, caches the extended input and pre-activation in `l`,
/// applies ReLU if configured, and returns the output slab.
tensor::Tensor4 domain_conv_forward(comm::Comm& group, DomainConvState& l,
                                    const tensor::Tensor4& slab);

/// Backward pass of one conv layer on a height slab: overwrites l.dw with
/// this process's *partial* weight gradient (caller must all-reduce it over
/// the processes that share the weights), exchanges boundary input-gradient
/// contributions with the neighbours, and returns ∆X for this slab.
/// `dslab` is the gradient at this layer's output (post-ReLU handled here).
tensor::Tensor4 domain_conv_backward(comm::Comm& group, DomainConvState& l,
                                     tensor::Tensor4 dslab);

/// All-gather the per-process height slabs of the conv output into the full
/// tensor (img_h rows). Slabs must be equal height (img_h % group.size()==0).
tensor::Tensor4 gather_slabs(comm::Comm& group, const tensor::Tensor4& slab,
                             std::size_t img_h);

}  // namespace mbd::parallel::detail
