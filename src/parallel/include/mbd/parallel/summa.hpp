// Executable 2D SUMMA (stationary-C variant) on the mbd::comm runtime —
// the §4 comparison algorithm, runnable and instrumented.
//
// C = A·B on a Pr × Pc grid. Every matrix is block-distributed: process
// (i, j) owns rows block i (over Pr) and columns block j (over Pc) of each.
// The algorithm iterates over panels of the contraction dimension k,
// broadcasting A panels along process rows and B panels along process
// columns (Van De Geijn & Watts 1997). Per-process receive volume is
// |A|/Pr + |B|/Pc words — the §4 stationary-C count — versus the 1.5D
// algorithm's single-matrix volume; no regime makes 2D strictly cheaper,
// but its memory use is optimal (no replication).
#pragma once

#include "mbd/comm/comm.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::parallel {

/// Global shapes of the distributed multiply.
struct SummaShape {
  std::size_t m = 0;  ///< rows of A and C
  std::size_t k = 0;  ///< cols of A, rows of B
  std::size_t n = 0;  ///< cols of B and C
};

/// The block of a global matrix owned by grid position (row, col).
struct BlockInfo {
  Range rows, cols;
};

/// Ownership of an m × n matrix on the grid for a given position.
BlockInfo summa_block(std::size_t m, std::size_t n, GridShape grid, int row,
                      int col);

/// Collective: compute this process's C block from its A and B blocks.
/// `a_block` must be the (rows over Pr) × (k-cols over Pc) block of A for
/// this grid position, `b_block` the (k-rows over Pr) × (cols over Pc) block
/// of B. Panel count is lcm(Pr, Pc), so panels nest inside both block
/// partitions exactly.
tensor::Matrix summa_stationary_c(comm::Comm& comm, GridShape grid,
                                  const SummaShape& shape,
                                  const tensor::Matrix& a_block,
                                  const tensor::Matrix& b_block);

/// Exact bytes the implementation broadcasts across all ranks in one multiply
/// (binomial broadcast delivers each panel once to every non-owner).
std::uint64_t summa_stationary_c_bytes(GridShape grid, const SummaShape& shape);

}  // namespace mbd::parallel
