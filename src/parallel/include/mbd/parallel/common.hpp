// Shared pieces of the distributed trainers: block partitions, batch slicing
// in the matrix layout, and the result type every trainer returns.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/costmodel/volumes.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::parallel {

struct RecoveryContext;
struct EngineLayout;

/// Half-open index range.
struct Range {
  std::size_t lo = 0, hi = 0;
  std::size_t size() const { return hi - lo; }
};

/// Grid shape: pr·pc must equal comm.size(). Pure trainers ignore it.
struct GridShape {
  int pr = 1;
  int pc = 1;
};

/// How the layer-engine completes the ∆W gradient reductions of a backward
/// pass. Blocking reduces each layer's gradient in place inside its backward
/// step (the paper's baseline schedule). Overlapped issues them as
/// nonblocking ring all-reduces and drains them behind the remaining layers'
/// GEMMs (Fig. 8's comm/compute overlap); the ring schedule is identical, so
/// byte counts and numerics match Blocking bit for bit.
enum class ReduceMode { Blocking, Overlapped };

/// Canonical block partition (same convention as Comm::block_lo, so trainer
/// partitions line up with reduce_scatter blocks).
Range block_range(std::size_t n, int parts, int index);

/// Result of a distributed training run, as observed on every rank.
struct DistResult {
  /// Mean global loss per iteration (identical on all ranks).
  std::vector<double> losses;
  /// Flattened final parameters, assembled to the full (unpartitioned)
  /// network layout on every rank — directly comparable with
  /// Network::save_params() of the sequential reference.
  std::vector<float> params;
};

/// Columns [start, start+count) of the dataset taken cyclically (the same
/// wrap-around slicing train_sgd uses), with matching labels.
struct BatchSlice {
  tensor::Matrix inputs;   ///< d × count
  std::vector<int> labels;
};
BatchSlice batch_slice(const nn::Dataset& data, std::size_t start,
                       std::size_t count);

/// All-reduce (sum) a double scalar via gather-to-0 + broadcast so the
/// AllReduce traffic class stays reserved for gradient reductions, which the
/// validation tests count exactly.
double sum_scalar(comm::Comm& comm, double value);

/// One (momentum-)SGD update on a parameter shard: with momentum m > 0,
/// v ← m·v + g and w ← w − lr·v; plain SGD otherwise. Velocity is purely
/// local state, so partitioned shards update exactly like the sequential
/// reference.
void sgd_update(std::span<float> w, std::span<const float> g,
                std::span<float> v, float lr, float momentum);

/// He-initialised d_out × d_in weight matrix, drawn with the exact stream
/// nn::build_network uses (scale √(2/d_in)). Every trainer draws its weights
/// through these two helpers so all trainers provably start from the weights
/// of the sequential reference.
tensor::Matrix he_init_full(std::size_t d_out, std::size_t d_in, Rng& rng);

/// Row-partitioned variant: draws the FULL matrix (keeping the random stream
/// aligned with the replicated layout) and returns rows [rows.lo, rows.hi).
tensor::Matrix he_init_rows(std::size_t d_out, std::size_t d_in, Rng& rng,
                            Range rows);

/// --- trainer registry -----------------------------------------------------
/// The single name → builder table every sweep tool iterates, so a new
/// trainer appears in mbd_analyze, mbd_launch, and obs_smoke (and any
/// future sweep) by adding one registry entry instead of three lists.

/// Options every builder accepts; fields a trainer has no use for are
/// ignored (pure trainers ignore `grid`, everything but the pipeline
/// ignores `microbatches`).
struct TrainerOptions {
  GridShape grid;
  std::uint64_t seed = 42;
  ReduceMode mode = ReduceMode::Blocking;
  double seconds_per_flop = 0.0;
  const RecoveryContext* recovery = nullptr;
  std::size_t microbatches = 2;      ///< pipeline only
  bool overlap_halo = false;         ///< domain/hybrid only
};

/// What network shapes a trainer accepts — sweep tools pick the matching
/// workload (MLP for the FC-only trainers, a deeper MLP for the pipeline's
/// one-layer-per-rank floor, conv nets for the domain/halo and pooled
/// mixed-grid phases).
enum class TrainerWorkload { Mlp, DeepMlp, ConvHalo, ConvPool };

/// One registered trainer: its costmodel identity, its two stable names
/// (the costmodel/CLI name and the launch/obs case name — they differ for
/// historical reasons), the workload class, the uniform training entry
/// point, and the stage-layout builder (the same configuration as a value,
/// for executors other than the training loop — see engine_layout.hpp).
struct TrainerEntry {
  costmodel::TrainerKind kind;
  std::string_view name;         ///< costmodel name, e.g. "integrated"
  std::string_view launch_name;  ///< case name, e.g. "integrated_15d"
  TrainerWorkload workload;
  DistResult (*run)(comm::Comm&, const TrainerOptions&,
                    const std::vector<nn::LayerSpec>&, const nn::Dataset&,
                    const nn::TrainConfig&);
  EngineLayout (*layout)(comm::Comm&, const TrainerOptions&,
                         const std::vector<nn::LayerSpec>&,
                         std::size_t batch);
};

/// All trainers, in the canonical sweep order.
std::span<const TrainerEntry> trainer_registry();

/// Look up by either name; nullptr when unknown.
const TrainerEntry* find_trainer(std::string_view name);

/// Look up by costmodel kind (every kind is registered).
const TrainerEntry& trainer_for(costmodel::TrainerKind kind);

}  // namespace mbd::parallel
