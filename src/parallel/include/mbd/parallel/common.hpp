// Shared pieces of the distributed trainers: block partitions, batch slicing
// in the matrix layout, and the result type every trainer returns.
#pragma once

#include <cstdint>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::parallel {

/// Half-open index range.
struct Range {
  std::size_t lo = 0, hi = 0;
  std::size_t size() const { return hi - lo; }
};

/// How the layer-engine completes the ∆W gradient reductions of a backward
/// pass. Blocking reduces each layer's gradient in place inside its backward
/// step (the paper's baseline schedule). Overlapped issues them as
/// nonblocking ring all-reduces and drains them behind the remaining layers'
/// GEMMs (Fig. 8's comm/compute overlap); the ring schedule is identical, so
/// byte counts and numerics match Blocking bit for bit.
enum class ReduceMode { Blocking, Overlapped };

/// Canonical block partition (same convention as Comm::block_lo, so trainer
/// partitions line up with reduce_scatter blocks).
Range block_range(std::size_t n, int parts, int index);

/// Result of a distributed training run, as observed on every rank.
struct DistResult {
  /// Mean global loss per iteration (identical on all ranks).
  std::vector<double> losses;
  /// Flattened final parameters, assembled to the full (unpartitioned)
  /// network layout on every rank — directly comparable with
  /// Network::save_params() of the sequential reference.
  std::vector<float> params;
};

/// Columns [start, start+count) of the dataset taken cyclically (the same
/// wrap-around slicing train_sgd uses), with matching labels.
struct BatchSlice {
  tensor::Matrix inputs;   ///< d × count
  std::vector<int> labels;
};
BatchSlice batch_slice(const nn::Dataset& data, std::size_t start,
                       std::size_t count);

/// All-reduce (sum) a double scalar via gather-to-0 + broadcast so the
/// AllReduce traffic class stays reserved for gradient reductions, which the
/// validation tests count exactly.
double sum_scalar(comm::Comm& comm, double value);

/// One (momentum-)SGD update on a parameter shard: with momentum m > 0,
/// v ← m·v + g and w ← w − lr·v; plain SGD otherwise. Velocity is purely
/// local state, so partitioned shards update exactly like the sequential
/// reference.
void sgd_update(std::span<float> w, std::span<const float> g,
                std::span<float> v, float lr, float momentum);

/// He-initialised d_out × d_in weight matrix, drawn with the exact stream
/// nn::build_network uses (scale √(2/d_in)). Every trainer draws its weights
/// through these two helpers so all trainers provably start from the weights
/// of the sequential reference.
tensor::Matrix he_init_full(std::size_t d_out, std::size_t d_in, Rng& rng);

/// Row-partitioned variant: draws the FULL matrix (keeping the random stream
/// aligned with the replicated layout) and returns rows [rows.lo, rows.hi).
tensor::Matrix he_init_rows(std::size_t d_out, std::size_t d_in, Rng& rng,
                            Range rows);

}  // namespace mbd::parallel
