// A trainer's stage layout as a first-class value.
//
// Each of the seven trainers used to build its LayerEngine inline: split the
// communicator, draw the weights, push the stages, train. That welds the
// layout to the training loop — nothing else (an inference engine, a layout
// autotuner, a planner) can reuse the stage graph. EngineLayout extracts the
// configuration half: the comm groups (owned, so their addresses stay stable
// for the stages that point at them), the stage list, the StepSchedule, and
// the data-movement contract an *executor* needs — which input columns this
// rank feeds (InputSpec) and where the logits end up (OutputSpec).
//
// `train_layout` is the original training loop: it moves the stages into a
// LayerEngine and runs it. `serve::InferenceSession` is the second executor:
// it interprets a derived forward-only tick program over the same stages —
// no Bwd ticks, no optimizer state — and assembles the logits per the
// OutputSpec. Every `build_*_layout` preserves the exact split order and RNG
// stream of the trainer it was extracted from, so layouts start from the
// sequential reference's weights bit for bit.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/layer_engine.hpp"

namespace mbd::parallel {

/// Which block of the global mini-batch's columns this rank feeds into its
/// first stage: columns block_range(B, parts, index). parts == 1 means the
/// rank reads the whole replicated batch.
struct InputSpec {
  int parts = 1;
  int index = 0;
};

/// Where the final stage's logits live after a forward pass. Either the
/// full d_out × B matrix is replicated on every rank, or it is column-block
/// partitioned into `parts` blocks, block i (columns block_range(B, parts,
/// i)) held in full by rank owners[i] — the contract an executor uses to
/// assemble replicated logits via per-block broadcasts.
struct OutputSpec {
  bool replicated = false;
  int parts = 1;
  std::vector<int> owners;  ///< size == parts when !replicated
};

/// One rank's complete view of a trainer configuration: the comm groups the
/// stages communicate over (owned here so stage pointers stay valid for the
/// layout's lifetime), the stages themselves, the engine schedule, and the
/// input/output data-movement contract.
struct EngineLayout {
  std::vector<std::unique_ptr<comm::Comm>> groups;
  std::vector<std::unique_ptr<EngineStage>> stages;
  StepSchedule sched;
  InputSpec input;
  OutputSpec output;
  std::size_t d_in = 0;   ///< first stage's expected row count
  std::size_t d_out = 0;  ///< logits row count
};

/// Run the shared training loop over a built layout (the exact code path
/// the seven train_* entry points always ran): move the stages into a
/// LayerEngine and train. The layout's comm groups stay alive in the caller
/// frame for the duration.
DistResult train_layout(comm::Comm& comm, EngineLayout layout,
                        const nn::Dataset& data, const nn::TrainConfig& cfg,
                        const RecoveryContext* recovery = nullptr);

}  // namespace mbd::parallel
