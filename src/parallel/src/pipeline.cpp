#include "mbd/parallel/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::parallel {
namespace {

using tensor::Matrix;

// One user-space tag pair per microbatch (far below Comm::kInternalTagBase),
// so the static analyzer's replay matches each boundary transfer to exactly
// the tick that produced it.
int fwd_tag(std::size_t m) { return static_cast<int>(2 * m); }
int bwd_tag(std::size_t m) { return static_cast<int>(2 * m + 1); }

/// Entry boundary of a pipeline rank: forward receives the previous rank's
/// boundary activations for the tick's microbatch; backward returns the
/// gradient at that boundary to the previous rank.
class PipeRecvStage final : public EngineStage {
 public:
  PipeRecvStage(comm::Comm* comm, int peer, std::size_t dim)
      : comm_(comm), peer_(peer), dim_(dim) {}

  const char* name() const override { return "pipe_recv"; }
  bool supports_microbatching() const override { return true; }

  Flow forward(Flow /*in*/, const StepContext& ctx) override {
    auto act = comm_->recv<float>(peer_, fwd_tag(ctx.microbatch));
    MBD_CHECK_EQ(act.size() % dim_, 0u);
    const std::size_t cols = act.size() / dim_;
    return Flow::from_matrix(Matrix::from_data(dim_, cols, std::move(act)));
  }

  Flow backward(Flow grad, const StepContext& ctx,
                GradReducer& /*red*/) override {
    const Matrix& g = grad.as_matrix();
    MBD_CHECK_EQ(g.rows(), dim_);
    comm_->send(peer_, std::span<const float>(g.span()),
                bwd_tag(ctx.microbatch));
    return {};
  }

  void update(float /*lr*/, float /*momentum*/) override {}
  void collect_params(std::vector<float>& /*out*/) override {}

 private:
  comm::Comm* comm_;
  int peer_;
  std::size_t dim_;  ///< boundary width: fc_in of this rank's first layer
};

/// Exit boundary of a pipeline rank: forward sends this rank's boundary
/// activations to the next rank; backward receives the gradient at that
/// boundary back from it.
class PipeSendStage final : public EngineStage {
 public:
  PipeSendStage(comm::Comm* comm, int peer, std::size_t dim)
      : comm_(comm), peer_(peer), dim_(dim) {}

  const char* name() const override { return "pipe_send"; }
  bool supports_microbatching() const override { return true; }

  Flow forward(Flow in, const StepContext& ctx) override {
    const Matrix& y = in.as_matrix();
    MBD_CHECK_EQ(y.rows(), dim_);
    comm_->send(peer_, std::span<const float>(y.span()),
                fwd_tag(ctx.microbatch));
    return {};
  }

  Flow backward(Flow /*grad*/, const StepContext& ctx,
                GradReducer& /*red*/) override {
    auto g = comm_->recv<float>(peer_, bwd_tag(ctx.microbatch));
    MBD_CHECK_EQ(g.size() % dim_, 0u);
    const std::size_t cols = g.size() / dim_;
    return Flow::from_matrix(Matrix::from_data(dim_, cols, std::move(g)));
  }

  void update(float /*lr*/, float /*momentum*/) override {}
  void collect_params(std::vector<float>& /*out*/) override {}

 private:
  comm::Comm* comm_;
  int peer_;
  std::size_t dim_;  ///< boundary width: fc_out of this rank's last layer
};

/// Rank `rank`'s 1F1B tick order over `num_stages` local stages: w warmup
/// forwards (w = min(P−1−rank, M)), then (Fwd, Bwd) steady-state pairs,
/// then the w drain backwards. The tail rank (w = 0) strictly alternates.
/// Bwd ticks run in increasing microbatch order on every rank, satisfying
/// the engine's ∆W-completion rule.
ScheduleProgram one_f1b_program(std::size_t num_stages, int p, int rank,
                                std::size_t microbatches) {
  ScheduleProgram prog;
  prog.num_microbatches = microbatches;
  prog.ticks.reserve(2 * num_stages * microbatches);
  const auto fwd_mb = [&](std::size_t m) {
    for (std::size_t s = 0; s < num_stages; ++s)
      prog.ticks.push_back({ScheduleTick::Op::Fwd, s, m});
  };
  const auto bwd_mb = [&](std::size_t m) {
    for (std::size_t s = num_stages; s-- > 0;)
      prog.ticks.push_back({ScheduleTick::Op::Bwd, s, m});
  };
  const std::size_t warmup = std::min<std::size_t>(
      static_cast<std::size_t>(p - 1 - rank), microbatches);
  for (std::size_t m = 0; m < warmup; ++m) fwd_mb(m);
  for (std::size_t m = 0; m + warmup < microbatches; ++m) {
    fwd_mb(warmup + m);
    bwd_mb(m);
  }
  for (std::size_t m = microbatches - warmup; m < microbatches; ++m)
    bwd_mb(m);
  // Finalize the loss after the whole program: every rank reaches the
  // sum_loss reduction having finished all its ticks, regardless of where
  // its own last Fwd tick sat in the 1F1B interleaving.
  prog.loss_tick = prog.ticks.size() - 1;
  return prog;
}

}  // namespace

EngineLayout build_pipeline_layout(comm::Comm& comm,
                                   const TrainerOptions& opts,
                                   const std::vector<nn::LayerSpec>& specs,
                                   std::size_t batch) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t microbatches = opts.microbatches;
  const std::size_t num_layers = specs.size();
  MBD_CHECK_MSG(num_layers >= static_cast<std::size_t>(p),
                "pipeline trainer needs at least one layer per rank ("
                    << num_layers << " layers over " << p << " ranks)");
  MBD_CHECK_GT(microbatches, 0u);
  MBD_CHECK_LE(microbatches, batch);
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "pipeline trainer supports MLPs only; '"
                      << s.name << "' is not fully connected");
  }

  const Range owned = block_range(num_layers, p, r);
  const std::size_t num_stages = static_cast<std::size_t>(r > 0) +
                                 owned.size() +
                                 static_cast<std::size_t>(r < p - 1);

  EngineLayout lay;
  // Every rank sees the whole replicated mini-batch; only the tail computes
  // logits, the other ranks contribute zero partials to the world loss sum.
  lay.sched.input_cols = {0, batch};
  lay.sched.label_cols = lay.sched.input_cols;
  lay.sched.sum_loss = true;
  lay.sched.loss_replicas = 1;
  lay.sched.mode = opts.mode;
  lay.sched.seconds_per_flop = opts.seconds_per_flop;
  lay.sched.compute_loss = r == p - 1;
  lay.sched.program = one_f1b_program(num_stages, p, r, microbatches);
  lay.input = {1, 0};
  // Only the tail rank ends the forward chain holding logits — one column
  // block covering the whole batch, owned by rank P−1.
  lay.output.parts = 1;
  lay.output.owners.push_back(p - 1);
  lay.d_in = specs.front().fc_in;
  lay.d_out = specs.back().fc_out;

  if (r > 0)
    lay.stages.push_back(std::make_unique<PipeRecvStage>(
        &comm, r - 1, specs[owned.lo].fc_in));
  // Draw every layer from the shared stream (discarding the unowned ones)
  // so all ranks provably start from the sequential reference's weights.
  Rng rng(opts.seed);
  for (std::size_t l = 0; l < num_layers; ++l) {
    const auto& s = specs[l];
    Matrix w = he_init_full(s.fc_out, s.fc_in, rng);
    if (l < owned.lo || l >= owned.hi) continue;
    FcStage::Config c;
    c.d_in = s.fc_in;
    c.d_out = s.fc_out;
    c.relu_after = s.relu_after;
    c.model_group = nullptr;  // whole layers, never row-partitioned
    c.batch_group = nullptr;  // one replica of each weight — no ∆W reduce
    c.rows = {0, s.fc_out};
    c.compute_dx = l != 0;  // the data layer needs no ∆X
    lay.stages.push_back(std::make_unique<FcStage>(c, std::move(w)));
  }
  if (r < p - 1)
    lay.stages.push_back(std::make_unique<PipeSendStage>(
        &comm, r + 1, specs[owned.hi - 1].fc_out));
  return lay;
}

DistResult train_pipeline(comm::Comm& comm,
                          const std::vector<nn::LayerSpec>& specs,
                          const nn::Dataset& data, const nn::TrainConfig& cfg,
                          std::size_t microbatches, std::uint64_t seed,
                          ReduceMode mode, const RecoveryContext* recovery,
                          double seconds_per_flop) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t num_layers = specs.size();

  TrainerOptions opts;
  opts.seed = seed;
  opts.mode = mode;
  opts.seconds_per_flop = seconds_per_flop;
  opts.microbatches = microbatches;
  DistResult res =
      train_layout(comm, build_pipeline_layout(comm, opts, specs, cfg.batch),
                   data, cfg, recovery);

  // Assemble the full parameter vector on every rank: each layer's owner
  // broadcasts its weights in layer order. This is setup traffic after the
  // last engine-step marker, excluded from per-iteration accounting like
  // the other trainers' collect_params all-gathers.
  std::vector<float> full;
  std::size_t local_at = 0;
  for (int owner = 0; owner < p; ++owner) {
    const Range group = block_range(num_layers, p, owner);
    for (std::size_t l = group.lo; l < group.hi; ++l) {
      std::vector<float> buf(specs[l].weight_count());
      if (owner == r) {
        MBD_CHECK_LE(local_at + buf.size(), res.params.size());
        std::copy_n(res.params.begin() +
                        static_cast<std::ptrdiff_t>(local_at),
                    buf.size(), buf.begin());
        local_at += buf.size();
      }
      comm.broadcast(std::span<float>(buf), owner);
      full.insert(full.end(), buf.begin(), buf.end());
    }
  }
  res.params = std::move(full);
  return res;
}

}  // namespace mbd::parallel
