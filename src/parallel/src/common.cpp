#include "mbd/parallel/common.hpp"

#include <cmath>

#include "mbd/support/check.hpp"

namespace mbd::parallel {

Range block_range(std::size_t n, int parts, int index) {
  MBD_CHECK_GT(parts, 0);
  MBD_CHECK(index >= 0 && index < parts);
  return {comm::Comm::block_lo(n, parts, index),
          comm::Comm::block_lo(n, parts, index + 1)};
}

BatchSlice batch_slice(const nn::Dataset& data, std::size_t start,
                       std::size_t count) {
  BatchSlice s;
  s.inputs = tensor::Matrix(data.inputs.rows(), count);
  s.labels.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t src = (start + j) % data.size();
    for (std::size_t i = 0; i < s.inputs.rows(); ++i)
      s.inputs(i, j) = data.inputs(i, src);
    s.labels[j] = data.labels[src];
  }
  return s;
}

void sgd_update(std::span<float> w, std::span<const float> g,
                std::span<float> v, float lr, float momentum) {
  MBD_CHECK_EQ(w.size(), g.size());
  if (momentum == 0.0f) {
    for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr * g[i];
    return;
  }
  MBD_CHECK_EQ(w.size(), v.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    v[i] = momentum * v[i] + g[i];
    w[i] -= lr * v[i];
  }
}

tensor::Matrix he_init_full(std::size_t d_out, std::size_t d_in, Rng& rng) {
  return tensor::Matrix::random_normal(
      d_out, d_in, rng, std::sqrt(2.0f / static_cast<float>(d_in)));
}

tensor::Matrix he_init_rows(std::size_t d_out, std::size_t d_in, Rng& rng,
                            Range rows) {
  MBD_CHECK_LE(rows.hi, d_out);
  // Draw the FULL matrix so the random stream stays aligned with the
  // replicated layout, then keep only the owned rows.
  tensor::Matrix full = he_init_full(d_out, d_in, rng);
  if (rows.lo == 0 && rows.hi == d_out) return full;
  return full.row_block(rows.lo, rows.hi);
}

double sum_scalar(comm::Comm& comm, double value) {
  auto all = comm.gather(std::span<const double>(&value, 1), /*root=*/0);
  double total = 0.0;
  if (comm.rank() == 0)
    for (double v : all) total += v;
  comm.broadcast(std::span<double>(&total, 1), /*root=*/0);
  return total;
}

}  // namespace mbd::parallel
