#include "mbd/parallel/mixed_grid.hpp"

#include <memory>

#include "mbd/nn/layers.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

using tensor::Matrix;

EngineLayout build_mixed_grid_layout(comm::Comm& comm,
                                     const TrainerOptions& opts,
                                     const std::vector<nn::LayerSpec>& specs,
                                     std::size_t batch) {
  const GridShape grid = opts.grid;
  const int p = comm.size();
  MBD_CHECK_EQ(grid.pr * grid.pc, p);
  MBD_CHECK_LE(static_cast<std::size_t>(p), batch);
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // model index along Pr
  const int col = rank % grid.pc;  // batch-group index along Pc

  EngineLayout lay;
  lay.groups.push_back(
      std::make_unique<comm::Comm>(comm.split(/*color=*/col, /*key=*/row)));
  lay.groups.push_back(
      std::make_unique<comm::Comm>(comm.split(/*color=*/row, /*key=*/col)));
  comm::Comm* model_group = lay.groups[0].get();
  comm::Comm* batch_group = lay.groups[1].get();
  MBD_CHECK_EQ(model_group->size(), grid.pr);
  MBD_CHECK_EQ(batch_group->size(), grid.pc);

  // Conv-phase batch block: j·Pr + i, so that each model group's members'
  // blocks tile exactly its FC-phase column range (the canonical block
  // partition nests exactly under refinement).
  const int conv_block = col * grid.pr + row;
  const Range conv_cols = block_range(batch, p, conv_block);
  const Range group_cols = block_range(batch, grid.pc, col);
  MBD_CHECK_LE(group_cols.lo, conv_cols.lo);
  MBD_CHECK_LE(conv_cols.hi, group_cols.hi);

  // --- build: conv/pool prefix (full weights) + FC grid suffix -----------
  std::vector<std::unique_ptr<nn::Layer>> conv_stack;
  double conv_stack_macs = 0.0;
  std::vector<FcStage::Config> fc_cfgs;
  std::vector<Matrix> fc_weights;
  Rng rng(opts.seed);
  std::size_t d_conv_out = 0;
  bool seen_fc = false;
  for (const auto& s : specs) {
    switch (s.kind) {
      case nn::LayerKind::Conv: {
        MBD_CHECK_MSG(!seen_fc, "conv layer '" << s.name << "' after FC");
        conv_stack.push_back(std::make_unique<nn::Conv2D>(s.name, s.conv, rng));
        if (s.relu_after)
          conv_stack.push_back(std::make_unique<nn::ReLU>(s.name + "_relu"));
        conv_stack_macs += static_cast<double>(s.macs_per_sample());
        d_conv_out = s.d_out();
        break;
      }
      case nn::LayerKind::Pool: {
        MBD_CHECK_MSG(!seen_fc, "pool layer '" << s.name << "' after FC");
        conv_stack.push_back(std::make_unique<nn::MaxPool2D>(s.name, s.conv));
        d_conv_out = s.d_out();
        break;
      }
      case nn::LayerKind::FullyConnected: {
        seen_fc = true;
        FcStage::Config c;
        c.d_in = s.fc_in;
        c.d_out = s.fc_out;
        c.relu_after = s.relu_after;
        c.model_group = model_group;
        c.batch_group = batch_group;
        c.rows = block_range(s.fc_out, grid.pr, row);
        // ∆X needed for every layer — the conv stack sits below the first
        // FC.
        c.compute_dx = true;
        fc_cfgs.push_back(c);
        fc_weights.push_back(he_init_rows(s.fc_out, s.fc_in, rng, c.rows));
        break;
      }
    }
  }
  MBD_CHECK(!conv_stack.empty());
  MBD_CHECK(!fc_cfgs.empty());
  MBD_CHECK_EQ(d_conv_out, fc_cfgs.front().d_in);

  // The conv phase runs on this rank's B/P columns; the loss (and the FC
  // phase) on its group's B/Pc columns, replicated Pr times.
  lay.sched.input_cols = conv_cols;
  lay.sched.label_cols = group_cols;
  lay.sched.sum_loss = true;
  lay.sched.loss_replicas = grid.pr;
  lay.sched.mode = opts.mode;
  lay.sched.seconds_per_flop = opts.seconds_per_flop;
  lay.input = {p, conv_block};
  // After the redistribution the FC phase's logits are per column group:
  // block j of the Pc-way partition, fully held by global rank j (row 0).
  lay.output.parts = grid.pc;
  for (int j = 0; j < grid.pc; ++j) lay.output.owners.push_back(j);
  lay.d_in = specs.front().d_in();
  lay.d_out = specs.back().d_out();

  lay.stages.push_back(std::make_unique<ConvStackStage>(
      std::move(conv_stack), d_conv_out, &comm, conv_stack_macs));
  lay.stages.push_back(std::make_unique<RedistributeStage>(
      model_group, p, grid.pr, col, /*conv_index=*/row, d_conv_out));
  for (std::size_t li = 0; li < fc_cfgs.size(); ++li)
    lay.stages.push_back(
        std::make_unique<FcStage>(fc_cfgs[li], std::move(fc_weights[li])));
  return lay;
}

DistResult train_mixed_grid(comm::Comm& comm, GridShape grid,
                            const std::vector<nn::LayerSpec>& specs,
                            const nn::Dataset& data,
                            const nn::TrainConfig& cfg, std::uint64_t seed,
                            ReduceMode mode,
                            const RecoveryContext* recovery,
                            double seconds_per_flop) {
  TrainerOptions opts;
  opts.grid = grid;
  opts.seed = seed;
  opts.mode = mode;
  opts.seconds_per_flop = seconds_per_flop;
  return train_layout(comm,
                      build_mixed_grid_layout(comm, opts, specs, cfg.batch),
                      data, cfg, recovery);
}

}  // namespace mbd::parallel
