#include "mbd/parallel/mixed_grid.hpp"

#include <cmath>
#include <memory>

#include "mbd/nn/layers.hpp"
#include "mbd/nn/loss.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel {

using tensor::Matrix;

namespace {

struct FcGridLayer {
  std::size_t d_in = 0, d_out = 0;
  bool relu_after = false;
  Range rows;
  Matrix w, dw, vel;
  Matrix x, y_pre;
};

}  // namespace

DistResult train_mixed_grid(comm::Comm& comm, GridShape grid,
                            const std::vector<nn::LayerSpec>& specs,
                            const nn::Dataset& data,
                            const nn::TrainConfig& cfg, std::uint64_t seed) {
  const int p = comm.size();
  MBD_CHECK_EQ(grid.pr * grid.pc, p);
  MBD_CHECK_LE(static_cast<std::size_t>(p), cfg.batch);
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // model index along Pr
  const int col = rank % grid.pc;  // batch-group index along Pc
  comm::Comm model_group = comm.split(/*color=*/col, /*key=*/row);
  MBD_CHECK_EQ(model_group.size(), grid.pr);
  comm::Comm batch_group = comm.split(/*color=*/row, /*key=*/col);
  MBD_CHECK_EQ(batch_group.size(), grid.pc);

  // Conv-phase batch block: j·Pr + i, so that each model group's members'
  // blocks tile exactly its FC-phase column range (the canonical block
  // partition nests exactly under refinement).
  const int conv_block = col * grid.pr + row;
  const Range conv_cols = block_range(cfg.batch, p, conv_block);
  const Range group_cols = block_range(cfg.batch, grid.pc, col);
  MBD_CHECK_LE(group_cols.lo, conv_cols.lo);
  MBD_CHECK_LE(conv_cols.hi, group_cols.hi);

  // --- build: conv/pool prefix (full weights) + FC grid suffix -----------
  std::vector<std::unique_ptr<nn::Layer>> conv_stack;
  std::vector<FcGridLayer> fcs;
  Rng rng(seed);
  std::size_t d_conv_out = 0;
  bool seen_fc = false;
  for (const auto& s : specs) {
    switch (s.kind) {
      case nn::LayerKind::Conv: {
        MBD_CHECK_MSG(!seen_fc, "conv layer '" << s.name << "' after FC");
        conv_stack.push_back(std::make_unique<nn::Conv2D>(s.name, s.conv, rng));
        if (s.relu_after)
          conv_stack.push_back(std::make_unique<nn::ReLU>(s.name + "_relu"));
        d_conv_out = s.d_out();
        break;
      }
      case nn::LayerKind::Pool: {
        MBD_CHECK_MSG(!seen_fc, "pool layer '" << s.name << "' after FC");
        conv_stack.push_back(std::make_unique<nn::MaxPool2D>(s.name, s.conv));
        d_conv_out = s.d_out();
        break;
      }
      case nn::LayerKind::FullyConnected: {
        seen_fc = true;
        FcGridLayer l;
        l.d_in = s.fc_in;
        l.d_out = s.fc_out;
        l.relu_after = s.relu_after;
        l.rows = block_range(s.fc_out, grid.pr, row);
        const Matrix full = Matrix::random_normal(
            s.fc_out, s.fc_in, rng,
            std::sqrt(2.0f / static_cast<float>(s.fc_in)));
        l.w = full.row_block(l.rows.lo, l.rows.hi);
        l.dw = Matrix(l.w.rows(), l.w.cols());
        l.vel = Matrix(l.w.rows(), l.w.cols());
        fcs.push_back(std::move(l));
        break;
      }
    }
  }
  MBD_CHECK(!conv_stack.empty());
  MBD_CHECK(!fcs.empty());
  MBD_CHECK_EQ(d_conv_out, fcs.front().d_in);
  // Momentum velocity buffers for the conv stack (layer order).
  std::vector<std::vector<float>> conv_vel(conv_stack.size());
  for (std::size_t li = 0; li < conv_stack.size(); ++li)
    conv_vel[li].assign(conv_stack[li]->weights().size(), 0.0f);

  DistResult result;
  result.losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    BatchSlice batch = batch_slice(data, start + conv_cols.lo,
                                   conv_cols.size());

    // --- conv phase: pure batch parallel, B/P samples, full weights -------
    Matrix x = std::move(batch.inputs);
    for (auto& l : conv_stack) x = l->forward(x);
    MBD_CHECK_EQ(x.rows(), d_conv_out);

    // --- Eq. 6 redistribution: all-gather the conv blocks within the model
    //     group so everyone holds the group's B/Pc columns ------------------
    Matrix x_group(d_conv_out, group_cols.size());
    {
      auto gathered = model_group.allgatherv(x.span());
      MBD_CHECK_EQ(gathered.size(), d_conv_out * group_cols.size());
      std::size_t at = 0, col_at = 0;
      for (int m = 0; m < grid.pr; ++m) {
        const Range mc =
            block_range(cfg.batch, p, col * grid.pr + m);
        const Matrix block = Matrix::from_data(
            d_conv_out, mc.size(),
            {gathered.begin() + static_cast<std::ptrdiff_t>(at),
             gathered.begin() +
                 static_cast<std::ptrdiff_t>(at + d_conv_out * mc.size())});
        x_group.set_col_block(col_at, block);
        at += d_conv_out * mc.size();
        col_at += mc.size();
      }
    }

    // Labels for the whole group's columns.
    const BatchSlice group_batch =
        batch_slice(data, start + group_cols.lo, group_cols.size());

    // --- FC phase: 1.5D on the Pr × Pc grid --------------------------------
    Matrix xg = std::move(x_group);
    for (auto& l : fcs) {
      l.x = xg;
      const Matrix y_local = tensor::matmul(l.w, xg);
      auto gathered = l.d_out % static_cast<std::size_t>(grid.pr) == 0
                          ? model_group.allgather(y_local.span())
                          : model_group.allgatherv(y_local.span());
      l.y_pre = Matrix::from_data(l.d_out, group_cols.size(),
                                  std::move(gathered));
      if (l.relu_after) {
        Matrix y(l.d_out, group_cols.size());
        tensor::relu_forward(l.y_pre.span(), y.span());
        xg = std::move(y);
      } else {
        xg = l.y_pre;
      }
    }

    const nn::LossResult lr =
        nn::softmax_cross_entropy(xg, group_batch.labels, cfg.batch);
    result.losses.push_back(sum_scalar(comm, lr.loss_sum) /
                            static_cast<double>(grid.pr) /
                            static_cast<double>(cfg.batch));

    // --- FC backward --------------------------------------------------------
    Matrix dxg = lr.dlogits;
    for (std::size_t li = fcs.size(); li-- > 0;) {
      auto& l = fcs[li];
      Matrix dy_pre;
      if (l.relu_after) {
        dy_pre = Matrix(l.d_out, group_cols.size());
        tensor::relu_backward(l.y_pre.span(), dxg.span(), dy_pre.span());
      } else {
        dy_pre = std::move(dxg);
      }
      const Matrix dy_block = dy_pre.row_block(l.rows.lo, l.rows.hi);
      tensor::gemm_nt(dy_block, l.x, l.dw);
      if (grid.pc > 1) batch_group.allreduce(l.dw.span());
      // ∆X needed for every layer — the conv stack sits below the first FC.
      Matrix dxl = tensor::matmul_tn(l.w, dy_block);
      if (grid.pr > 1) model_group.allreduce(dxl.span());
      dxg = std::move(dxl);
    }

    // --- conv backward: slice my columns back out of the group gradient ---
    Matrix dx_local =
        dxg.col_block(conv_cols.lo - group_cols.lo,
                      conv_cols.hi - group_cols.lo);
    for (auto it_l = conv_stack.rbegin(); it_l != conv_stack.rend(); ++it_l)
      dx_local = (*it_l)->backward(dx_local);
    for (auto& l : conv_stack) {
      auto g = l->grads();
      if (!g.empty()) comm.allreduce(g);
    }

    // --- SGD step -----------------------------------------------------------
    for (std::size_t li = 0; li < conv_stack.size(); ++li) {
      sgd_update(conv_stack[li]->weights(), conv_stack[li]->grads(),
                 conv_vel[li], nn::lr_at(cfg, it), cfg.momentum);
    }
    for (auto& l : fcs)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
  }

  for (auto& l : conv_stack) {
    auto w = l->weights();
    result.params.insert(result.params.end(), w.begin(), w.end());
  }
  for (auto& l : fcs) {
    auto full = l.d_out % static_cast<std::size_t>(grid.pr) == 0
                    ? model_group.allgather(l.w.span())
                    : model_group.allgatherv(l.w.span());
    result.params.insert(result.params.end(), full.begin(), full.end());
  }
  return result;
}

}  // namespace mbd::parallel
