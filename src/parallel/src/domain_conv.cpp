#include "mbd/parallel/detail/domain_conv.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel::detail {

using tensor::ConvGeom;
using tensor::Matrix;
using tensor::Tensor4;

Tensor4 matrix_to_tensor(const Matrix& m, std::size_t c, std::size_t h,
                         std::size_t w) {
  MBD_CHECK_EQ(m.rows(), c * h * w);
  Tensor4 t(m.cols(), c, h, w);
  for (std::size_t b = 0; b < m.cols(); ++b)
    for (std::size_t i = 0; i < m.rows(); ++i)
      t.data()[b * m.rows() + i] = m(i, b);
  return t;
}

Matrix tensor_to_matrix(const Tensor4& t) {
  const std::size_t d = t.c() * t.h() * t.w();
  Matrix m(d, t.n());
  for (std::size_t b = 0; b < t.n(); ++b)
    for (std::size_t i = 0; i < d; ++i) m(i, b) = t.data()[b * d + i];
  return m;
}

void send_halo(comm::Comm& group, const Tensor4& slab, std::size_t halo) {
  const int p = group.size();
  const int r = group.rank();
  if (halo == 0 || p == 1) return;
  // Buffered sends: the payload is deposited immediately — the caller can
  // compute while the "wire" carries it.
  if (r > 0) {
    const Tensor4 my_top = slab.height_slab(0, halo);
    group.send(r - 1, my_top.span(), /*tag=*/1);
  }
  if (r < p - 1) {
    const Tensor4 my_bottom = slab.height_slab(slab.h() - halo, slab.h());
    group.send(r + 1, my_bottom.span(), /*tag=*/2);
  }
}

std::pair<Tensor4, Tensor4> recv_halo(comm::Comm& group, const Tensor4& slab,
                                      std::size_t halo) {
  const int p = group.size();
  const int r = group.rank();
  Tensor4 top(slab.n(), slab.c(), halo, slab.w());
  Tensor4 bottom(slab.n(), slab.c(), halo, slab.w());
  if (halo == 0 || p == 1) return {std::move(top), std::move(bottom)};
  if (r > 0) {
    const auto rows = group.recv<float>(r - 1, /*tag=*/2);  // neighbour's bottom
    MBD_CHECK_EQ(rows.size(), top.size());
    std::copy(rows.begin(), rows.end(), top.data());
  }
  if (r < p - 1) {
    const auto rows = group.recv<float>(r + 1, /*tag=*/1);  // neighbour's top
    MBD_CHECK_EQ(rows.size(), bottom.size());
    std::copy(rows.begin(), rows.end(), bottom.data());
  }
  return {std::move(top), std::move(bottom)};
}

std::pair<Tensor4, Tensor4> exchange_halo(comm::Comm& group,
                                          const Tensor4& slab,
                                          std::size_t halo) {
  send_halo(group, slab, halo);
  return recv_halo(group, slab, halo);
}

namespace {

/// Convolve a horizontal band of the extended slab: input rows
/// [band_lo, band_lo + band_rows + 2·halo) of `ext` produce output rows
/// [band_lo, band_lo + band_rows) of `y`.
void conv_band(const DomainConvState& l, const Tensor4& ext, Tensor4& y,
               std::size_t band_lo, std::size_t band_rows) {
  if (band_rows == 0) return;
  const std::size_t halo = l.geom.kernel_h / 2;
  const Tensor4 band = ext.height_slab(band_lo, band_lo + band_rows + 2 * halo);
  const ConvGeom ge{l.geom.in_c, band.h(), ext.w(), l.geom.out_c,
                    l.geom.kernel_h, l.geom.kernel_w, 1, 0};
  MBD_CHECK_EQ(ge.out_h(), band_rows);
  MBD_CHECK_EQ(ge.out_w(), y.w());
  for (std::size_t b = 0; b < ext.n(); ++b) {
    const Matrix cols = tensor::im2col(band, b, ge);
    const Matrix ys = tensor::matmul(l.w, cols);  // out_c × (band_rows·w)
    for (std::size_t oc = 0; oc < l.geom.out_c; ++oc)
      for (std::size_t i = 0; i < band_rows * y.w(); ++i)
        y.data()[y.offset(b, oc, band_lo, 0) + i] =
            ys(oc, i);
  }
}

}  // namespace

Tensor4 domain_conv_forward(comm::Comm& group, DomainConvState& l,
                            const Tensor4& slab) {
  const int p = group.size();
  const int r = group.rank();
  const std::size_t halo = l.geom.kernel_h / 2;
  MBD_CHECK_MSG(slab.h() >= halo,
                "slab of " << slab.h() << " rows shorter than halo " << halo);
  send_halo(group, slab, halo);

  // Extended slab: explicit vertical halo rows plus horizontal zero pad.
  const std::size_t eh = slab.h() + 2 * halo;
  const std::size_t ew = slab.w() + 2 * halo;
  Tensor4 ext(slab.n(), slab.c(), eh, ew);
  auto fill_rows = [&](const Tensor4& src, std::size_t rows_n,
                       std::size_t dst_h0) {
    for (std::size_t b = 0; b < slab.n(); ++b)
      for (std::size_t c = 0; c < slab.c(); ++c)
        for (std::size_t hh = 0; hh < rows_n; ++hh)
          for (std::size_t ww = 0; ww < src.w(); ++ww)
            ext.at(b, c, dst_h0 + hh, halo + ww) = src.at(b, c, hh, ww);
  };
  fill_rows(slab, slab.h(), halo);

  Tensor4 y(slab.n(), l.geom.out_c, slab.h(), slab.w());
  const bool overlap =
      l.overlap_halo && halo > 0 && p > 1 && slab.h() >= 2 * halo;
  if (overlap) {
    // Interior output rows [halo, h−halo) read only this rank's own input
    // rows — compute them while the halo is in flight (paper §2.2).
    conv_band(l, ext, y, halo, slab.h() - 2 * halo);
  }

  auto [top, bottom] = recv_halo(group, slab, halo);
  if (halo > 0 && r > 0) fill_rows(top, halo, 0);
  if (halo > 0 && r < p - 1) fill_rows(bottom, halo, halo + slab.h());

  if (overlap) {
    // Boundary rows now that the halo has arrived.
    conv_band(l, ext, y, 0, halo);
    conv_band(l, ext, y, slab.h() - halo, halo);
  } else {
    conv_band(l, ext, y, 0, slab.h());
  }

  l.ext_input = std::move(ext);
  l.y_pre = y;
  if (l.relu_after) tensor::relu_forward(l.y_pre.span(), y.span());
  return y;
}

Tensor4 domain_conv_backward(comm::Comm& group, DomainConvState& l,
                             Tensor4 dslab) {
  const int p = group.size();
  const int r = group.rank();
  const std::size_t halo = l.geom.kernel_h / 2;
  const std::size_t h_loc = dslab.h();
  if (l.relu_after) {
    Tensor4 d(dslab.n(), dslab.c(), dslab.h(), dslab.w());
    tensor::relu_backward(l.y_pre.span(), dslab.span(), d.span());
    dslab = std::move(d);
  }
  const std::size_t eh = h_loc + 2 * halo;
  const std::size_t ew = dslab.w() + 2 * halo;
  const ConvGeom ge{l.geom.in_c, eh, ew, l.geom.out_c,
                    l.geom.kernel_h, l.geom.kernel_w, 1, 0};
  std::fill(l.dw.span().begin(), l.dw.span().end(), 0.0f);
  Tensor4 d_ext(dslab.n(), l.geom.in_c, eh, ew);
  const std::size_t out_elems = dslab.c() * dslab.h() * dslab.w();
  for (std::size_t b = 0; b < dslab.n(); ++b) {
    const Matrix cols = tensor::im2col(l.ext_input, b, ge);
    const float* dy0 = dslab.data() + dslab.offset(b, 0, 0, 0);
    const Matrix dys = Matrix::from_data(l.geom.out_c, dslab.h() * dslab.w(),
                                         {dy0, dy0 + out_elems});
    tensor::gemm_nt(dys, cols, l.dw, 1.0f, 1.0f);
    const Matrix dcols = tensor::matmul_tn(l.w, dys);
    tensor::col2im_add(dcols, d_ext, b, ge);
  }
  // Interior input-gradient slab (horizontal pad columns are discarded).
  const std::size_t in_w = dslab.w();
  Tensor4 dnext(dslab.n(), l.geom.in_c, h_loc, in_w);
  for (std::size_t b = 0; b < dslab.n(); ++b)
    for (std::size_t c = 0; c < l.geom.in_c; ++c)
      for (std::size_t hh = 0; hh < h_loc; ++hh)
        for (std::size_t ww = 0; ww < in_w; ++ww)
          dnext.at(b, c, hh, ww) = d_ext.at(b, c, halo + hh, halo + ww);
  if (halo > 0 && p > 1) {
    // Boundary contributions computed here belong to the neighbours.
    Tensor4 to_up(dslab.n(), l.geom.in_c, halo, in_w);
    Tensor4 to_down(dslab.n(), l.geom.in_c, halo, in_w);
    for (std::size_t b = 0; b < dslab.n(); ++b)
      for (std::size_t c = 0; c < l.geom.in_c; ++c)
        for (std::size_t hh = 0; hh < halo; ++hh)
          for (std::size_t ww = 0; ww < in_w; ++ww) {
            to_up.at(b, c, hh, ww) = d_ext.at(b, c, hh, halo + ww);
            to_down.at(b, c, hh, ww) =
                d_ext.at(b, c, halo + h_loc + hh, halo + ww);
          }
    if (r > 0) group.send(r - 1, to_up.span(), /*tag=*/3);
    if (r < p - 1) group.send(r + 1, to_down.span(), /*tag=*/4);
    auto accumulate = [&](std::span<const float> rows, std::size_t dst_h0) {
      Tensor4 add(dslab.n(), l.geom.in_c, halo, in_w);
      MBD_CHECK_EQ(rows.size(), add.size());
      std::copy(rows.begin(), rows.end(), add.data());
      for (std::size_t b = 0; b < dslab.n(); ++b)
        for (std::size_t c = 0; c < l.geom.in_c; ++c)
          for (std::size_t hh = 0; hh < halo; ++hh)
            for (std::size_t ww = 0; ww < in_w; ++ww)
              dnext.at(b, c, dst_h0 + hh, ww) += add.at(b, c, hh, ww);
    };
    if (r < p - 1) {
      const auto from_below = group.recv<float>(r + 1, /*tag=*/3);
      accumulate(from_below, h_loc - halo);
    }
    if (r > 0) {
      const auto from_above = group.recv<float>(r - 1, /*tag=*/4);
      accumulate(from_above, 0);
    }
  }
  return dnext;
}

Tensor4 gather_slabs(comm::Comm& group, const Tensor4& slab,
                     std::size_t img_h) {
  const int p = group.size();
  // Equal slabs go through Bruck; uneven heights through ring all-gatherv.
  const auto gathered = img_h % static_cast<std::size_t>(p) == 0
                      ? group.allgather(slab.span())
                      : group.allgatherv(slab.span());
  Tensor4 full(slab.n(), slab.c(), img_h, slab.w());
  std::size_t at = 0;
  for (int rr = 0; rr < p; ++rr) {
    const Range r = block_range(img_h, p, rr);
    Tensor4 s(slab.n(), slab.c(), r.size(), slab.w());
    std::copy_n(gathered.begin() + static_cast<std::ptrdiff_t>(at), s.size(),
                s.data());
    at += s.size();
    full.set_height_slab(r.lo, s);
  }
  return full;
}

}  // namespace mbd::parallel::detail
