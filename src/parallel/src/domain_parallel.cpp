#include "mbd/parallel/domain_parallel.hpp"

#include <memory>

#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

using detail::DomainConvState;
using tensor::Matrix;

EngineLayout build_domain_parallel_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch) {
  const int p = comm.size();
  const int r = comm.rank();

  // Validate the spec structure (conv stack, then FC tail) and build the
  // partitioned state with the exact weight stream of build_network.
  std::vector<DomainConvState> convs;
  std::vector<double> conv_macs;  // full-image MACs/sample, scaled below
  std::vector<FcStage::Config> fc_cfgs;
  std::vector<Matrix> fc_weights;
  Rng rng(opts.seed);
  bool seen_fc = false;
  std::size_t img_h = 0;
  for (const auto& s : specs) {
    if (s.kind == nn::LayerKind::Conv) {
      MBD_CHECK_MSG(!seen_fc, "conv layer '" << s.name << "' after FC layers");
      const auto& g = s.conv;
      MBD_CHECK_MSG(g.stride == 1 && g.kernel_h % 2 == 1 &&
                        g.kernel_h == g.kernel_w && g.pad == g.kernel_h / 2,
                    "domain trainer needs stride-1 odd-kernel same-pad convs; '"
                        << s.name << "' violates this");
      if (img_h == 0) img_h = g.in_h;
      MBD_CHECK_EQ(g.in_h, img_h);  // same-pad keeps height constant
      DomainConvState l;
      l.geom = g;
      l.relu_after = s.relu_after;
      l.overlap_halo = opts.overlap_halo;
      l.w = he_init_full(g.out_c, g.in_c * g.kernel_h * g.kernel_w, rng);
      l.dw = Matrix(l.w.rows(), l.w.cols());
      l.vel = Matrix(l.w.rows(), l.w.cols());
      convs.push_back(std::move(l));
      conv_macs.push_back(static_cast<double>(s.macs_per_sample()));
    } else if (s.kind == nn::LayerKind::FullyConnected) {
      seen_fc = true;
      FcStage::Config c;
      c.d_in = s.fc_in;
      c.d_out = s.fc_out;
      c.relu_after = s.relu_after;
      c.model_group = nullptr;   // replicated FC tail, no model comm
      c.batch_group = nullptr;   // full batch everywhere: ∆W already complete
      c.rows = {0, s.fc_out};
      c.compute_dx = true;  // the conv stack below always needs ∆X
      fc_cfgs.push_back(c);
      fc_weights.push_back(he_init_full(s.fc_out, s.fc_in, rng));
    } else {
      MBD_CHECK_MSG(false, "domain trainer does not support pooling ('"
                               << s.name << "')");
    }
  }
  MBD_CHECK(!convs.empty());
  MBD_CHECK_MSG(static_cast<std::size_t>(p) <= img_h,
                "more ranks (" << p << ") than image rows (" << img_h << ")");
  const Range rows = block_range(img_h, p, r);

  EngineLayout lay;
  // Every process reads the whole mini-batch but keeps only its image rows;
  // the loss is computed on replicated logits.
  lay.sched.input_cols = {0, batch};
  lay.sched.label_cols = lay.sched.input_cols;
  lay.sched.mode = opts.mode;
  lay.sched.seconds_per_flop = opts.seconds_per_flop;
  lay.input = {1, 0};
  lay.output.replicated = true;  // replicated FC tail after the slab gather
  lay.d_in = specs.front().d_in();
  lay.d_out = specs.back().d_out();

  const auto& g0 = convs.front().geom;
  lay.stages.push_back(
      std::make_unique<SlabScatterStage>(g0.in_c, g0.in_h, g0.in_w, rows));
  const auto& gl = convs.back().geom;
  const std::size_t last_out_c = gl.out_c;
  const std::size_t last_in_w = gl.in_w;
  // Each rank computes its slab's share of the conv work.
  const double slab_frac =
      static_cast<double>(rows.size()) / static_cast<double>(img_h);
  for (std::size_t li = 0; li < convs.size(); ++li)
    lay.stages.push_back(std::make_unique<DomainConvStage>(
        std::move(convs[li]), /*conv_group=*/&comm, /*reduce_group=*/&comm,
        conv_macs[li] * slab_frac));
  // FC tail: gather the full activation ("the halo is the whole input"),
  // then compute replicated on every process.
  lay.stages.push_back(std::make_unique<SlabGatherStage>(
      &comm, last_out_c, img_h, last_in_w, rows));
  for (std::size_t li = 0; li < fc_cfgs.size(); ++li)
    lay.stages.push_back(
        std::make_unique<FcStage>(fc_cfgs[li], std::move(fc_weights[li])));
  return lay;
}

DistResult train_domain_parallel(comm::Comm& comm,
                                 const std::vector<nn::LayerSpec>& specs,
                                 const nn::Dataset& data,
                                 const nn::TrainConfig& cfg,
                                 std::uint64_t seed, bool overlap_halo,
                                 ReduceMode mode,
                                 const RecoveryContext* recovery,
                                 double seconds_per_flop) {
  TrainerOptions opts;
  opts.seed = seed;
  opts.mode = mode;
  opts.seconds_per_flop = seconds_per_flop;
  opts.overlap_halo = overlap_halo;
  return train_layout(
      comm, build_domain_parallel_layout(comm, opts, specs, cfg.batch), data,
      cfg, recovery);
}

}  // namespace mbd::parallel
