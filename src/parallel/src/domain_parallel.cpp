#include "mbd/parallel/domain_parallel.hpp"

#include <cmath>

#include "mbd/nn/loss.hpp"
#include "mbd/parallel/detail/domain_conv.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel {

using detail::DomainConvState;
using tensor::Matrix;
using tensor::Tensor4;

namespace {

struct FcState {
  std::size_t d_in = 0, d_out = 0;
  bool relu_after = false;
  Matrix w, dw, vel;
  Matrix x, y_pre;
};

}  // namespace

DistResult train_domain_parallel(comm::Comm& comm,
                                 const std::vector<nn::LayerSpec>& specs,
                                 const nn::Dataset& data,
                                 const nn::TrainConfig& cfg,
                                 std::uint64_t seed, bool overlap_halo) {
  const int p = comm.size();
  const int r = comm.rank();

  // Split specs into the conv stack and the FC tail; validate structure.
  std::vector<DomainConvState> convs;
  std::vector<FcState> fcs;
  Rng rng(seed);
  bool seen_fc = false;
  std::size_t img_h = 0;
  for (const auto& s : specs) {
    if (s.kind == nn::LayerKind::Conv) {
      MBD_CHECK_MSG(!seen_fc, "conv layer '" << s.name << "' after FC layers");
      const auto& g = s.conv;
      MBD_CHECK_MSG(g.stride == 1 && g.kernel_h % 2 == 1 &&
                        g.kernel_h == g.kernel_w && g.pad == g.kernel_h / 2,
                    "domain trainer needs stride-1 odd-kernel same-pad convs; '"
                        << s.name << "' violates this");
      if (img_h == 0) img_h = g.in_h;
      MBD_CHECK_EQ(g.in_h, img_h);  // same-pad keeps height constant
      DomainConvState l;
      l.geom = g;
      l.relu_after = s.relu_after;
      l.overlap_halo = overlap_halo;
      l.w = Matrix::random_normal(
          g.out_c, g.in_c * g.kernel_h * g.kernel_w, rng,
          std::sqrt(2.0f /
                    static_cast<float>(g.in_c * g.kernel_h * g.kernel_w)));
      l.dw = Matrix(l.w.rows(), l.w.cols());
      l.vel = Matrix(l.w.rows(), l.w.cols());
      convs.push_back(std::move(l));
    } else if (s.kind == nn::LayerKind::FullyConnected) {
      seen_fc = true;
      FcState l;
      l.d_in = s.fc_in;
      l.d_out = s.fc_out;
      l.relu_after = s.relu_after;
      l.w = Matrix::random_normal(
          s.fc_out, s.fc_in, rng, std::sqrt(2.0f / static_cast<float>(s.fc_in)));
      l.dw = Matrix(l.w.rows(), l.w.cols());
      l.vel = Matrix(l.w.rows(), l.w.cols());
      fcs.push_back(std::move(l));
    } else {
      MBD_CHECK_MSG(false, "domain trainer does not support pooling ('"
                               << s.name << "')");
    }
  }
  MBD_CHECK(!convs.empty());
  MBD_CHECK_MSG(static_cast<std::size_t>(p) <= img_h,
                "more ranks (" << p << ") than image rows (" << img_h << ")");
  const Range rows = block_range(img_h, p, r);

  DistResult result;
  result.losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    // Every process reads the whole mini-batch but keeps only its rows.
    BatchSlice batch = batch_slice(data, start, cfg.batch);
    const auto& g0 = convs.front().geom;
    Tensor4 full_in =
        detail::matrix_to_tensor(batch.inputs, g0.in_c, g0.in_h, g0.in_w);
    Tensor4 slab = full_in.height_slab(rows.lo, rows.hi);

    // Forward through the conv stack with per-layer halo exchange.
    for (auto& l : convs) slab = detail::domain_conv_forward(comm, l, slab);

    // FC tail: gather the full activation ("the halo is the whole input"),
    // then compute replicated on every process.
    const Tensor4 full_act = detail::gather_slabs(comm, slab, img_h);
    Matrix x = detail::tensor_to_matrix(full_act);
    for (auto& l : fcs) {
      l.x = x;
      l.y_pre = tensor::matmul(l.w, x);
      if (l.relu_after) {
        Matrix y(l.d_out, cfg.batch);
        tensor::relu_forward(l.y_pre.span(), y.span());
        x = std::move(y);
      } else {
        x = l.y_pre;
      }
    }

    const nn::LossResult lr =
        nn::softmax_cross_entropy(x, batch.labels, cfg.batch);
    result.losses.push_back(lr.loss_sum / static_cast<double>(cfg.batch));

    // FC backward (replicated — identical on every process).
    Matrix dx = lr.dlogits;
    for (std::size_t li = fcs.size(); li-- > 0;) {
      auto& l = fcs[li];
      Matrix dy_pre;
      if (l.relu_after) {
        dy_pre = Matrix(l.d_out, cfg.batch);
        tensor::relu_backward(l.y_pre.span(), dx.span(), dy_pre.span());
      } else {
        dy_pre = std::move(dx);
      }
      tensor::gemm_nt(dy_pre, l.x, l.dw);
      dx = tensor::matmul_tn(l.w, dy_pre);
    }

    // Conv backward on my slab, with gradient halo exchange and a full
    // ∆W all-reduce per layer (each process saw only its output rows).
    const auto& gl = convs.back().geom;
    Tensor4 full_dx = detail::matrix_to_tensor(dx, gl.out_c, img_h, gl.in_w);
    Tensor4 dslab = full_dx.height_slab(rows.lo, rows.hi);
    for (std::size_t li = convs.size(); li-- > 0;) {
      auto& l = convs[li];
      dslab = detail::domain_conv_backward(comm, l, std::move(dslab));
      comm.allreduce(l.dw.span());
    }

    for (auto& l : convs)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
    for (auto& l : fcs)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
  }

  for (const auto& l : convs)
    result.params.insert(result.params.end(), l.w.span().begin(),
                         l.w.span().end());
  for (const auto& l : fcs)
    result.params.insert(result.params.end(), l.w.span().begin(),
                         l.w.span().end());
  return result;
}

}  // namespace mbd::parallel
