#include "mbd/parallel/model_parallel.hpp"

#include <cmath>

#include "mbd/nn/loss.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel {

using tensor::Matrix;

namespace {

struct MpLayer {
  std::size_t d_in = 0, d_out = 0;
  bool relu_after = false;
  Range rows;        // owned rows of W
  Matrix w, dw, vel; // (rows.size) × d_in
  // forward state
  Matrix x;         // input, d_in × B (replicated)
  Matrix y_pre;     // pre-activation output, d_out × B (replicated)
};

}  // namespace

DistResult train_model_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed) {
  const int p = comm.size();
  const int r = comm.rank();

  std::vector<MpLayer> layers;
  Rng rng(seed);
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "model-parallel trainer supports MLPs only; '"
                      << s.name << "' is not fully connected");
    MpLayer l;
    l.d_in = s.fc_in;
    l.d_out = s.fc_out;
    l.relu_after = s.relu_after;
    l.rows = block_range(s.fc_out, p, r);
    // Draw the full matrix with the same stream build_network uses, then
    // keep only the owned rows — weights match the sequential net exactly.
    const Matrix full = Matrix::random_normal(
        s.fc_out, s.fc_in, rng, std::sqrt(2.0f / static_cast<float>(s.fc_in)));
    l.w = full.row_block(l.rows.lo, l.rows.hi);
    l.dw = Matrix(l.w.rows(), l.w.cols());
    l.vel = Matrix(l.w.rows(), l.w.cols());
    layers.push_back(std::move(l));
  }

  DistResult result;
  result.losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    // Replicated input: the entire mini-batch on every process.
    BatchSlice batch = batch_slice(data, start, cfg.batch);

    // Forward.
    Matrix x = std::move(batch.inputs);
    for (auto& l : layers) {
      l.x = x;
      const Matrix y_local = tensor::matmul(l.w, x);  // (d_out/P) × B
      // All-gather the row blocks into the full Y (Fig. 1 top): Bruck for
      // equal blocks, ring all-gatherv when d_out does not divide evenly.
      auto gathered = l.d_out % static_cast<std::size_t>(p) == 0
                          ? comm.allgather(y_local.span())
                          : comm.allgatherv(y_local.span());
      l.y_pre = Matrix::from_data(l.d_out, cfg.batch, std::move(gathered));
      if (l.relu_after) {
        Matrix y(l.d_out, cfg.batch);
        tensor::relu_forward(l.y_pre.span(), y.span());
        x = std::move(y);
      } else {
        x = l.y_pre;
      }
    }

    // Loss on fully replicated logits — identical on every rank.
    const nn::LossResult lr =
        nn::softmax_cross_entropy(x, batch.labels, cfg.batch);
    result.losses.push_back(lr.loss_sum / static_cast<double>(cfg.batch));

    // Backward.
    Matrix dx = lr.dlogits;  // gradient w.r.t. layer output (post-ReLU)
    for (std::size_t li = layers.size(); li-- > 0;) {
      auto& l = layers[li];
      Matrix dy_pre;
      if (l.relu_after) {
        dy_pre = Matrix(l.d_out, cfg.batch);
        tensor::relu_backward(l.y_pre.span(), dx.span(), dy_pre.span());
      } else {
        dy_pre = std::move(dx);
      }
      const Matrix dy_block = dy_pre.row_block(l.rows.lo, l.rows.hi);
      // ∆W for the owned rows: complete over the batch, no communication.
      tensor::gemm_nt(dy_block, l.x, l.dw);
      if (li > 0) {
        // ∆X = Wᵀ∆Y: local contribution then all-reduce (Fig. 1 bottom).
        Matrix dxl = tensor::matmul_tn(l.w, dy_block);  // d_in × B
        comm.allreduce(dxl.span());
        dx = std::move(dxl);
      }
    }

    for (auto& l : layers)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
  }

  // Assemble full parameters: all-gather the row blocks of each W.
  for (auto& l : layers) {
    auto full = l.d_out % static_cast<std::size_t>(p) == 0
                    ? comm.allgather(l.w.span())
                    : comm.allgatherv(l.w.span());
    result.params.insert(result.params.end(), full.begin(), full.end());
  }
  return result;
}

}  // namespace mbd::parallel
