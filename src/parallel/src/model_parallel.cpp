#include "mbd/parallel/model_parallel.hpp"

#include <memory>

#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

EngineLayout build_model_parallel_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch) {
  const int p = comm.size();
  const int r = comm.rank();
  MBD_CHECK(!specs.empty());

  EngineLayout lay;
  // Replicated input: the entire mini-batch on every process; the loss is
  // computed on fully replicated logits, identical on every rank.
  lay.sched.input_cols = {0, batch};
  lay.sched.label_cols = lay.sched.input_cols;
  lay.sched.mode = opts.mode;
  lay.sched.seconds_per_flop = opts.seconds_per_flop;
  lay.input = {1, 0};
  lay.output.replicated = true;  // FcStage all-gathers every Y over the world
  lay.d_in = specs.front().fc_in;
  lay.d_out = specs.back().fc_out;

  Rng rng(opts.seed);
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "model-parallel trainer supports MLPs only; '"
                      << s.name << "' is not fully connected");
    FcStage::Config c;
    c.d_in = s.fc_in;
    c.d_out = s.fc_out;
    c.relu_after = s.relu_after;
    c.model_group = &comm;  // every weight row-partitioned over all of P
    c.batch_group = nullptr;  // ∆W complete locally — full batch everywhere
    c.rows = block_range(s.fc_out, p, r);
    c.compute_dx = !first;  // the data layer needs no ∆X
    first = false;
    lay.stages.push_back(std::make_unique<FcStage>(
        c, he_init_rows(s.fc_out, s.fc_in, rng, c.rows)));
  }
  return lay;
}

DistResult train_model_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed, ReduceMode mode,
                                const RecoveryContext* recovery,
                                double seconds_per_flop) {
  TrainerOptions opts;
  opts.seed = seed;
  opts.mode = mode;
  opts.seconds_per_flop = seconds_per_flop;
  return train_layout(
      comm, build_model_parallel_layout(comm, opts, specs, cfg.batch), data,
      cfg, recovery);
}

}  // namespace mbd::parallel
