#include "mbd/parallel/model_parallel.hpp"

#include <memory>

#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

DistResult train_model_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed, ReduceMode mode,
                                const RecoveryContext* recovery,
                                double seconds_per_flop) {
  const int p = comm.size();
  const int r = comm.rank();

  // Replicated input: the entire mini-batch on every process; the loss is
  // computed on fully replicated logits, identical on every rank.
  StepSchedule sched;
  sched.input_cols = {0, cfg.batch};
  sched.label_cols = sched.input_cols;
  sched.mode = mode;
  sched.seconds_per_flop = seconds_per_flop;
  LayerEngine engine(comm, sched);

  Rng rng(seed);
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "model-parallel trainer supports MLPs only; '"
                      << s.name << "' is not fully connected");
    FcStage::Config c;
    c.d_in = s.fc_in;
    c.d_out = s.fc_out;
    c.relu_after = s.relu_after;
    c.model_group = &comm;  // every weight row-partitioned over all of P
    c.batch_group = nullptr;  // ∆W complete locally — full batch everywhere
    c.rows = block_range(s.fc_out, p, r);
    c.compute_dx = !first;  // the data layer needs no ∆X
    first = false;
    engine.add_stage(std::make_unique<FcStage>(
        c, he_init_rows(s.fc_out, s.fc_in, rng, c.rows)));
  }
  return engine.train(data, cfg, recovery);
}

}  // namespace mbd::parallel
