#include "mbd/parallel/integrated.hpp"

#include <memory>

#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

DistResult train_integrated_15d(comm::Comm& comm, GridShape grid,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed, ReduceMode mode,
                                double seconds_per_flop,
                                const RecoveryContext* recovery) {
  MBD_CHECK_EQ(grid.pr * grid.pc, comm.size());
  MBD_CHECK_LE(static_cast<std::size_t>(grid.pc), cfg.batch);
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // index along Pr (model dimension)
  const int col = rank % grid.pc;  // index along Pc (batch dimension)
  // Pr group: same batch columns, different model rows -> all-gather/∆X.
  comm::Comm model_group = comm.split(/*color=*/col, /*key=*/row);
  // Pc group: same model rows, different batch columns -> ∆W all-reduce.
  comm::Comm batch_group = comm.split(/*color=*/row, /*key=*/col);
  MBD_CHECK_EQ(model_group.size(), grid.pr);
  MBD_CHECK_EQ(batch_group.size(), grid.pc);

  // This process holds the batch columns of its Pc block (uneven splits OK);
  // each column group's loss partial is replicated Pr times.
  StepSchedule sched;
  sched.input_cols = block_range(cfg.batch, grid.pc, col);
  sched.label_cols = sched.input_cols;
  sched.sum_loss = true;
  sched.loss_replicas = grid.pr;
  sched.mode = mode;
  sched.seconds_per_flop = seconds_per_flop;
  LayerEngine engine(comm, sched);

  Rng rng(seed);
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "1.5D trainer supports MLPs only; '" << s.name
                                                       << "' is not FC");
    FcStage::Config c;
    c.d_in = s.fc_in;
    c.d_out = s.fc_out;
    c.relu_after = s.relu_after;
    c.model_group = &model_group;
    c.batch_group = &batch_group;
    c.rows = block_range(s.fc_out, grid.pr, row);
    c.compute_dx = !first;
    first = false;
    engine.add_stage(std::make_unique<FcStage>(
        c, he_init_rows(s.fc_out, s.fc_in, rng, c.rows)));
  }
  return engine.train(data, cfg, recovery);
}

}  // namespace mbd::parallel
