#include "mbd/parallel/integrated.hpp"

#include <memory>

#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

EngineLayout build_integrated_15d_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch) {
  const GridShape grid = opts.grid;
  MBD_CHECK_EQ(grid.pr * grid.pc, comm.size());
  MBD_CHECK_LE(static_cast<std::size_t>(grid.pc), batch);
  MBD_CHECK(!specs.empty());
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // index along Pr (model dimension)
  const int col = rank % grid.pc;  // index along Pc (batch dimension)

  EngineLayout lay;
  // Pr group: same batch columns, different model rows -> all-gather/∆X.
  lay.groups.push_back(
      std::make_unique<comm::Comm>(comm.split(/*color=*/col, /*key=*/row)));
  // Pc group: same model rows, different batch columns -> ∆W all-reduce.
  lay.groups.push_back(
      std::make_unique<comm::Comm>(comm.split(/*color=*/row, /*key=*/col)));
  comm::Comm* model_group = lay.groups[0].get();
  comm::Comm* batch_group = lay.groups[1].get();
  MBD_CHECK_EQ(model_group->size(), grid.pr);
  MBD_CHECK_EQ(batch_group->size(), grid.pc);

  // This process holds the batch columns of its Pc block (uneven splits OK);
  // each column group's loss partial is replicated Pr times.
  lay.sched.input_cols = block_range(batch, grid.pc, col);
  lay.sched.label_cols = lay.sched.input_cols;
  lay.sched.sum_loss = true;
  lay.sched.loss_replicas = grid.pr;
  lay.sched.mode = opts.mode;
  lay.sched.seconds_per_flop = opts.seconds_per_flop;
  lay.input = {grid.pc, col};
  // Column group j's members each hold the full logits of batch block j;
  // its row-0 member is global rank j (rank = row·Pc + col).
  lay.output.parts = grid.pc;
  for (int j = 0; j < grid.pc; ++j) lay.output.owners.push_back(j);
  lay.d_in = specs.front().fc_in;
  lay.d_out = specs.back().fc_out;

  Rng rng(opts.seed);
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "1.5D trainer supports MLPs only; '" << s.name
                                                       << "' is not FC");
    FcStage::Config c;
    c.d_in = s.fc_in;
    c.d_out = s.fc_out;
    c.relu_after = s.relu_after;
    c.model_group = model_group;
    c.batch_group = batch_group;
    c.rows = block_range(s.fc_out, grid.pr, row);
    c.compute_dx = !first;
    first = false;
    lay.stages.push_back(std::make_unique<FcStage>(
        c, he_init_rows(s.fc_out, s.fc_in, rng, c.rows)));
  }
  return lay;
}

DistResult train_integrated_15d(comm::Comm& comm, GridShape grid,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed, ReduceMode mode,
                                double seconds_per_flop,
                                const RecoveryContext* recovery) {
  TrainerOptions opts;
  opts.grid = grid;
  opts.seed = seed;
  opts.mode = mode;
  opts.seconds_per_flop = seconds_per_flop;
  return train_layout(
      comm, build_integrated_15d_layout(comm, opts, specs, cfg.batch), data,
      cfg, recovery);
}

}  // namespace mbd::parallel
