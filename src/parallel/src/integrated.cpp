#include "mbd/parallel/integrated.hpp"

#include <cmath>

#include "mbd/nn/loss.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel {

using tensor::Matrix;

namespace {

struct GridLayer {
  std::size_t d_in = 0, d_out = 0;
  bool relu_after = false;
  Range rows;         // owned rows of W (block over Pr)
  Matrix w, dw, vel;  // rows.size() × d_in
  Matrix x;      // input, d_in × (B/Pc)
  Matrix y_pre;  // gathered pre-activation, d_out × (B/Pc)
};

}  // namespace

DistResult train_integrated_15d(comm::Comm& comm, GridShape grid,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                std::uint64_t seed) {
  MBD_CHECK_EQ(grid.pr * grid.pc, comm.size());
  MBD_CHECK_LE(static_cast<std::size_t>(grid.pc), cfg.batch);
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // index along Pr (model dimension)
  const int col = rank % grid.pc;  // index along Pc (batch dimension)
  // Pr group: same batch columns, different model rows -> all-gather/∆X.
  comm::Comm model_group = comm.split(/*color=*/col, /*key=*/row);
  // Pc group: same model rows, different batch columns -> ∆W all-reduce.
  comm::Comm batch_group = comm.split(/*color=*/row, /*key=*/col);
  MBD_CHECK_EQ(model_group.size(), grid.pr);
  MBD_CHECK_EQ(batch_group.size(), grid.pc);

  // This process holds the batch columns of its Pc block (uneven splits OK).
  const Range batch_cols = block_range(cfg.batch, grid.pc, col);
  const std::size_t b_loc = batch_cols.size();

  std::vector<GridLayer> layers;
  Rng rng(seed);
  for (const auto& s : specs) {
    MBD_CHECK_MSG(s.kind == nn::LayerKind::FullyConnected,
                  "1.5D trainer supports MLPs only; '" << s.name
                                                       << "' is not FC");
    GridLayer l;
    l.d_in = s.fc_in;
    l.d_out = s.fc_out;
    l.relu_after = s.relu_after;
    l.rows = block_range(s.fc_out, grid.pr, row);
    const Matrix full = Matrix::random_normal(
        s.fc_out, s.fc_in, rng, std::sqrt(2.0f / static_cast<float>(s.fc_in)));
    l.w = full.row_block(l.rows.lo, l.rows.hi);
    l.dw = Matrix(l.w.rows(), l.w.cols());
    l.vel = Matrix(l.w.rows(), l.w.cols());
    layers.push_back(std::move(l));
  }

  DistResult result;
  result.losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    BatchSlice batch = batch_slice(data, start + batch_cols.lo, b_loc);

    // Forward (Fig. 5 top).
    Matrix x = std::move(batch.inputs);
    for (auto& l : layers) {
      l.x = x;
      const Matrix y_local = tensor::matmul(l.w, x);
      auto gathered = l.d_out % static_cast<std::size_t>(grid.pr) == 0
                          ? model_group.allgather(y_local.span())
                          : model_group.allgatherv(y_local.span());
      l.y_pre = Matrix::from_data(l.d_out, b_loc, std::move(gathered));
      if (l.relu_after) {
        Matrix y(l.d_out, b_loc);
        tensor::relu_forward(l.y_pre.span(), y.span());
        x = std::move(y);
      } else {
        x = l.y_pre;
      }
    }

    // Loss over local columns; gradient already scaled by 1/B (global).
    const nn::LossResult lr =
        nn::softmax_cross_entropy(x, batch.labels, cfg.batch);
    // Each column group's partial is replicated Pr times; divide it out.
    result.losses.push_back(sum_scalar(comm, lr.loss_sum) /
                            static_cast<double>(grid.pr) /
                            static_cast<double>(cfg.batch));

    // Backward (Fig. 5 middle/bottom).
    Matrix dx = lr.dlogits;
    for (std::size_t li = layers.size(); li-- > 0;) {
      auto& l = layers[li];
      Matrix dy_pre;
      if (l.relu_after) {
        dy_pre = Matrix(l.d_out, b_loc);
        tensor::relu_backward(l.y_pre.span(), dx.span(), dy_pre.span());
      } else {
        dy_pre = std::move(dx);
      }
      const Matrix dy_block = dy_pre.row_block(l.rows.lo, l.rows.hi);
      // ∆W: partial over local columns, all-reduce over the Pc group.
      tensor::gemm_nt(dy_block, l.x, l.dw);
      if (grid.pc > 1) batch_group.allreduce(l.dw.span());
      if (li > 0) {
        // ∆X: partial over owned rows, all-reduce over the Pr group.
        Matrix dxl = tensor::matmul_tn(l.w, dy_block);
        if (grid.pr > 1) model_group.allreduce(dxl.span());
        dx = std::move(dxl);
      }
    }

    for (auto& l : layers)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
  }

  // Assemble full parameters: gather the row blocks over the model group
  // (identical across the batch group by construction).
  for (auto& l : layers) {
    auto full = l.d_out % static_cast<std::size_t>(grid.pr) == 0
                    ? model_group.allgather(l.w.span())
                    : model_group.allgatherv(l.w.span());
    result.params.insert(result.params.end(), full.begin(), full.end());
  }
  return result;
}

}  // namespace mbd::parallel
