#include "mbd/parallel/summa.hpp"

#include <numeric>

#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"

namespace mbd::parallel {

using tensor::Matrix;

namespace {

std::size_t lcm(std::size_t a, std::size_t b) { return std::lcm(a, b); }

}  // namespace

BlockInfo summa_block(std::size_t m, std::size_t n, GridShape grid, int row,
                      int col) {
  return {block_range(m, grid.pr, row), block_range(n, grid.pc, col)};
}

Matrix summa_stationary_c(comm::Comm& comm, GridShape grid,
                          const SummaShape& shape, const Matrix& a_block,
                          const Matrix& b_block) {
  MBD_CHECK_EQ(grid.pr * grid.pc, comm.size());
  const int row = comm.rank() / grid.pc;
  const int col = comm.rank() % grid.pc;
  const BlockInfo a_info = summa_block(shape.m, shape.k, grid, row, col);
  const BlockInfo b_info = summa_block(shape.k, shape.n, grid, row, col);
  MBD_CHECK_EQ(a_block.rows(), a_info.rows.size());
  MBD_CHECK_EQ(a_block.cols(), a_info.cols.size());
  MBD_CHECK_EQ(b_block.rows(), b_info.rows.size());
  MBD_CHECK_EQ(b_block.cols(), b_info.cols.size());

  comm::Comm row_comm = comm.split(/*color=*/row, /*key=*/col);  // size Pc
  comm::Comm col_comm = comm.split(/*color=*/col, /*key=*/row);  // size Pr

  Matrix c(a_info.rows.size(), b_info.cols.size());
  const std::size_t panels =
      lcm(static_cast<std::size_t>(grid.pr), static_cast<std::size_t>(grid.pc));
  // Panels nest exactly inside both the Pc partition of A's columns and the
  // Pr partition of B's rows (the canonical block partition is refinement-
  // stable), so each panel has a single owner along each axis.
  for (std::size_t t = 0; t < panels; ++t) {
    const Range kt = block_range(shape.k, static_cast<int>(panels),
                                 static_cast<int>(t));
    if (kt.size() == 0) continue;
    const int a_owner_col =
        static_cast<int>(t / (panels / static_cast<std::size_t>(grid.pc)));
    const int b_owner_row =
        static_cast<int>(t / (panels / static_cast<std::size_t>(grid.pr)));

    // A panel: my rows × kt, broadcast along the process row.
    Matrix a_panel(a_info.rows.size(), kt.size());
    if (col == a_owner_col) {
      a_panel = a_block.col_block(kt.lo - a_info.cols.lo,
                                  kt.hi - a_info.cols.lo);
    }
    row_comm.broadcast(a_panel.span(), a_owner_col);

    // B panel: kt × my cols, broadcast along the process column.
    Matrix b_panel(kt.size(), b_info.cols.size());
    if (row == b_owner_row) {
      b_panel = b_block.row_block(kt.lo - b_info.rows.lo,
                                  kt.hi - b_info.rows.lo);
    }
    col_comm.broadcast(b_panel.span(), b_owner_row);

    tensor::gemm_nn(a_panel, b_panel, c, 1.0f, 1.0f);
  }
  return c;
}

std::uint64_t summa_stationary_c_bytes(GridShape grid,
                                       const SummaShape& shape) {
  // Binomial broadcast delivers each panel exactly once to every non-owner:
  // per process row the A panels sum to that row block of A, broadcast to
  // (Pc−1) peers; summed over rows that is (Pc−1)·|A|. Symmetrically
  // (Pr−1)·|B| for the column broadcasts.
  const std::uint64_t a_words =
      static_cast<std::uint64_t>(shape.m) * shape.k;
  const std::uint64_t b_words =
      static_cast<std::uint64_t>(shape.k) * shape.n;
  return (static_cast<std::uint64_t>(grid.pc - 1) * a_words +
          static_cast<std::uint64_t>(grid.pr - 1) * b_words) *
         sizeof(float);
}

}  // namespace mbd::parallel
