#include "mbd/parallel/layer_engine.hpp"

#include "mbd/nn/loss.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel {

using tensor::Matrix;
using tensor::Tensor4;

namespace {

// Flat-state (de)serialization helpers for EngineStage::save_state /
// restore_state: append a span, or consume a prefix of the input span.
void append_state(std::vector<float>& out, std::span<const float> s) {
  out.insert(out.end(), s.begin(), s.end());
}

void take_state(std::span<const float>& in, std::span<float> dst) {
  MBD_CHECK_LE(dst.size(), in.size());
  std::copy_n(in.begin(), dst.size(), dst.begin());
  in = in.subspan(dst.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// StepContext / GradReducer
// ---------------------------------------------------------------------------

void StepContext::annotate(double flops) const {
  if (seconds_per_flop > 0.0 && flops > 0.0)
    world->annotate_compute(flops * seconds_per_flop);
}

void GradReducer::allreduce(comm::Comm& group, std::span<float> grads) {
  if (mode_ == ReduceMode::Blocking) {
    group.allreduce(grads);
    return;
  }
  pending_.push_back(group.iallreduce(grads));
}

void GradReducer::drain() {
  for (auto& h : pending_) h.wait();
  pending_.clear();
}

// ---------------------------------------------------------------------------
// FcStage
// ---------------------------------------------------------------------------

FcStage::FcStage(const Config& cfg, Matrix w) : cfg_(cfg), w_(std::move(w)) {
  MBD_CHECK_EQ(w_.rows(), cfg_.rows.size());
  MBD_CHECK_EQ(w_.cols(), cfg_.d_in);
  dw_ = Matrix(w_.rows(), w_.cols());
  vel_ = Matrix(w_.rows(), w_.cols());
  x_.resize(1);
  y_pre_.resize(1);
}

void FcStage::begin_iteration(const StepContext& ctx) {
  if (x_.size() != ctx.num_microbatches) {
    x_.resize(ctx.num_microbatches);
    y_pre_.resize(ctx.num_microbatches);
  }
  // With one microbatch the iteration's single Bwd tick overwrites dw_ (the
  // classic path, kept byte-for-byte); with several each tick adds its
  // partial into dw_, so the buffer starts the iteration zeroed.
  accumulate_dw_ = ctx.num_microbatches > 1;
  if (accumulate_dw_) {
    std::fill(dw_.span().begin(), dw_.span().end(), 0.0f);
    if (dw_scratch_.rows() != dw_.rows())
      dw_scratch_ = Matrix(dw_.rows(), dw_.cols());
  }
}

Flow FcStage::forward(Flow in, const StepContext& ctx) {
  Matrix& x = x_[ctx.microbatch];
  Matrix& y_pre = y_pre_[ctx.microbatch];
  x = std::move(in.as_matrix());
  MBD_CHECK_EQ(x.rows(), cfg_.d_in);
  const std::size_t b = x.cols();
  Matrix y_local = tensor::matmul(w_, x);  // rows.size() × b
  ctx.annotate(2.0 * static_cast<double>(w_.rows() * w_.cols() * b));
  if (cfg_.model_group) {
    // All-gather the row blocks into the full Y (Fig. 1 / Fig. 5 top): Bruck
    // for equal blocks, ring all-gatherv when Pr does not divide d_out.
    const auto pr = static_cast<std::size_t>(cfg_.model_group->size());
    auto gathered = cfg_.d_out % pr == 0
                        ? cfg_.model_group->allgather(y_local.span())
                        : cfg_.model_group->allgatherv(y_local.span());
    y_pre = Matrix::from_data(cfg_.d_out, b, std::move(gathered));
  } else {
    y_pre = std::move(y_local);
  }
  if (cfg_.relu_after) {
    Matrix y(cfg_.d_out, b);
    tensor::relu_forward(y_pre.span(), y.span());
    return Flow::from_matrix(std::move(y));
  }
  return Flow::from_matrix(y_pre);
}

Flow FcStage::backward(Flow grad, const StepContext& ctx, GradReducer& red) {
  const Matrix& x = x_[ctx.microbatch];
  const std::size_t b = x.cols();
  Matrix dy_pre;
  if (cfg_.relu_after) {
    dy_pre = Matrix(cfg_.d_out, b);
    tensor::relu_backward(y_pre_[ctx.microbatch].span(),
                          grad.as_matrix().span(), dy_pre.span());
  } else {
    dy_pre = std::move(grad.as_matrix());
  }
  Matrix dy_owned;
  const Matrix* dy_block = &dy_pre;
  if (cfg_.model_group) {
    dy_owned = dy_pre.row_block(cfg_.rows.lo, cfg_.rows.hi);
    dy_block = &dy_owned;
  }
  const double gemm_flops =
      2.0 * static_cast<double>(w_.rows() * w_.cols() * b);
  // ∆W of this microbatch: overwrite dw_ directly in the one-microbatch
  // program, accumulate through the scratch buffer otherwise. The cross-rank
  // ∆W reduction fires only on the stage's final Bwd tick, when the
  // accumulated gradient is complete.
  const auto dw_gemm = [&] {
    if (!accumulate_dw_) {
      tensor::gemm_nt(*dy_block, x, dw_);
    } else {
      tensor::gemm_nt(*dy_block, x, dw_scratch_);
      tensor::axpy(1.0f, dw_scratch_.span(), dw_.span());
    }
  };
  const bool reduce_dw = cfg_.batch_group && cfg_.batch_group->size() > 1 &&
                         ctx.last_backward;

  const bool reduce_dx =
      cfg_.compute_dx && cfg_.model_group && cfg_.model_group->size() > 1;
  if (ctx.mode == ReduceMode::Overlapped && reduce_dx) {
    // ∆X first: issue its ring all-reduce nonblocking and hide it behind the
    // ∆W GEMM; the nonblocking ∆W reduction then drains behind the layers
    // below. Same ring schedule as the blocking branch — bitwise-identical
    // results and identical traffic.
    Matrix dxl = tensor::matmul_tn(w_, *dy_block);
    ctx.annotate(gemm_flops);
    comm::CollectiveHandle dx_reduce =
        cfg_.model_group->iallreduce(dxl.span());
    dw_gemm();
    ctx.annotate(gemm_flops);
    if (reduce_dw) red.allreduce(*cfg_.batch_group, dw_.span());
    dx_reduce.wait();
    return Flow::from_matrix(std::move(dxl));
  }

  // Blocking schedule: ∆W (partial over local columns, reduced over the
  // batch group), then ∆X (partial over owned rows, reduced over the model
  // group).
  dw_gemm();
  ctx.annotate(gemm_flops);
  if (reduce_dw) red.allreduce(*cfg_.batch_group, dw_.span());
  if (!cfg_.compute_dx) return {};
  Matrix dxl = tensor::matmul_tn(w_, *dy_block);
  ctx.annotate(gemm_flops);
  if (reduce_dx) cfg_.model_group->allreduce(dxl.span());
  return Flow::from_matrix(std::move(dxl));
}

void FcStage::update(float lr, float momentum) {
  sgd_update(w_.span(), dw_.span(), vel_.span(), lr, momentum);
}

void FcStage::save_state(std::vector<float>& out) {
  append_state(out, w_.span());
  append_state(out, vel_.span());
}

void FcStage::restore_state(std::span<const float>& in) {
  take_state(in, w_.span());
  take_state(in, vel_.span());
}

void FcStage::collect_params(std::vector<float>& out) {
  if (!cfg_.model_group) {
    out.insert(out.end(), w_.span().begin(), w_.span().end());
    return;
  }
  const auto pr = static_cast<std::size_t>(cfg_.model_group->size());
  const auto full =
      cfg_.d_out % pr == 0 ? cfg_.model_group->allgather(w_.span())
                                   : cfg_.model_group->allgatherv(w_.span());
  out.insert(out.end(), full.begin(), full.end());
}

// ---------------------------------------------------------------------------
// NetworkStage
// ---------------------------------------------------------------------------

NetworkStage::NetworkStage(nn::Network net, comm::Comm* reduce_group,
                           double macs_per_sample)
    : net_(std::move(net)),
      reduce_group_(reduce_group),
      macs_per_sample_(macs_per_sample) {}

void NetworkStage::begin_iteration(const StepContext& ctx) {
  net_.set_batch_context(ctx.iteration, ctx.first_sample);
}

Flow NetworkStage::forward(Flow in, const StepContext& ctx) {
  const auto b = static_cast<double>(in.as_matrix().cols());
  Matrix y = net_.forward(in.as_matrix());
  // 2 flops per MAC forward; backward (below) costs ≈ 2× forward.
  ctx.annotate(2.0 * macs_per_sample_ * b);
  return Flow::from_matrix(std::move(y));
}

Flow NetworkStage::backward(Flow grad, const StepContext& ctx,
                            GradReducer& red) {
  const auto b = static_cast<double>(grad.as_matrix().cols());
  Matrix din = net_.backward(grad.as_matrix());
  ctx.annotate(4.0 * macs_per_sample_ * b);
  // The defining communication step: ring all-reduce of every ∆W.
  for (std::size_t li = 0; li < net_.num_layers(); ++li) {
    const auto g = net_.layer(li).grads();
    if (!g.empty()) red.allreduce(*reduce_group_, g);
  }
  return Flow::from_matrix(std::move(din));
}

void NetworkStage::update(float lr, float momentum) {
  net_.sgd_step(lr, momentum);
}

void NetworkStage::collect_params(std::vector<float>& out) {
  const auto p = net_.save_params();
  out.insert(out.end(), p.begin(), p.end());
}

void NetworkStage::save_state(std::vector<float>& out) {
  const auto s = net_.save_state();
  out.insert(out.end(), s.begin(), s.end());
}

void NetworkStage::restore_state(std::span<const float>& in) {
  const std::size_t n = net_.state_size();
  net_.load_state(in.first(n));
  in = in.subspan(n);
}

// ---------------------------------------------------------------------------
// ConvStackStage
// ---------------------------------------------------------------------------

ConvStackStage::ConvStackStage(std::vector<std::unique_ptr<nn::Layer>> layers,
                               std::size_t d_out, comm::Comm* reduce_group,
                               double macs_per_sample)
    : layers_(std::move(layers)),
      d_out_(d_out),
      reduce_group_(reduce_group),
      macs_per_sample_(macs_per_sample) {
  vel_.resize(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li)
    vel_[li].assign(layers_[li]->weights().size(), 0.0f);
}

Flow ConvStackStage::forward(Flow in, const StepContext& ctx) {
  Matrix x = std::move(in.as_matrix());
  const auto b = static_cast<double>(x.cols());
  for (auto& l : layers_) x = l->forward(x);
  MBD_CHECK_EQ(x.rows(), d_out_);
  ctx.annotate(2.0 * macs_per_sample_ * b);
  return Flow::from_matrix(std::move(x));
}

Flow ConvStackStage::backward(Flow grad, const StepContext& ctx,
                              GradReducer& red) {
  Matrix dx = std::move(grad.as_matrix());
  const auto b = static_cast<double>(dx.cols());
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    dx = (*it)->backward(dx);
  ctx.annotate(4.0 * macs_per_sample_ * b);
  for (auto& l : layers_) {
    const auto g = l->grads();
    if (!g.empty()) red.allreduce(*reduce_group_, g);
  }
  return Flow::from_matrix(std::move(dx));
}

void ConvStackStage::update(float lr, float momentum) {
  for (std::size_t li = 0; li < layers_.size(); ++li)
    sgd_update(layers_[li]->weights(), layers_[li]->grads(), vel_[li], lr,
               momentum);
}

void ConvStackStage::collect_params(std::vector<float>& out) {
  for (auto& l : layers_) {
    const auto w = l->weights();
    out.insert(out.end(), w.begin(), w.end());
  }
}

void ConvStackStage::save_state(std::vector<float>& out) {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    append_state(out, layers_[li]->weights());
    append_state(out, vel_[li]);
  }
}

void ConvStackStage::restore_state(std::span<const float>& in) {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    take_state(in, layers_[li]->weights());
    take_state(in, vel_[li]);
  }
}

// ---------------------------------------------------------------------------
// DomainConvStage
// ---------------------------------------------------------------------------

DomainConvStage::DomainConvStage(detail::DomainConvState state,
                                 comm::Comm* conv_group,
                                 comm::Comm* reduce_group,
                                 double macs_per_sample)
    : st_(std::move(state)),
      conv_group_(conv_group),
      reduce_group_(reduce_group),
      macs_per_sample_(macs_per_sample) {}

Flow DomainConvStage::forward(Flow in, const StepContext& ctx) {
  const auto b = static_cast<double>(in.as_tensor().n());
  Tensor4 y = detail::domain_conv_forward(*conv_group_, st_, in.as_tensor());
  ctx.annotate(2.0 * macs_per_sample_ * b);
  return Flow::from_tensor(std::move(y));
}

Flow DomainConvStage::backward(Flow grad, const StepContext& ctx,
                               GradReducer& red) {
  const auto b = static_cast<double>(grad.as_tensor().n());
  Tensor4 dslab = detail::domain_conv_backward(*conv_group_, st_,
                                               std::move(grad.as_tensor()));
  ctx.annotate(4.0 * macs_per_sample_ * b);
  // ∆W all-reduce over every process that shares the (replicated) weights,
  // interleaved per layer exactly like the halo exchanges.
  red.allreduce(*reduce_group_, st_.dw.span());
  return Flow::from_tensor(std::move(dslab));
}

void DomainConvStage::update(float lr, float momentum) {
  sgd_update(st_.w.span(), st_.dw.span(), st_.vel.span(), lr, momentum);
}

void DomainConvStage::collect_params(std::vector<float>& out) {
  out.insert(out.end(), st_.w.span().begin(), st_.w.span().end());
}

void DomainConvStage::save_state(std::vector<float>& out) {
  append_state(out, st_.w.span());
  append_state(out, st_.vel.span());
}

void DomainConvStage::restore_state(std::span<const float>& in) {
  take_state(in, st_.w.span());
  take_state(in, st_.vel.span());
}

// ---------------------------------------------------------------------------
// SlabScatterStage / SlabGatherStage
// ---------------------------------------------------------------------------

SlabScatterStage::SlabScatterStage(std::size_t in_c, std::size_t in_h,
                                   std::size_t in_w, Range rows)
    : in_c_(in_c), in_h_(in_h), in_w_(in_w), rows_(rows) {}

Flow SlabScatterStage::forward(Flow in, const StepContext& /*ctx*/) {
  const Tensor4 full =
      detail::matrix_to_tensor(in.as_matrix(), in_c_, in_h_, in_w_);
  return Flow::from_tensor(full.height_slab(rows_.lo, rows_.hi));
}

Flow SlabScatterStage::backward(Flow /*grad*/, const StepContext& /*ctx*/,
                                GradReducer& /*red*/) {
  return {};  // the data layer needs no input gradient
}

SlabGatherStage::SlabGatherStage(comm::Comm* group, std::size_t out_c,
                                 std::size_t img_h, std::size_t img_w,
                                 Range rows)
    : group_(group), out_c_(out_c), img_h_(img_h), img_w_(img_w), rows_(rows) {}

Flow SlabGatherStage::forward(Flow in, const StepContext& /*ctx*/) {
  const Tensor4 full = detail::gather_slabs(*group_, in.as_tensor(), img_h_);
  return Flow::from_matrix(detail::tensor_to_matrix(full));
}

Flow SlabGatherStage::backward(Flow grad, const StepContext& /*ctx*/,
                               GradReducer& /*red*/) {
  const Tensor4 full =
      detail::matrix_to_tensor(grad.as_matrix(), out_c_, img_h_, img_w_);
  return Flow::from_tensor(full.height_slab(rows_.lo, rows_.hi));
}

// ---------------------------------------------------------------------------
// RedistributeStage
// ---------------------------------------------------------------------------

RedistributeStage::RedistributeStage(comm::Comm* model_group, int world_size,
                                     int pr, int col, int conv_index,
                                     std::size_t d_out)
    : model_group_(model_group),
      world_size_(world_size),
      pr_(pr),
      col_(col),
      conv_index_(conv_index),
      d_out_(d_out) {}

Flow RedistributeStage::forward(Flow in, const StepContext& ctx) {
  Matrix& x = in.as_matrix();
  MBD_CHECK_EQ(x.rows(), d_out_);
  // Eq. 6: all-gather the conv-phase blocks within the model group, then
  // reassemble them in batch-column order (block j·Pr + i of the canonical
  // P-way partition tiles this group's B/Pc column range exactly). Ranges
  // come from ctx.batch, so the stage redistributes whatever batch the
  // executor feeds it.
  const Range group_cols = block_range(ctx.batch, world_size_ / pr_, col_);
  Matrix x_group(d_out_, group_cols.size());
  const auto gathered = model_group_->allgatherv(x.span());
  MBD_CHECK_EQ(gathered.size(), d_out_ * group_cols.size());
  std::size_t at = 0, col_at = 0;
  for (int m = 0; m < pr_; ++m) {
    const Range mc = block_range(ctx.batch, world_size_, col_ * pr_ + m);
    const Matrix block = Matrix::from_data(
        d_out_, mc.size(),
        {gathered.begin() + static_cast<std::ptrdiff_t>(at),
         gathered.begin() +
             static_cast<std::ptrdiff_t>(at + d_out_ * mc.size())});
    x_group.set_col_block(col_at, block);
    at += d_out_ * mc.size();
    col_at += mc.size();
  }
  return Flow::from_matrix(std::move(x_group));
}

Flow RedistributeStage::backward(Flow grad, const StepContext& ctx,
                                 GradReducer& /*red*/) {
  // Slice this rank's conv-phase columns back out of the group gradient.
  const Range group_cols = block_range(ctx.batch, world_size_ / pr_, col_);
  const Range conv_cols =
      block_range(ctx.batch, world_size_, col_ * pr_ + conv_index_);
  return Flow::from_matrix(grad.as_matrix().col_block(
      conv_cols.lo - group_cols.lo, conv_cols.hi - group_cols.lo));
}

// ---------------------------------------------------------------------------
// LayerEngine
// ---------------------------------------------------------------------------

LayerEngine::LayerEngine(comm::Comm& world, StepSchedule sched)
    : world_(&world), sched_(sched) {
  MBD_CHECK_LE(sched_.input_cols.lo, sched_.input_cols.hi);
  MBD_CHECK_GT(sched_.loss_replicas, 0);
}

void LayerEngine::add_stage(std::unique_ptr<EngineStage> stage) {
  stages_.push_back(std::move(stage));
}

void LayerEngine::save_checkpoint(const RecoveryContext& rc,
                                  std::size_t next_step,
                                  const std::vector<double>& losses) {
  // Barrier / stage / barrier / commit: the first barrier proves every rank
  // finished step next_step-1 (no rank can stage mid-step state), the
  // second proves every rank staged before rank 0 promotes the staged slots.
  // A crash anywhere in between leaves the previous committed checkpoint
  // untouched — commits are atomic under the store mutex.
  obs::ScopedSpan span(obs::SpanKind::Checkpoint, "save");
  span.set_args(next_step, 0);
  world_->barrier();
  std::vector<float> state;
  for (auto& s : stages_) s->save_state(state);
  rc.store->stage_rank(world_->rank(), std::move(state), losses);
  world_->barrier();
  if (world_->rank() == 0) rc.store->commit(next_step);
}

std::size_t LayerEngine::restore_checkpoint(const RecoveryContext& rc,
                                            std::vector<double>& losses) {
  const std::vector<float> state = rc.store->state(world_->rank());
  std::span<const float> in(state);
  for (auto& s : stages_) s->restore_state(in);
  MBD_CHECK_MSG(in.empty(), "checkpoint state has " << in.size()
                                                    << " unconsumed floats");
  losses = rc.store->losses(world_->rank());
  return rc.store->step();
}

ScheduleProgram LayerEngine::degenerate_program() const {
  // The classic loop as a program: every stage Fwd first-to-last, then Bwd
  // last-to-first, whole minibatch as microbatch 0 of 1. Loss finalizes at
  // the last Fwd tick — between the passes, exactly where the original
  // implicit loop evaluated it.
  ScheduleProgram prog;
  prog.num_microbatches = 1;
  prog.ticks.reserve(2 * stages_.size());
  for (std::size_t s = 0; s < stages_.size(); ++s)
    prog.ticks.push_back({ScheduleTick::Op::Fwd, s, 0});
  prog.loss_tick = prog.ticks.size() - 1;
  for (std::size_t s = stages_.size(); s-- > 0;)
    prog.ticks.push_back({ScheduleTick::Op::Bwd, s, 0});
  return prog;
}

void LayerEngine::validate_program(const ScheduleProgram& prog) const {
  const std::size_t m = prog.num_microbatches;
  MBD_CHECK_GT(m, 0u);
  MBD_CHECK_EQ(prog.ticks.size(), 2 * stages_.size() * m);
  MBD_CHECK_LT(prog.loss_tick, prog.ticks.size());
  if (m > 1) {
    for (const auto& s : stages_)
      MBD_CHECK_MSG(s->supports_microbatching(),
                    "stage '" << s->name()
                              << "' cannot run a multi-microbatch program");
  }
  // Exactly one Fwd and one Bwd tick per (stage, microbatch); a stage's Bwd
  // ticks in increasing microbatch order (the ∆W-completion rule).
  std::vector<std::size_t> fwd_seen(stages_.size() * m, 0);
  std::vector<std::size_t> bwd_seen(stages_.size() * m, 0);
  std::vector<std::size_t> bwd_next(stages_.size(), 0);
  for (const auto& t : prog.ticks) {
    MBD_CHECK_LT(t.stage, stages_.size());
    MBD_CHECK_LT(t.microbatch, m);
    const std::size_t key = t.stage * m + t.microbatch;
    if (t.op == ScheduleTick::Op::Fwd) {
      ++fwd_seen[key];
    } else {
      MBD_CHECK_EQ(t.microbatch, bwd_next[t.stage]);
      ++bwd_next[t.stage];
      ++bwd_seen[key];
    }
  }
  for (std::size_t key = 0; key < fwd_seen.size(); ++key) {
    MBD_CHECK_EQ(fwd_seen[key], 1u);
    MBD_CHECK_EQ(bwd_seen[key], 1u);
  }
}

DistResult LayerEngine::train(const nn::Dataset& data,
                              const nn::TrainConfig& cfg,
                              const RecoveryContext* recovery) {
  MBD_CHECK(!stages_.empty());
  const ScheduleProgram prog = sched_.program.ticks.empty()
                                   ? degenerate_program()
                                   : sched_.program;
  validate_program(prog);
  const std::size_t num_mb = prog.num_microbatches;
  const std::size_t last_stage = stages_.size() - 1;
  const bool labels_match =
      sched_.label_cols.lo == sched_.input_cols.lo &&
      sched_.label_cols.hi == sched_.input_cols.hi;

  DistResult result;
  result.losses.reserve(cfg.iterations);
  std::size_t first_it = 0;
  if (recovery != nullptr && recovery->store != nullptr) {
    // The resume decision is collective, not a local store read. After a
    // failure each rank re-enters train() on its own clock, and rank 0 —
    // the sole committer — may promote the in-flight checkpoint *after* a
    // fast survivor (or the crasher itself) has already re-read the store
    // as empty; the ranks would then disagree on first_it and their
    // schedules deadlock. Rank 0's view is authoritative: its commit
    // necessarily happened before its own restart, so it broadcasts the
    // resume step and every rank restores — or replays from scratch — by
    // that one answer.
    double resume = 0.0;
    if (world_->rank() == 0 && recovery->store->valid())
      resume = static_cast<double>(recovery->store->step());
    world_->broadcast(std::span<double>(&resume, 1), /*root=*/0);
    if (resume > 0.0) {
      first_it = restore_checkpoint(*recovery, result.losses);
      MBD_CHECK_EQ(first_it, static_cast<std::size_t>(resume));
      MBD_CHECK_LE(first_it, cfg.iterations);
    }
  }
  for (std::size_t it = first_it; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    StepContext ctx;
    ctx.iteration = it;
    ctx.batch = cfg.batch;
    ctx.first_sample = start + sched_.input_cols.lo;
    ctx.world = world_;
    ctx.mode = sched_.mode;
    ctx.seconds_per_flop = sched_.seconds_per_flop;

    BatchSlice in = batch_slice(data, start + sched_.input_cols.lo,
                                sched_.input_cols.size());
    const std::vector<int> labels =
        labels_match ? std::move(in.labels)
                     : batch_slice(data, start + sched_.label_cols.lo,
                                   sched_.label_cols.size())
                           .labels;

    ctx.num_microbatches = num_mb;
    for (auto& s : stages_) s->begin_iteration(ctx);

    // Microbatch m's forward chain starts on its column block of this
    // rank's input slice; the one-microbatch program feeds the whole slice
    // unsliced (the classic path, no extra copy).
    std::vector<Flow> fwd(num_mb);
    std::vector<Flow> bwd(num_mb);
    if (num_mb == 1) {
      fwd[0] = Flow::from_matrix(std::move(in.inputs));
    } else {
      for (std::size_t m = 0; m < num_mb; ++m) {
        const Range mb = block_range(sched_.input_cols.size(),
                                     static_cast<int>(num_mb),
                                     static_cast<int>(m));
        fwd[m] = Flow::from_matrix(in.inputs.col_block(mb.lo, mb.hi));
      }
    }

    GradReducer red(sched_.mode);
    double loss_sum = 0.0;
    for (std::size_t ti = 0; ti < prog.ticks.size(); ++ti) {
      const ScheduleTick& tick = prog.ticks[ti];
      const std::size_t m = tick.microbatch;
      ctx.microbatch = m;
      ctx.last_backward = m == num_mb - 1;
      EngineStage& stage = *stages_[tick.stage];
      if (tick.op == ScheduleTick::Op::Fwd) {
        {
          obs::ScopedSpan span(obs::SpanKind::StageFwd, stage.name());
          span.set_args(it, m);
          fwd[m] = stage.forward(std::move(fwd[m]), ctx);
        }
        if (tick.stage == last_stage && sched_.compute_loss) {
          // Loss over this microbatch's columns; the gradient is already
          // scaled by 1/B (global), so the accumulated ∆W reductions
          // recover the full mini-batch gradient.
          const std::vector<int> mb_labels =
              num_mb == 1 ? std::vector<int>()
                          : [&] {
                              const Range r = block_range(
                                  sched_.label_cols.size(),
                                  static_cast<int>(num_mb),
                                  static_cast<int>(m));
                              return std::vector<int>(
                                  labels.begin() +
                                      static_cast<std::ptrdiff_t>(r.lo),
                                  labels.begin() +
                                      static_cast<std::ptrdiff_t>(r.hi));
                            }();
          const nn::LossResult lr = nn::softmax_cross_entropy(
              fwd[m].as_matrix(), num_mb == 1 ? labels : mb_labels,
              cfg.batch);
          loss_sum += lr.loss_sum;
          bwd[m] = Flow::from_matrix(lr.dlogits);
        }
      } else {
        obs::ScopedSpan span(obs::SpanKind::StageBwd, stage.name());
        span.set_args(it, m);
        bwd[m] = stage.backward(std::move(bwd[m]), ctx, red);
      }
      if (ti == prog.loss_tick) {
        double loss = loss_sum;
        if (sched_.sum_loss) loss = sum_scalar(*world_, loss);
        result.losses.push_back(loss / sched_.loss_replicas /
                                static_cast<double>(cfg.batch));
      }
    }
    // No polling between stages: each handle's receives run inside drain(),
    // in initiation order, so the recorded trace is a deterministic program
    // order. The overlap is still real — every peer's sends were posted at
    // initiation, so by drain time the rounds are already in the mailbox.
    red.drain();

    const float rate = nn::lr_at(cfg, it);
    for (auto& s : stages_) s->update(rate, cfg.momentum);

    // Checkpoint after every policy.every completed steps; never after the
    // final step (training is done — there is nothing left to recover).
    if (recovery != nullptr && recovery->store != nullptr &&
        recovery->policy.every > 0 && (it + 1) % recovery->policy.every == 0 &&
        it + 1 < cfg.iterations) {
      save_checkpoint(*recovery, it + 1, result.losses);
    }

    // Close this iteration's window in the schedule recording (no-op unless
    // the World is recording): the static analyzer slices per-iteration
    // traffic and handle lifetimes at these markers.
    world_->mark_engine_step(it);
  }

  // Publish the trained state when asked: one extra commit tagged with the
  // total step count, after the loop (the in-loop cadence deliberately skips
  // the final step). A run resumed *at* cfg.iterations skips the loop above
  // and republishes the same state — idempotent.
  if (recovery != nullptr && recovery->store != nullptr &&
      recovery->policy.final_commit) {
    save_checkpoint(*recovery, cfg.iterations, result.losses);
  }

  for (auto& s : stages_) s->collect_params(result.params);
  return result;
}

}  // namespace mbd::parallel
