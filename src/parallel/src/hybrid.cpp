#include "mbd/parallel/hybrid.hpp"

#include <memory>

#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

using detail::DomainConvState;
using tensor::Matrix;

EngineLayout build_hybrid_layout(comm::Comm& comm, const TrainerOptions& opts,
                                 const std::vector<nn::LayerSpec>& specs,
                                 std::size_t batch) {
  const GridShape grid = opts.grid;
  MBD_CHECK_EQ(grid.pr * grid.pc, comm.size());
  MBD_CHECK_LE(static_cast<std::size_t>(grid.pc), batch);
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // domain/model index along Pr
  const int col = rank % grid.pc;  // batch index along Pc

  EngineLayout lay;
  lay.groups.push_back(
      std::make_unique<comm::Comm>(comm.split(/*color=*/col, /*key=*/row)));
  lay.groups.push_back(
      std::make_unique<comm::Comm>(comm.split(/*color=*/row, /*key=*/col)));
  comm::Comm* model_group = lay.groups[0].get();
  comm::Comm* batch_group = lay.groups[1].get();
  MBD_CHECK_EQ(model_group->size(), grid.pr);
  MBD_CHECK_EQ(batch_group->size(), grid.pc);

  // --- build partitioned state (weight stream identical to build_network) --
  std::vector<DomainConvState> convs;
  std::vector<double> conv_macs;  // full-image MACs/sample, scaled below
  std::vector<FcStage::Config> fc_cfgs;
  std::vector<Matrix> fc_weights;
  Rng rng(opts.seed);
  bool seen_fc = false;
  std::size_t img_h = 0;
  for (const auto& s : specs) {
    if (s.kind == nn::LayerKind::Conv) {
      MBD_CHECK_MSG(!seen_fc, "conv layer '" << s.name << "' after FC layers");
      const auto& g = s.conv;
      MBD_CHECK_MSG(g.stride == 1 && g.kernel_h % 2 == 1 &&
                        g.kernel_h == g.kernel_w && g.pad == g.kernel_h / 2,
                    "hybrid trainer needs stride-1 odd-kernel same-pad convs");
      if (img_h == 0) img_h = g.in_h;
      MBD_CHECK_EQ(g.in_h, img_h);
      DomainConvState l;
      l.geom = g;
      l.relu_after = s.relu_after;
      l.overlap_halo = opts.overlap_halo;
      l.w = he_init_full(g.out_c, g.in_c * g.kernel_h * g.kernel_w, rng);
      l.dw = Matrix(l.w.rows(), l.w.cols());
      l.vel = Matrix(l.w.rows(), l.w.cols());
      convs.push_back(std::move(l));
      conv_macs.push_back(static_cast<double>(s.macs_per_sample()));
    } else if (s.kind == nn::LayerKind::FullyConnected) {
      seen_fc = true;
      FcStage::Config c;
      c.d_in = s.fc_in;
      c.d_out = s.fc_out;
      c.relu_after = s.relu_after;
      c.model_group = model_group;
      c.batch_group = batch_group;
      c.rows = block_range(s.fc_out, grid.pr, row);
      // Unlike the FC-only trainers, the first FC layer's ∆X is still
      // needed to backpropagate into the conv stack.
      c.compute_dx = true;
      fc_cfgs.push_back(c);
      fc_weights.push_back(he_init_rows(s.fc_out, s.fc_in, rng, c.rows));
    } else {
      MBD_CHECK_MSG(false, "hybrid trainer does not support pooling ('"
                               << s.name << "')");
    }
  }
  MBD_CHECK(!convs.empty());
  MBD_CHECK(!fc_cfgs.empty());
  MBD_CHECK_MSG(static_cast<std::size_t>(grid.pr) <= img_h,
                "more Pr ranks than image rows");
  const Range rows = block_range(img_h, grid.pr, row);

  lay.sched.input_cols = block_range(batch, grid.pc, col);
  lay.sched.label_cols = lay.sched.input_cols;
  lay.sched.sum_loss = true;
  lay.sched.loss_replicas = grid.pr;
  lay.sched.mode = opts.mode;
  lay.sched.seconds_per_flop = opts.seconds_per_flop;
  lay.input = {grid.pc, col};
  // Each column group's FC tail ends with full logits of batch block j;
  // the group's row-0 member is global rank j.
  lay.output.parts = grid.pc;
  for (int j = 0; j < grid.pc; ++j) lay.output.owners.push_back(j);
  lay.d_in = specs.front().d_in();
  lay.d_out = specs.back().d_out();

  // Conv stack: domain-parallel within the model group (LD layers); ∆W
  // all-reduced over ALL processes (weights are replicated everywhere).
  const auto& g0 = convs.front().geom;
  lay.stages.push_back(
      std::make_unique<SlabScatterStage>(g0.in_c, g0.in_h, g0.in_w, rows));
  const auto& gl = convs.back().geom;
  const std::size_t last_out_c = gl.out_c;
  const std::size_t last_in_w = gl.in_w;
  const double slab_frac =
      static_cast<double>(rows.size()) / static_cast<double>(img_h);
  for (std::size_t li = 0; li < convs.size(); ++li)
    lay.stages.push_back(std::make_unique<DomainConvStage>(
        std::move(convs[li]), /*conv_group=*/model_group,
        /*reduce_group=*/&comm, conv_macs[li] * slab_frac));
  lay.stages.push_back(std::make_unique<SlabGatherStage>(
      model_group, last_out_c, img_h, last_in_w, rows));
  // FC tail: 1.5D model-parallel over Pr (LM layers).
  for (std::size_t li = 0; li < fc_cfgs.size(); ++li)
    lay.stages.push_back(
        std::make_unique<FcStage>(fc_cfgs[li], std::move(fc_weights[li])));
  return lay;
}

DistResult train_hybrid(comm::Comm& comm, GridShape grid,
                        const std::vector<nn::LayerSpec>& specs,
                        const nn::Dataset& data, const nn::TrainConfig& cfg,
                        std::uint64_t seed, bool overlap_halo,
                        ReduceMode mode,
                        const RecoveryContext* recovery,
                        double seconds_per_flop) {
  TrainerOptions opts;
  opts.grid = grid;
  opts.seed = seed;
  opts.mode = mode;
  opts.seconds_per_flop = seconds_per_flop;
  opts.overlap_halo = overlap_halo;
  return train_layout(comm, build_hybrid_layout(comm, opts, specs, cfg.batch),
                      data, cfg, recovery);
}

}  // namespace mbd::parallel
