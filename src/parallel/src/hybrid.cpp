#include "mbd/parallel/hybrid.hpp"

#include <cmath>

#include "mbd/nn/loss.hpp"
#include "mbd/parallel/detail/domain_conv.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::parallel {

using detail::DomainConvState;
using tensor::Matrix;
using tensor::Tensor4;

namespace {

struct FcGridState {
  std::size_t d_in = 0, d_out = 0;
  bool relu_after = false;
  Range rows;         // owned rows of W over Pr
  Matrix w, dw, vel;  // rows.size() × d_in
  Matrix x, y_pre;
};

}  // namespace

DistResult train_hybrid(comm::Comm& comm, GridShape grid,
                        const std::vector<nn::LayerSpec>& specs,
                        const nn::Dataset& data, const nn::TrainConfig& cfg,
                        std::uint64_t seed, bool overlap_halo) {
  MBD_CHECK_EQ(grid.pr * grid.pc, comm.size());
  MBD_CHECK_LE(static_cast<std::size_t>(grid.pc), cfg.batch);
  const int rank = comm.rank();
  const int row = rank / grid.pc;  // domain/model index along Pr
  const int col = rank % grid.pc;  // batch index along Pc
  comm::Comm model_group = comm.split(/*color=*/col, /*key=*/row);
  comm::Comm batch_group = comm.split(/*color=*/row, /*key=*/col);
  MBD_CHECK_EQ(model_group.size(), grid.pr);
  MBD_CHECK_EQ(batch_group.size(), grid.pc);
  const Range batch_cols = block_range(cfg.batch, grid.pc, col);
  const std::size_t b_loc = batch_cols.size();

  // --- build partitioned state (weight stream identical to build_network) --
  std::vector<DomainConvState> convs;
  std::vector<FcGridState> fcs;
  Rng rng(seed);
  bool seen_fc = false;
  std::size_t img_h = 0;
  for (const auto& s : specs) {
    if (s.kind == nn::LayerKind::Conv) {
      MBD_CHECK_MSG(!seen_fc, "conv layer '" << s.name << "' after FC layers");
      const auto& g = s.conv;
      MBD_CHECK_MSG(g.stride == 1 && g.kernel_h % 2 == 1 &&
                        g.kernel_h == g.kernel_w && g.pad == g.kernel_h / 2,
                    "hybrid trainer needs stride-1 odd-kernel same-pad convs");
      if (img_h == 0) img_h = g.in_h;
      MBD_CHECK_EQ(g.in_h, img_h);
      DomainConvState l;
      l.geom = g;
      l.relu_after = s.relu_after;
      l.overlap_halo = overlap_halo;
      l.w = Matrix::random_normal(
          g.out_c, g.in_c * g.kernel_h * g.kernel_w, rng,
          std::sqrt(2.0f /
                    static_cast<float>(g.in_c * g.kernel_h * g.kernel_w)));
      l.dw = Matrix(l.w.rows(), l.w.cols());
      l.vel = Matrix(l.w.rows(), l.w.cols());
      convs.push_back(std::move(l));
    } else if (s.kind == nn::LayerKind::FullyConnected) {
      seen_fc = true;
      FcGridState l;
      l.d_in = s.fc_in;
      l.d_out = s.fc_out;
      l.relu_after = s.relu_after;
      l.rows = block_range(s.fc_out, grid.pr, row);
      const Matrix full = Matrix::random_normal(
          s.fc_out, s.fc_in, rng,
          std::sqrt(2.0f / static_cast<float>(s.fc_in)));
      l.w = full.row_block(l.rows.lo, l.rows.hi);
      l.dw = Matrix(l.w.rows(), l.w.cols());
      l.vel = Matrix(l.w.rows(), l.w.cols());
      fcs.push_back(std::move(l));
    } else {
      MBD_CHECK_MSG(false, "hybrid trainer does not support pooling ('"
                               << s.name << "')");
    }
  }
  MBD_CHECK(!convs.empty());
  MBD_CHECK(!fcs.empty());
  MBD_CHECK_MSG(static_cast<std::size_t>(grid.pr) <= img_h,
                "more Pr ranks than image rows");
  const Range rows = block_range(img_h, grid.pr, row);

  DistResult result;
  result.losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    BatchSlice batch = batch_slice(data, start + batch_cols.lo, b_loc);

    // --- conv stack: domain-parallel within the model group (LD layers) ---
    const auto& g0 = convs.front().geom;
    Tensor4 full_in =
        detail::matrix_to_tensor(batch.inputs, g0.in_c, g0.in_h, g0.in_w);
    Tensor4 slab = full_in.height_slab(rows.lo, rows.hi);
    for (auto& l : convs)
      slab = detail::domain_conv_forward(model_group, l, slab);

    // --- transition: gather slabs within the model group -------------------
    const Tensor4 full_act = detail::gather_slabs(model_group, slab, img_h);
    Matrix x = detail::tensor_to_matrix(full_act);

    // --- FC tail: 1.5D model-parallel over Pr (LM layers) ------------------
    for (auto& l : fcs) {
      l.x = x;
      const Matrix y_local = tensor::matmul(l.w, x);
      auto gathered = l.d_out % static_cast<std::size_t>(grid.pr) == 0
                          ? model_group.allgather(y_local.span())
                          : model_group.allgatherv(y_local.span());
      l.y_pre = Matrix::from_data(l.d_out, b_loc, std::move(gathered));
      if (l.relu_after) {
        Matrix y(l.d_out, b_loc);
        tensor::relu_forward(l.y_pre.span(), y.span());
        x = std::move(y);
      } else {
        x = l.y_pre;
      }
    }

    const nn::LossResult lr =
        nn::softmax_cross_entropy(x, batch.labels, cfg.batch);
    result.losses.push_back(sum_scalar(comm, lr.loss_sum) /
                            static_cast<double>(grid.pr) /
                            static_cast<double>(cfg.batch));

    // --- FC backward --------------------------------------------------------
    Matrix dx = lr.dlogits;
    for (std::size_t li = fcs.size(); li-- > 0;) {
      auto& l = fcs[li];
      Matrix dy_pre;
      if (l.relu_after) {
        dy_pre = Matrix(l.d_out, b_loc);
        tensor::relu_backward(l.y_pre.span(), dx.span(), dy_pre.span());
      } else {
        dy_pre = std::move(dx);
      }
      const Matrix dy_block = dy_pre.row_block(l.rows.lo, l.rows.hi);
      tensor::gemm_nt(dy_block, l.x, l.dw);
      if (grid.pc > 1) batch_group.allreduce(l.dw.span());
      // Unlike the FC-only trainer, the first FC layer's ∆X is still needed
      // to backpropagate into the conv stack.
      Matrix dxl = tensor::matmul_tn(l.w, dy_block);
      if (grid.pr > 1) model_group.allreduce(dxl.span());
      dx = std::move(dxl);
    }

    // --- conv backward: slice my slab rows, domain backward, ∆W all-reduce
    //     over ALL processes (weights are replicated everywhere) ------------
    const auto& gl = convs.back().geom;
    Tensor4 full_ddx = detail::matrix_to_tensor(dx, gl.out_c, img_h, gl.in_w);
    Tensor4 dslab = full_ddx.height_slab(rows.lo, rows.hi);
    for (std::size_t li = convs.size(); li-- > 0;) {
      auto& l = convs[li];
      dslab = detail::domain_conv_backward(model_group, l, std::move(dslab));
      comm.allreduce(l.dw.span());
    }

    for (auto& l : convs)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
    for (auto& l : fcs)
      sgd_update(l.w.span(), l.dw.span(), l.vel.span(), nn::lr_at(cfg, it), cfg.momentum);
  }

  for (const auto& l : convs)
    result.params.insert(result.params.end(), l.w.span().begin(),
                         l.w.span().end());
  for (auto& l : fcs) {
    auto full = l.d_out % static_cast<std::size_t>(grid.pr) == 0
                    ? model_group.allgather(l.w.span())
                    : model_group.allgatherv(l.w.span());
    result.params.insert(result.params.end(), full.begin(), full.end());
  }
  return result;
}

}  // namespace mbd::parallel
