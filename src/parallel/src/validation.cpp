#include "mbd/parallel/validation.hpp"

#include "mbd/support/check.hpp"

namespace mbd::parallel {

namespace {

constexpr std::uint64_t kWordBytes = sizeof(float);

// Exact totals across all ranks for the implemented algorithms. Both the
// Bruck all-gather (equal blocks) and the ring all-gatherv (uneven blocks)
// move exactly (P−1)·total_words across the machine; the ring all-reduce
// moves exactly 2(P−1)·n regardless of how n divides — properties asserted
// by the comm-layer stats tests, which lets these predictions stay closed
// form even for uneven partitions.

std::uint64_t allgather_total_bytes(int p, std::size_t total_words) {
  if (p <= 1) return 0;
  return static_cast<std::uint64_t>(p - 1) * total_words * kWordBytes;
}

std::uint64_t allreduce_total_bytes(int p, std::size_t n) {
  if (p <= 1) return 0;
  return 2ull * static_cast<std::uint64_t>(p - 1) * n * kWordBytes;
}

}  // namespace

TrafficPrediction predict_batch_parallel(
    const std::vector<nn::LayerSpec>& specs, int p) {
  TrafficPrediction t;
  for (const auto& s : specs) {
    if (!s.has_weights()) continue;
    t.allreduce_bytes += allreduce_total_bytes(p, s.weight_count());
  }
  return t;
}

TrafficPrediction predict_model_parallel(
    const std::vector<nn::LayerSpec>& specs, std::size_t batch, int p) {
  TrafficPrediction t;
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK(s.kind == nn::LayerKind::FullyConnected);
    // All-gather of the full Y (d_out × B) from its P row blocks.
    t.allgather_bytes += allgather_total_bytes(p, s.fc_out * batch);
    // ∆X all-reduce of d_in × B for every layer but the first.
    if (!first) t.allreduce_bytes += allreduce_total_bytes(p, s.fc_in * batch);
    first = false;
  }
  return t;
}

TrafficPrediction predict_integrated_15d(
    const std::vector<nn::LayerSpec>& specs, std::size_t batch,
    GridShape grid) {
  TrafficPrediction t;
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK(s.kind == nn::LayerKind::FullyConnected);
    // Y all-gather within each of the Pc model groups; summed over groups
    // the gathered columns cover the whole batch exactly once.
    t.allgather_bytes += allgather_total_bytes(grid.pr, s.fc_out * batch);
    // ∆X all-reduce over Pr within each group (not the first layer).
    if (!first) {
      t.allreduce_bytes += allreduce_total_bytes(grid.pr, s.fc_in * batch);
    }
    // ∆W all-reduce over Pc within each of the Pr row groups; the row
    // blocks of all groups tile the full |W|.
    t.allreduce_bytes += allreduce_total_bytes(grid.pc, s.fc_out * s.fc_in);
    first = false;
  }
  return t;
}

TrafficPrediction predict_domain_parallel(
    const std::vector<nn::LayerSpec>& specs, std::size_t batch, int p) {
  TrafficPrediction t;
  std::size_t img_h = 0;
  const nn::LayerSpec* last_conv = nullptr;
  for (const auto& s : specs) {
    if (s.kind != nn::LayerKind::Conv) continue;
    const auto& g = s.conv;
    if (img_h == 0) img_h = g.in_h;
    last_conv = &s;
    const std::size_t halo = g.kernel_h / 2;
    if (halo > 0 && p > 1) {
      // Forward + backward halo: 2(p−1) messages each way per layer, each
      // of B·C_in·halo·W words.
      const std::uint64_t rows_bytes = static_cast<std::uint64_t>(
          batch * g.in_c * halo * g.in_w * kWordBytes);
      t.p2p_bytes += 2 * 2 * static_cast<std::uint64_t>(p - 1) * rows_bytes;
    }
    t.allreduce_bytes += allreduce_total_bytes(p, g.weight_count());
  }
  MBD_CHECK(last_conv != nullptr);
  // Slab all-gather of the whole conv output at the conv→FC transition.
  const auto& g = last_conv->conv;
  t.allgather_bytes +=
      allgather_total_bytes(p, batch * g.out_c * img_h * g.out_w());
  return t;
}

TrafficPrediction predict_hybrid(const std::vector<nn::LayerSpec>& specs,
                                 std::size_t batch, GridShape grid) {
  TrafficPrediction t;
  const int p = grid.pr * grid.pc;
  std::size_t img_h = 0;
  const nn::LayerSpec* last_conv = nullptr;
  for (const auto& s : specs) {
    if (s.kind == nn::LayerKind::Conv) {
      const auto& g = s.conv;
      if (img_h == 0) img_h = g.in_h;
      last_conv = &s;
      const std::size_t halo = g.kernel_h / 2;
      if (halo > 0 && grid.pr > 1) {
        // Per model group the halo carries that group's b_loc samples;
        // summed over the Pc groups that is the whole batch.
        const std::uint64_t rows_bytes = static_cast<std::uint64_t>(
            batch * g.in_c * halo * g.in_w * kWordBytes);
        t.p2p_bytes +=
            2 * 2 * static_cast<std::uint64_t>(grid.pr - 1) * rows_bytes;
      }
      // Conv ∆W all-reduce runs over ALL processes.
      t.allreduce_bytes += allreduce_total_bytes(p, g.weight_count());
    } else if (s.kind == nn::LayerKind::FullyConnected) {
      t.allgather_bytes += allgather_total_bytes(grid.pr, s.fc_out * batch);
      // Every FC layer's ∆X is all-reduced (the conv stack below needs even
      // the first FC layer's input gradient).
      t.allreduce_bytes += allreduce_total_bytes(grid.pr, s.fc_in * batch);
      t.allreduce_bytes += allreduce_total_bytes(grid.pc, s.fc_out * s.fc_in);
    }
  }
  MBD_CHECK(last_conv != nullptr);
  // Slab all-gather within each model group; over the Pc groups the gathered
  // activations cover the whole batch once.
  const auto& g = last_conv->conv;
  t.allgather_bytes +=
      allgather_total_bytes(grid.pr, batch * g.out_c * img_h * g.out_w());
  return t;
}

TrafficPrediction predict_mixed_grid(const std::vector<nn::LayerSpec>& specs,
                                     std::size_t batch, GridShape grid) {
  TrafficPrediction t;
  const int p = grid.pr * grid.pc;
  std::size_t d_conv_out = 0;
  for (const auto& s : specs) {
    switch (s.kind) {
      case nn::LayerKind::Conv:
        // Batch-parallel conv: full-weight all-reduce over all P.
        t.allreduce_bytes += allreduce_total_bytes(p, s.weight_count());
        d_conv_out = s.d_out();
        break;
      case nn::LayerKind::Pool:
        d_conv_out = s.d_out();
        break;
      case nn::LayerKind::FullyConnected:
        t.allgather_bytes += allgather_total_bytes(grid.pr, s.fc_out * batch);
        t.allreduce_bytes += allreduce_total_bytes(grid.pr, s.fc_in * batch);
        t.allreduce_bytes += allreduce_total_bytes(grid.pc, s.fc_out * s.fc_in);
        break;
    }
  }
  MBD_CHECK_GT(d_conv_out, 0u);
  // Eq. 6 redistribution: all-gather of the conv output within each model
  // group; over the Pc groups the gathered columns cover the batch once.
  t.allgather_bytes += allgather_total_bytes(grid.pr, d_conv_out * batch);
  return t;
}

TrafficPrediction predict_pipeline(const std::vector<nn::LayerSpec>& specs,
                                   std::size_t batch, int p) {
  TrafficPrediction t;
  const std::size_t num_layers = specs.size();
  MBD_CHECK_LE(static_cast<std::size_t>(p), num_layers);
  // Boundary k/k+1 carries the output of rank k's last owned layer: B
  // activation columns forward plus B gradient columns backward.
  for (int k = 0; k + 1 < p; ++k) {
    const std::size_t hi = (num_layers * static_cast<std::size_t>(k + 1)) /
                           static_cast<std::size_t>(p);
    t.p2p_bytes += 2 * specs[hi - 1].fc_out * batch * sizeof(float);
  }
  return t;
}

}  // namespace mbd::parallel
