// The one trainer table. Sweep tools (mbd_analyze, mbd_launch, obs_smoke)
// and the analyzer's extraction dispatch iterate this registry instead of
// keeping their own trainer lists.
#include <array>

#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/pipeline.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {
namespace {

using costmodel::TrainerKind;

DistResult run_model(comm::Comm& c, const TrainerOptions& o,
                     const std::vector<nn::LayerSpec>& specs,
                     const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_model_parallel(c, specs, data, cfg, o.seed, o.mode, o.recovery,
                              o.seconds_per_flop);
}

DistResult run_batch(comm::Comm& c, const TrainerOptions& o,
                     const std::vector<nn::LayerSpec>& specs,
                     const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_batch_parallel(c, specs, data, cfg,
                              nn::BuildOptions{.seed = o.seed}, o.mode,
                              o.recovery, o.seconds_per_flop);
}

DistResult run_integrated(comm::Comm& c, const TrainerOptions& o,
                          const std::vector<nn::LayerSpec>& specs,
                          const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_integrated_15d(c, o.grid, specs, data, cfg, o.seed, o.mode,
                              o.seconds_per_flop, o.recovery);
}

DistResult run_mixed(comm::Comm& c, const TrainerOptions& o,
                     const std::vector<nn::LayerSpec>& specs,
                     const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_mixed_grid(c, o.grid, specs, data, cfg, o.seed, o.mode,
                          o.recovery, o.seconds_per_flop);
}

DistResult run_domain(comm::Comm& c, const TrainerOptions& o,
                      const std::vector<nn::LayerSpec>& specs,
                      const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_domain_parallel(c, specs, data, cfg, o.seed,
                               /*overlap_halo=*/false, o.mode, o.recovery,
                               o.seconds_per_flop);
}

DistResult run_hybrid(comm::Comm& c, const TrainerOptions& o,
                      const std::vector<nn::LayerSpec>& specs,
                      const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_hybrid(c, o.grid, specs, data, cfg, o.seed,
                      /*overlap_halo=*/false, o.mode, o.recovery,
                      o.seconds_per_flop);
}

DistResult run_pipeline(comm::Comm& c, const TrainerOptions& o,
                        const std::vector<nn::LayerSpec>& specs,
                        const nn::Dataset& data, const nn::TrainConfig& cfg) {
  return train_pipeline(c, specs, data, cfg, o.microbatches, o.seed, o.mode,
                        o.recovery, o.seconds_per_flop);
}

constexpr std::array<TrainerEntry, 7> kRegistry{{
    {TrainerKind::ModelParallel, "model", "model", TrainerWorkload::Mlp,
     run_model, build_model_parallel_layout},
    {TrainerKind::BatchParallel, "batch", "batch", TrainerWorkload::Mlp,
     run_batch, build_batch_parallel_layout},
    {TrainerKind::Integrated15D, "integrated", "integrated_15d",
     TrainerWorkload::Mlp, run_integrated, build_integrated_15d_layout},
    {TrainerKind::MixedGrid, "mixed", "mixed_grid", TrainerWorkload::ConvPool,
     run_mixed, build_mixed_grid_layout},
    {TrainerKind::DomainParallel, "domain", "domain",
     TrainerWorkload::ConvHalo, run_domain, build_domain_parallel_layout},
    {TrainerKind::Hybrid, "hybrid", "hybrid", TrainerWorkload::ConvHalo,
     run_hybrid, build_hybrid_layout},
    {TrainerKind::Pipeline, "pipeline", "pipeline", TrainerWorkload::DeepMlp,
     run_pipeline, build_pipeline_layout},
}};

}  // namespace

std::span<const TrainerEntry> trainer_registry() { return kRegistry; }

const TrainerEntry* find_trainer(std::string_view name) {
  for (const TrainerEntry& e : kRegistry)
    if (e.name == name || e.launch_name == name) return &e;
  return nullptr;
}

const TrainerEntry& trainer_for(costmodel::TrainerKind kind) {
  for (const TrainerEntry& e : kRegistry)
    if (e.kind == kind) return e;
  MBD_CHECK(false);
  return kRegistry[0];
}

}  // namespace mbd::parallel
