#include "mbd/parallel/engine_layout.hpp"

#include <utility>

#include "mbd/support/check.hpp"

namespace mbd::parallel {

DistResult train_layout(comm::Comm& comm, EngineLayout layout,
                        const nn::Dataset& data, const nn::TrainConfig& cfg,
                        const RecoveryContext* recovery) {
  MBD_CHECK(!layout.stages.empty());
  LayerEngine engine(comm, layout.sched);
  for (auto& s : layout.stages) engine.add_stage(std::move(s));
  // layout.groups stays alive in this frame until train returns — the
  // stages' group pointers reference it.
  return engine.train(data, cfg, recovery);
}

}  // namespace mbd::parallel
