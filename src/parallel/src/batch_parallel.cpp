#include "mbd/parallel/batch_parallel.hpp"

#include "mbd/nn/loss.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

DistResult train_batch_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                const nn::BuildOptions& build) {
  const int p = comm.size();
  const int r = comm.rank();
  MBD_CHECK_LE(static_cast<std::size_t>(p), cfg.batch);
  nn::Network net = nn::build_network(specs, build);

  DistResult result;
  result.losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    const Range cols = block_range(cfg.batch, p, r);
    const BatchSlice local = batch_slice(data, start + cols.lo, cols.size());
    net.set_batch_context(it, start + cols.lo);

    const tensor::Matrix logits = net.forward(local.inputs);
    const nn::LossResult lr =
        nn::softmax_cross_entropy(logits, local.labels, cfg.batch);
    net.backward(lr.dlogits);

    // The defining communication step: ring all-reduce of every ∆W.
    for (std::size_t li = 0; li < net.num_layers(); ++li) {
      auto g = net.layer(li).grads();
      if (!g.empty()) comm.allreduce(g);
    }
    net.sgd_step(nn::lr_at(cfg, it), cfg.momentum);

    result.losses.push_back(sum_scalar(comm, lr.loss_sum) /
                            static_cast<double>(cfg.batch));
  }
  result.params = net.save_params();
  return result;
}

}  // namespace mbd::parallel
