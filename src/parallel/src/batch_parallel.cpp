#include "mbd/parallel/batch_parallel.hpp"

#include <memory>

#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {
namespace {

EngineLayout make_layout(comm::Comm& comm, const nn::BuildOptions& build,
                         ReduceMode mode, double seconds_per_flop,
                         const std::vector<nn::LayerSpec>& specs,
                         std::size_t batch) {
  const int p = comm.size();
  const int r = comm.rank();
  MBD_CHECK(!specs.empty());
  MBD_CHECK_LE(static_cast<std::size_t>(p), batch);

  EngineLayout lay;
  // Full replicated model, block of the batch columns; loss partials are
  // summed over all ranks.
  lay.sched.input_cols = block_range(batch, p, r);
  lay.sched.label_cols = lay.sched.input_cols;
  lay.sched.sum_loss = true;
  lay.sched.mode = mode;
  lay.sched.seconds_per_flop = seconds_per_flop;
  lay.input = {p, r};
  lay.output.parts = p;  // rank i holds the logits of batch block i
  for (int i = 0; i < p; ++i) lay.output.owners.push_back(i);
  lay.d_in = specs.front().d_in();
  lay.d_out = specs.back().d_out();

  double macs = 0.0;
  for (const auto& s : specs) macs += static_cast<double>(s.macs_per_sample());
  lay.stages.push_back(std::make_unique<NetworkStage>(
      nn::build_network(specs, build), &comm, macs));
  return lay;
}

}  // namespace

EngineLayout build_batch_parallel_layout(
    comm::Comm& comm, const TrainerOptions& opts,
    const std::vector<nn::LayerSpec>& specs, std::size_t batch) {
  return make_layout(comm, nn::BuildOptions{.seed = opts.seed}, opts.mode,
                     opts.seconds_per_flop, specs, batch);
}

DistResult train_batch_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                const nn::BuildOptions& build,
                                ReduceMode mode,
                                const RecoveryContext* recovery,
                                double seconds_per_flop) {
  return train_layout(
      comm,
      make_layout(comm, build, mode, seconds_per_flop, specs, cfg.batch),
      data, cfg, recovery);
}

}  // namespace mbd::parallel
