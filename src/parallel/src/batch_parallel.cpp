#include "mbd/parallel/batch_parallel.hpp"

#include <memory>

#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::parallel {

DistResult train_batch_parallel(comm::Comm& comm,
                                const std::vector<nn::LayerSpec>& specs,
                                const nn::Dataset& data,
                                const nn::TrainConfig& cfg,
                                const nn::BuildOptions& build,
                                ReduceMode mode,
                                const RecoveryContext* recovery,
                                double seconds_per_flop) {
  const int p = comm.size();
  const int r = comm.rank();
  MBD_CHECK_LE(static_cast<std::size_t>(p), cfg.batch);

  // Full replicated model, block of the batch columns; loss partials are
  // summed over all ranks.
  StepSchedule sched;
  sched.input_cols = block_range(cfg.batch, p, r);
  sched.label_cols = sched.input_cols;
  sched.sum_loss = true;
  sched.mode = mode;
  sched.seconds_per_flop = seconds_per_flop;
  LayerEngine engine(comm, sched);
  double macs = 0.0;
  for (const auto& s : specs) macs += static_cast<double>(s.macs_per_sample());
  engine.add_stage(std::make_unique<NetworkStage>(
      nn::build_network(specs, build), &comm, macs));
  return engine.train(data, cfg, recovery);
}

}  // namespace mbd::parallel
