#include "mbd/parallel/recovery.hpp"

#include "mbd/support/check.hpp"

namespace mbd::parallel {

CheckpointStore::CheckpointStore(int world_size) {
  MBD_CHECK_GT(world_size, 0);
  staging_.resize(static_cast<std::size_t>(world_size));
  committed_.resize(static_cast<std::size_t>(world_size));
}

bool CheckpointStore::valid() const {
  std::lock_guard lock(mu_);
  return valid_;
}

std::size_t CheckpointStore::step() const {
  std::lock_guard lock(mu_);
  return step_;
}

std::uint64_t CheckpointStore::commits() const {
  std::lock_guard lock(mu_);
  return commits_;
}

void CheckpointStore::stage_rank(int rank, std::vector<float> state,
                                 std::vector<double> losses) {
  std::lock_guard lock(mu_);
  auto& slot = staging_[static_cast<std::size_t>(rank)];
  slot.state = std::move(state);
  slot.losses = std::move(losses);
}

void CheckpointStore::commit(std::size_t next_step) {
  std::lock_guard lock(mu_);
  committed_ = staging_;
  step_ = next_step;
  valid_ = true;
  ++commits_;
}

std::vector<float> CheckpointStore::state(int rank) const {
  std::lock_guard lock(mu_);
  MBD_CHECK_MSG(valid_, "no committed checkpoint to restore");
  return committed_[static_cast<std::size_t>(rank)].state;
}

std::vector<double> CheckpointStore::losses(int rank) const {
  std::lock_guard lock(mu_);
  MBD_CHECK_MSG(valid_, "no committed checkpoint to restore");
  return committed_[static_cast<std::size_t>(rank)].losses;
}

void CheckpointStore::reset() {
  std::lock_guard lock(mu_);
  for (auto& s : staging_) s = {};
  for (auto& s : committed_) s = {};
  step_ = 0;
  valid_ = false;
  commits_ = 0;
}

}  // namespace mbd::parallel
