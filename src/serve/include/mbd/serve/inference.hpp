// Forward-only execution of a trainer's stage layout.
//
// Training and inference share everything below the loop: the comm groups,
// the partitioned stages, and the data-movement contract a layout carries
// (engine_layout.hpp). What differs is the schedule — inference derives a
// forward-only tick program from the layout (one Fwd tick per stage in
// order, no Bwd ticks, no optimizer or gradient-accumulation state) and
// interprets it directly, so every one of the seven registered trainers'
// layouts serves batched forward passes over the existing fabric. Over the
// in-process and TCP transports alike that includes the pipeline layout:
// ranks below the tail finish their recv→compute→send chain and the tail
// rank owns the logits, i.e. pipelined multi-rank inference falls out of the
// same stage graph.
//
// Determinism: a forward pass is collective and deterministic — same
// weights, same input, same fabric ⇒ bitwise-identical logits, run to run
// and transport to transport. Each sample's logits column depends only on
// that sample's input column (per-column GEMM accumulation order is fixed
// regardless of batch composition), which is what lets the gateway pad
// sub-minimum batches with zero columns and drop the padded outputs.
#pragma once

#include <cstddef>

#include "mbd/comm/comm.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/recovery.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::serve {

/// One rank's handle on a forward-only executor over a trainer layout.
/// Collective: every rank of the communicator constructs a session over its
/// own layout (same builder, same options) and calls forward() in lockstep.
class InferenceSession {
 public:
  /// Takes ownership of the layout (stages point into layout.groups, so the
  /// session must own both halves together).
  InferenceSession(comm::Comm& comm, parallel::EngineLayout layout);

  /// Restore trained weights from the store's committed checkpoint — the
  /// slot a training run publishes with CheckpointPolicy::final_commit.
  /// Without load() the session serves the He-initialized weights (the
  /// sequential reference's starting point). Momentum velocities in the
  /// checkpoint are consumed and discarded; inference has no optimizer.
  void load(const parallel::CheckpointStore& store);

  /// Collective batched forward pass. `input` is the full d_in × b batch,
  /// identical on every rank; returns the replicated d_out × b logits.
  /// Batches smaller than min_batch() are padded internally with zero
  /// columns (dropped from the result). Deterministic: bitwise-identical
  /// logits for the same weights and input, independent of how samples are
  /// grouped into batches.
  tensor::Matrix forward(const tensor::Matrix& input);

  std::size_t d_in() const { return layout_.d_in; }
  std::size_t d_out() const { return layout_.d_out; }

  /// Smallest batch the layout runs without padding: every input and output
  /// block must be non-empty.
  std::size_t min_batch() const;

 private:
  comm::Comm* comm_;
  parallel::EngineLayout layout_;
  parallel::ScheduleProgram program_;  ///< derived forward-only tick list
};

}  // namespace mbd::serve
