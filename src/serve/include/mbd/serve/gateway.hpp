// Request gateway: bounded admission, dynamic batching, deadline shedding.
//
// All ranks call serve(); rank 0 runs the dispatcher — it owns the bounded
// request queue, coalesces queued single-sample requests into batches, and
// drives every batch through the session's collective forward — while every
// other rank follows the one-way broadcast protocol (batch size, then the
// replicated input). Clients talk only to rank 0's gateway from their own
// threads via submit(), which never blocks on the fabric: it either enqueues
// and returns a future, or rejects immediately with an explicit reason.
//
// Batching policy (docs/serving.md): the dispatcher takes up to
// chosen_batch() requests per round without waiting for the batch to fill —
// under light load requests go out solo (no artificial batching delay),
// under heavy load batches grow to the chosen size and throughput rises.
// The batch size comes from a startup self-bench: timed forwards over a
// power-of-two ladder feed costmodel::pick_serving_batch (the Fig. 4 knee
// machinery), which maximizes samples/second subject to the latency budget.
//
// Admission control, in decision order:
//   shutdown    — shutdown() was called; the queue drains but new work is
//                 refused.
//   queue_full  — the bounded queue is at capacity; admitting more would
//                 only grow latency without bound (shed early, explicitly).
//   deadline    — with a latency budget set, the estimated service time
//                 (queued rounds ahead + this request's round, at the
//                 measured batch latency) already exceeds the budget: the
//                 reply would be late, so reject now instead.
//
// Observability from day one: queue-depth gauge, batch-size and end-to-end
// latency histograms (p50/p99 via HistogramSnapshot::quantile), accept and
// per-reason reject counters in the metrics registry; SpanKind::Serve
// profiler spans on enqueue → batch → forward → reply.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/serve/inference.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::serve {

/// Outcome of one request. Rejections complete the future immediately with
/// accepted = false and the admission-control reason.
struct Reply {
  std::vector<float> logits;  ///< d_out entries; empty when rejected
  bool accepted = false;
  std::string reject_reason;  ///< "queue_full", "deadline", or "shutdown"
  double latency_s = 0.0;     ///< enqueue → reply (accepted requests)
};

struct GatewayOptions {
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 32;
  /// Fixed batch size; 0 calibrates at startup (the self-bench ladder).
  std::size_t batch_size = 0;
  /// Deadline for admission control and the calibration constraint;
  /// 0 disables deadline shedding.
  double latency_budget_s = 0.0;
  /// Timed forwards per ladder rung during calibration (min taken).
  int calibration_reps = 3;
  /// Per-batch latency the admission estimate assumes; 0 takes the
  /// calibrated value. Presetting it (with batch_size) makes deadline
  /// decisions deterministic — the tests' and simulations' knob.
  double assumed_batch_latency_s = 0.0;
};

/// One rank's gateway over an InferenceSession. Construct on every rank,
/// then call serve() on every rank; submit()/shutdown() are rank 0 only
/// (any thread).
class Gateway {
 public:
  Gateway(InferenceSession& session, comm::Comm& comm, GatewayOptions opts);

  /// Run the serving loop until shutdown: dispatcher on rank 0, broadcast
  /// follower elsewhere. Collective; blocks the calling (rank) thread.
  void serve();

  /// Submit one d_in-feature request (rank 0, any thread). Never blocks on
  /// the fabric; the future completes with the logits or a rejection.
  std::future<Reply> submit(std::vector<float> features);

  /// Stop accepting, drain the queue, then release every rank out of
  /// serve(). Safe from any thread; idempotent.
  void shutdown();

  /// The dispatch batch size in effect (fixed or calibrated; 0 until the
  /// dispatcher finishes calibration).
  std::size_t chosen_batch() const;
  /// The per-batch latency the admission estimate uses.
  double batch_latency_s() const;

 private:
  struct Pending {
    std::vector<float> features;
    std::promise<Reply> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void run_dispatcher();
  void run_follower();
  /// Drive one collective batch: broadcast the size and the replicated
  /// input, forward, return the replicated logits. Rank 0 only.
  tensor::Matrix run_batch_collective(const tensor::Matrix& input);
  std::size_t calibrate();

  InferenceSession* session_;
  comm::Comm* comm_;
  GatewayOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  std::size_t chosen_batch_ = 0;
  double batch_latency_s_ = 0.0;
};

}  // namespace mbd::serve
