#include "mbd/serve/inference.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "mbd/obs/profiler.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::serve {

using parallel::Flow;
using parallel::Range;
using parallel::StepContext;
using tensor::Matrix;

InferenceSession::InferenceSession(comm::Comm& comm,
                                   parallel::EngineLayout layout)
    : comm_(&comm), layout_(std::move(layout)) {
  MBD_CHECK_MSG(!layout_.stages.empty(), "layout has no stages");
  MBD_CHECK_GT(layout_.d_in, 0u);
  MBD_CHECK_GT(layout_.d_out, 0u);
  MBD_CHECK_GT(layout_.input.parts, 0);
  if (!layout_.output.replicated) {
    MBD_CHECK_EQ(layout_.output.owners.size(),
                 static_cast<std::size_t>(layout_.output.parts));
    for (const int owner : layout_.output.owners) {
      MBD_CHECK(owner >= 0 && owner < comm_->size());
    }
  }
  // The forward-only program: every stage's Fwd tick in order, whole batch
  // as microbatch 0 of 1. (Pipeline layouts train under 1F1B; inference has
  // no Bwd ticks to interleave, so first-to-last order is the pipeline.)
  for (std::size_t s = 0; s < layout_.stages.size(); ++s)
    program_.ticks.push_back(
        {parallel::ScheduleTick::Op::Fwd, s, /*microbatch=*/0});
  program_.num_microbatches = 1;
  program_.loss_tick = program_.ticks.size() - 1;
}

void InferenceSession::load(const parallel::CheckpointStore& store) {
  MBD_CHECK_MSG(store.valid(), "checkpoint store has no committed state");
  const std::vector<float> state = store.state(comm_->rank());
  std::span<const float> in(state);
  for (auto& stage : layout_.stages) stage->restore_state(in);
  MBD_CHECK_MSG(in.empty(),
                "checkpoint state larger than the layout's stage state");
}

std::size_t InferenceSession::min_batch() const {
  return static_cast<std::size_t>(
      std::max(layout_.input.parts, layout_.output.parts));
}

Matrix InferenceSession::forward(const Matrix& input) {
  MBD_CHECK_EQ(input.rows(), layout_.d_in);
  MBD_CHECK_GT(input.cols(), 0u);
  const std::size_t b = input.cols();
  const std::size_t padded = std::max(b, min_batch());

  // Zero-pad sub-minimum batches so every block partition is non-empty; the
  // padded columns' logits are dropped below (per-sample purity makes the
  // padding invisible to the real columns).
  Matrix padded_input;
  const Matrix* batch = &input;
  if (padded != b) {
    padded_input = Matrix(layout_.d_in, padded);
    padded_input.set_col_block(0, input);
    batch = &padded_input;
  }

  StepContext ctx;
  ctx.iteration = 0;
  ctx.batch = padded;
  ctx.first_sample = 0;
  ctx.world = comm_;
  ctx.mode = parallel::ReduceMode::Blocking;

  for (auto& stage : layout_.stages) stage->begin_iteration(ctx);

  const Range in_cols = parallel::block_range(padded, layout_.input.parts,
                                              layout_.input.index);
  Flow flow = Flow::from_matrix(batch->col_block(in_cols.lo, in_cols.hi));
  for (const parallel::ScheduleTick& tick : program_.ticks) {
    parallel::EngineStage& stage = *layout_.stages[tick.stage];
    obs::ScopedSpan span(obs::SpanKind::StageFwd, stage.name(), padded);
    flow = stage.forward(std::move(flow), ctx);
  }

  Matrix out;
  if (layout_.output.replicated) {
    out = std::move(flow.as_matrix());
    MBD_CHECK_EQ(out.rows(), layout_.d_out);
    MBD_CHECK_EQ(out.cols(), padded);
  } else {
    // Assemble per the OutputSpec: block i's owner broadcasts its logits
    // columns; every rank ends with the replicated d_out × padded matrix.
    out = Matrix(layout_.d_out, padded);
    for (int i = 0; i < layout_.output.parts; ++i) {
      const Range r = parallel::block_range(padded, layout_.output.parts, i);
      if (r.size() == 0) continue;
      std::vector<float> buf(layout_.d_out * r.size());
      if (comm_->rank() == layout_.output.owners[i]) {
        Matrix& local = flow.as_matrix();
        MBD_CHECK_EQ(local.rows(), layout_.d_out);
        MBD_CHECK_EQ(local.cols(), r.size());
        std::copy(local.span().begin(), local.span().end(), buf.begin());
      }
      comm_->broadcast(std::span<float>(buf), layout_.output.owners[i]);
      out.set_col_block(
          r.lo, Matrix::from_data(layout_.d_out, r.size(), std::move(buf)));
    }
  }
  if (padded != b) out = out.col_block(0, b);
  return out;
}

}  // namespace mbd::serve
