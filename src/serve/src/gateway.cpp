#include "mbd/serve/gateway.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>

#include "mbd/costmodel/serving.hpp"
#include "mbd/obs/metrics.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"

namespace mbd::serve {

using Clock = std::chrono::steady_clock;
using tensor::Matrix;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

Gateway::Gateway(InferenceSession& session, comm::Comm& comm,
                 GatewayOptions opts)
    : session_(&session), comm_(&comm), opts_(opts) {
  MBD_CHECK_GT(opts_.queue_capacity, 0u);
  MBD_CHECK_GT(opts_.max_batch, 0u);
  // A preset operating point takes effect immediately (admission control
  // works before serve() starts); calibration fills it in otherwise.
  chosen_batch_ = std::min(opts_.batch_size, opts_.max_batch);
  batch_latency_s_ = opts_.assumed_batch_latency_s;
}

void Gateway::serve() {
  if (comm_->rank() == 0) {
    run_dispatcher();
  } else {
    run_follower();
  }
}

std::future<Reply> Gateway::submit(std::vector<float> features) {
  MBD_CHECK_EQ(comm_->rank(), 0);
  MBD_CHECK_EQ(features.size(), session_->d_in());
  obs::ScopedSpan span(obs::SpanKind::Serve, "enqueue");
  auto& metrics = obs::Metrics::instance();

  std::promise<Reply> promise;
  std::future<Reply> fut = promise.get_future();

  std::unique_lock lk(mu_);
  const char* reject = nullptr;
  if (shutdown_) {
    reject = "shutdown";
  } else if (queue_.size() >= opts_.queue_capacity) {
    reject = "queue_full";
  } else if (opts_.latency_budget_s > 0.0 && batch_latency_s_ > 0.0 &&
             chosen_batch_ > 0) {
    // Rounds queued ahead of this request, plus its own round.
    const double rounds =
        static_cast<double>(queue_.size()) /
            static_cast<double>(chosen_batch_) +
        1.0;
    if (rounds * batch_latency_s_ > opts_.latency_budget_s)
      reject = "deadline";
  }
  if (reject != nullptr) {
    lk.unlock();
    metrics.counter_add(std::string("serve.rejected.") + reject);
    Reply r;
    r.reject_reason = reject;
    promise.set_value(std::move(r));
    return fut;
  }
  queue_.push_back({std::move(features), std::move(promise), Clock::now()});
  const std::size_t depth = queue_.size();
  lk.unlock();
  metrics.counter_add("serve.accepted");
  metrics.gauge_set("serve.queue_depth", static_cast<double>(depth));
  cv_.notify_one();
  return fut;
}

void Gateway::shutdown() {
  {
    const std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t Gateway::chosen_batch() const {
  const std::lock_guard lk(mu_);
  return chosen_batch_;
}

double Gateway::batch_latency_s() const {
  const std::lock_guard lk(mu_);
  return batch_latency_s_;
}

Matrix Gateway::run_batch_collective(const Matrix& input) {
  std::uint64_t header = input.cols();
  comm_->broadcast(std::span<std::uint64_t>(&header, 1), 0);
  std::vector<float> buf(input.span().begin(), input.span().end());
  comm_->broadcast(std::span<float>(buf), 0);
  return session_->forward(
      Matrix::from_data(session_->d_in(), input.cols(), std::move(buf)));
}

std::size_t Gateway::calibrate() {
  // Self-bench the latency-vs-batch curve over a power-of-two ladder of
  // zero batches (cost depends on shape, not values), then pick the knee.
  std::vector<costmodel::LatencyPoint> points;
  const int reps = std::max(1, opts_.calibration_reps);
  for (std::size_t b = 1; b <= opts_.max_batch; b *= 2) {
    const Matrix probe(session_->d_in(), b);
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      obs::ScopedSpan span(obs::SpanKind::Serve, "calibrate", b);
      const auto t0 = Clock::now();
      (void)run_batch_collective(probe);
      best = std::min(best, seconds_since(t0));
    }
    points.push_back({static_cast<double>(b), best});
  }
  const costmodel::BatchChoice choice = costmodel::pick_serving_batch(
      points, opts_.max_batch, opts_.latency_budget_s);
  const std::lock_guard lk(mu_);
  chosen_batch_ = choice.batch;
  if (batch_latency_s_ <= 0.0) batch_latency_s_ = choice.latency_s;
  return choice.batch;
}

void Gateway::run_dispatcher() {
  auto& metrics = obs::Metrics::instance();
  std::size_t chosen = std::min(opts_.batch_size, opts_.max_batch);
  if (chosen == 0) chosen = calibrate();
  metrics.gauge_set("serve.chosen_batch", static_cast<double>(chosen));

  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) break;  // shutdown and drained
      const std::size_t take = std::min(queue_.size(), chosen);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics.gauge_set("serve.queue_depth",
                        static_cast<double>(queue_.size()));
    }

    const std::size_t k = batch.size();
    Matrix input(session_->d_in(), k);
    {
      obs::ScopedSpan span(obs::SpanKind::Serve, "batch", k);
      for (std::size_t i = 0; i < k; ++i)
        input.set_col_block(
            i, Matrix::from_data(session_->d_in(), 1,
                                 std::move(batch[i].features)));
    }

    Matrix logits;
    {
      obs::ScopedSpan span(obs::SpanKind::Serve, "forward", k);
      logits = run_batch_collective(input);
    }

    {
      obs::ScopedSpan span(obs::SpanKind::Serve, "reply", k);
      for (std::size_t i = 0; i < k; ++i) {
        Reply r;
        r.accepted = true;
        const Matrix col = logits.col_block(i, i + 1);
        r.logits.assign(col.span().begin(), col.span().end());
        r.latency_s = seconds_since(batch[i].enqueued);
        metrics.hist_observe("serve.latency_us", r.latency_s * 1e6);
        batch[i].promise.set_value(std::move(r));
      }
      metrics.hist_observe("serve.batch_size", static_cast<double>(k));
      metrics.counter_add("serve.batches");
    }
  }

  // Release the followers: a zero-sized batch is the shutdown sentinel.
  std::uint64_t header = 0;
  comm_->broadcast(std::span<std::uint64_t>(&header, 1), 0);
}

void Gateway::run_follower() {
  for (;;) {
    std::uint64_t header = 0;
    comm_->broadcast(std::span<std::uint64_t>(&header, 1), 0);
    if (header == 0) return;
    std::vector<float> buf(session_->d_in() * header);
    comm_->broadcast(std::span<float>(buf), 0);
    (void)session_->forward(Matrix::from_data(
        session_->d_in(), static_cast<std::size_t>(header), std::move(buf)));
  }
}

}  // namespace mbd::serve
