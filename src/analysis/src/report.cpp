#include "mbd/analysis/report.hpp"

#include <cstdio>
#include <sstream>
#include <string>

namespace mbd::analysis {

namespace {

// Minimal JSON string escaping: the details we emit only ever need quote,
// backslash, and control-character escapes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool AnalysisReport::clean() const {
  for (const auto& c : cases)
    if (!c.clean()) return false;
  return true;
}

std::size_t AnalysisReport::violation_count() const {
  std::size_t n = 0;
  for (const auto& c : cases) n += c.violations.size();
  return n;
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mbd-schedule-analysis-v1\",\n  \"clean\": "
     << (clean() ? "true" : "false") << ",\n  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << (i == 0 ? "" : ",") << "\n    {\n"
       << "      \"trainer\": \"" << json_escape(c.trainer) << "\",\n"
       << "      \"pr\": " << c.pr << ",\n"
       << "      \"pc\": " << c.pc << ",\n"
       << "      \"batch\": " << c.batch << ",\n"
       << "      \"iterations\": " << c.iterations << ",\n"
       << "      \"mode\": \"" << json_escape(c.mode) << "\",\n"
       << "      \"events\": " << c.events << ",\n"
       << "      \"traffic\": {\"allreduce_bytes\": " << c.allreduce_bytes
       << ", \"allgather_bytes\": " << c.allgather_bytes
       << ", \"p2p_bytes\": " << c.p2p_bytes << "},\n"
       << "      \"violations\": [";
    for (std::size_t v = 0; v < c.violations.size(); ++v) {
      const Violation& viol = c.violations[v];
      os << (v == 0 ? "" : ",") << "\n        {\"kind\": \""
         << violation_kind_name(viol.kind) << "\", \"rank\": " << viol.rank
         << ", \"op_index\": " << viol.op_index << ", \"detail\": \""
         << json_escape(viol.detail) << "\"}";
    }
    os << (c.violations.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (cases.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string AnalysisReport::summary() const {
  std::ostringstream os;
  for (const auto& c : cases) {
    os << c.trainer << " pr=" << c.pr << " pc=" << c.pc << " batch=" << c.batch
       << " mode=" << c.mode << ": " << c.events << " events, "
       << "ar=" << c.allreduce_bytes << "B ag=" << c.allgather_bytes
       << "B p2p=" << c.p2p_bytes << "B -> "
       << (c.clean() ? "clean"
                     : std::to_string(c.violations.size()) + " violation(s)")
       << '\n';
    for (const auto& v : c.violations) os << "  " << v.describe() << '\n';
  }
  os << (clean() ? "PROVEN CLEAN" : "VIOLATIONS FOUND") << ": " << cases.size()
     << " case(s), " << violation_count() << " violation(s)\n";
  return os.str();
}

}  // namespace mbd::analysis
