#include "mbd/analysis/schedule_checks.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <sstream>
#include <tuple>

#include "mbd/support/check.hpp"

namespace mbd::analysis {

using comm::ScheduleEvent;
using comm::ScheduleEventKind;
using comm::ScheduleRecording;

std::string_view violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::CollectiveMismatch: return "collective_mismatch";
    case ViolationKind::Deadlock: return "deadlock";
    case ViolationKind::UnconsumedMessage: return "unconsumed_message";
    case ViolationKind::HandleLeak: return "handle_leak";
    case ViolationKind::TrafficMismatch: return "traffic_mismatch";
  }
  return "?";
}

std::string Violation::describe() const {
  std::ostringstream os;
  os << violation_kind_name(kind) << " at rank " << rank << " op " << op_index
     << ": " << detail;
  return os.str();
}

// ---------------------------------------------------------------------------
// Check 1: cross-rank collective matching
// ---------------------------------------------------------------------------

std::vector<Violation> check_collective_matching(const ScheduleRecording& rec) {
  std::vector<Violation> out;
  // Per context: the ordered CollEnter positions of every participating rank.
  struct RankSeq {
    int rank = -1;
    std::vector<std::size_t> ops;  // event indices into that rank's log
  };
  std::map<std::uint64_t, std::vector<RankSeq>> contexts;
  for (int r = 0; r < rec.size(); ++r) {
    const auto& events = rec.ranks[static_cast<std::size_t>(r)].events;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind != ScheduleEventKind::CollEnter) continue;
      auto& seqs = contexts[events[i].context];
      if (seqs.empty() || seqs.back().rank != r) seqs.push_back({r, {}});
      seqs.back().ops.push_back(i);
    }
  }
  for (const auto& [context, seqs] : contexts) {
    const RankSeq& ref = seqs.front();
    const auto& ref_events = rec.ranks[static_cast<std::size_t>(ref.rank)].events;
    // The first entry declares the communicator size; every rank of the
    // context must appear (a missing rank would hang the real collective).
    const int comm_size = ref_events[ref.ops.front()].comm_size;
    if (static_cast<int>(seqs.size()) != comm_size) {
      std::ostringstream os;
      os << "context " << context << ": " << seqs.size()
         << " rank(s) recorded collectives but the communicator has "
         << comm_size << " (first entry: "
         << ref_events[ref.ops.front()].desc.describe() << ')';
      out.push_back({ViolationKind::CollectiveMismatch, ref.rank,
                     ref.ops.front(), os.str()});
      continue;
    }
    for (std::size_t s = 1; s < seqs.size(); ++s) {
      const RankSeq& cur = seqs[s];
      const auto& cur_events =
          rec.ranks[static_cast<std::size_t>(cur.rank)].events;
      const std::size_t common = std::min(ref.ops.size(), cur.ops.size());
      bool mismatched = false;
      for (std::size_t i = 0; i < common; ++i) {
        const ScheduleEvent& a = ref_events[ref.ops[i]];
        const ScheduleEvent& b = cur_events[cur.ops[i]];
        if (a.desc.matches(b.desc) && a.comm_size == b.comm_size) continue;
        std::ostringstream os;
        os << "context " << context << " collective #" << i << ": rank "
           << cur.rank << " entered " << b.desc.describe() << " but rank "
           << ref.rank << " entered " << a.desc.describe();
        out.push_back(
            {ViolationKind::CollectiveMismatch, cur.rank, cur.ops[i], os.str()});
        mismatched = true;
        break;  // later entries of this rank are likely cascade noise
      }
      if (!mismatched && ref.ops.size() != cur.ops.size()) {
        const bool cur_short = cur.ops.size() < ref.ops.size();
        const RankSeq& longer = cur_short ? ref : cur;
        const auto& levents =
            rec.ranks[static_cast<std::size_t>(longer.rank)].events;
        std::ostringstream os;
        os << "context " << context << ": rank " << cur.rank << " entered "
           << cur.ops.size() << " collective(s) but rank " << ref.rank
           << " entered " << ref.ops.size() << " (first unmatched: "
           << levents[longer.ops[common]].desc.describe() << ')';
        out.push_back({ViolationKind::CollectiveMismatch,
                       cur_short ? cur.rank : ref.rank,
                       cur.ops.empty() ? 0 : cur.ops.back(), os.str()});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 2: deadlock-freedom under buffered-send semantics
// ---------------------------------------------------------------------------

namespace {

// A message-matching slot: the fabric matches on (context, source, tag) at
// the destination mailbox.
using MsgKey = std::tuple<std::uint64_t, int, int, int>;  // ctx, src, dst, tag

struct MsgFlow {
  std::vector<std::pair<int, std::size_t>> sends;  // (rank, op index)
  std::size_t consumed = 0;
};

}  // namespace

std::vector<Violation> check_deadlock_free(const ScheduleRecording& rec) {
  std::vector<Violation> out;
  const int p = rec.size();
  std::map<MsgKey, MsgFlow> flows;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);

  // Greedy replay: buffered sends always execute; a receive executes once
  // the matching send has. Greedy scheduling is complete for this semantics
  // — executing an enabled op never disables another — so "no rank can
  // advance" proves a real deadlock, not a scheduling artifact.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < p; ++r) {
      const auto& events = rec.ranks[static_cast<std::size_t>(r)].events;
      auto& at = cursor[static_cast<std::size_t>(r)];
      while (at < events.size()) {
        const ScheduleEvent& ev = events[at];
        if (ev.kind == ScheduleEventKind::Send) {
          flows[{ev.context, r, ev.peer, ev.tag}].sends.push_back({r, at});
        } else if (ev.kind == ScheduleEventKind::Recv) {
          auto it = flows.find({ev.context, ev.peer, r, ev.tag});
          if (it == flows.end() || it->second.consumed >= it->second.sends.size())
            break;  // blocked: matching send not executed yet
          ++it->second.consumed;
        }
        ++at;
        progress = true;
      }
    }
  }

  for (int r = 0; r < p; ++r) {
    const auto& events = rec.ranks[static_cast<std::size_t>(r)].events;
    const std::size_t at = cursor[static_cast<std::size_t>(r)];
    if (at >= events.size()) continue;
    std::ostringstream os;
    os << "replay stalled at " << events[at].describe()
       << ": the matching send is never executed (sender blocked or absent)";
    out.push_back({ViolationKind::Deadlock, r, at, os.str()});
  }
  if (!out.empty()) return out;  // unconsumed counts are meaningless mid-stall

  for (const auto& [key, flow] : flows) {
    for (std::size_t i = flow.consumed; i < flow.sends.size(); ++i) {
      const auto [rank, idx] = flow.sends[i];
      std::ostringstream os;
      os << rec.ranks[static_cast<std::size_t>(rank)].events[idx].describe()
         << " is never received by rank " << std::get<2>(key);
      out.push_back({ViolationKind::UnconsumedMessage, rank, idx, os.str()});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 3: nonblocking handle lifetimes
// ---------------------------------------------------------------------------

std::vector<Violation> check_handle_lifetimes(const ScheduleRecording& rec) {
  std::vector<Violation> out;
  for (int r = 0; r < rec.size(); ++r) {
    const auto& events = rec.ranks[static_cast<std::size_t>(r)].events;
    // token -> (post op index, label)
    std::map<std::uint64_t, std::pair<std::size_t, std::string>> open;
    auto flush = [&](const char* boundary) {
      for (const auto& [token, post] : open) {
        std::ostringstream os;
        os << "nonblocking op posted at op " << post.first << " (" << post.second
           << ", token " << token << ") still open at " << boundary;
        out.push_back({ViolationKind::HandleLeak, r, post.first, os.str()});
      }
      open.clear();
    };
    for (std::size_t i = 0; i < events.size(); ++i) {
      const ScheduleEvent& ev = events[i];
      switch (ev.kind) {
        case ScheduleEventKind::NbPost:
          open[ev.token] = {i, ev.what};
          break;
        case ScheduleEventKind::NbDone:
        case ScheduleEventKind::NbCancel: {
          if (open.erase(ev.token) == 0) {
            std::ostringstream os;
            os << ev.describe() << " closes a token that was never posted";
            out.push_back({ViolationKind::HandleLeak, r, i, os.str()});
          }
          break;
        }
        case ScheduleEventKind::StepEnd: {
          std::ostringstream os;
          os << "step_end(iteration=" << ev.token << ')';
          const std::string b = os.str();
          flush(b.c_str());
          break;
        }
        default:
          break;
      }
    }
    flush("end of schedule");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check 4: traffic against the closed forms
// ---------------------------------------------------------------------------

std::vector<WindowTraffic> window_traffic(const ScheduleRecording& rec,
                                          std::size_t iteration) {
  std::vector<WindowTraffic> out(static_cast<std::size_t>(rec.size()));
  for (int r = 0; r < rec.size(); ++r) {
    const auto& events = rec.ranks[static_cast<std::size_t>(r)].events;
    std::size_t step = 0;
    WindowTraffic& wt = out[static_cast<std::size_t>(r)];
    for (const auto& ev : events) {
      if (ev.kind == ScheduleEventKind::StepEnd) {
        if (++step > iteration) break;
        continue;
      }
      if (step != iteration || ev.kind != ScheduleEventKind::Send) continue;
      switch (ev.coll) {
        case comm::Coll::AllReduce: wt.allreduce_bytes += ev.bytes; break;
        case comm::Coll::AllGather: wt.allgather_bytes += ev.bytes; break;
        case comm::Coll::PointToPoint: wt.p2p_bytes += ev.bytes; break;
        default: break;  // barrier / loss gather+broadcast are not modeled
      }
    }
  }
  return out;
}

std::vector<Violation> check_traffic(const ScheduleRecording& rec,
                                     const TrafficExpectation& expect) {
  std::vector<Violation> out;
  const int p = rec.size();
  MBD_CHECK_EQ(p, expect.pr * expect.pc);

  // All ranks must agree on the iteration count before windows mean anything.
  std::vector<std::size_t> steps(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    const auto& events = rec.ranks[static_cast<std::size_t>(r)].events;
    for (const auto& ev : events)
      if (ev.kind == ScheduleEventKind::StepEnd)
        ++steps[static_cast<std::size_t>(r)];
    if (steps[static_cast<std::size_t>(r)] != steps[0]) {
      std::ostringstream os;
      os << "rank recorded " << steps[static_cast<std::size_t>(r)]
         << " engine step(s) but rank 0 recorded " << steps[0];
      out.push_back({ViolationKind::TrafficMismatch, r,
                     events.empty() ? 0 : events.size() - 1, os.str()});
    }
  }
  if (!out.empty()) return out;
  if (steps[0] < 2) {
    out.push_back({ViolationKind::TrafficMismatch, 0, 0,
                   "need at least 2 recorded iterations: window 0 mixes in "
                   "setup traffic, so only windows >= 1 are checkable"});
    return out;
  }

  for (std::size_t it = 1; it < steps[0]; ++it) {
    const std::vector<WindowTraffic> got = window_traffic(rec, it);
    for (int r = 0; r < p; ++r) {
      const costmodel::RankVolume want = costmodel::trainer_rank_volume(
          expect.kind, expect.specs, expect.batch, expect.pr, expect.pc, r);
      const WindowTraffic& g = got[static_cast<std::size_t>(r)];
      auto mismatch = [&](const char* cls, std::uint64_t got_b,
                          std::uint64_t want_b) {
        if (got_b == want_b) return;
        std::ostringstream os;
        os << "iteration " << it << ' ' << cls << ": schedule moves " << got_b
           << " byte(s) but the closed form says " << want_b << " ("
           << costmodel::trainer_kind_name(expect.kind) << ", pr=" << expect.pr
           << ", pc=" << expect.pc << ", batch=" << expect.batch << ')';
        out.push_back({ViolationKind::TrafficMismatch, r, it, os.str()});
      };
      mismatch("allreduce", g.allreduce_bytes, want.allreduce_bytes);
      mismatch("allgather", g.allgather_bytes, want.allgather_bytes);
      mismatch("p2p", g.p2p_bytes, want.p2p_bytes);
    }
  }
  return out;
}

std::vector<Violation> run_all_checks(const ScheduleRecording& rec,
                                      const TrafficExpectation* expect) {
  std::vector<Violation> out = check_collective_matching(rec);
  auto append = [&](std::vector<Violation> v) {
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  };
  append(check_deadlock_free(rec));
  append(check_handle_lifetimes(rec));
  if (expect != nullptr) append(check_traffic(rec, *expect));
  return out;
}

}  // namespace mbd::analysis
