#include "mbd/analysis/extract.hpp"

#include "mbd/comm/world.hpp"
#include "mbd/nn/trainer.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"

namespace mbd::analysis {

namespace {

// RAII guard for the process-global GEMM elision flag: restores the prior
// state even when the dry run throws.
class GemmDryRunGuard {
 public:
  GemmDryRunGuard() : prev_(tensor::gemm_dry_run()) {
    tensor::set_gemm_dry_run(true);
  }
  GemmDryRunGuard(const GemmDryRunGuard&) = delete;
  GemmDryRunGuard& operator=(const GemmDryRunGuard&) = delete;
  ~GemmDryRunGuard() { tensor::set_gemm_dry_run(prev_); }

 private:
  bool prev_;
};

}  // namespace

comm::ScheduleRecording extract_schedule(const AnalyzerConfig& cfg) {
  MBD_CHECK(!cfg.specs.empty());
  MBD_CHECK_MSG(cfg.iterations >= 2,
                "need >= 2 iterations for a steady-state traffic window");
  const int p = cfg.grid.pr * cfg.grid.pc;
  MBD_CHECK_GT(p, 0);

  const std::size_t dim = cfg.specs.front().d_in();
  const std::size_t classes = cfg.specs.back().d_out();
  const nn::Dataset data =
      nn::make_synthetic_dataset(dim, classes, cfg.batch, cfg.seed + 1);

  nn::TrainConfig tc;
  tc.batch = cfg.batch;
  tc.iterations = cfg.iterations;

  comm::World world(p);
  world.enable_schedule_recording();

  const GemmDryRunGuard dry_run;
  const parallel::TrainerEntry& trainer = parallel::trainer_for(cfg.kind);
  const parallel::TrainerOptions opts{.grid = cfg.grid,
                                      .seed = cfg.seed,
                                      .mode = cfg.mode,
                                      .microbatches = cfg.microbatches};
  world.run([&](comm::Comm& comm) {
    trainer.run(comm, opts, cfg.specs, data, tc);
  });

  return world.schedule_recording();
}

TrafficExpectation expectation_for(const AnalyzerConfig& cfg) {
  TrafficExpectation e;
  e.kind = cfg.kind;
  e.specs = cfg.specs;
  e.batch = cfg.batch;
  e.pr = cfg.grid.pr;
  e.pc = cfg.grid.pc;
  return e;
}

CaseResult analyze_case(const AnalyzerConfig& cfg) {
  const comm::ScheduleRecording rec = extract_schedule(cfg);
  const TrafficExpectation expect = expectation_for(cfg);

  CaseResult res;
  res.trainer = std::string(costmodel::trainer_kind_name(cfg.kind));
  res.pr = cfg.grid.pr;
  res.pc = cfg.grid.pc;
  res.batch = cfg.batch;
  res.iterations = cfg.iterations;
  res.mode =
      cfg.mode == parallel::ReduceMode::Blocking ? "blocking" : "overlapped";
  res.events = rec.total_events();
  res.violations = run_all_checks(rec, &expect);

  // Steady-state per-iteration traffic, summed over ranks (window 1 — every
  // later window is byte-identical when the traffic check passes).
  for (const WindowTraffic& wt : window_traffic(rec, 1)) {
    res.allreduce_bytes += wt.allreduce_bytes;
    res.allgather_bytes += wt.allgather_bytes;
    res.p2p_bytes += wt.p2p_bytes;
  }
  return res;
}

}  // namespace mbd::analysis
