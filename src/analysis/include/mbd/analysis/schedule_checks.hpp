// Static checks over a recorded communication schedule.
//
// A ScheduleRecording (mbd/comm/schedule_recorder.hpp) is the full per-rank
// message schedule of a training run — every send, receive, collective
// entry, nonblocking handle lifetime, and engine-step marker. These checks
// prove properties of that schedule offline, without re-running any
// compute:
//
//  1. check_collective_matching — the offline analogue of the runtime
//     Validator's rendezvous: on every communicator context, all
//     participating ranks must enter the same ordered sequence of
//     collectives with matching descriptors (kind, count, element type,
//     reduce op, algorithm, root, blocking-ness).
//  2. check_deadlock_free — replays the recorded sends and receives under
//     the fabric's buffered-send semantics (a send never blocks; a receive
//     blocks until the matching message was sent). The recorded schedule is
//     deadlock-free iff this replay runs every rank to completion; messages
//     sent but never received are flagged too.
//  3. check_handle_lifetimes — every nonblocking post must be closed
//     (waited or drained) before its engine step ends; an NbPost still open
//     at a StepEnd marker or at end-of-log is a leaked CollectiveHandle.
//  4. check_traffic — per-rank, per-iteration byte volumes summed from the
//     Send events must equal the costmodel closed forms
//     (costmodel::trainer_rank_volume) byte-for-byte, per traffic class.
//
// Every violation carries the global rank and the index of the offending
// event in that rank's log, so reports point at an exact (rank, op)
// position in the schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mbd/comm/schedule_recorder.hpp"
#include "mbd/costmodel/volumes.hpp"

namespace mbd::analysis {

enum class ViolationKind : std::uint8_t {
  CollectiveMismatch,  ///< cross-rank descriptor/sequence disagreement
  Deadlock,            ///< replay stalled: a receive can never be satisfied
  UnconsumedMessage,   ///< a sent message is never received
  HandleLeak,          ///< nonblocking post not closed by step end
  TrafficMismatch,     ///< measured bytes differ from the closed form
};

std::string_view violation_kind_name(ViolationKind k);

/// One check failure, attributed to an exact position in the schedule.
struct Violation {
  ViolationKind kind = ViolationKind::CollectiveMismatch;
  int rank = -1;            ///< global rank the violation is attributed to
  std::size_t op_index = 0; ///< event index in that rank's log (see detail)
  std::string detail;       ///< human-readable description

  std::string describe() const;
};

/// Check 1: cross-rank collective matching per communicator context.
std::vector<Violation> check_collective_matching(
    const comm::ScheduleRecording& rec);

/// Check 2: deadlock-freedom of the recorded send/receive schedule under
/// buffered-send semantics, plus detection of never-received messages.
std::vector<Violation> check_deadlock_free(const comm::ScheduleRecording& rec);

/// Check 3: nonblocking handle lifetimes bounded by engine steps.
std::vector<Violation> check_handle_lifetimes(
    const comm::ScheduleRecording& rec);

/// What a recorded schedule's traffic should be, for check 4.
struct TrafficExpectation {
  costmodel::TrainerKind kind = costmodel::TrainerKind::BatchParallel;
  std::vector<nn::LayerSpec> specs;
  std::size_t batch = 0;
  int pr = 1;
  int pc = 1;
};

/// Bytes one rank sent within one engine-step window, by traffic class.
struct WindowTraffic {
  std::uint64_t allreduce_bytes = 0;
  std::uint64_t allgather_bytes = 0;
  std::uint64_t p2p_bytes = 0;
};

/// Sum each rank's Send bytes inside iteration window `iteration` (the
/// events between StepEnd marker `iteration−1` and marker `iteration`;
/// window 0 starts at the beginning of the log and additionally contains
/// setup traffic — communicator splits — which is why traffic checks start
/// at window 1). Ranks whose logs contain fewer windows get zero entries.
std::vector<WindowTraffic> window_traffic(const comm::ScheduleRecording& rec,
                                          std::size_t iteration);

/// Check 4: every rank's per-iteration traffic (steady-state windows, i.e.
/// iteration >= 1) must equal trainer_rank_volume byte-for-byte per class.
/// Also verifies all ranks agree on the number of engine steps. Requires at
/// least two recorded iterations to have a steady-state window to check.
std::vector<Violation> check_traffic(const comm::ScheduleRecording& rec,
                                     const TrafficExpectation& expect);

/// All structural checks (1–3), plus the traffic check when `expect` is
/// non-null. Violations are concatenated in check order.
std::vector<Violation> run_all_checks(const comm::ScheduleRecording& rec,
                                      const TrafficExpectation* expect);

}  // namespace mbd::analysis
