// JSON analysis reports for the mbd_analyze CLI and the schedule-analysis
// CI job. Schema "mbd-schedule-analysis-v1", validated by
// scripts/check_analysis_report.py:
//
//   {
//     "schema": "mbd-schedule-analysis-v1",
//     "clean": true,
//     "cases": [
//       {
//         "trainer": "integrated", "pr": 2, "pc": 2,
//         "batch": 16, "iterations": 3, "mode": "blocking",
//         "events": 1234,
//         "traffic": {"allreduce_bytes": ..., "allgather_bytes": ...,
//                     "p2p_bytes": ...},
//         "violations": [
//           {"kind": "traffic_mismatch", "rank": 1, "op_index": 2,
//            "detail": "..."}
//         ]
//       }
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "mbd/analysis/extract.hpp"

namespace mbd::analysis {

/// A full analyzer sweep: one CaseResult per analyzed configuration.
struct AnalysisReport {
  std::vector<CaseResult> cases;

  /// True when every case verified clean.
  bool clean() const;
  /// Total violations across all cases.
  std::size_t violation_count() const;
  /// Serialize to the mbd-schedule-analysis-v1 JSON schema.
  std::string to_json() const;
  /// One summary line per case plus every violation, for terminal output.
  std::string summary() const;
};

}  // namespace mbd::analysis
