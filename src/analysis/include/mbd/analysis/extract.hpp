// Schedule extraction: dry-run a trainer and record its communication.
//
// extract_schedule runs the REAL trainer — the same EngineStage graph,
// communicator splits, collective algorithms, and nonblocking schedules
// that a production run executes — inside a thread-backed World with
// (a) schedule recording attached to the fabric and (b) GEMM compute
// elision turned on (tensor::set_gemm_dry_run). Payloads still flow, zero-
// filled and size-exact, so every recorded message has the true byte count;
// only the FLOPs disappear, which makes extraction take milliseconds per
// configuration.
//
// This is an intentional deviation from "pure" static extraction: rather
// than reimplementing each trainer's control flow symbolically (and
// drifting from it), the analyzer elides compute from the real code path.
// What is proven is therefore a property of the actual implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mbd/analysis/schedule_checks.hpp"
#include "mbd/comm/schedule_recorder.hpp"
#include "mbd/costmodel/volumes.hpp"
#include "mbd/nn/layer_spec.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/integrated.hpp"

namespace mbd::analysis {

/// One configuration to extract and analyze.
struct AnalyzerConfig {
  costmodel::TrainerKind kind = costmodel::TrainerKind::BatchParallel;
  parallel::GridShape grid;  ///< pure trainers run on pr·pc ranks
  std::vector<nn::LayerSpec> specs;
  std::size_t batch = 8;
  std::size_t iterations = 3;  ///< >= 2 so a steady-state window exists
  parallel::ReduceMode mode = parallel::ReduceMode::Blocking;
  std::uint64_t seed = 42;
  std::size_t microbatches = 2;  ///< pipeline trainer only
};

/// Dry-run the configured trainer and return the recorded per-rank
/// schedule. GEMM dry-run mode is enabled for the duration of the run and
/// restored afterwards (also on exceptions).
comm::ScheduleRecording extract_schedule(const AnalyzerConfig& cfg);

/// The TrafficExpectation matching a configuration (for check_traffic).
TrafficExpectation expectation_for(const AnalyzerConfig& cfg);

/// Result of analyzing one configuration: extraction stats, the violations
/// every check produced (empty == proven clean), and the steady-state
/// per-iteration traffic actually recorded (summed over ranks, window 1).
struct CaseResult {
  std::string trainer;
  int pr = 1;
  int pc = 1;
  std::size_t batch = 0;
  std::size_t iterations = 0;
  std::string mode;  ///< "blocking" or "overlapped"
  std::size_t events = 0;  ///< total recorded schedule events
  std::uint64_t allreduce_bytes = 0;  ///< recorded, per iteration, all ranks
  std::uint64_t allgather_bytes = 0;
  std::uint64_t p2p_bytes = 0;
  std::vector<Violation> violations;

  bool clean() const { return violations.empty(); }
};

/// extract_schedule + run_all_checks + traffic accounting for one
/// configuration.
CaseResult analyze_case(const AnalyzerConfig& cfg);

}  // namespace mbd::analysis
