// Deterministic, seed-stable random number generation.
//
// std::mt19937 distributions are not guaranteed bit-identical across standard
// library implementations; the parallel-equals-sequential tests in this
// project need every rank to reproduce exactly the same stream, so we ship
// our own xoshiro256** generator and our own uniform/normal transforms.
#pragma once

#include <cstdint>
#include <vector>

namespace mbd {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
/// Deterministic across platforms for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fill `out` with normal(0, stddev) floats.
  void fill_normal(std::vector<float>& out, float stddev);

  /// Split off an independent generator (e.g. one per rank) whose stream is a
  /// pure function of (parent seed, salt).
  Rng split(std::uint64_t salt) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace mbd
