// Runtime invariant checking for the mbd libraries.
//
// MBD_CHECK and friends are enabled in all build types: the cost of a
// predictable branch is negligible next to the gemm/communication work these
// libraries do, and silent shape mismatches are the dominant bug class in
// distributed matrix code.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mbd {

/// Exception thrown by failed MBD_CHECK* assertions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MBD_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace mbd

/// Abort with an mbd::Error if `cond` is false. Usable in constexpr-adjacent
/// hot paths; the macro evaluates `cond` exactly once.
#define MBD_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::mbd::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Like MBD_CHECK but with a streamed message: MBD_CHECK_MSG(a == b, "a=" << a).
#define MBD_CHECK_MSG(cond, stream_expr)                           \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream mbd_check_os_;                             \
      mbd_check_os_ << stream_expr;                                 \
      ::mbd::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                  mbd_check_os_.str());             \
    }                                                               \
  } while (false)

/// Equality check that prints both operands on failure.
#define MBD_CHECK_EQ(a, b) \
  MBD_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))

/// a < b check that prints both operands on failure.
#define MBD_CHECK_LT(a, b) \
  MBD_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))

/// a <= b check that prints both operands on failure.
#define MBD_CHECK_LE(a, b) \
  MBD_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))

/// a > b check that prints both operands on failure.
#define MBD_CHECK_GT(a, b) \
  MBD_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
