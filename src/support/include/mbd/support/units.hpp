// Human-readable formatting of byte counts, durations, and SI quantities.
#pragma once

#include <cstdint>
#include <string>

namespace mbd {

/// "1.50 KiB", "2.00 GiB", ... (binary prefixes).
std::string format_bytes(double bytes);

/// "2.00 us", "1.30 ms", "4.2 s", "1.5 h" — picks the natural unit.
std::string format_seconds(double seconds);

/// "1.2K", "3.4M", "61.0M" — decimal SI prefixes for counts.
std::string format_count(double count);

}  // namespace mbd
