// Minimal typed command-line flag parsing for examples and bench harnesses.
//
// Supports `--name=value` and `--name value`; bare `--name` for booleans.
// Unknown flags are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mbd {

/// Declarative flag parser. Register flags with defaults, then parse().
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Register flags. `help` is shown by print_help().
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parse argv. Returns false (after printing help) if --help was given.
  /// Throws mbd::Error on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  void print_help(std::ostream& os) const;

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Flag {
    Kind kind;
    std::string value;  // textual representation of current value
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace mbd
