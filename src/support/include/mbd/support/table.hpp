// Aligned text tables and CSV emission for benchmark harness output.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mbd {

/// Builds a column-aligned table, printed with box-drawing-free ASCII so the
/// output survives log scraping. Rows are strings; numeric helpers format
/// with sensible precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row. Cells are appended with add/add_num.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add_num(double value, int precision = 3);
  TextTable& add_int(long long value);

  /// Number of data rows added so far.
  std::size_t size() const { return rows_.size(); }

  /// Render with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Render as CSV (header + rows, comma-separated, no quoting of commas —
  /// callers must not put commas in cells).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision into a string.
std::string format_double(double value, int precision);

}  // namespace mbd
