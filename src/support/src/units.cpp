#include "mbd/support/units.hpp"

#include <array>
#include <cmath>

#include "mbd/support/table.hpp"

namespace mbd {

std::string format_bytes(double bytes) {
  static constexpr std::array units = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  std::size_t u = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  return format_double(v, u == 0 ? 0 : 2) + " " + units[u];
}

std::string format_seconds(double seconds) {
  const double a = std::abs(seconds);
  if (a < 1e-6) return format_double(seconds * 1e9, 1) + " ns";
  if (a < 1e-3) return format_double(seconds * 1e6, 2) + " us";
  if (a < 1.0) return format_double(seconds * 1e3, 2) + " ms";
  if (a < 120.0) return format_double(seconds, 2) + " s";
  if (a < 7200.0) return format_double(seconds / 60.0, 1) + " min";
  return format_double(seconds / 3600.0, 2) + " h";
}

std::string format_count(double count) {
  static constexpr std::array units = {"", "K", "M", "G", "T"};
  std::size_t u = 0;
  double v = count;
  while (std::abs(v) >= 1000.0 && u + 1 < units.size()) {
    v /= 1000.0;
    ++u;
  }
  return format_double(v, u == 0 ? 0 : 1) + units[u];
}

}  // namespace mbd
