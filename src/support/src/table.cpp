#include "mbd/support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "mbd/support/check.hpp"

namespace mbd {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MBD_CHECK(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  MBD_CHECK(!rows_.empty());
  MBD_CHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add_num(double value, int precision) {
  return add(format_double(value, precision));
}

TextTable& TextTable::add_int(long long value) {
  return add(std::to_string(value));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::setw(static_cast<int>(width[c])) << s;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mbd
