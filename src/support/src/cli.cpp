#include "mbd/support/cli.hpp"

#include <iostream>

#include "mbd/support/check.hpp"

namespace mbd {
namespace {

const char* kind_name(int kind) {
  static constexpr const char* names[] = {"int", "double", "string", "bool"};
  return names[kind];
}

}  // namespace

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::Int, std::to_string(default_value), help};
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::Double, std::to_string(default_value), help};
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::String, default_value, help};
}

void ArgParser::add_bool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{Kind::Bool, default_value ? "true" : "false", help};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout);
      return false;
    }
    MBD_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(arg);
    MBD_CHECK_MSG(it != flags_.end(), "unknown flag --" << arg);
    if (!have_value) {
      if (it->second.kind == Kind::Bool) {
        value = "true";
      } else {
        MBD_CHECK_MSG(i + 1 < argc, "flag --" << arg << " needs a value");
        value = argv[++i];
      }
    }
    // Validate the textual value eagerly so errors point at the flag.
    switch (it->second.kind) {
      case Kind::Int:
        try {
          (void)std::stoll(value);
        } catch (const std::exception&) {
          MBD_CHECK_MSG(false, "flag --" << arg << " expects an integer, got '"
                                         << value << "'");
        }
        break;
      case Kind::Double:
        try {
          (void)std::stod(value);
        } catch (const std::exception&) {
          MBD_CHECK_MSG(false, "flag --" << arg << " expects a number, got '"
                                         << value << "'");
        }
        break;
      case Kind::Bool:
        MBD_CHECK_MSG(value == "true" || value == "false" || value == "1" ||
                          value == "0",
                      "flag --" << arg << " expects true/false");
        break;
      case Kind::String:
        break;
    }
    it->second.value = value;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  MBD_CHECK_MSG(it != flags_.end(), "flag --" << name << " was never registered");
  MBD_CHECK_MSG(it->second.kind == kind,
                "flag --" << name << " is a "
                          << kind_name(static_cast<int>(it->second.kind))
                          << ", requested as "
                          << kind_name(static_cast<int>(kind)));
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::Int).value);
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::Double).value);
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string& v = find(name, Kind::Bool).value;
  return v == "true" || v == "1";
}

void ArgParser::print_help(std::ostream& os) const {
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (" << kind_name(static_cast<int>(flag.kind))
       << ", default " << flag.value << ")\n      " << flag.help << '\n';
  }
}

}  // namespace mbd
