#include "mbd/support/rng.hpp"

#include <cmath>
#include <numbers>

#include "mbd/support/check.hpp"

namespace mbd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MBD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  // Box–Muller; discard the second variate to keep the stream a pure
  // function of call index.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::fill_normal(std::vector<float>& out, float stddev) {
  for (auto& v : out) v = static_cast<float>(normal()) * stddev;
}

Rng Rng::split(std::uint64_t salt) const {
  std::uint64_t sm = seed_ ^ (salt * 0xD1342543DE82EF95ULL + 1);
  return Rng(splitmix64(sm));
}

}  // namespace mbd
