// Umbrella header: the full public API of the mbd-parallel library.
//
// For finer-grained includes, pull individual headers from mbd/support,
// mbd/comm, mbd/tensor, mbd/nn, mbd/costmodel, and mbd/parallel.
#pragma once

// support: errors, RNG, tables, CLI, units
#include "mbd/support/check.hpp"
#include "mbd/support/cli.hpp"
#include "mbd/support/rng.hpp"
#include "mbd/support/table.hpp"
#include "mbd/support/units.hpp"

// comm: the message-passing runtime
#include "mbd/comm/comm.hpp"
#include "mbd/comm/nonblocking.hpp"
#include "mbd/comm/schedule_recorder.hpp"
#include "mbd/comm/stats.hpp"
#include "mbd/comm/trace.hpp"
#include "mbd/comm/world.hpp"

// tensor: matrices, gemm, NCHW tensors
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/im2col.hpp"
#include "mbd/tensor/matrix.hpp"
#include "mbd/tensor/ops.hpp"
#include "mbd/tensor/tensor4.hpp"

// nn: layers, networks, training
#include "mbd/nn/layer_spec.hpp"
#include "mbd/nn/layers.hpp"
#include "mbd/nn/loss.hpp"
#include "mbd/nn/models.hpp"
#include "mbd/nn/network.hpp"
#include "mbd/nn/serialize.hpp"
#include "mbd/nn/trainer.hpp"

// costmodel: the paper's analytic machinery
#include "mbd/costmodel/collective_costs.hpp"
#include "mbd/costmodel/hierarchy.hpp"
#include "mbd/costmodel/machine.hpp"
#include "mbd/costmodel/memory.hpp"
#include "mbd/costmodel/optimizer.hpp"
#include "mbd/costmodel/replay.hpp"
#include "mbd/costmodel/serving.hpp"
#include "mbd/costmodel/strategy.hpp"
#include "mbd/costmodel/summa.hpp"
#include "mbd/costmodel/volumes.hpp"

// analysis: the static schedule analyzer
#include "mbd/analysis/extract.hpp"
#include "mbd/analysis/report.hpp"
#include "mbd/analysis/schedule_checks.hpp"

// parallel: the distributed trainers
#include "mbd/parallel/batch_parallel.hpp"
#include "mbd/parallel/common.hpp"
#include "mbd/parallel/domain_parallel.hpp"
#include "mbd/parallel/engine_layout.hpp"
#include "mbd/parallel/hybrid.hpp"
#include "mbd/parallel/integrated.hpp"
#include "mbd/parallel/layer_engine.hpp"
#include "mbd/parallel/mixed_grid.hpp"
#include "mbd/parallel/model_parallel.hpp"
#include "mbd/parallel/summa.hpp"
#include "mbd/parallel/validation.hpp"

// serve: forward-only execution and the request gateway
#include "mbd/serve/gateway.hpp"
#include "mbd/serve/inference.hpp"
