// Blocking configuration of the packed GEMM kernel (see gemm.cpp).
//
// The register microtile (mr × nr) is a compile-time constant so the
// microkernel's accumulators stay in registers; it is sized to the SIMD ISA
// the translation unit is compiled for. The cache blocks (mc, kc, nc) are
// runtime values so they can be tuned per machine without a rebuild:
//
//   mc × kc  — the packed A block a thread streams from L2,
//   kc × nr  — the packed B micropanel that stays L1-resident,
//   kc × nc  — the packed B block shared by all threads.
//
// Environment overrides (read once, at first use):
//   MBD_GEMM_MC, MBD_GEMM_KC, MBD_GEMM_NC — positive integers.
#pragma once

#include <cstddef>

namespace mbd::tensor {

// Register tile. With 256-bit SIMD, 6×16 = twelve 8-float accumulators —
// the classic Goto kernel shape. Baseline x86-64 (SSE2) has sixteen 4-float
// registers, so the tile narrows to 6×8 (twelve accumulators) there.
#if defined(__AVX__)
inline constexpr std::size_t kGemmMR = 6;
inline constexpr std::size_t kGemmNR = 16;
#else
inline constexpr std::size_t kGemmMR = 6;
inline constexpr std::size_t kGemmNR = 8;
#endif

struct GemmConfig {
  std::size_t mr;      ///< microtile rows (compile-time, reported for introspection)
  std::size_t nr;      ///< microtile cols (compile-time, reported for introspection)
  std::size_t mc;      ///< rows of the packed A block
  std::size_t kc;      ///< shared inner (depth) block
  std::size_t nc;      ///< cols of the packed B block
  const char* kernel;  ///< human-readable kernel id, e.g. "packed-6x16"
};

/// The active configuration (env overrides applied once, on first call).
const GemmConfig& gemm_config();

}  // namespace mbd::tensor
