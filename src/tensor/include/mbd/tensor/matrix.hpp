// Dense row-major single-precision matrix.
//
// The paper's formulation is matrix-centric: activations X_i ∈ R^{d_{i-1}×B}
// with one *column* per sample, weights W_i ∈ R^{d_i×d_{i-1}}. Partitioning
// helpers (row/column block extraction and insertion) implement the 1D and
// 1.5D distributions directly on that layout.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mbd/support/rng.hpp"

namespace mbd::tensor {

/// Owning dense matrix of float, row-major.
class Matrix {
 public:
  Matrix() = default;

  /// rows × cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  static Matrix filled(std::size_t rows, std::size_t cols, float value);
  /// Entries ~ N(0, stddev²), drawn row-major from `rng`.
  static Matrix random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                              float stddev);
  /// Build from an explicit row-major buffer (size must be rows*cols).
  static Matrix from_data(std::size_t rows, std::size_t cols,
                          std::vector<float> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  float operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Copy of rows [lo, hi).
  Matrix row_block(std::size_t lo, std::size_t hi) const;
  /// Copy of columns [lo, hi).
  Matrix col_block(std::size_t lo, std::size_t hi) const;
  /// Write `block` into rows starting at `lo`.
  void set_row_block(std::size_t lo, const Matrix& block);
  /// Write `block` into columns starting at `lo`.
  void set_col_block(std::size_t lo, const Matrix& block);

  /// Out-of-place transpose.
  Matrix transposed() const;

  /// Elementwise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  /// Stack blocks left-to-right (equal row counts) — inverse of col_block.
  static Matrix hcat(std::span<const Matrix> blocks);
  /// Stack blocks top-to-bottom (equal col counts) — inverse of row_block.
  static Matrix vcat(std::span<const Matrix> blocks);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// max_ij |a_ij - b_ij|; shapes must match.
float max_abs_diff(const Matrix& a, const Matrix& b);

/// Frobenius norm.
float frobenius_norm(const Matrix& a);

}  // namespace mbd::tensor
