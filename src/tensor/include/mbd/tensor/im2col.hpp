// im2col / col2im lowering so convolution runs as the matrix multiply the
// paper's analysis assumes (footnote 1: convolutions are *viewed* as matmuls
// for the communication analysis; im2col makes that literal).
#pragma once

#include "mbd/tensor/matrix.hpp"
#include "mbd/tensor/tensor4.hpp"

namespace mbd::tensor {

/// Shape parameters of one 2D convolution.
struct ConvGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0;
  std::size_t kernel_h = 0, kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  /// Weight count |W| = (kh·kw·C_in)·C_out (paper Eq. 2).
  std::size_t weight_count() const {
    return kernel_h * kernel_w * in_c * out_c;
  }
};

/// Lower one sample `n` of `input` to a (C_in·kh·kw) × (out_h·out_w) matrix.
/// Out-of-image taps (padding) contribute zeros.
Matrix im2col(const Tensor4& input, std::size_t n, const ConvGeom& g);

/// Scatter-add the columns matrix back into sample `n` of `grad_input`
/// (adjoint of im2col).
void col2im_add(const Matrix& cols, Tensor4& grad_input, std::size_t n,
                const ConvGeom& g);

}  // namespace mbd::tensor
