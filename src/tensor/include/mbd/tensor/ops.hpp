// Elementwise and vector operations shared by the nn layers and trainers.
#pragma once

#include <span>

#include "mbd/tensor/matrix.hpp"

namespace mbd::tensor {

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Elementwise max(x, 0).
void relu_forward(std::span<const float> x, std::span<float> y);

/// dx = dy where x > 0 else 0.
void relu_backward(std::span<const float> x, std::span<const float> dy,
                   std::span<float> dx);

/// Sum of all elements.
double sum(std::span<const float> x);

/// Numerically stable column-wise softmax of `logits` (classes × batch),
/// written to `probs` (same shape).
void softmax_columns(const Matrix& logits, Matrix& probs);

}  // namespace mbd::tensor
