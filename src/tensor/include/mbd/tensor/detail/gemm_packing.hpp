// Panel packing for the register-blocked GEMM (see gemm.cpp).
//
// Both operands are repacked into microkernel-native layout before any
// arithmetic: A into column-major mr-row panels, B into row-major nr-column
// panels, each padded with zeros to a full microtile so the inner kernel
// never branches on a tail. Packing is where the transpose variants get
// absorbed — a strided read happens once per cache block here instead of
// once per FMA in the inner loop.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>

namespace mbd::tensor::detail {

inline constexpr std::size_t kGemmAlign = 64;

/// Grow-only 64-byte-aligned float buffer for packed panels.
class AlignedBuffer {
 public:
  float* ensure(std::size_t n) {
    if (n > cap_) {
      data_.reset(static_cast<float*>(
          ::operator new(n * sizeof(float), std::align_val_t{kGemmAlign})));
      cap_ = n;
    }
    return data_.get();
  }

 private:
  struct Deleter {
    void operator()(float* p) const {
      ::operator delete(p, std::align_val_t{kGemmAlign});
    }
  };
  std::unique_ptr<float, Deleter> data_;
  std::size_t cap_ = 0;
};

constexpr std::size_t round_up(std::size_t v, std::size_t mult) {
  return (v + mult - 1) / mult * mult;
}

/// Pack the mb×kb block of op(A) starting at (i0, p0) into mr-row panels:
///   out[(ir/MR)·kb·MR + p·MR + i] = alpha · op(A)(i0+ir+i, p0+p)
/// rows padded with zeros up to the next multiple of MR. Folding alpha into
/// the pack makes it free for the kernel. `Trans` means A is stored k×m
/// (gemm_tn), i.e. op(A)(i, p) = a[p·lda + i].
template <std::size_t MR, bool Trans>
inline void pack_a(const float* a, std::size_t lda, std::size_t i0,
                   std::size_t mb, std::size_t p0, std::size_t kb, float alpha,
                   float* out) {
  for (std::size_t ir = 0; ir < mb; ir += MR) {
    const std::size_t mr_eff = std::min(MR, mb - ir);
    float* panel = out + (ir / MR) * (kb * MR);
    if constexpr (!Trans) {
      for (std::size_t i = 0; i < mr_eff; ++i) {
        const float* src = a + (i0 + ir + i) * lda + p0;
        for (std::size_t p = 0; p < kb; ++p) panel[p * MR + i] = alpha * src[p];
      }
      for (std::size_t i = mr_eff; i < MR; ++i)
        for (std::size_t p = 0; p < kb; ++p) panel[p * MR + i] = 0.0f;
    } else {
      // Storage rows of A are contiguous in i — already the panel layout.
      for (std::size_t p = 0; p < kb; ++p) {
        const float* src = a + (p0 + p) * lda + (i0 + ir);
        for (std::size_t i = 0; i < mr_eff; ++i) panel[p * MR + i] = alpha * src[i];
        for (std::size_t i = mr_eff; i < MR; ++i) panel[p * MR + i] = 0.0f;
      }
    }
  }
}

/// Pack the kb×nb block of op(B) starting at (p0, j0) into nr-column panels:
///   out[(jr/NR)·kb·NR + p·NR + j] = op(B)(p0+p, j0+jr+j)
/// columns padded with zeros up to the next multiple of NR. `Trans` means B
/// is stored n×k (gemm_nt), i.e. op(B)(p, j) = b[j·ldb + p].
template <std::size_t NR, bool Trans>
inline void pack_b(const float* b, std::size_t ldb, std::size_t p0,
                   std::size_t kb, std::size_t j0, std::size_t nb, float* out) {
  for (std::size_t jr = 0; jr < nb; jr += NR) {
    const std::size_t nr_eff = std::min(NR, nb - jr);
    float* panel = out + (jr / NR) * (kb * NR);
    if constexpr (!Trans) {
      for (std::size_t p = 0; p < kb; ++p) {
        const float* src = b + (p0 + p) * ldb + (j0 + jr);
        for (std::size_t j = 0; j < nr_eff; ++j) panel[p * NR + j] = src[j];
        for (std::size_t j = nr_eff; j < NR; ++j) panel[p * NR + j] = 0.0f;
      }
    } else {
      // Each column j of op(B) is a contiguous storage row of B.
      for (std::size_t j = 0; j < nr_eff; ++j) {
        const float* src = b + (j0 + jr + j) * ldb + p0;
        for (std::size_t p = 0; p < kb; ++p) panel[p * NR + j] = src[p];
      }
      for (std::size_t j = nr_eff; j < NR; ++j)
        for (std::size_t p = 0; p < kb; ++p) panel[p * NR + j] = 0.0f;
    }
  }
}

}  // namespace mbd::tensor::detail
