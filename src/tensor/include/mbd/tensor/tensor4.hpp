// 4D tensor in NCHW layout (paper Fig. 3: "data runs fastest in width,
// height, channel size, then across batch size").
//
// Used by the convolution layers and by the domain-parallel trainer, which
// partitions along H — the paper's recommended split for NCHW because it
// keeps halo rows contiguous in memory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mbd/support/rng.hpp"

namespace mbd::tensor {

/// Owning NCHW tensor of float.
class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

  static Tensor4 random_normal(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w, Rng& rng, float stddev);

  std::size_t n() const { return n_; }
  std::size_t c() const { return c_; }
  std::size_t h() const { return h_; }
  std::size_t w() const { return w_; }
  std::size_t size() const { return n_ * c_ * h_ * w_; }

  /// Linear offset of (n, c, h, w) in the NCHW buffer.
  std::size_t offset(std::size_t n, std::size_t c, std::size_t h,
                     std::size_t w) const {
    return ((n * c_ + c) * h_ + h) * w_ + w;
  }

  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[offset(n, c, h, w)];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[offset(n, c, h, w)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Copy of rows [h_lo, h_hi) across all samples and channels (the domain
  /// partition of Fig. 3).
  Tensor4 height_slab(std::size_t h_lo, std::size_t h_hi) const;
  /// Write a slab back at height offset `h_lo`.
  void set_height_slab(std::size_t h_lo, const Tensor4& slab);

 private:
  std::size_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// max |a-b| over all elements; shapes must match.
float max_abs_diff(const Tensor4& a, const Tensor4& b);

}  // namespace mbd::tensor
