// Packed, register-blocked single-precision matrix multiplication.
//
// The three multiplies of DNN training (paper §1):
//   forward:   Y  = W X      -> gemm_nn
//   backward:  ∆X = Wᵀ ∆Y    -> gemm_tn
//   gradient:  ∆W = ∆Y Xᵀ    -> gemm_nt
// All three variants route through one packed driver: A/B are repacked into
// microkernel-native panels (transposes absorbed by the pack), an mr×nr
// register-tiled inner kernel does the FMAs, and OpenMP threads split the
// row-block macro loop. Blocking parameters are runtime-queryable via
// gemm_config() (mbd/tensor/gemm_config.hpp). Set MBD_GEMM_LOG_SHAPES to
// log each distinct shape a process issues once to stderr.
#pragma once

#include "mbd/tensor/matrix.hpp"

namespace mbd::tensor {

/// C = alpha·A·B + beta·C. Shapes: A m×k, B k×n, C m×n.
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);

/// C = alpha·Aᵀ·B + beta·C. Shapes: A k×m, B k×n, C m×n.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);

/// C = alpha·A·Bᵀ + beta·C. Shapes: A m×k, B n×k, C m×n.
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);

/// Convenience allocating forms.
Matrix matmul(const Matrix& a, const Matrix& b);         ///< A·B
Matrix matmul_tn(const Matrix& a, const Matrix& b);      ///< Aᵀ·B
Matrix matmul_nt(const Matrix& a, const Matrix& b);      ///< A·Bᵀ

/// Naive triple loop used as the test oracle.
Matrix matmul_reference(const Matrix& a, const Matrix& b);

/// Record every distinct GEMM shape this process issues as an obs::Metrics
/// counter ("gemm.shape.<variant> m<M> n<N> k<K>"), independent of the
/// MBD_GEMM_LOG_SHAPES env var (which additionally prints to stderr for
/// interactive harvesting). The bench JSON sink enables this so shape
/// inventories land in --json records.
void set_gemm_shape_metrics(bool on);

/// Compute elision for the static schedule analyzer (mbd/analysis): while
/// on, every GEMM variant zero-fills C and returns without reading A or B.
/// Shapes still propagate exactly, so communication schedules and message
/// sizes are bit-identical to a real run — only the FLOPs disappear.
/// Process-global; flip only while no GEMMs are in flight.
void set_gemm_dry_run(bool on);
/// Current compute-elision state.
bool gemm_dry_run();

}  // namespace mbd::tensor
