#include "mbd/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "mbd/support/check.hpp"

namespace mbd::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  MBD_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void relu_forward(std::span<const float> x, std::span<float> y) {
  MBD_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::max(x[i], 0.0f);
}

void relu_backward(std::span<const float> x, std::span<const float> dy,
                   std::span<float> dx) {
  MBD_CHECK_EQ(x.size(), dy.size());
  MBD_CHECK_EQ(x.size(), dx.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

double sum(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += v;
  return s;
}

void softmax_columns(const Matrix& logits, Matrix& probs) {
  MBD_CHECK_EQ(logits.rows(), probs.rows());
  MBD_CHECK_EQ(logits.cols(), probs.cols());
  const std::size_t classes = logits.rows(), batch = logits.cols();
  for (std::size_t j = 0; j < batch; ++j) {
    float mx = logits(0, j);
    for (std::size_t i = 1; i < classes; ++i) mx = std::max(mx, logits(i, j));
    double denom = 0.0;
    for (std::size_t i = 0; i < classes; ++i) {
      const float e = std::exp(logits(i, j) - mx);
      probs(i, j) = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t i = 0; i < classes; ++i) probs(i, j) *= inv;
  }
}

}  // namespace mbd::tensor
