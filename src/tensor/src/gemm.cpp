#include "mbd/tensor/gemm.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"

namespace mbd::tensor {
namespace {

// Block sizes sized for ~L1/L2 residency of the B panel.
constexpr std::size_t kBlockI = 64;
constexpr std::size_t kBlockK = 256;

}  // namespace

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  MBD_CHECK_EQ(b.rows(), k);
  MBD_CHECK_EQ(c.rows(), m);
  MBD_CHECK_EQ(c.cols(), n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (beta == 0.0f) {
    std::fill(pc, pc + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m * n; ++i) pc[i] *= beta;
  }
#pragma omp parallel for schedule(static)
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        float* crow = pc + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const float av = alpha * pa[i * k + kk];
          const float* brow = pb + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  MBD_CHECK_EQ(b.rows(), k);
  MBD_CHECK_EQ(c.rows(), m);
  MBD_CHECK_EQ(c.cols(), n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (beta == 0.0f) {
    std::fill(pc, pc + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m * n; ++i) pc[i] *= beta;
  }
  // A is traversed down columns; iterate kk outer so both A and B stream rows.
#pragma omp parallel for schedule(static)
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, m);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = pa + kk * m;
      const float* brow = pb + kk * n;
      for (std::size_t i = i0; i < i1; ++i) {
        const float av = alpha * arow[i];
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  MBD_CHECK_EQ(b.cols(), k);
  MBD_CHECK_EQ(c.rows(), m);
  MBD_CHECK_EQ(c.cols(), n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = alpha * acc + beta * crow[j];
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_nn(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  gemm_tn(a, b, c);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  gemm_nt(a, b, c);
  return c;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  MBD_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < a.cols(); ++kk)
        acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  return c;
}

}  // namespace mbd::tensor
