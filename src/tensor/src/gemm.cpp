#include "mbd/tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <tuple>

#include "mbd/obs/metrics.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"
#include "mbd/tensor/detail/gemm_packing.hpp"
#include "mbd/tensor/gemm_config.hpp"

namespace mbd::tensor {
namespace {

using detail::AlignedBuffer;
using detail::round_up;

std::atomic<bool> g_shape_metrics{false};
std::atomic<bool> g_dry_run{false};

// One-shot shape logger: every distinct (variant, m, n, k) a process issues
// is recorded once as an obs::Metrics counter (surfacing in bench --json
// records via set_gemm_shape_metrics) and, with MBD_GEMM_LOG_SHAPES set,
// printed once to stderr so any trainer/example run can harvest the shape
// list bench_gemm sweeps. Disabled (the common case) it costs one relaxed
// load per call.
void log_shape_once(const char* variant, std::size_t m, std::size_t n,
                    std::size_t k) {
  // Magic-static init: getenv runs once, before any concurrent caller races.
  static const bool env_enabled =
      std::getenv("MBD_GEMM_LOG_SHAPES") != nullptr;  // NOLINT(concurrency-mt-unsafe)
  const bool metrics = g_shape_metrics.load(std::memory_order_relaxed);
  if (!env_enabled && !metrics) return;
  static std::mutex mu;
  static std::set<std::tuple<std::string, std::size_t, std::size_t, std::size_t>>
      seen;
  const std::lock_guard<std::mutex> lock(mu);
  if (seen.emplace(variant, m, n, k).second) {
    if (metrics) {
      char name[96];
      std::snprintf(name, sizeof name, "gemm.shape.%s m%zu n%zu k%zu", variant,
                    m, n, k);
      obs::Metrics::instance().counter_add(name);
    }
    if (env_enabled) {
      std::fprintf(stderr, "[mbd-gemm-shape] %s m=%zu n=%zu k=%zu\n", variant,
                   m, n, k);
    }
  }
}

void scale_c(float* c, std::size_t m, std::size_t n, float beta) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
}

// mr×nr microkernel: rank-1 updates over the shared dimension, accumulators
// held in `acc` (registers — both trip counts are compile-time constants and
// the tile is sized so the accumulators fit the SIMD register file).
void micro_kernel(std::size_t kb, const float* __restrict__ ap,
                  const float* __restrict__ bp, float* __restrict__ acc) {
  for (std::size_t p = 0; p < kb; ++p) {
    const float* __restrict__ a = ap + p * kGemmMR;
    const float* __restrict__ b = bp + p * kGemmNR;
#pragma GCC unroll 8
    for (std::size_t i = 0; i < kGemmMR; ++i) {
#pragma omp simd
      for (std::size_t j = 0; j < kGemmNR; ++j)
        acc[i * kGemmNR + j] += a[i] * b[j];
    }
  }
}

// Merge a finished microtile into C (alpha is already folded into acc via
// the A pack; beta is applied exactly once, on the first k-block).
void merge_tile(const float* __restrict__ acc, float* __restrict__ c,
                std::size_t ldc, std::size_t mr_eff, std::size_t nr_eff,
                float beta) {
  for (std::size_t i = 0; i < mr_eff; ++i) {
    const float* arow = acc + i * kGemmNR;
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
#pragma omp simd
      for (std::size_t j = 0; j < nr_eff; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
#pragma omp simd
      for (std::size_t j = 0; j < nr_eff; ++j) crow[j] += arow[j];
    } else {
#pragma omp simd
      for (std::size_t j = 0; j < nr_eff; ++j)
        crow[j] = beta * crow[j] + arow[j];
    }
  }
}

// Shared packed driver. op(A) is m×k, op(B) is k×n, C is m×n with row
// stride ldc. `TransA` means A is stored k×m, `TransB` means B is stored
// n×k; the packing routines absorb the transposes so all three public
// variants run the same unit-stride microkernel.
template <bool TransA, bool TransB>
void gemm_packed(const float* a, std::size_t lda, const float* b,
                 std::size_t ldb, float* c, std::size_t ldc, std::size_t m,
                 std::size_t n, std::size_t k, float alpha, float beta) {
  if (m == 0 || n == 0) return;
  if (g_dry_run.load(std::memory_order_relaxed)) {
    // Compute elision (static schedule analyzer): zero C without reading
    // A/B. Downstream layers see exact shapes and exact message sizes —
    // payloads flow zero-filled — while the FMA cost disappears.
    scale_c(c, m, n, 0.0f);
    return;
  }
  if (k == 0 || alpha == 0.0f) {
    scale_c(c, m, n, beta);
    return;
  }
  const GemmConfig& cfg = gemm_config();
  AlignedBuffer bbuf;
  for (std::size_t jc = 0; jc < n; jc += cfg.nc) {
    const std::size_t nb = std::min(cfg.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += cfg.kc) {
      const std::size_t kb = std::min(cfg.kc, k - pc);
      const float beta_eff = pc == 0 ? beta : 1.0f;
      float* bp = bbuf.ensure(round_up(nb, kGemmNR) * kb);
      {
        // Calling-thread site only: the per-thread pack_a inside the omp
        // region below is deliberately uninstrumented (worker registration
        // order is nondeterministic and the span cost is per macro-tile).
        obs::ScopedSpan pack_span(obs::SpanKind::Pack, "pack_b");
        pack_span.set_args(kb, nb);
        detail::pack_b<kGemmNR, TransB>(b, ldb, pc, kb, jc, nb, bp);
      }
      // Threads split the macro-tile (row-block) loop; each packs its own A
      // block into a thread-local buffer and streams the shared B block.
#pragma omp parallel for schedule(static)
      for (std::size_t ic = 0; ic < m; ic += cfg.mc) {
        const std::size_t mb = std::min(cfg.mc, m - ic);
        static thread_local AlignedBuffer abuf;
        float* ap = abuf.ensure(round_up(mb, kGemmMR) * kb);
        detail::pack_a<kGemmMR, TransA>(a, lda, ic, mb, pc, kb, alpha, ap);
        for (std::size_t jr = 0; jr < nb; jr += kGemmNR) {
          const std::size_t nr_eff = std::min(kGemmNR, nb - jr);
          const float* bpanel = bp + (jr / kGemmNR) * (kb * kGemmNR);
          for (std::size_t ir = 0; ir < mb; ir += kGemmMR) {
            const std::size_t mr_eff = std::min(kGemmMR, mb - ir);
            const float* apanel = ap + (ir / kGemmMR) * (kb * kGemmMR);
            alignas(detail::kGemmAlign) float acc[kGemmMR * kGemmNR] = {};
            micro_kernel(kb, apanel, bpanel, acc);
            merge_tile(acc, c + (ic + ir) * ldc + jc + jr, ldc, mr_eff,
                       nr_eff, beta_eff);
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  MBD_CHECK_EQ(b.rows(), k);
  MBD_CHECK_EQ(c.rows(), m);
  MBD_CHECK_EQ(c.cols(), n);
  log_shape_once("nn", m, n, k);
  obs::ScopedSpan span(obs::SpanKind::Gemm, "nn");
  span.set_args(m * n, k);
  gemm_packed<false, false>(a.data(), k, b.data(), n, c.data(), n, m, n, k,
                            alpha, beta);
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  MBD_CHECK_EQ(b.rows(), k);
  MBD_CHECK_EQ(c.rows(), m);
  MBD_CHECK_EQ(c.cols(), n);
  log_shape_once("tn", m, n, k);
  obs::ScopedSpan span(obs::SpanKind::Gemm, "tn");
  span.set_args(m * n, k);
  gemm_packed<true, false>(a.data(), m, b.data(), n, c.data(), n, m, n, k,
                           alpha, beta);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  MBD_CHECK_EQ(b.cols(), k);
  MBD_CHECK_EQ(c.rows(), m);
  MBD_CHECK_EQ(c.cols(), n);
  log_shape_once("nt", m, n, k);
  obs::ScopedSpan span(obs::SpanKind::Gemm, "nt");
  span.set_args(m * n, k);
  gemm_packed<false, true>(a.data(), k, b.data(), k, c.data(), n, m, n, k,
                           alpha, beta);
}

void set_gemm_shape_metrics(bool on) {
  g_shape_metrics.store(on, std::memory_order_relaxed);
}

void set_gemm_dry_run(bool on) {
  g_dry_run.store(on, std::memory_order_relaxed);
}

bool gemm_dry_run() { return g_dry_run.load(std::memory_order_relaxed); }

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_nn(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  gemm_tn(a, b, c);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  gemm_nt(a, b, c);
  return c;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  MBD_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < a.cols(); ++kk)
        acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  return c;
}

}  // namespace mbd::tensor
