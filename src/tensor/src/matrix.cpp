#include "mbd/tensor/matrix.hpp"

#include <cmath>
#include <cstring>

#include "mbd/support/check.hpp"

namespace mbd::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::filled(std::size_t rows, std::size_t cols, float value) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = value;
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                             float stddev) {
  Matrix m(rows, cols);
  rng.fill_normal(m.data_, stddev);
  return m;
}

Matrix Matrix::from_data(std::size_t rows, std::size_t cols,
                         std::vector<float> data) {
  MBD_CHECK_EQ(data.size(), rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::row_block(std::size_t lo, std::size_t hi) const {
  MBD_CHECK_LE(lo, hi);
  MBD_CHECK_LE(hi, rows_);
  Matrix out(hi - lo, cols_);
  std::memcpy(out.data(), data() + lo * cols_, (hi - lo) * cols_ * sizeof(float));
  return out;
}

Matrix Matrix::col_block(std::size_t lo, std::size_t hi) const {
  MBD_CHECK_LE(lo, hi);
  MBD_CHECK_LE(hi, cols_);
  Matrix out(rows_, hi - lo);
  for (std::size_t i = 0; i < rows_; ++i)
    std::memcpy(out.data() + i * out.cols_, data() + i * cols_ + lo,
                (hi - lo) * sizeof(float));
  return out;
}

void Matrix::set_row_block(std::size_t lo, const Matrix& block) {
  MBD_CHECK_EQ(block.cols(), cols_);
  MBD_CHECK_LE(lo + block.rows(), rows_);
  std::memcpy(data() + lo * cols_, block.data(),
              block.rows() * cols_ * sizeof(float));
}

void Matrix::set_col_block(std::size_t lo, const Matrix& block) {
  MBD_CHECK_EQ(block.rows(), rows_);
  MBD_CHECK_LE(lo + block.cols(), cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    std::memcpy(data() + i * cols_ + lo, block.data() + i * block.cols_,
                block.cols() * sizeof(float));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  MBD_CHECK_EQ(rows_, other.rows_);
  MBD_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  MBD_CHECK_EQ(rows_, other.rows_);
  MBD_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::hcat(std::span<const Matrix> blocks) {
  MBD_CHECK(!blocks.empty());
  const std::size_t rows = blocks.front().rows();
  std::size_t cols = 0;
  for (const auto& b : blocks) {
    MBD_CHECK_EQ(b.rows(), rows);
    cols += b.cols();
  }
  Matrix out(rows, cols);
  std::size_t at = 0;
  for (const auto& b : blocks) {
    out.set_col_block(at, b);
    at += b.cols();
  }
  return out;
}

Matrix Matrix::vcat(std::span<const Matrix> blocks) {
  MBD_CHECK(!blocks.empty());
  const std::size_t cols = blocks.front().cols();
  std::size_t rows = 0;
  for (const auto& b : blocks) {
    MBD_CHECK_EQ(b.cols(), cols);
    rows += b.rows();
  }
  Matrix out(rows, cols);
  std::size_t at = 0;
  for (const auto& b : blocks) {
    out.set_row_block(at, b);
    at += b.rows();
  }
  return out;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  MBD_CHECK_EQ(a.rows(), b.rows());
  MBD_CHECK_EQ(a.cols(), b.cols());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

float frobenius_norm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = a.data()[i];
    s += v * v;
  }
  return static_cast<float>(std::sqrt(s));
}

}  // namespace mbd::tensor
