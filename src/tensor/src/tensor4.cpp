#include "mbd/tensor/tensor4.hpp"

#include <cmath>
#include <cstring>

#include "mbd/support/check.hpp"

namespace mbd::tensor {

Tensor4::Tensor4(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
    : n_(n), c_(c), h_(h), w_(w), data_(n * c * h * w, 0.0f) {}

Tensor4 Tensor4::random_normal(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w, Rng& rng, float stddev) {
  Tensor4 t(n, c, h, w);
  rng.fill_normal(t.data_, stddev);
  return t;
}

Tensor4 Tensor4::height_slab(std::size_t h_lo, std::size_t h_hi) const {
  MBD_CHECK_LE(h_lo, h_hi);
  MBD_CHECK_LE(h_hi, h_);
  Tensor4 out(n_, c_, h_hi - h_lo, w_);
  for (std::size_t n = 0; n < n_; ++n)
    for (std::size_t c = 0; c < c_; ++c)
      std::memcpy(out.data() + out.offset(n, c, 0, 0),
                  data() + offset(n, c, h_lo, 0),
                  (h_hi - h_lo) * w_ * sizeof(float));
  return out;
}

void Tensor4::set_height_slab(std::size_t h_lo, const Tensor4& slab) {
  MBD_CHECK_EQ(slab.n(), n_);
  MBD_CHECK_EQ(slab.c(), c_);
  MBD_CHECK_EQ(slab.w(), w_);
  MBD_CHECK_LE(h_lo + slab.h(), h_);
  for (std::size_t n = 0; n < n_; ++n)
    for (std::size_t c = 0; c < c_; ++c)
      std::memcpy(data() + offset(n, c, h_lo, 0),
                  slab.data() + slab.offset(n, c, 0, 0),
                  slab.h() * w_ * sizeof(float));
}

float max_abs_diff(const Tensor4& a, const Tensor4& b) {
  MBD_CHECK_EQ(a.size(), b.size());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

}  // namespace mbd::tensor
