#include "mbd/tensor/gemm_config.hpp"

#include <cstdlib>

namespace mbd::tensor {
namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  // Reached only from gemm_config()'s magic-static init — no setenv racer.
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

GemmConfig make_config() {
  GemmConfig cfg;
  cfg.mr = kGemmMR;
  cfg.nr = kGemmNR;
  // Defaults: A block (mc×kc ≈ 132 KiB) lives in L2, one B micropanel
  // (kc×nr ≈ 16 KiB with nr=16) stays L1-resident, B block (kc×nc ≈ 2 MiB)
  // is packed once per (jc, pc) and shared by all threads.
  cfg.mc = env_or("MBD_GEMM_MC", 132);
  cfg.kc = env_or("MBD_GEMM_KC", 256);
  cfg.nc = env_or("MBD_GEMM_NC", 2048);
  cfg.kernel = kGemmNR == 16 ? "packed-6x16" : "packed-6x8";
  return cfg;
}

}  // namespace

const GemmConfig& gemm_config() {
  static const GemmConfig cfg = make_config();
  return cfg;
}

}  // namespace mbd::tensor
