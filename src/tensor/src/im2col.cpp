#include "mbd/tensor/im2col.hpp"

#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"

namespace mbd::tensor {

Matrix im2col(const Tensor4& input, std::size_t n, const ConvGeom& g) {
  obs::ScopedSpan span(obs::SpanKind::Im2col, "im2col");
  span.set_args(g.in_c * g.kernel_h * g.kernel_w, g.out_h() * g.out_w());
  MBD_CHECK_EQ(input.c(), g.in_c);
  MBD_CHECK_EQ(input.h(), g.in_h);
  MBD_CHECK_EQ(input.w(), g.in_w);
  MBD_CHECK_LT(n, input.n());
  const std::size_t oh = g.out_h(), ow = g.out_w();
  Matrix cols(g.in_c * g.kernel_h * g.kernel_w, oh * ow);
  for (std::size_t c = 0; c < g.in_c; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::size_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        for (std::size_t y = 0; y < oh; ++y) {
          // Signed arithmetic for the padded coordinate.
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(y * g.stride + kh) -
                                    static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.in_w)) {
              v = input.at(n, c, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix));
            }
            cols(row, y * ow + x) = v;
          }
        }
      }
    }
  }
  return cols;
}

void col2im_add(const Matrix& cols, Tensor4& grad_input, std::size_t n,
                const ConvGeom& g) {
  obs::ScopedSpan span(obs::SpanKind::Im2col, "col2im_add");
  span.set_args(g.in_c * g.kernel_h * g.kernel_w, g.out_h() * g.out_w());
  MBD_CHECK_EQ(grad_input.c(), g.in_c);
  MBD_CHECK_EQ(grad_input.h(), g.in_h);
  MBD_CHECK_EQ(grad_input.w(), g.in_w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  MBD_CHECK_EQ(cols.rows(), g.in_c * g.kernel_h * g.kernel_w);
  MBD_CHECK_EQ(cols.cols(), oh * ow);
  for (std::size_t c = 0; c < g.in_c; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::size_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(y * g.stride + kh) -
                                    static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            grad_input.at(n, c, static_cast<std::size_t>(iy),
                          static_cast<std::size_t>(ix)) +=
                cols(row, y * ow + x);
          }
        }
      }
    }
  }
}

}  // namespace mbd::tensor
