// Softmax + cross-entropy loss in the mini-batch matrix layout.
//
// The gradient is scaled by 1/global_batch (paper Eq. 1), so in a
// batch-parallel run each process computes partial sums over its local
// columns and a single all-reduce of ∆W recovers the full mini-batch
// gradient with no further scaling.
#pragma once

#include <span>

#include "mbd/tensor/matrix.hpp"

namespace mbd::nn {

struct LossResult {
  /// Sum over local samples of -log p[label] (not averaged; divide by the
  /// global batch size — or all-reduce first — for the mean loss).
  double loss_sum = 0.0;
  /// Gradient w.r.t. the logits, already divided by `global_batch`.
  tensor::Matrix dlogits;
};

/// logits: classes × B_local, labels: B_local entries in [0, classes).
LossResult softmax_cross_entropy(const tensor::Matrix& logits,
                                 std::span<const int> labels,
                                 std::size_t global_batch);

}  // namespace mbd::nn
