// Model zoo: the AlexNet specification the paper evaluates (Table 1) and
// small networks used by tests and executable examples.
#pragma once

#include <vector>

#include "mbd/nn/layer_spec.hpp"

namespace mbd::nn {

/// AlexNet (Krizhevsky et al. 2012), single-tower variant: 5 conv + 3 FC
/// layers, ≈62 M parameters ("61M" in paper Table 1). Pooling layers are
/// included so the shape chain is exact; they carry no weights.
std::vector<LayerSpec> alexnet_spec();

/// Just the weighted layers of a spec (conv + FC) — the index set the
/// paper's cost sums range over.
std::vector<LayerSpec> weighted_layers(const std::vector<LayerSpec>& net);

/// A small MLP: FC dims.front() -> ... -> dims.back(), ReLU between hidden
/// layers, none after the last. Used for executable 1.5D training.
std::vector<LayerSpec> mlp_spec(const std::vector<std::size_t>& dims);

/// A small CNN (2 conv + pool + 2 FC) on in_c × in_hw × in_hw inputs, for
/// executable domain-parallel training. `classes` is the output dimension.
std::vector<LayerSpec> small_cnn_spec(std::size_t in_c, std::size_t in_hw,
                                      std::size_t classes);

/// Fully-connected proxy for an unrolled recurrent network (paper
/// Limitations: "cases with Recurrent Neural Networks mainly consist of
/// fully connected layers and our analysis naturally extends to those
/// cases"): `steps` stacked hidden×hidden FC layers between input and output
/// projections. The regime where the 1.5D integration pays off most.
std::vector<LayerSpec> rnn_proxy_spec(std::size_t input, std::size_t hidden,
                                      std::size_t steps, std::size_t output);

/// ImageNet LSVRC-2012 training-set size (Table 1).
inline constexpr std::size_t kImageNetTrainImages = 1'281'167;

}  // namespace mbd::nn
