// Sequential mini-batch SGD: the single-process reference every distributed
// trainer in mbd::parallel is verified against.
#pragma once

#include <cstdint>
#include <vector>

#include "mbd/nn/network.hpp"

namespace mbd::nn {

/// Training hyperparameters.
struct TrainConfig {
  std::size_t batch = 32;
  float lr = 0.01f;
  float momentum = 0.0f;  ///< heavy-ball momentum (AlexNet used 0.9)
  /// Step decay: multiply the rate by `lr_decay` every `decay_every`
  /// iterations (0 disables). AlexNet dropped the rate ×0.1 on plateau.
  float lr_decay = 1.0f;
  std::size_t decay_every = 0;
  std::size_t iterations = 10;
};

/// Learning rate at iteration `it` under the config's step-decay schedule.
/// A pure function of (cfg, it), so every process computes the same value
/// with no coordination.
float lr_at(const TrainConfig& cfg, std::size_t it);

/// A labelled dataset in the matrix layout: one column per sample.
struct Dataset {
  tensor::Matrix inputs;    ///< d_0 × N
  std::vector<int> labels;  ///< N entries

  std::size_t size() const { return inputs.cols(); }
};

/// Deterministic synthetic classification data: class-dependent Gaussian
/// clusters so that losses actually decrease under SGD.
Dataset make_synthetic_dataset(std::size_t dim, std::size_t classes,
                               std::size_t n, std::uint64_t seed);

/// Deterministic Fisher–Yates column shuffle. Since every trainer reads the
/// dataset in the same (sequential-slice) order, shuffling once up front is
/// the distribution-transparent way to randomize sample order.
Dataset shuffle_dataset(const Dataset& data, std::uint64_t seed);

/// Split the first ⌊fraction·N⌋ columns into `first` and the rest into
/// `second` (shuffle beforehand for a random split).
struct DatasetSplit {
  Dataset first, second;
};
DatasetSplit split_dataset(const Dataset& data, double fraction);

/// Standardize every feature row to zero mean and unit variance over the
/// dataset (rows with zero variance are left centered only). Returns the
/// per-row (mean, stddev) so the same transform can be applied to held-out
/// data with apply_normalization.
struct Normalization {
  std::vector<float> mean, stddev;
};
Normalization normalize_features(Dataset& data);
void apply_normalization(Dataset& data, const Normalization& norm);

/// Top-1 classification accuracy of `net` on `data` (argmax of the logits
/// column per sample), evaluated in batches of `batch` columns.
double evaluate_accuracy(Network& net, const Dataset& data,
                         std::size_t batch = 64);

/// Runs `cfg.iterations` steps of mini-batch SGD. Batches are consecutive
/// slices of the dataset (wrapping), so the sample order is a pure function
/// of the iteration — the property the distributed trainers rely on to be
/// comparable. Returns the mean loss of each iteration.
std::vector<double> train_sgd(Network& net, const Dataset& data,
                              const TrainConfig& cfg);

}  // namespace mbd::nn
