// Network: an ordered stack of layers with SGD parameter updates, plus the
// builder that instantiates a runtime network from a LayerSpec chain.
#pragma once

#include <memory>
#include <vector>

#include "mbd/nn/layers.hpp"
#include "mbd/nn/layer_spec.hpp"

namespace mbd::nn {

/// Sequential network. Owns its layers.
class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  void add(std::unique_ptr<Layer> layer);

  /// Forward pass through all layers; x is d_0 × B.
  tensor::Matrix forward(const tensor::Matrix& x);

  /// Backward pass; dy is the gradient at the output. Each layer's weight
  /// gradient is overwritten. Returns the gradient at the input.
  tensor::Matrix backward(const tensor::Matrix& dy);

  /// SGD update on every parameter: with momentum m > 0 keeps per-layer
  /// velocity buffers (v ← m·v + g, w ← w − lr·v); plain w ← w − lr·g
  /// otherwise.
  void sgd_step(float lr, float momentum = 0.0f);

  /// Propagate (iteration, global sample offset) to layers that need it.
  void set_batch_context(std::uint64_t iteration, std::uint64_t sample_offset);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Total parameter count.
  std::size_t num_params() const;

  /// Copy all parameters into / out of one flat vector (layer order).
  std::vector<float> save_params() const;
  void load_params(std::span<const float> flat);

  /// Full optimizer-visible state: parameters followed by the momentum
  /// velocities (zeros when no momentum step has run yet). load_state
  /// materializes the velocity buffers, so a restored network resumes the
  /// exact SGD trajectory — the checkpoint/restart substrate.
  std::size_t state_size() const { return 2 * num_params(); }
  std::vector<float> save_state() const;
  void load_state(std::span<const float> flat);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::vector<float>> velocity_;  // lazily sized, momentum only
};

/// Options for build_network.
struct BuildOptions {
  std::uint64_t seed = 42;       ///< weight init stream
  double dropout_prob = 0.0;     ///< if > 0, Dropout after each hidden FC
  std::uint64_t dropout_seed = 7;
};

/// Instantiate runtime layers for a spec chain: Conv2D/FullyConnected with
/// He init, ReLU where relu_after, MaxPool2D for pool specs, optional
/// Dropout after hidden FC layers.
Network build_network(const std::vector<LayerSpec>& specs,
                      const BuildOptions& opts = {});

}  // namespace mbd::nn
