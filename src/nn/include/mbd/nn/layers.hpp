// Runtime layers operating on the paper's matrix layout: activations are
// d × B matrices with one column per sample (X_i ∈ R^{d_{i-1}×B}).
//
// Every weighted layer realizes exactly the three multiplies the paper
// analyzes:  Y = W·X  (forward),  ∆X = Wᵀ·∆Y,  ∆W = ∆Y·Xᵀ  (backward).
// Biases are intentionally omitted — the paper's formulation and all its
// communication analysis are bias-free.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mbd/nn/layer_spec.hpp"
#include "mbd/tensor/matrix.hpp"

namespace mbd::nn {

/// Abstract layer. forward() must be called before backward(); layers cache
/// whatever forward state their backward needs.
class Layer {
 public:
  virtual ~Layer() = default;

  /// x is d_in × B; returns d_out × B.
  virtual tensor::Matrix forward(const tensor::Matrix& x) = 0;

  /// dy is d_out × B (gradient w.r.t. this layer's output); returns the
  /// gradient w.r.t. the input, d_in × B. Overwrites the weight gradient.
  virtual tensor::Matrix backward(const tensor::Matrix& dy) = 0;

  /// Flat views of parameters and their gradients (empty if none).
  virtual std::span<float> weights() { return {}; }
  virtual std::span<float> grads() { return {}; }

  /// Hook for layers whose behaviour depends on the training step and on
  /// which global samples this process holds (Dropout). `sample_offset` is
  /// the global index of local column 0.
  virtual void set_batch_context(std::uint64_t /*iteration*/,
                                 std::uint64_t /*sample_offset*/) {}

  virtual std::string_view name() const = 0;
};

/// Fully-connected layer, W ∈ R^{d_out × d_in}.
class FullyConnected final : public Layer {
 public:
  /// He-style init: W_ij ~ N(0, 2/d_in) drawn from `rng`.
  FullyConnected(std::string name, std::size_t d_in, std::size_t d_out,
                 Rng& rng);
  /// Wrap an explicit weight matrix (used by partitioned trainers).
  FullyConnected(std::string name, tensor::Matrix w);

  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& dy) override;
  std::span<float> weights() override { return w_.span(); }
  std::span<float> grads() override { return dw_.span(); }
  std::string_view name() const override { return name_; }

  const tensor::Matrix& weight_matrix() const { return w_; }
  const tensor::Matrix& grad_matrix() const { return dw_; }

 private:
  std::string name_;
  tensor::Matrix w_, dw_, x_;
};

/// Convolution layer via im2col + gemm; weights stored as
/// out_c × (in_c·kh·kw), activations flattened CHW per column.
class Conv2D final : public Layer {
 public:
  Conv2D(std::string name, const tensor::ConvGeom& geom, Rng& rng);
  Conv2D(std::string name, const tensor::ConvGeom& geom, tensor::Matrix w);

  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& dy) override;
  std::span<float> weights() override { return w_.span(); }
  std::span<float> grads() override { return dw_.span(); }
  std::string_view name() const override { return name_; }

  const tensor::ConvGeom& geom() const { return geom_; }
  const tensor::Matrix& weight_matrix() const { return w_; }

 private:
  std::string name_;
  tensor::ConvGeom geom_;
  tensor::Matrix w_, dw_, x_;
};

/// Elementwise ReLU.
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}
  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& dy) override;
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  tensor::Matrix x_;
};

/// Max pooling on flattened CHW columns.
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::string name, const tensor::ConvGeom& geom);
  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& dy) override;
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  tensor::ConvGeom geom_;
  std::size_t d_in_ = 0;
  // argmax_(i, j): input index that won for output element i of sample j.
  std::vector<std::uint32_t> argmax_;
  std::size_t out_dim_ = 0, batch_ = 0;
};

/// Inverted dropout with a *stateless* mask: keep(u, s) is a pure hash of
/// (seed, iteration, global sample index s, unit u). This makes the mask
/// independent of how the batch is partitioned across processes, so the
/// parallel-equals-sequential tests hold even with dropout enabled.
class Dropout final : public Layer {
 public:
  Dropout(std::string name, double drop_prob, std::uint64_t seed);

  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& dy) override;
  void set_batch_context(std::uint64_t iteration,
                         std::uint64_t sample_offset) override;
  std::string_view name() const override { return name_; }

  /// True iff unit `u` of global sample `s` is kept at `iteration`.
  bool kept(std::uint64_t iteration, std::uint64_t sample, std::uint64_t unit)
      const;

 private:
  std::string name_;
  double drop_prob_;
  std::uint64_t seed_;
  std::uint64_t iteration_ = 0, sample_offset_ = 0;
  tensor::Matrix mask_;  // cached from forward for backward
};

}  // namespace mbd::nn
