// Layer shape algebra (paper §2.1, Eq. 2).
//
// A LayerSpec describes one network layer's *shapes* — enough to drive both
// the analytic cost model (|W_i|, d_{i-1}, d_i, halo widths) and runtime
// network construction. Weighted layers are convolutions and fully-connected
// layers; pooling layers are carried so runtime shapes line up but contribute
// no parameters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mbd/tensor/im2col.hpp"

namespace mbd::nn {

enum class LayerKind { Conv, FullyConnected, Pool };

/// Shape description of one layer.
struct LayerSpec {
  LayerKind kind = LayerKind::FullyConnected;
  std::string name;

  /// Conv / Pool geometry (kind != FullyConnected). For Pool, out_c must
  /// equal in_c and the "kernel" is the pooling window.
  tensor::ConvGeom conv;

  /// FC dimensions (kind == FullyConnected).
  std::size_t fc_in = 0, fc_out = 0;

  /// Whether a ReLU follows this layer in the runtime network.
  bool relu_after = false;

  /// --- Eq. 2 quantities -----------------------------------------------

  /// |W_i|: number of parameters. (kh·kw·C_in)·C_out for conv, d_in·d_out
  /// for FC, 0 for pool.
  std::size_t weight_count() const;

  /// d_{i-1}: input activation count per sample.
  std::size_t d_in() const;

  /// d_i: output activation count per sample.
  std::size_t d_out() const;

  /// Multiply-accumulate count per sample (2 flops per MAC) for the forward
  /// pass; backward costs ≈ 2× forward.
  double macs_per_sample() const;

  bool has_weights() const { return kind != LayerKind::Pool; }
};

/// Make a conv layer spec.
LayerSpec conv_spec(std::string name, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, std::size_t out_c, std::size_t kernel,
                    std::size_t stride, std::size_t pad, bool relu = true);

/// Make a max-pool layer spec.
LayerSpec pool_spec(std::string name, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, std::size_t window, std::size_t stride);

/// Make a fully-connected layer spec.
LayerSpec fc_spec(std::string name, std::size_t in_dim, std::size_t out_dim,
                  bool relu = true);

/// Sum of weight_count over a network.
std::size_t total_weights(const std::vector<LayerSpec>& net);

/// Validate that consecutive layers' shapes chain (d_out of layer i equals
/// d_in of layer i+1). Throws mbd::Error with the offending layer otherwise.
void check_chain(const std::vector<LayerSpec>& net);

}  // namespace mbd::nn
