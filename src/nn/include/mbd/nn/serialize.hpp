// Binary model checkpoints.
//
// Format: 8-byte magic "MBDCKPT1", uint64 parameter count, then the raw
// float32 parameters in Network::save_params() order (layer order,
// row-major). Endianness is the host's — checkpoints are a single-machine
// convenience, not an interchange format.
#pragma once

#include <string>

#include "mbd/nn/network.hpp"

namespace mbd::nn {

/// Write all parameters of `net` to `path` (overwrites). Throws mbd::Error
/// on I/O failure.
void save_checkpoint(const Network& net, const std::string& path);

/// Load parameters saved by save_checkpoint into `net`. The parameter count
/// must match the network exactly; throws mbd::Error otherwise.
void load_checkpoint(Network& net, const std::string& path);

}  // namespace mbd::nn
