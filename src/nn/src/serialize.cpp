#include "mbd/nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "mbd/support/check.hpp"

namespace mbd::nn {
namespace {

constexpr char kMagic[8] = {'M', 'B', 'D', 'C', 'K', 'P', 'T', '1'};

}  // namespace

void save_checkpoint(const Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MBD_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  const auto params = net.save_params();
  const std::uint64_t count = params.size();
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  out.flush();
  MBD_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

void load_checkpoint(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MBD_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  MBD_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "'" << path << "' is not an mbd checkpoint");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  MBD_CHECK_MSG(in.good(), "truncated checkpoint '" << path << "'");
  MBD_CHECK_MSG(count == net.num_params(),
                "checkpoint has " << count << " parameters, network expects "
                                  << net.num_params());
  std::vector<float> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  MBD_CHECK_MSG(in.good(), "truncated checkpoint '" << path << "'");
  net.load_params(params);
}

}  // namespace mbd::nn
