#include "mbd/nn/layers.hpp"

#include <cmath>

#include "mbd/support/check.hpp"
#include "mbd/tensor/gemm.hpp"
#include "mbd/tensor/im2col.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::nn {

using tensor::Matrix;

namespace {

/// Copy column j of a d × B matrix into a contiguous buffer.
void get_column(const Matrix& m, std::size_t j, std::span<float> out) {
  MBD_CHECK_EQ(out.size(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) out[i] = m(i, j);
}

/// Write a contiguous buffer into column j.
void set_column(Matrix& m, std::size_t j, std::span<const float> in) {
  MBD_CHECK_EQ(in.size(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) = in[i];
}

std::uint64_t hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ULL ^ b * 0xC2B2AE3D27D4EB4FULL ^
                    c * 0x165667B19E3779F9ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- FullyConnected --------------------------------------------------------

FullyConnected::FullyConnected(std::string name, std::size_t d_in,
                               std::size_t d_out, Rng& rng)
    : name_(std::move(name)),
      w_(Matrix::random_normal(d_out, d_in, rng,
                               std::sqrt(2.0f / static_cast<float>(d_in)))),
      dw_(d_out, d_in) {}

FullyConnected::FullyConnected(std::string name, Matrix w)
    : name_(std::move(name)), dw_(w.rows(), w.cols()), x_() {
  w_ = std::move(w);
}

Matrix FullyConnected::forward(const Matrix& x) {
  MBD_CHECK_EQ(x.rows(), w_.cols());
  x_ = x;
  return tensor::matmul(w_, x);  // Y = W X
}

Matrix FullyConnected::backward(const Matrix& dy) {
  MBD_CHECK_EQ(dy.rows(), w_.rows());
  MBD_CHECK_EQ(dy.cols(), x_.cols());
  tensor::gemm_nt(dy, x_, dw_);        // ∆W = ∆Y Xᵀ
  return tensor::matmul_tn(w_, dy);    // ∆X = Wᵀ ∆Y
}

// --- Conv2D ----------------------------------------------------------------

Conv2D::Conv2D(std::string name, const tensor::ConvGeom& geom, Rng& rng)
    : name_(std::move(name)),
      geom_(geom),
      w_(Matrix::random_normal(
          geom.out_c, geom.in_c * geom.kernel_h * geom.kernel_w, rng,
          std::sqrt(2.0f / static_cast<float>(geom.in_c * geom.kernel_h *
                                              geom.kernel_w)))),
      dw_(w_.rows(), w_.cols()) {}

Conv2D::Conv2D(std::string name, const tensor::ConvGeom& geom, Matrix w)
    : name_(std::move(name)), geom_(geom) {
  MBD_CHECK_EQ(w.rows(), geom.out_c);
  MBD_CHECK_EQ(w.cols(), geom.in_c * geom.kernel_h * geom.kernel_w);
  w_ = std::move(w);
  dw_ = Matrix(w_.rows(), w_.cols());
}

Matrix Conv2D::forward(const Matrix& x) {
  const std::size_t d_in = geom_.in_c * geom_.in_h * geom_.in_w;
  MBD_CHECK_EQ(x.rows(), d_in);
  x_ = x;
  const std::size_t batch = x.cols();
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  Matrix y(geom_.out_c * oh * ow, batch);
  std::vector<float> sample(d_in);
  tensor::Tensor4 t(1, geom_.in_c, geom_.in_h, geom_.in_w);
  for (std::size_t b = 0; b < batch; ++b) {
    get_column(x, b, sample);
    std::copy(sample.begin(), sample.end(), t.data());
    const Matrix cols = tensor::im2col(t, 0, geom_);
    const Matrix ys = tensor::matmul(w_, cols);  // out_c × (oh·ow)
    set_column(y, b, ys.span());
  }
  return y;
}

Matrix Conv2D::backward(const Matrix& dy) {
  const std::size_t d_in = geom_.in_c * geom_.in_h * geom_.in_w;
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  MBD_CHECK_EQ(dy.rows(), geom_.out_c * oh * ow);
  const std::size_t batch = x_.cols();
  MBD_CHECK_EQ(dy.cols(), batch);
  Matrix dx(d_in, batch);
  std::fill(dw_.span().begin(), dw_.span().end(), 0.0f);
  std::vector<float> sample(d_in), dy_col(dy.rows());
  tensor::Tensor4 t(1, geom_.in_c, geom_.in_h, geom_.in_w);
  tensor::Tensor4 dt(1, geom_.in_c, geom_.in_h, geom_.in_w);
  for (std::size_t b = 0; b < batch; ++b) {
    get_column(x_, b, sample);
    std::copy(sample.begin(), sample.end(), t.data());
    const Matrix cols = tensor::im2col(t, 0, geom_);
    get_column(dy, b, dy_col);
    const Matrix dys = Matrix::from_data(geom_.out_c, oh * ow,
                                         {dy_col.begin(), dy_col.end()});
    tensor::gemm_nt(dys, cols, dw_, 1.0f, 1.0f);   // ∆W += ∆Y_s colsᵀ
    const Matrix dcols = tensor::matmul_tn(w_, dys);  // Wᵀ ∆Y_s
    std::fill(dt.span().begin(), dt.span().end(), 0.0f);
    tensor::col2im_add(dcols, dt, 0, geom_);
    set_column(dx, b, dt.span());
  }
  return dx;
}

// --- ReLU ------------------------------------------------------------------

Matrix ReLU::forward(const Matrix& x) {
  x_ = x;
  Matrix y(x.rows(), x.cols());
  tensor::relu_forward(x.span(), y.span());
  return y;
}

Matrix ReLU::backward(const Matrix& dy) {
  MBD_CHECK_EQ(dy.rows(), x_.rows());
  MBD_CHECK_EQ(dy.cols(), x_.cols());
  Matrix dx(dy.rows(), dy.cols());
  tensor::relu_backward(x_.span(), dy.span(), dx.span());
  return dx;
}

// --- MaxPool2D ---------------------------------------------------------------

MaxPool2D::MaxPool2D(std::string name, const tensor::ConvGeom& geom)
    : name_(std::move(name)), geom_(geom) {
  MBD_CHECK_EQ(geom.in_c, geom.out_c);
  d_in_ = geom.in_c * geom.in_h * geom.in_w;
}

Matrix MaxPool2D::forward(const Matrix& x) {
  MBD_CHECK_EQ(x.rows(), d_in_);
  batch_ = x.cols();
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  out_dim_ = geom_.in_c * oh * ow;
  Matrix y(out_dim_, batch_);
  argmax_.assign(out_dim_ * batch_, 0);
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t c = 0; c < geom_.in_c; ++c) {
      for (std::size_t py = 0; py < oh; ++py) {
        for (std::size_t px = 0; px < ow; ++px) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < geom_.kernel_h; ++ky) {
            const std::size_t iy = py * geom_.stride + ky;
            if (iy >= geom_.in_h) continue;
            for (std::size_t kx = 0; kx < geom_.kernel_w; ++kx) {
              const std::size_t ix = px * geom_.stride + kx;
              if (ix >= geom_.in_w) continue;
              const std::size_t idx = (c * geom_.in_h + iy) * geom_.in_w + ix;
              const float v = x(idx, b);
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          const std::size_t o = (c * oh + py) * ow + px;
          y(o, b) = best;
          argmax_[o * batch_ + b] = static_cast<std::uint32_t>(best_idx);
        }
      }
    }
  }
  return y;
}

Matrix MaxPool2D::backward(const Matrix& dy) {
  MBD_CHECK_EQ(dy.rows(), out_dim_);
  MBD_CHECK_EQ(dy.cols(), batch_);
  Matrix dx(d_in_, batch_);
  for (std::size_t o = 0; o < out_dim_; ++o)
    for (std::size_t b = 0; b < batch_; ++b)
      dx(argmax_[o * batch_ + b], b) += dy(o, b);
  return dx;
}

// --- Dropout -----------------------------------------------------------------

Dropout::Dropout(std::string name, double drop_prob, std::uint64_t seed)
    : name_(std::move(name)), drop_prob_(drop_prob), seed_(seed) {
  MBD_CHECK(drop_prob >= 0.0 && drop_prob < 1.0);
}

bool Dropout::kept(std::uint64_t iteration, std::uint64_t sample,
                   std::uint64_t unit) const {
  const std::uint64_t h = hash3(seed_ ^ iteration, sample + 1, unit + 1);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u >= drop_prob_;
}

void Dropout::set_batch_context(std::uint64_t iteration,
                                std::uint64_t sample_offset) {
  iteration_ = iteration;
  sample_offset_ = sample_offset;
}

Matrix Dropout::forward(const Matrix& x) {
  mask_ = Matrix(x.rows(), x.cols());
  const float scale = static_cast<float>(1.0 / (1.0 - drop_prob_));
  for (std::size_t u = 0; u < x.rows(); ++u)
    for (std::size_t b = 0; b < x.cols(); ++b)
      mask_(u, b) = kept(iteration_, sample_offset_ + b, u) ? scale : 0.0f;
  Matrix y(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    y.data()[i] = x.data()[i] * mask_.data()[i];
  return y;
}

Matrix Dropout::backward(const Matrix& dy) {
  MBD_CHECK_EQ(dy.rows(), mask_.rows());
  MBD_CHECK_EQ(dy.cols(), mask_.cols());
  Matrix dx(dy.rows(), dy.cols());
  for (std::size_t i = 0; i < dy.size(); ++i)
    dx.data()[i] = dy.data()[i] * mask_.data()[i];
  return dx;
}

}  // namespace mbd::nn
