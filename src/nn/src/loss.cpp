#include "mbd/nn/loss.hpp"

#include <cmath>

#include "mbd/support/check.hpp"
#include "mbd/tensor/ops.hpp"

namespace mbd::nn {

LossResult softmax_cross_entropy(const tensor::Matrix& logits,
                                 std::span<const int> labels,
                                 std::size_t global_batch) {
  const std::size_t classes = logits.rows(), batch = logits.cols();
  MBD_CHECK_EQ(labels.size(), batch);
  MBD_CHECK_GT(global_batch, 0u);
  LossResult r;
  tensor::Matrix probs(classes, batch);
  tensor::softmax_columns(logits, probs);
  r.dlogits = probs;
  const float inv_b = 1.0f / static_cast<float>(global_batch);
  for (std::size_t j = 0; j < batch; ++j) {
    const int label = labels[j];
    MBD_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes);
    const double p = std::max(
        static_cast<double>(probs(static_cast<std::size_t>(label), j)), 1e-30);
    r.loss_sum += -std::log(p);
    r.dlogits(static_cast<std::size_t>(label), j) -= 1.0f;
  }
  for (std::size_t i = 0; i < r.dlogits.size(); ++i)
    r.dlogits.data()[i] *= inv_b;
  return r;
}

}  // namespace mbd::nn
