#include "mbd/nn/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "mbd/nn/loss.hpp"
#include "mbd/support/check.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::nn {

Dataset make_synthetic_dataset(std::size_t dim, std::size_t classes,
                               std::size_t n, std::uint64_t seed) {
  MBD_CHECK_GT(classes, 0u);
  Rng rng(seed);
  // Per-class mean directions.
  std::vector<std::vector<float>> means(classes, std::vector<float>(dim));
  for (auto& m : means)
    for (auto& v : m) v = static_cast<float>(rng.normal()) * 1.0f;
  Dataset ds;
  ds.inputs = tensor::Matrix(dim, n);
  ds.labels.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t c = j % classes;  // balanced, deterministic
    ds.labels[j] = static_cast<int>(c);
    for (std::size_t i = 0; i < dim; ++i)
      ds.inputs(i, j) = means[c][i] + 0.3f * static_cast<float>(rng.normal());
  }
  return ds;
}

Dataset shuffle_dataset(const Dataset& data, std::uint64_t seed) {
  const std::size_t n = data.size();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  Dataset out;
  out.inputs = tensor::Matrix(data.inputs.rows(), n);
  out.labels.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < out.inputs.rows(); ++i)
      out.inputs(i, j) = data.inputs(i, perm[j]);
    out.labels[j] = data.labels[perm[j]];
  }
  return out;
}

DatasetSplit split_dataset(const Dataset& data, double fraction) {
  MBD_CHECK(fraction > 0.0 && fraction < 1.0);
  const std::size_t n = data.size();
  const std::size_t k = static_cast<std::size_t>(fraction * static_cast<double>(n));
  MBD_CHECK_GT(k, 0u);
  MBD_CHECK_LT(k, n);
  DatasetSplit s;
  s.first.inputs = data.inputs.col_block(0, k);
  s.first.labels.assign(data.labels.begin(),
                        data.labels.begin() + static_cast<std::ptrdiff_t>(k));
  s.second.inputs = data.inputs.col_block(k, n);
  s.second.labels.assign(data.labels.begin() + static_cast<std::ptrdiff_t>(k),
                         data.labels.end());
  return s;
}

Normalization normalize_features(Dataset& data) {
  const std::size_t d = data.inputs.rows(), n = data.size();
  MBD_CHECK_GT(n, 0u);
  Normalization norm;
  norm.mean.resize(d);
  norm.stddev.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = data.inputs(i, j);
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / static_cast<double>(n);
    const double var = std::max(sum2 / static_cast<double>(n) - mean * mean, 0.0);
    norm.mean[i] = static_cast<float>(mean);
    norm.stddev[i] = static_cast<float>(std::sqrt(var));
  }
  apply_normalization(data, norm);
  return norm;
}

void apply_normalization(Dataset& data, const Normalization& norm) {
  const std::size_t d = data.inputs.rows();
  MBD_CHECK_EQ(norm.mean.size(), d);
  MBD_CHECK_EQ(norm.stddev.size(), d);
  for (std::size_t i = 0; i < d; ++i) {
    const float inv = norm.stddev[i] > 0.0f ? 1.0f / norm.stddev[i] : 1.0f;
    for (std::size_t j = 0; j < data.size(); ++j)
      data.inputs(i, j) = (data.inputs(i, j) - norm.mean[i]) * inv;
  }
}

float lr_at(const TrainConfig& cfg, std::size_t it) {
  if (cfg.decay_every == 0 || cfg.lr_decay == 1.0f) return cfg.lr;
  float rate = cfg.lr;
  for (std::size_t k = 0; k < it / cfg.decay_every; ++k) rate *= cfg.lr_decay;
  return rate;
}

double evaluate_accuracy(Network& net, const Dataset& data,
                         std::size_t batch) {
  MBD_CHECK_GT(batch, 0u);
  MBD_CHECK_GT(data.size(), 0u);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < data.size(); start += batch) {
    const std::size_t count = std::min(batch, data.size() - start);
    tensor::Matrix x(data.inputs.rows(), count);
    for (std::size_t j = 0; j < count; ++j)
      for (std::size_t i = 0; i < x.rows(); ++i)
        x(i, j) = data.inputs(i, start + j);
    const tensor::Matrix logits = net.forward(x);
    for (std::size_t j = 0; j < count; ++j) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < logits.rows(); ++i)
        if (logits(i, j) > logits(best, j)) best = i;
      if (static_cast<int>(best) == data.labels[start + j]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<double> train_sgd(Network& net, const Dataset& data,
                              const TrainConfig& cfg) {
  MBD_CHECK_GT(cfg.batch, 0u);
  MBD_CHECK_LE(cfg.batch, data.size());
  std::vector<double> losses;
  losses.reserve(cfg.iterations);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t start = (it * cfg.batch) % data.size();
    // Wrap by building the batch column range modulo N.
    tensor::Matrix x(data.inputs.rows(), cfg.batch);
    std::vector<int> labels(cfg.batch);
    for (std::size_t j = 0; j < cfg.batch; ++j) {
      const std::size_t src = (start + j) % data.size();
      for (std::size_t i = 0; i < x.rows(); ++i)
        x(i, j) = data.inputs(i, src);
      labels[j] = data.labels[src];
    }
    net.set_batch_context(it, /*sample_offset=*/start);
    const tensor::Matrix logits = net.forward(x);
    const LossResult lr = softmax_cross_entropy(logits, labels, cfg.batch);
    net.backward(lr.dlogits);
    net.sgd_step(lr_at(cfg, it), cfg.momentum);
    losses.push_back(lr.loss_sum / static_cast<double>(cfg.batch));
  }
  return losses;
}

}  // namespace mbd::nn
